#include "assim/assimilator.h"

namespace mps::assim {

Calibration identity_calibration() {
  return [](const DeviceModelId&, double raw) { return raw; };
}

std::vector<AssimObservation> convert_observations(
    const std::vector<phone::Observation>& observations,
    const ObservationPolicy& policy, const Calibration& calibration,
    ConversionStats* stats) {
  std::vector<AssimObservation> out;
  out.reserve(observations.size());
  for (const phone::Observation& obs : observations) {
    if (!obs.location.has_value()) {
      if (policy.require_location) {
        if (stats != nullptr) ++stats->rejected_no_location;
        continue;
      }
    } else if (obs.location->accuracy_m > policy.max_accuracy_m) {
      if (stats != nullptr) ++stats->rejected_accuracy;
      continue;
    }
    AssimObservation a;
    if (obs.location.has_value()) {
      a.x_m = obs.location->x_m;
      a.y_m = obs.location->y_m;
      a.sigma_r = policy.base_sigma_r_db +
                  policy.sigma_per_accuracy_m * obs.location->accuracy_m;
    } else {
      a.sigma_r = policy.base_sigma_r_db;
    }
    a.value = calibration(obs.model, obs.spl_db);
    out.push_back(a);
    if (stats != nullptr) ++stats->accepted;
  }
  return out;
}

BlueResult assimilate(const Grid& background,
                      const std::vector<phone::Observation>& observations,
                      const BlueParams& blue_params,
                      const ObservationPolicy& policy,
                      const Calibration& calibration, ConversionStats* stats,
                      exec::Executor* executor) {
  std::vector<AssimObservation> converted =
      convert_observations(observations, policy, calibration, stats);
  return blue_analysis(background, converted, blue_params, executor);
}

}  // namespace mps::assim
