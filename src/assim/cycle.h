// Sequential (cycled) data assimilation.
//
// The paper's engine runs continuously: the city model provides a new
// background every analysis step, and crowd observations correct it (§4.2;
// §8 calls for "adapted data assimilation algorithms that merge
// traditional simulations ... with fixed and mobile observations").
// A single BLUE step forgets everything the previous observations taught;
// the cycle instead propagates the previous analysis *increment* with the
// model tendency:
//
//   background(t+1) = model(t+1)
//                   + w * [ analysis(t) - model(t) ]   (persisted increment)
//
// and then assimilates the window's observations. w in [0,1] is the
// increment-persistence weight: 0 reduces to independent analyses, values
// near 1 assume model errors change slowly (true here: missing/bias-
// perturbed sources are static).
#pragma once

#include <functional>
#include <vector>

#include "assim/assimilator.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mps::assim {

/// Cycle configuration.
struct CycleConfig {
  DurationMs step = hours(1);
  /// Persistence of the previous analysis increment into the next
  /// background.
  double persistence_weight = 0.8;
  BlueParams blue;
  ObservationPolicy policy;
  /// Also maintain the posterior spread (analysis-error std dev per cell,
  /// see spread()). The spread shares each step's observation-covariance
  /// factorization with the analysis — one assembly + Cholesky per step
  /// serves both (per tile when blue.localization is enabled), never the
  /// assemble-twice/factor-twice double solve of calling blue_analysis
  /// and analysis_spread back to back.
  bool compute_spread = false;
  /// Optional parallel compute plane for each step's BLUE analysis;
  /// nullptr runs sequentially with a bit-identical field (DESIGN.md
  /// §10). Must outlive the cycle.
  exec::Executor* executor = nullptr;
};

/// Diagnostics of one cycle step.
struct CycleStep {
  TimeMs at = 0;                 ///< analysis time
  double innovation_rms = 0.0;
  double residual_rms = 0.0;
  std::size_t observations_used = 0;
  /// True when an injected kAssimStall fault skipped this step's
  /// assimilation (time still advanced; the increment persisted).
  bool stalled = false;
};

/// The running assimilation cycle. The model field is supplied by a
/// callback so any simulator (CityNoiseModel or a test stub) can drive it.
class AssimilationCycle {
 public:
  using ModelFn = std::function<Grid(TimeMs)>;

  /// Starts the cycle at `start`: the initial analysis is the raw model.
  AssimilationCycle(ModelFn model, TimeMs start, CycleConfig config = {});

  /// Advances one step: builds the background for time()+step from the
  /// model plus the persisted increment, assimilates `window`
  /// (observations captured in (time(), time()+step]) and returns the
  /// step diagnostics.
  CycleStep advance(const std::vector<phone::Observation>& window,
                    const Calibration& calibration = identity_calibration());

  /// Current analysis field (valid at time()).
  const Grid& analysis() const { return analysis_; }

  /// Posterior spread of the current analysis, maintained when
  /// config.compute_spread is set (bit-identical to a standalone
  /// analysis_spread over the same window). Before the first advance() —
  /// or when compute_spread is off — every cell is blue.sigma_b.
  const Grid& spread() const { return spread_; }

  /// Time the current analysis is valid for.
  TimeMs time() const { return now_; }

  const CycleConfig& config() const { return config_; }

  /// Steps executed so far.
  std::size_t steps() const { return steps_; }

  /// Mirrors step diagnostics into "assim.*" registry metrics: steps /
  /// observations_used counters, innovation_rms / residual_rms gauges and
  /// the assim.cycle_ms wall-clock histogram. Pass nullptr to detach.
  void set_metrics(obs::Registry* registry);

  /// Attaches a span tracker: observations of each advance() window that
  /// carry a span id are stamped kAssimilated at the analysis time.
  void set_tracer(obs::SpanTracker* tracer) { tracer_ = tracer; }

  /// Arms fault injection: a kAssimStall fault makes advance() skip the
  /// analysis for that step (engine hiccup) while virtual time still
  /// moves forward. Pass nullptr to disarm.
  void arm_faults(fault::FaultPlan* plan) {
    stall_fault_ = fault::FaultPoint(plan, fault::FaultSite::kAssimStall);
  }

 private:
  ModelFn model_;
  CycleConfig config_;
  TimeMs now_;
  Grid analysis_;
  Grid model_at_now_;
  Grid spread_;
  std::size_t steps_ = 0;

  /// Hoisted registry handles, null when no registry is attached.
  struct Metrics {
    obs::Counter* steps = nullptr;
    obs::Counter* observations_used = nullptr;
    obs::Counter* stalled_steps = nullptr;
    obs::Gauge* innovation_rms = nullptr;
    obs::Gauge* residual_rms = nullptr;
    obs::LatencyHistogram* cycle_ms = nullptr;
  };
  Metrics metrics_;
  obs::SpanTracker* tracer_ = nullptr;
  fault::FaultPoint stall_fault_;
};

}  // namespace mps::assim
