// Canned background jobs (paper Figure 2, "Background jobs": scripts
// "submitted by the application's managers [that] perform various
// operations on the crowd-sensed data"). These are the jobs the SoundCity
// operators ran routinely; they are plain GoFlowServer::Job functions so
// they can be submitted directly or registered with the REST API's job
// registry.
#pragma once

#include <string>

#include "core/goflow_server.h"

namespace mps::core {

/// Per-model observation counts: {model: count, ...}.
GoFlowServer::Job job_per_model_counts(const AppId& app);

/// Hourly histogram of captured_at (the Figure 18 aggregation):
/// {"00": n, ..., "23": n}.
GoFlowServer::Job job_hourly_histogram(const AppId& app);

/// Location-provider shares among localized observations:
/// {gps: f, network: f, fused: f, localized: n, total: n}.
GoFlowServer::Job job_provider_shares(const AppId& app);

/// Capture->server delay statistics: {count, mean_ms, max_ms,
/// over_2h_share} (the Figure 17 aggregation).
GoFlowServer::Job job_delay_stats(const AppId& app);

/// Data-retention cleanup: removes the app's observations captured before
/// `cutoff`; returns {removed: n}. (CNIL retention limits.)
GoFlowServer::Job job_purge_before(const AppId& app, TimeMs cutoff);

}  // namespace mps::core
