// The REST-based GoFlow API (paper Figure 2, top-left component): the
// HTTP-shaped surface "for clients and administrators to: authenticate
// and register subscribers and publishers, retrieve crowd-sensed data
// based on various filtering parameters, manage user accounts for an app,
// and submit and manage background jobs."
//
// This module maps JSON-over-paths requests onto GoFlowServer methods and
// REST status codes. Transport is out of scope (there is no socket in the
// reproduction); a RestRequest is what an HTTP front-end would hand over
// after parsing.
//
// Routes:
//   POST   /apps                                      {id, private_fields?}
//   POST   /apps/{app}/accounts                       {user, role}
//   DELETE /apps/{app}/accounts/{user}
//   POST   /apps/{app}/clients/{client}/login
//   POST   /apps/{app}/clients/{client}/logout
//   POST   /apps/{app}/clients/{client}/subscriptions {location, datatype}
//   DELETE /apps/{app}/clients/{client}/subscriptions {location, datatype}
//   GET    /apps/{app}/observations     ?user=&model=&mode=&provider=&
//                                        from=&until=&localized=&max_accuracy=&limit=
//   GET    /apps/{app}/observations/count             (same filters)
//   GET    /apps/{app}/observations/export            (same filters; JSON text)
//   GET    /apps/{app}/analytics
//   POST   /apps/{app}/jobs                           {type, delay_ms?}
//   GET    /jobs/{id}
//   GET    /metrics                     ?format=text for the line export;
//                                        JSON snapshot of the registry
//                                        otherwise (503 when the server
//                                        has no registry attached)
#pragma once

#include <functional>
#include <map>
#include <string>

#include "core/goflow_server.h"

namespace mps::core {

/// A parsed API request.
struct RestRequest {
  std::string method;  ///< "GET", "POST", "DELETE"
  std::string path;    ///< "/apps/soundcity/observations"
  std::string auth_token;
  Value body;          ///< JSON body (null when absent)
  std::map<std::string, std::string> query;
};

/// A response: HTTP status plus a JSON body.
struct RestResponse {
  int status = 200;
  Value body;
};

/// Maps an ErrorCode to its HTTP status.
int http_status(ErrorCode code);

/// The router. Job submission is REST-safe through a registry of named
/// job types (a function cannot travel in a JSON body).
class GoFlowRestApi {
 public:
  explicit GoFlowRestApi(GoFlowServer& server) : server_(server) {}

  /// Registers a named job type that POST /apps/{app}/jobs can launch.
  void register_job_type(const std::string& type, GoFlowServer::Job job);

  /// Dispatches one request.
  RestResponse handle(const RestRequest& request);

 private:
  RestResponse handle_apps(const RestRequest& request,
                           const std::vector<std::string>& parts);
  RestResponse handle_jobs(const RestRequest& request,
                           const std::vector<std::string>& parts);
  static RestResponse error_response(const Error& error);
  static RestResponse not_found();
  static ObservationFilter parse_filter(const RestRequest& request,
                                        const std::string& app);

  GoFlowServer& server_;
  std::map<std::string, GoFlowServer::Job> job_types_;
};

}  // namespace mps::core
