#include "core/recovery.h"

#include <cstdlib>

#include "common/strings.h"
#include "obs/flight_recorder.h"

namespace mps::core {

namespace {

/// With MPS_FLIGHT_DIR set, every server kill leaves a forensic JSONL
/// dump (flight_crash_<n>.jsonl) beside the chaos reports — the black
/// box is recovered even when the run never reaches an invariant check.
void dump_flight_on_crash(std::uint64_t crash_count) {
  const char* dir = std::getenv("MPS_FLIGHT_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::string path = std::string(dir) + "/flight_crash_" +
                     std::to_string(crash_count) + ".jsonl";
  obs::FlightRecorder::instance().dump_current_thread_to_file(path);
}

}  // namespace

ServerLifecycle::ServerLifecycle(durable::StorageEnv& env,
                                 sim::Simulation& sim, broker::Broker& broker,
                                 docstore::Database& db, GoFlowServer& server,
                                 durable::JournalConfig config,
                                 obs::Registry* metrics)
    : env_(&env),
      sim_(sim),
      broker_(broker),
      db_(db),
      server_(server),
      config_(config),
      metrics_(metrics) {
  journal_ = std::make_unique<durable::Journal>(*env_, config_, metrics_);
  attach(journal_.get());
  // Base snapshot: everything the components did before the journal
  // existed (topology, indexes, registrations) becomes recoverable.
  snapshot();
}

ServerLifecycle::~ServerLifecycle() { attach(nullptr); }

void ServerLifecycle::attach(durable::Journal* journal) {
  db_.attach_journal(journal);
  broker_.attach_journal(journal);
  server_.attach_journal(journal);
}

Value ServerLifecycle::combined_snapshot() const {
  return Value(Object{{"db", db_.durable_snapshot()},
                      {"brk", broker_.durable_snapshot()},
                      {"srv", server_.durable_snapshot()}});
}

void ServerLifecycle::snapshot() {
  if (down_) return;
  journal_->write_snapshot(combined_snapshot());
  obs::FlightRecorder::record(obs::FrEvent::kServerSnapshot, ++snapshots_, 0,
                              sim_.now());
}

void ServerLifecycle::crash() {
  if (down_) return;
  ++crashes_;
  obs::FlightRecorder::record(obs::FrEvent::kServerKill, crashes_, 0,
                              sim_.now());
  dump_flight_on_crash(crashes_);
  down_ = true;
  // Power cut first: whatever the WAL group-committed but never synced
  // is gone before any component state is touched.
  env_->crash();
  // The server crashes with its journal still attached — that is how it
  // knows its pending batches are recoverable and must NOT be attributed
  // as lost. Nothing logs during a component crash(), so the stale
  // journal is never written through. The server unsubscribes from the
  // still-alive broker, then the broker and database lose their state.
  server_.crash();
  broker_.crash();
  db_.crash();
  attach(nullptr);
  journal_.reset();  // its in-memory segment view no longer matches disk
}

void ServerLifecycle::recover() {
  if (!down_) return;
  // Re-opening the journal repairs any torn WAL tail in place.
  journal_ = std::make_unique<durable::Journal>(*env_, config_, metrics_);
  last_ = journal_->recover(
      [this](const Value& state) {
        const Value* db_state = state.find("db");
        if (db_state != nullptr) db_.restore_snapshot(*db_state);
        const Value* brk_state = state.find("brk");
        if (brk_state != nullptr) broker_.restore_snapshot(*brk_state);
        const Value* srv_state = state.find("srv");
        if (srv_state != nullptr) server_.restore_snapshot(*srv_state);
      },
      [this](const Value& record) {
        const std::string op = record.get_string("op");
        if (starts_with(op, "db.")) {
          db_.apply_journal_record(record);
        } else if (starts_with(op, "brk.")) {
          broker_.apply_journal_record(record);
        } else if (starts_with(op, "srv.")) {
          server_.apply_journal_record(record);
        }
        // Records with an unknown prefix are skipped (forward compat).
      });
  down_ = false;
  ++recoveries_;
  obs::FlightRecorder::record(obs::FrEvent::kServerRecover, recoveries_,
                              last_.replayed, sim_.now());
  // Journal back online before the components resume: everything they do
  // from here on is logged again.
  attach(journal_.get());
  broker_.finish_recovery();
  server_.finish_recovery();
  // The recovered state becomes the new base snapshot, so a second crash
  // replays from here instead of the whole history.
  snapshot();
}

void ServerLifecycle::failover_to(durable::StorageEnv& follower) {
  // Declare the primary dead first: crash() drops volatile component
  // state and the old env's unsynced tail (which we will never read
  // again anyway). If a chaos kill already crashed us, the components
  // are empty and we go straight to recovery.
  if (!down_) crash();
  env_ = &follower;
  recover();
}

}  // namespace mps::core
