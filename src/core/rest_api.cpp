#include "core/rest_api.h"

#include <cstdlib>

#include "common/strings.h"

namespace mps::core {

int http_status(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return 200;
    case ErrorCode::kInvalidArgument: return 400;
    case ErrorCode::kUnauthorized: return 401;
    case ErrorCode::kForbidden: return 403;
    case ErrorCode::kNotFound: return 404;
    case ErrorCode::kConflict: return 409;
    case ErrorCode::kUnavailable: return 503;
    case ErrorCode::kInternal: return 500;
  }
  return 500;
}

void GoFlowRestApi::register_job_type(const std::string& type,
                                      GoFlowServer::Job job) {
  job_types_[type] = std::move(job);
}

RestResponse GoFlowRestApi::error_response(const Error& error) {
  return RestResponse{http_status(error.code),
                      Value(Object{{"error", Value(error_code_name(error.code))},
                                   {"message", Value(error.message)}})};
}

RestResponse GoFlowRestApi::not_found() {
  return RestResponse{404, Value(Object{{"error", Value("not_found")},
                                        {"message", Value("no such route")}})};
}

namespace {

/// Parses roles from their wire names.
std::optional<Role> role_from_name(const std::string& name) {
  if (name == "client") return Role::kClient;
  if (name == "manager") return Role::kManager;
  if (name == "admin") return Role::kAdmin;
  return std::nullopt;
}

std::optional<double> query_double(
    const std::map<std::string, std::string>& query, const std::string& key) {
  auto it = query.find(key);
  if (it == query.end()) return std::nullopt;
  char* end = nullptr;
  double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return std::nullopt;
  return parsed;
}

}  // namespace

ObservationFilter GoFlowRestApi::parse_filter(const RestRequest& request,
                                              const std::string& app) {
  ObservationFilter filter;
  filter.app = app;
  const auto& q = request.query;
  if (auto it = q.find("user"); it != q.end()) filter.user = it->second;
  if (auto it = q.find("model"); it != q.end()) filter.model = it->second;
  if (auto it = q.find("mode"); it != q.end()) filter.mode = it->second;
  if (auto it = q.find("provider"); it != q.end()) filter.provider = it->second;
  if (auto from = query_double(q, "from"))
    filter.from = static_cast<TimeMs>(*from);
  if (auto until = query_double(q, "until"))
    filter.until = static_cast<TimeMs>(*until);
  if (auto it = q.find("localized"); it != q.end())
    filter.localized_only = it->second == "true" || it->second == "1";
  if (auto acc = query_double(q, "max_accuracy")) filter.max_accuracy_m = *acc;
  if (auto limit = query_double(q, "limit"))
    filter.limit = static_cast<std::size_t>(*limit);
  return filter;
}

RestResponse GoFlowRestApi::handle(const RestRequest& request) {
  // Path segments, dropping the empty leading segment of "/...".
  std::vector<std::string> parts = split(request.path, '/');
  if (!parts.empty() && parts.front().empty()) parts.erase(parts.begin());
  if (!parts.empty() && parts.back().empty()) parts.pop_back();  // trailing /
  if (parts.empty()) return not_found();

  if (parts[0] == "apps") return handle_apps(request, parts);
  if (parts[0] == "jobs") return handle_jobs(request, parts);

  // GET /metrics: one document with every counter/gauge/histogram of the
  // deployment (broker, client ingest, docstore, assimilation — whatever
  // was wired into the shared registry).
  if (parts.size() == 1 && parts[0] == "metrics" && request.method == "GET") {
    obs::Registry* registry = server_.metrics();
    if (registry == nullptr)
      return error_response(
          err(ErrorCode::kUnavailable, "no metrics registry attached"));
    auto fmt = request.query.find("format");
    if (fmt != request.query.end() && fmt->second == "text")
      return RestResponse{200,
                          Value(Object{{"text", Value(registry->export_text())}})};
    return RestResponse{200, registry->export_json()};
  }

  // GET /metrics/series: the windowed time-series (rates and rolling
  // quantiles per window) when a TimeSeries is attached to the server.
  if (parts.size() == 2 && parts[0] == "metrics" && parts[1] == "series" &&
      request.method == "GET") {
    obs::TimeSeries* series = server_.timeseries();
    if (series == nullptr)
      return error_response(
          err(ErrorCode::kUnavailable, "no time series attached"));
    return RestResponse{200, series->to_json()};
  }
  return not_found();
}

RestResponse GoFlowRestApi::handle_apps(const RestRequest& request,
                                        const std::vector<std::string>& parts) {
  // POST /apps
  if (parts.size() == 1) {
    if (request.method != "POST") return not_found();
    std::vector<std::string> private_fields;
    if (const Value* fields = request.body.find("private_fields")) {
      if (fields->is_array())
        for (const Value& f : fields->as_array())
          if (f.is_string()) private_fields.push_back(f.as_string());
    }
    auto result = server_.register_app(request.body.get_string("id"),
                                       std::move(private_fields));
    if (!result.ok()) return error_response(result.error());
    return RestResponse{
        201, Value(Object{{"app", Value(result.value().app)},
                          {"admin_token", Value(result.value().admin_token)}})};
  }

  const std::string& app = parts[1];

  // /apps/{app}/accounts[...]
  if (parts.size() >= 3 && parts[2] == "accounts") {
    if (parts.size() == 3 && request.method == "POST") {
      std::optional<Role> role =
          role_from_name(request.body.get_string("role", "client"));
      if (!role.has_value())
        return error_response(err(ErrorCode::kInvalidArgument, "bad role"));
      auto result = server_.register_account(
          request.auth_token, app, request.body.get_string("user"), *role);
      if (!result.ok()) return error_response(result.error());
      return RestResponse{201,
                          Value(Object{{"token", Value(result.value())}})};
    }
    if (parts.size() == 4 && request.method == "DELETE") {
      Status status = server_.remove_account(request.auth_token, app, parts[3]);
      if (!status.ok()) return error_response(status.error());
      return RestResponse{204, Value()};
    }
    return not_found();
  }

  // /apps/{app}/clients/{client}/...
  if (parts.size() >= 5 && parts[2] == "clients") {
    const std::string& client = parts[3];
    const std::string& action = parts[4];
    if (action == "login" && request.method == "POST") {
      auto result = server_.login_client(request.auth_token, app, client);
      if (!result.ok()) return error_response(result.error());
      return RestResponse{
          200, Value(Object{{"exchange", Value(result.value().exchange)},
                            {"queue", Value(result.value().queue)}})};
    }
    if (action == "logout" && request.method == "POST") {
      Status status = server_.logout_client(request.auth_token, app, client);
      if (!status.ok()) return error_response(status.error());
      return RestResponse{204, Value()};
    }
    if (action == "subscriptions") {
      std::string location = request.body.get_string("location");
      std::string datatype = request.body.get_string("datatype");
      if (request.method == "POST") {
        Status status = server_.subscribe(request.auth_token, app, client,
                                          location, datatype);
        if (!status.ok()) return error_response(status.error());
        return RestResponse{201, Value()};
      }
      if (request.method == "DELETE") {
        Status status = server_.unsubscribe(request.auth_token, app, client,
                                            location, datatype);
        if (!status.ok()) return error_response(status.error());
        return RestResponse{204, Value()};
      }
    }
    return not_found();
  }

  // /apps/{app}/observations[...]
  if (parts.size() >= 3 && parts[2] == "observations" &&
      request.method == "GET") {
    ObservationFilter filter = parse_filter(request, app);
    if (parts.size() == 3) {
      auto result = server_.query_observations(request.auth_token, filter);
      if (!result.ok()) return error_response(result.error());
      Array docs(result.value().begin(), result.value().end());
      return RestResponse{200,
                          Value(Object{{"observations", Value(std::move(docs))}})};
    }
    if (parts.size() == 4 && parts[3] == "count") {
      auto result = server_.count_observations(request.auth_token, filter);
      if (!result.ok()) return error_response(result.error());
      return RestResponse{
          200, Value(Object{{"count", Value(static_cast<std::int64_t>(
                                          result.value()))}})};
    }
    if (parts.size() == 4 && parts[3] == "export") {
      auto fmt = request.query.find("format");
      if (fmt != request.query.end() && fmt->second == "csv") {
        auto result = server_.export_csv(request.auth_token, filter);
        if (!result.ok()) return error_response(result.error());
        return RestResponse{200, Value(Object{{"csv", Value(result.value())}})};
      }
      auto result = server_.export_json(request.auth_token, filter);
      if (!result.ok()) return error_response(result.error());
      return RestResponse{200,
                          Value(Object{{"json", Value(result.value())}})};
    }
    return not_found();
  }

  // GET /apps/{app}/analytics
  if (parts.size() == 3 && parts[2] == "analytics" &&
      request.method == "GET") {
    auto result = server_.analytics(app);
    if (!result.ok()) return error_response(result.error());
    const AppAnalytics& analytics = result.value();
    return RestResponse{
        200,
        Value(Object{
            {"clients_logged_in",
             Value(static_cast<std::int64_t>(analytics.clients_logged_in))},
            {"batches_ingested",
             Value(static_cast<std::int64_t>(analytics.batches_ingested))},
            {"observations_stored",
             Value(static_cast<std::int64_t>(analytics.observations_stored))},
            {"observations_localized",
             Value(static_cast<std::int64_t>(analytics.observations_localized))},
            {"subscriptions",
             Value(static_cast<std::int64_t>(analytics.subscriptions))},
            {"mean_delay_ms", Value(analytics.delay_stats.mean())}})};
  }

  // POST /apps/{app}/jobs
  if (parts.size() == 3 && parts[2] == "jobs" && request.method == "POST") {
    std::string type = request.body.get_string("type");
    auto it = job_types_.find(type);
    if (it == job_types_.end())
      return error_response(
          err(ErrorCode::kNotFound, "unknown job type '" + type + "'"));
    auto delay = static_cast<DurationMs>(request.body.get_int("delay_ms", 0));
    auto result =
        server_.submit_job(request.auth_token, app, type, it->second, delay);
    if (!result.ok()) return error_response(result.error());
    return RestResponse{202, Value(Object{{"job", Value(result.value())}})};
  }

  return not_found();
}

RestResponse GoFlowRestApi::handle_jobs(const RestRequest& request,
                                        const std::vector<std::string>& parts) {
  if (parts.size() == 2 && request.method == "GET") {
    auto result = server_.job_info(parts[1]);
    if (!result.ok()) return error_response(result.error());
    return RestResponse{200, result.value()};
  }
  return not_found();
}

}  // namespace mps::core
