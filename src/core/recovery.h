// Crash/recovery orchestration for the whole GoFlow middleware process.
//
// The paper's deployment ran the broker, the document store and the
// GoFlow server as one middleware host; when that host dies, all three
// lose their volatile state together. ServerLifecycle models exactly
// that: it owns the shared Journal (one WAL totally ordering every
// "db." / "brk." / "srv." record), wires it into all three components,
// and drives the crash -> recover cycle the chaos harness schedules.
//
//   ServerLifecycle lc(env, sim, broker, db, server);
//   ...traffic...
//   lc.crash();     // power cut: unsynced WAL tail lost, RAM gone
//   ...downtime: publishes fail, clients retry from their buffers...
//   lc.recover();   // snapshot + WAL tail replay; server resumes pending
//                   // batches, then re-subscribes to the ingest queue
//
// Components keep their object identity across the cycle (every client
// holds references to the same Broker/Database/GoFlowServer), matching
// how a TCP endpoint survives a remote restart: same address, fresh
// state behind it.
#pragma once

#include <memory>

#include "broker/broker.h"
#include "core/goflow_server.h"
#include "docstore/database.h"
#include "durable/journal.h"
#include "durable/storage.h"
#include "obs/metrics.h"
#include "sim/simulation.h"

namespace mps::core {

class ServerLifecycle {
 public:
  /// Opens (or re-opens) the journal in `env`, attaches it to the broker,
  /// database and server, and immediately writes a snapshot: the
  /// components carry state created before attachment (the server's
  /// constructor declares topology and indexes journal-less), and the
  /// snapshot is what makes that base state recoverable.
  ServerLifecycle(durable::StorageEnv& env, sim::Simulation& sim,
                  broker::Broker& broker, docstore::Database& db,
                  GoFlowServer& server, durable::JournalConfig config = {},
                  obs::Registry* metrics = nullptr);
  ~ServerLifecycle();

  ServerLifecycle(const ServerLifecycle&) = delete;
  ServerLifecycle& operator=(const ServerLifecycle&) = delete;

  /// Kills the middleware process: storage drops its unsynced tail, then
  /// the server, broker and database empty their volatile state in
  /// place. Until recover(), publishes and queries fail as they would
  /// against a dead host, and snapshot() is a no-op.
  void crash();

  /// Brings the process back: repairs the WAL tail, loads the newest
  /// valid snapshot into all three components, replays the tail in
  /// global LSN order, flags restored durable-queue messages redelivered
  /// and resumes the server's pending batches before it re-subscribes.
  /// Finishes by writing a fresh snapshot of the recovered state.
  void recover();

  /// Point-in-time snapshot of broker + database + server; truncates the
  /// WAL through it. No-op while crashed.
  void snapshot();

  /// Failover (DESIGN.md §16): abandons the current storage env and
  /// recovers from `follower` — the replica a WalShipper kept in sync.
  /// If the process is still up it is crashed first (the primary is
  /// declared dead; its env is never read again). Everything the shipper
  /// made durable on the follower — mirrored snapshot plus shipped WAL
  /// tail — is what survives, exactly like a recover() on the primary
  /// would see only synced bytes.
  void failover_to(durable::StorageEnv& follower);

  /// The storage env currently backing the journal.
  durable::StorageEnv& env() { return *env_; }

  bool down() const { return down_; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t recoveries() const { return recoveries_; }
  /// Stats from the most recent recover() (empty before the first).
  const durable::RecoveryStats& last_recovery() const { return last_; }
  /// The live journal (nullptr while crashed).
  durable::Journal* journal() { return journal_.get(); }

 private:
  Value combined_snapshot() const;
  void attach(durable::Journal* journal);

  durable::StorageEnv* env_;  ///< never null; swapped by failover_to()
  sim::Simulation& sim_;
  broker::Broker& broker_;
  docstore::Database& db_;
  GoFlowServer& server_;
  durable::JournalConfig config_;
  obs::Registry* metrics_;
  std::unique_ptr<durable::Journal> journal_;
  bool down_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t snapshots_ = 0;
  durable::RecoveryStats last_;
};

}  // namespace mps::core
