#include "core/goflow_server.h"

#include <algorithm>

#include "common/log.h"
#include "common/strings.h"

namespace mps::core {

const char* role_name(Role r) {
  switch (r) {
    case Role::kClient: return "client";
    case Role::kManager: return "manager";
    case Role::kAdmin: return "admin";
  }
  return "?";
}

GoFlowServer::GoFlowServer(sim::Simulation& simulation, broker::Broker& broker,
                           docstore::Database& database, ServerConfig config)
    : sim_(simulation), broker_(broker), db_(database), config_(std::move(config)) {
  broker_.declare_exchange(config_.goflow_exchange, broker::ExchangeType::kTopic)
      .throw_if_error();
  broker_.declare_queue(config_.ingest_queue).throw_if_error();
  broker_.bind_queue(config_.goflow_exchange, config_.ingest_queue, "#")
      .throw_if_error();
  ingest_tag_ = broker_
                    .subscribe(config_.ingest_queue,
                               [this](const broker::Message& m) { ingest(m); })
                    .value_or_throw();
  // Hot query paths get indexes up front.
  auto& obs = db_.collection(config_.observations_collection);
  obs.create_index("app");
  obs.create_index("user");
  obs.create_index("model");
  obs.create_index("captured_at");
}

GoFlowServer::~GoFlowServer() {
  broker_.unsubscribe(ingest_tag_);
  if (tracer_ != nullptr) broker_.set_drop_hook(nullptr);
}

void GoFlowServer::set_metrics(obs::Registry* registry) {
  metrics_registry_ = registry;
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.batches_ingested = &registry->counter("server.batches_ingested");
  metrics_.observations_stored =
      &registry->counter("server.observations_stored");
  metrics_.duplicate_batches = &registry->counter("server.duplicate_batches");
  metrics_.duplicate_observations =
      &registry->counter("server.duplicate_observations");
  metrics_.ingest_retries = &registry->counter("retry.ingest_backoffs");
  metrics_.ingest_delay = &registry->histogram("server.ingest_delay_ms");
}

void GoFlowServer::set_tracer(obs::SpanTracker* tracer) {
  tracer_ = tracer;
  if (tracer == nullptr) {
    broker_.set_drop_hook(nullptr);
    return;
  }
  broker_.set_drop_hook([this](const broker::Message& m,
                               broker::DropReason reason) {
    on_broker_drop(m, reason);
  });
}

void GoFlowServer::on_broker_drop(const broker::Message& message,
                                  broker::DropReason reason) {
  if (tracer_ == nullptr) return;
  obs::DropStage stage = obs::DropStage::kNone;
  switch (reason) {
    case broker::DropReason::kExpired:
      stage = obs::DropStage::kExpiredInBroker;
      break;
    case broker::DropReason::kOverflow:
      stage = obs::DropStage::kOverflowInBroker;
      break;
    case broker::DropReason::kUnroutable:
      stage = obs::DropStage::kUnroutable;
      break;
  }
  const Value* observations = message.payload.find("observations");
  if (observations == nullptr || !observations->is_array()) return;
  for (const Value& obs : observations->as_array()) {
    if (!obs.is_object()) continue;
    auto span = static_cast<std::uint64_t>(obs.get_int("span", 0));
    if (span != 0) tracer_->drop(span, stage, sim_.now());
  }
}

// --- App & account management ---------------------------------------------

Result<AppRegistration> GoFlowServer::register_app(
    const AppId& app, std::vector<std::string> private_fields) {
  if (app.empty())
    return err(ErrorCode::kInvalidArgument, "app id must be non-empty");
  if (apps_.count(app) > 0)
    return err(ErrorCode::kConflict, "app '" + app + "' already registered");
  apps_[app].private_fields = std::move(private_fields);

  // Figure 3: one exchange per application, forwarding everything to the
  // GoFlow exchange for storage.
  Status s = broker_.declare_exchange(app_exchange(app),
                                      broker::ExchangeType::kTopic);
  if (!s.ok()) return s.error();
  s = broker_.bind_exchange(app_exchange(app), config_.goflow_exchange, "#");
  if (!s.ok()) return s.error();

  std::string token = "tok-" + app + "-" + std::to_string(++token_counter_);
  tokens_[token] = Account{app, "app-admin", Role::kAdmin, token};
  db_.collection(config_.accounts_collection)
      .insert(Value(Object{{"app", Value(app)},
                           {"user", Value("app-admin")},
                           {"role", Value(role_name(Role::kAdmin))}}));
  return AppRegistration{app, token};
}

const GoFlowServer::Account* GoFlowServer::authenticate(
    const std::string& token) const {
  auto it = tokens_.find(token);
  return it == tokens_.end() ? nullptr : &it->second;
}

std::optional<Role> GoFlowServer::token_role(
    const std::string& auth_token) const {
  const Account* account = authenticate(auth_token);
  if (account == nullptr) return std::nullopt;
  return account->role;
}

Status GoFlowServer::require_role(const std::string& token, const AppId& app,
                                  Role minimum) const {
  const Account* account = authenticate(token);
  if (account == nullptr)
    return err(ErrorCode::kUnauthorized, "invalid token");
  if (account->app != app)
    return err(ErrorCode::kForbidden, "token belongs to another app");
  if (static_cast<int>(account->role) < static_cast<int>(minimum))
    return err(ErrorCode::kForbidden,
               std::string("requires role ") + role_name(minimum));
  return {};
}

Result<std::string> GoFlowServer::register_account(
    const std::string& auth_token, const AppId& app, const UserId& user,
    Role role) {
  // Managers may add clients; adding managers/admins needs an admin.
  Role needed = role == Role::kClient ? Role::kManager : Role::kAdmin;
  Status s = require_role(auth_token, app, needed);
  if (!s.ok()) return s.error();
  for (const auto& [_, account] : tokens_)
    if (account.app == app && account.user == user)
      return err(ErrorCode::kConflict, "account exists for '" + user + "'");
  std::string token = "tok-" + app + "-" + std::to_string(++token_counter_);
  tokens_[token] = Account{app, user, role, token};
  db_.collection(config_.accounts_collection)
      .insert(Value(Object{{"app", Value(app)},
                           {"user", Value(user)},
                           {"role", Value(role_name(role))}}));
  return token;
}

Status GoFlowServer::remove_account(const std::string& auth_token,
                                    const AppId& app, const UserId& user) {
  Status s = require_role(auth_token, app, Role::kAdmin);
  if (!s.ok()) return s;
  for (auto it = tokens_.begin(); it != tokens_.end(); ++it) {
    if (it->second.app == app && it->second.user == user) {
      tokens_.erase(it);
      db_.collection(config_.accounts_collection)
          .remove_many(docstore::Query::and_(
              {docstore::Query::eq("app", Value(app)),
               docstore::Query::eq("user", Value(user))}));
      return {};
    }
  }
  return err(ErrorCode::kNotFound, "no account for '" + user + "'");
}

// --- Channel management -----------------------------------------------------

Result<ClientChannels> GoFlowServer::login_client(const std::string& auth_token,
                                                  const AppId& app,
                                                  const ClientId& client) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s.error();
  if (apps_.count(app) == 0)
    return err(ErrorCode::kNotFound, "app '" + app + "' not registered");

  ExchangeId ex = client_exchange(app, client);
  QueueId q = client_queue(app, client);
  s = broker_.declare_exchange(ex, broker::ExchangeType::kTopic);
  if (!s.ok()) return s.error();
  // The client's exchange forwards everything it publishes to the app
  // exchange (Figure 3: E1 -> SC).
  s = broker_.bind_exchange(ex, app_exchange(app), "#");
  if (!s.ok()) return s.error();
  s = broker_.declare_queue(q);
  if (!s.ok()) return s.error();
  ++apps_[app].analytics.clients_logged_in;
  return ClientChannels{ex, q};
}

Status GoFlowServer::logout_client(const std::string& auth_token,
                                   const AppId& app, const ClientId& client) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s;
  Status es = broker_.delete_exchange(client_exchange(app, client));
  Status qs = broker_.delete_queue(client_queue(app, client));
  if (!es.ok()) return es;
  return qs;
}

Status GoFlowServer::subscribe(const std::string& auth_token, const AppId& app,
                               const ClientId& client,
                               const std::string& location_id,
                               const std::string& datatype) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s;
  if (!broker_.has_queue(client_queue(app, client)))
    return err(ErrorCode::kNotFound, "client not logged in");

  // Figure 3 topology: app exchange -> location exchange -> datatype
  // exchange -> client queues. Messages are published with routing key
  // "<location>.<datatype>.<client>".
  ExchangeId loc_ex = location_exchange(app, location_id);
  ExchangeId type_ex = datatype_exchange(app, location_id, datatype);
  s = broker_.declare_exchange(loc_ex, broker::ExchangeType::kTopic);
  if (!s.ok()) return s;
  s = broker_.bind_exchange(app_exchange(app), loc_ex, location_id + ".#");
  if (!s.ok()) return s;
  s = broker_.declare_exchange(type_ex, broker::ExchangeType::kTopic);
  if (!s.ok()) return s;
  s = broker_.bind_exchange(loc_ex, type_ex, "*." + datatype + ".#");
  if (!s.ok()) return s;
  s = broker_.bind_queue(type_ex, client_queue(app, client), "#");
  if (!s.ok()) return s;
  ++apps_[app].analytics.subscriptions;
  return {};
}

Status GoFlowServer::unsubscribe(const std::string& auth_token,
                                 const AppId& app, const ClientId& client,
                                 const std::string& location_id,
                                 const std::string& datatype) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s;
  return broker_.unbind_queue(datatype_exchange(app, location_id, datatype),
                              client_queue(app, client), "#");
}

std::string GoFlowServer::publish_key(const std::string& location_id,
                                      const std::string& datatype,
                                      const ClientId& client) {
  return location_id + "." + datatype + "." + client;
}

// --- Ingestion ---------------------------------------------------------------

void GoFlowServer::ingest(const broker::Message& message) {
  const Value* observations = message.payload.find("observations");
  if (observations == nullptr || !observations->is_array()) {
    // Not an observation batch (e.g. a Feedback message routed for
    // storage): store it raw when it is an object.
    if (message.payload.is_object()) {
      Value doc = message.payload;
      doc.as_object().set("routing_key", Value(message.routing_key));
      doc.as_object().set("received_at", Value(message.published_at));
      PendingBatch batch;
      batch.collection = "messages";
      batch.published_at = message.published_at;
      batch.docs.push_back(std::move(doc));
      batch.delays.push_back(0);
      std::uint64_t id = ++pending_counter_;
      pending_batches_.emplace(id, std::move(batch));
      store_batch(id);
    }
    return;
  }
  // Idempotent ingestion: the transport is at-least-once (store-and-
  // forward retries, broker redelivery), so a batch may arrive twice.
  std::string batch_id = message.payload.get_string("batch_id");
  if (!batch_id.empty() && !seen_batch_ids_.insert(batch_id).second) {
    ++duplicate_batches_;
    if (metrics_.duplicate_batches != nullptr)
      metrics_.duplicate_batches->inc();
    if (tracer_ != nullptr) {
      // The batch was already stored; these redelivered copies go nowhere.
      for (const Value& obs : observations->as_array()) {
        if (!obs.is_object()) continue;
        auto span = static_cast<std::uint64_t>(obs.get_int("span", 0));
        if (span != 0)
          tracer_->drop(span, obs::DropStage::kRejectedByServer, sim_.now());
      }
    }
    return;
  }
  AppId app = message.payload.get_string("app");
  std::string client = message.payload.get_string("client");

  // Accepting a batch and storing it are separate steps: documents are
  // prepared up front, and store_batch works through them with backoff
  // retries on transient docstore errors. The tail of a half-stored batch
  // is resumed internally — never redelivered through the broker, which
  // would trip the batch_id dedup and lose it.
  PendingBatch batch;
  batch.collection = config_.observations_collection;
  batch.app = app;
  batch.published_at = message.published_at;
  for (const Value& obs : observations->as_array()) {
    if (!obs.is_object()) continue;
    Value doc = obs;
    Object& o = doc.as_object();
    o.set("app", Value(app));
    o.set("client", Value(client));
    o.set("received_at", Value(message.published_at));
    TimeMs captured = doc.get_int("captured_at");
    DurationMs delay = message.published_at - captured;
    o.set("delay_ms", Value(delay));
    batch.docs.push_back(std::move(doc));
    batch.delays.push_back(delay);
  }
  std::uint64_t id = ++pending_counter_;
  pending_batches_.emplace(id, std::move(batch));
  store_batch(id);
}

void GoFlowServer::store_batch(std::uint64_t id) {
  auto bit = pending_batches_.find(id);
  if (bit == pending_batches_.end()) return;
  PendingBatch& batch = bit->second;
  bool is_observations = !batch.app.empty() || batch.collection ==
                                                   config_.observations_collection;
  AppState* state = nullptr;
  auto ait = apps_.find(batch.app);
  if (ait != apps_.end()) state = &ait->second;

  auto& collection = db_.collection(batch.collection);
  while (batch.next < batch.docs.size()) {
    const Value& doc = batch.docs[batch.next];
    auto span = static_cast<std::uint64_t>(doc.get_int("span", 0));
    // Second dedup line: a crash can interrupt a client's retry cycle
    // after the broker already routed the batch, and the re-packaged
    // upload carries a fresh batch_id — so observations are also deduped
    // individually by their stable (client, span) identity.
    std::string key;
    if (is_observations && span != 0)
      key = doc.get_string("client") + "#" + std::to_string(span);
    if (!key.empty() && seen_obs_keys_.count(key) > 0) {
      ++duplicate_observations_;
      if (metrics_.duplicate_observations != nullptr)
        metrics_.duplicate_observations->inc();
      if (tracer_ != nullptr)
        tracer_->drop(span, obs::DropStage::kRejectedByServer, sim_.now());
      ++batch.next;
      batch.attempts = 0;
      continue;
    }
    try {
      collection.insert(doc);  // copies, so a failed attempt can retry
    } catch (const fault::TransientError&) {
      ++ingest_retries_;
      if (metrics_.ingest_retries != nullptr) metrics_.ingest_retries->inc();
      ++batch.attempts;
      DurationMs delay = fault::backoff_delay(
          batch.attempts, config_.ingest_retry_base, config_.ingest_retry_max,
          config_.ingest_retry_jitter, ingest_retry_rng_);
      sim_.after(delay, [this, id] { store_batch(id); });
      return;
    }
    if (!key.empty()) seen_obs_keys_.insert(key);
    batch.attempts = 0;
    if (is_observations) {
      DurationMs delay = batch.delays[batch.next];
      ++total_observations_;
      if (metrics_.observations_stored != nullptr)
        metrics_.observations_stored->inc();
      if (metrics_.ingest_delay != nullptr)
        metrics_.ingest_delay->observe(static_cast<double>(delay));
      if (tracer_ != nullptr && span != 0) {
        tracer_->stamp(span, obs::Hop::kRouted, batch.published_at);
        tracer_->stamp(span, obs::Hop::kPersisted, sim_.now());
      }
      if (state != nullptr) {
        ++state->analytics.observations_stored;
        if (doc.find("location") != nullptr)
          ++state->analytics.observations_localized;
        state->analytics.delay_stats.add(static_cast<double>(delay));
      }
    }
    ++batch.next;
  }
  if (is_observations) {
    ++total_batches_;
    if (metrics_.batches_ingested != nullptr) metrics_.batches_ingested->inc();
    if (state != nullptr) ++state->analytics.batches_ingested;
  }
  pending_batches_.erase(bit);
}

std::vector<std::uint64_t> GoFlowServer::pending_ingest_span_ids() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [_, batch] : pending_batches_) {
    for (std::size_t i = batch.next; i < batch.docs.size(); ++i) {
      auto span = static_cast<std::uint64_t>(batch.docs[i].get_int("span", 0));
      if (span != 0) ids.push_back(span);
    }
  }
  return ids;
}

// --- Data API ------------------------------------------------------------------

docstore::Query GoFlowServer::build_query(
    const ObservationFilter& filter) const {
  using docstore::Query;
  std::vector<Query> clauses;
  clauses.push_back(Query::eq("app", Value(filter.app)));
  if (filter.user.has_value())
    clauses.push_back(Query::eq("user", Value(*filter.user)));
  if (filter.model.has_value())
    clauses.push_back(Query::eq("model", Value(*filter.model)));
  if (filter.mode.has_value())
    clauses.push_back(Query::eq("mode", Value(*filter.mode)));
  if (filter.provider.has_value())
    clauses.push_back(Query::eq("location.provider", Value(*filter.provider)));
  if (filter.from.has_value())
    clauses.push_back(Query::gte("captured_at", Value(*filter.from)));
  if (filter.until.has_value())
    clauses.push_back(Query::lt("captured_at", Value(*filter.until)));
  if (filter.localized_only)
    clauses.push_back(Query::exists("location"));
  if (filter.max_accuracy_m.has_value())
    clauses.push_back(
        Query::lte("location.accuracy", Value(*filter.max_accuracy_m)));
  return Query::and_(std::move(clauses));
}

Value GoFlowServer::strip_private_fields(const Value& doc,
                                         const AppId& owner_app) const {
  auto it = apps_.find(owner_app);
  if (it == apps_.end() || it->second.private_fields.empty()) return doc;
  Value out = doc;
  for (const std::string& field : it->second.private_fields)
    out.as_object().erase(field);
  return out;
}

Result<std::vector<Value>> GoFlowServer::query_observations(
    const std::string& auth_token, const ObservationFilter& filter) const {
  const Account* account = authenticate(auth_token);
  if (account == nullptr) return err(ErrorCode::kUnauthorized, "invalid token");
  docstore::FindOptions options;
  options.sort_by = "captured_at";
  options.limit = filter.limit;
  const docstore::Collection* collection =
      db_.find_collection(config_.observations_collection);
  if (collection == nullptr) return std::vector<Value>{};
  std::vector<Value> docs =
      collection->find(build_query(filter), options);
  // Open-data policy: foreign apps see shared fields only.
  if (account->app != filter.app) {
    for (Value& doc : docs) doc = strip_private_fields(doc, filter.app);
  }
  return docs;
}

Result<std::size_t> GoFlowServer::count_observations(
    const std::string& auth_token, const ObservationFilter& filter) const {
  if (authenticate(auth_token) == nullptr)
    return err(ErrorCode::kUnauthorized, "invalid token");
  const docstore::Collection* collection =
      db_.find_collection(config_.observations_collection);
  if (collection == nullptr) return std::size_t{0};
  return collection->count(build_query(filter));
}

Result<std::string> GoFlowServer::export_json(
    const std::string& auth_token, const ObservationFilter& filter) const {
  Result<std::vector<Value>> docs = query_observations(auth_token, filter);
  if (!docs.ok()) return docs.error();
  std::string out = "[";
  bool first = true;
  for (const Value& doc : docs.value()) {
    if (!first) out.push_back(',');
    first = false;
    out += doc.to_json();
  }
  out.push_back(']');
  return out;
}

Result<std::string> GoFlowServer::export_csv(
    const std::string& auth_token, const ObservationFilter& filter) const {
  Result<std::vector<Value>> docs = query_observations(auth_token, filter);
  if (!docs.ok()) return docs.error();
  std::string out =
      "user,model,captured_at,spl,mode,activity,provider,x,y,accuracy,delay_ms\n";
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char c : field) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
  };
  for (const Value& doc : docs.value()) {
    out += escape(doc.get_string("user")) + ',';
    out += escape(doc.get_string("model")) + ',';
    out += std::to_string(doc.get_int("captured_at")) + ',';
    out += format("%.3f", doc.get_double("spl")) + ',';
    out += doc.get_string("mode") + ',';
    out += doc.get_string("activity") + ',';
    const Value* location = doc.find("location");
    if (location != nullptr) {
      out += location->get_string("provider") + ',';
      out += format("%.1f", location->get_double("x")) + ',';
      out += format("%.1f", location->get_double("y")) + ',';
      out += format("%.1f", location->get_double("accuracy")) + ',';
    } else {
      out += ",,,,";
    }
    out += std::to_string(doc.get_int("delay_ms"));
    out.push_back('\n');
  }
  return out;
}

// --- Analytics -------------------------------------------------------------------

Result<AppAnalytics> GoFlowServer::analytics(const AppId& app) const {
  auto it = apps_.find(app);
  if (it == apps_.end())
    return err(ErrorCode::kNotFound, "app '" + app + "' not registered");
  return it->second.analytics;
}

// --- Background jobs ----------------------------------------------------------------

Result<JobId> GoFlowServer::submit_job(const std::string& auth_token,
                                       const AppId& app,
                                       const std::string& name, Job job,
                                       DurationMs delay) {
  Status s = require_role(auth_token, app, Role::kManager);
  if (!s.ok()) return s.error();
  JobId id = "job-" + std::to_string(++job_counter_);
  Value doc(Object{{"_id", Value(id)},
                   {"name", Value(name)},
                   {"app", Value(app)},
                   {"status", Value("scheduled")}});
  db_.collection(config_.jobs_collection).insert(std::move(doc));
  sim_.after(delay, [this, id, job = std::move(job)] {
    Value result;
    std::string status = "done";
    try {
      result = job(db_);
    } catch (const std::exception& e) {
      status = "failed";
      result = Value(Object{{"error", Value(std::string(e.what()))}});
    }
    auto& jobs = db_.collection(config_.jobs_collection);
    auto doc = jobs.get(id);
    if (doc.has_value()) {
      doc->as_object().set("status", Value(status));
      doc->as_object().set("result", result);
      jobs.replace(id, std::move(*doc));
    }
  });
  return id;
}

Result<Value> GoFlowServer::job_info(const JobId& id) const {
  const docstore::Collection* jobs =
      db_.find_collection(config_.jobs_collection);
  if (jobs == nullptr) return err(ErrorCode::kNotFound, "job not found");
  auto doc = jobs->get(id);
  if (!doc.has_value()) return err(ErrorCode::kNotFound, "job not found");
  return *doc;
}

}  // namespace mps::core
