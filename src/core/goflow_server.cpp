#include "core/goflow_server.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>

#include "common/log.h"
#include "common/strings.h"
#include "durable/journal.h"
#include "ingest/obs_batch.h"
#include "obs/flight_recorder.h"

namespace mps::core {

namespace {

// Tokens are "tok-<app>-<N>"; recovery re-derives the counter from the
// highest N seen so freshly issued tokens never collide with replayed ones.
std::uint64_t token_suffix(const std::string& token) {
  auto pos = token.find_last_of('-');
  if (pos == std::string::npos) return 0;
  const char* digits = token.c_str() + pos + 1;
  char* end = nullptr;
  std::uint64_t n = std::strtoull(digits, &end, 10);
  return (end != digits && *end == '\0') ? n : 0;
}

// Builds the "client#span" dedup key into a reused buffer — the flat
// path's replacement for the doc path's string concatenation.
void span_key(std::string_view client, std::uint64_t span, std::string& out) {
  out.assign(client);
  out.push_back('#');
  char buf[20];
  auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), span);
  (void)ec;
  out.append(buf, p);
}

}  // namespace

const char* role_name(Role r) {
  switch (r) {
    case Role::kClient: return "client";
    case Role::kManager: return "manager";
    case Role::kAdmin: return "admin";
  }
  return "?";
}

GoFlowServer::GoFlowServer(sim::Simulation& simulation, broker::Broker& broker,
                           docstore::Database& database, ServerConfig config)
    : sim_(simulation), broker_(broker), db_(database), config_(std::move(config)) {
  broker_.declare_exchange(config_.goflow_exchange, broker::ExchangeType::kTopic)
      .throw_if_error();
  // Durable: the ingest queue is the at-least-once boundary — anything
  // that does buffer in it must survive a middleware restart.
  broker::QueueOptions ingest_options;
  ingest_options.durable = true;
  broker_.declare_queue(config_.ingest_queue, ingest_options).throw_if_error();
  broker_.bind_queue(config_.goflow_exchange, config_.ingest_queue, "#")
      .throw_if_error();
  subscribe_ingest();
  // Hot query paths get indexes up front.
  auto& obs = db_.collection(config_.observations_collection);
  obs.create_index("app");
  obs.create_index("user");
  obs.create_index("model");
  obs.create_index("captured_at");
  update_admission_gate();
}

GoFlowServer::~GoFlowServer() {
  attribute_shutdown_drops();
  broker_.clear_admission_gate(config_.ingest_queue);
  broker_.unsubscribe(ingest_tag_);
  if (tracer_ != nullptr) broker_.set_drop_hook(nullptr);
}

void GoFlowServer::subscribe_ingest() {
  ingest_tag_ = broker_
                    .subscribe(config_.ingest_queue,
                               [this](const broker::Message& m) { ingest(m); })
                    .value_or_throw();
}

void GoFlowServer::set_metrics(obs::Registry* registry) {
  metrics_registry_ = registry;
  if (registry == nullptr) {
    metrics_ = Metrics{};
    seen_batch_ids_.set_eviction_counter(nullptr);
    seen_obs_keys_.set_eviction_counter(nullptr);
    return;
  }
  metrics_.batches_ingested = &registry->counter("server.batches_ingested");
  metrics_.observations_stored =
      &registry->counter("server.observations_stored");
  metrics_.duplicate_batches = &registry->counter("server.duplicate_batches");
  metrics_.duplicate_observations =
      &registry->counter("server.duplicate_observations");
  metrics_.ingest_retries = &registry->counter("retry.ingest_backoffs");
  metrics_.admission_shed = &registry->counter("server.admission_shed");
  metrics_.admission_accepted =
      &registry->counter("server.admission_accepted");
  metrics_.ingest_delay = &registry->histogram("server.ingest_delay_ms");
  obs::Counter* evictions = &registry->counter("server.dedup_evictions");
  seen_batch_ids_.set_eviction_counter(evictions);
  seen_obs_keys_.set_eviction_counter(evictions);
}

void GoFlowServer::note_dedup_evictions() {
  std::uint64_t total = dedup_evictions();
  if (total > fr_dedup_evictions_seen_) {
    obs::FlightRecorder::record(obs::FrEvent::kDedupEvict, total,
                                total - fr_dedup_evictions_seen_, sim_.now());
    fr_dedup_evictions_seen_ = total;
  }
}

void GoFlowServer::set_tracer(obs::SpanTracker* tracer) {
  tracer_ = tracer;
  if (tracer == nullptr) {
    broker_.set_drop_hook(nullptr);
    return;
  }
  broker_.set_drop_hook([this](const broker::Message& m,
                               broker::DropReason reason) {
    on_broker_drop(m, reason);
  });
}

void GoFlowServer::on_broker_drop(const broker::Message& message,
                                  broker::DropReason reason) {
  if (tracer_ == nullptr) return;
  obs::DropStage stage = obs::DropStage::kNone;
  switch (reason) {
    case broker::DropReason::kExpired:
      stage = obs::DropStage::kExpiredInBroker;
      break;
    case broker::DropReason::kOverflow:
      stage = obs::DropStage::kOverflowInBroker;
      break;
    case broker::DropReason::kUnroutable:
      stage = obs::DropStage::kUnroutable;
      break;
  }
  if (message.flat != nullptr) {
    // Span attribution straight off the column — no rehydration.
    const ingest::ObsBatch& batch = *message.flat;
    for (std::size_t i = 0; i < batch.size(); ++i)
      if (batch.span_id(i) != 0)
        tracer_->drop(batch.span_id(i), stage, sim_.now());
    return;
  }
  const Value* observations = message.payload.find("observations");
  if (observations == nullptr || !observations->is_array()) return;
  for (const Value& obs : observations->as_array()) {
    if (!obs.is_object()) continue;
    auto span = static_cast<std::uint64_t>(obs.get_int("span", 0));
    if (span != 0) tracer_->drop(span, stage, sim_.now());
  }
}

// --- Admission control (DESIGN.md §13) --------------------------------------

void GoFlowServer::arm_faults(fault::FaultPlan* plan) {
  admission_fault_ = fault::FaultPoint(plan, fault::FaultSite::kAdmissionShed);
  update_admission_gate();
}

void GoFlowServer::update_admission_gate() {
  if (config_.admission_max_pending > 0 || admission_fault_.armed())
    broker_.set_admission_gate(config_.ingest_queue,
                               [this](TimeMs now) { return admit(now); });
  else
    broker_.clear_admission_gate(config_.ingest_queue);
}

bool GoFlowServer::admit(TimeMs now) {
  if (down_) return true;  // a downed server's backlog buffers in the queue
  // The fault consult is unconditional so the kAdmissionShed decision
  // stream stays a pure function of the consultation count, independent
  // of the capacity bound.
  bool fault_shed = admission_fault_.should_fail(now);
  bool capacity_shed = config_.admission_max_pending > 0 &&
                       pending_batches_.size() >= config_.admission_max_pending;
  if (fault_shed || capacity_shed) {
    ++admission_sheds_;
    if (metrics_.admission_shed != nullptr) metrics_.admission_shed->inc();
    return false;
  }
  ++admission_accepted_;
  if (metrics_.admission_accepted != nullptr) metrics_.admission_accepted->inc();
  return true;
}

// --- App & account management ---------------------------------------------

Result<AppRegistration> GoFlowServer::register_app(
    const AppId& app, std::vector<std::string> private_fields) {
  if (app.empty())
    return err(ErrorCode::kInvalidArgument, "app id must be non-empty");
  if (apps_.count(app) > 0)
    return err(ErrorCode::kConflict, "app '" + app + "' already registered");
  apps_[app].private_fields = std::move(private_fields);

  // Figure 3: one exchange per application, forwarding everything to the
  // GoFlow exchange for storage.
  Status s = broker_.declare_exchange(app_exchange(app),
                                      broker::ExchangeType::kTopic);
  if (!s.ok()) return s.error();
  s = broker_.bind_exchange(app_exchange(app), config_.goflow_exchange, "#");
  if (!s.ok()) return s.error();

  std::string token = "tok-" + app + "-" + std::to_string(++token_counter_);
  tokens_[token] = Account{app, "app-admin", Role::kAdmin, token};
  if (journal_ != nullptr) {
    Array pf;
    for (const std::string& f : apps_[app].private_fields)
      pf.push_back(Value(f));
    log_record(Value(Object{{"op", Value("srv.app")},
                            {"app", Value(app)},
                            {"pf", Value(std::move(pf))},
                            {"token", Value(token)}}));
  }
  db_.collection(config_.accounts_collection)
      .insert(Value(Object{{"app", Value(app)},
                           {"user", Value("app-admin")},
                           {"role", Value(role_name(Role::kAdmin))}}));
  return AppRegistration{app, token};
}

const GoFlowServer::Account* GoFlowServer::authenticate(
    const std::string& token) const {
  auto it = tokens_.find(token);
  return it == tokens_.end() ? nullptr : &it->second;
}

std::optional<Role> GoFlowServer::token_role(
    const std::string& auth_token) const {
  const Account* account = authenticate(auth_token);
  if (account == nullptr) return std::nullopt;
  return account->role;
}

Status GoFlowServer::require_role(const std::string& token, const AppId& app,
                                  Role minimum) const {
  const Account* account = authenticate(token);
  if (account == nullptr)
    return err(ErrorCode::kUnauthorized, "invalid token");
  if (account->app != app)
    return err(ErrorCode::kForbidden, "token belongs to another app");
  if (static_cast<int>(account->role) < static_cast<int>(minimum))
    return err(ErrorCode::kForbidden,
               std::string("requires role ") + role_name(minimum));
  return {};
}

Result<std::string> GoFlowServer::register_account(
    const std::string& auth_token, const AppId& app, const UserId& user,
    Role role) {
  // Managers may add clients; adding managers/admins needs an admin.
  Role needed = role == Role::kClient ? Role::kManager : Role::kAdmin;
  Status s = require_role(auth_token, app, needed);
  if (!s.ok()) return s.error();
  for (const auto& [_, account] : tokens_)
    if (account.app == app && account.user == user)
      return err(ErrorCode::kConflict, "account exists for '" + user + "'");
  std::string token = "tok-" + app + "-" + std::to_string(++token_counter_);
  tokens_[token] = Account{app, user, role, token};
  log_record(Value(Object{{"op", Value("srv.acct")},
                          {"app", Value(app)},
                          {"user", Value(user)},
                          {"role", Value(static_cast<std::int64_t>(role))},
                          {"token", Value(token)}}));
  db_.collection(config_.accounts_collection)
      .insert(Value(Object{{"app", Value(app)},
                           {"user", Value(user)},
                           {"role", Value(role_name(role))}}));
  return token;
}

Status GoFlowServer::remove_account(const std::string& auth_token,
                                    const AppId& app, const UserId& user) {
  Status s = require_role(auth_token, app, Role::kAdmin);
  if (!s.ok()) return s;
  for (auto it = tokens_.begin(); it != tokens_.end(); ++it) {
    if (it->second.app == app && it->second.user == user) {
      tokens_.erase(it);
      log_record(Value(Object{{"op", Value("srv.acct_rm")},
                              {"app", Value(app)},
                              {"user", Value(user)}}));
      db_.collection(config_.accounts_collection)
          .remove_many(docstore::Query::and_(
              {docstore::Query::eq("app", Value(app)),
               docstore::Query::eq("user", Value(user))}));
      return {};
    }
  }
  return err(ErrorCode::kNotFound, "no account for '" + user + "'");
}

// --- Channel management -----------------------------------------------------

Result<ClientChannels> GoFlowServer::login_client(const std::string& auth_token,
                                                  const AppId& app,
                                                  const ClientId& client) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s.error();
  if (apps_.count(app) == 0)
    return err(ErrorCode::kNotFound, "app '" + app + "' not registered");

  ExchangeId ex = client_exchange(app, client);
  QueueId q = client_queue(app, client);
  s = broker_.declare_exchange(ex, broker::ExchangeType::kTopic);
  if (!s.ok()) return s.error();
  // The client's exchange forwards everything it publishes to the app
  // exchange (Figure 3: E1 -> SC).
  s = broker_.bind_exchange(ex, app_exchange(app), "#");
  if (!s.ok()) return s.error();
  // Durable: subscription deliveries buffered in a client's queue while
  // it is offline must survive a middleware restart.
  broker::QueueOptions queue_options;
  queue_options.durable = true;
  s = broker_.declare_queue(q, queue_options);
  if (!s.ok()) return s.error();
  ++apps_[app].analytics.clients_logged_in;
  log_record(Value(Object{{"op", Value("srv.login")}, {"app", Value(app)}}));
  return ClientChannels{ex, q};
}

Status GoFlowServer::logout_client(const std::string& auth_token,
                                   const AppId& app, const ClientId& client) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s;
  Status es = broker_.delete_exchange(client_exchange(app, client));
  Status qs = broker_.delete_queue(client_queue(app, client));
  if (!es.ok()) return es;
  return qs;
}

Status GoFlowServer::subscribe(const std::string& auth_token, const AppId& app,
                               const ClientId& client,
                               const std::string& location_id,
                               const std::string& datatype) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s;
  if (!broker_.has_queue(client_queue(app, client)))
    return err(ErrorCode::kNotFound, "client not logged in");

  // Figure 3 topology: app exchange -> location exchange -> datatype
  // exchange -> client queues. Messages are published with routing key
  // "<location>.<datatype>.<client>".
  ExchangeId loc_ex = location_exchange(app, location_id);
  ExchangeId type_ex = datatype_exchange(app, location_id, datatype);
  s = broker_.declare_exchange(loc_ex, broker::ExchangeType::kTopic);
  if (!s.ok()) return s;
  s = broker_.bind_exchange(app_exchange(app), loc_ex, location_id + ".#");
  if (!s.ok()) return s;
  s = broker_.declare_exchange(type_ex, broker::ExchangeType::kTopic);
  if (!s.ok()) return s;
  s = broker_.bind_exchange(loc_ex, type_ex, "*." + datatype + ".#");
  if (!s.ok()) return s;
  s = broker_.bind_queue(type_ex, client_queue(app, client), "#");
  if (!s.ok()) return s;
  ++apps_[app].analytics.subscriptions;
  log_record(Value(Object{{"op", Value("srv.sub")}, {"app", Value(app)}}));
  return {};
}

Status GoFlowServer::unsubscribe(const std::string& auth_token,
                                 const AppId& app, const ClientId& client,
                                 const std::string& location_id,
                                 const std::string& datatype) {
  Status s = require_role(auth_token, app, Role::kClient);
  if (!s.ok()) return s;
  return broker_.unbind_queue(datatype_exchange(app, location_id, datatype),
                              client_queue(app, client), "#");
}

std::string GoFlowServer::publish_key(const std::string& location_id,
                                      const std::string& datatype,
                                      const ClientId& client) {
  return location_id + "." + datatype + "." + client;
}

// --- Ingestion ---------------------------------------------------------------

void GoFlowServer::ingest(const broker::Message& message) {
  if (down_) return;  // a crashed incarnation consumes nothing
  if (message.flat != nullptr) {
    if (journal_ != nullptr) {
      // Durable runs take the document path: srv.batch must carry full
      // documents (acceptance is the durability point), and the WAL has
      // to be byte-identical to the oracle. Materialize once and recurse.
      broker::Message copy;
      copy.exchange = message.exchange;
      copy.routing_key = message.routing_key;
      copy.payload = message.flat->to_batch_document();
      copy.sequence = message.sequence;
      copy.published_at = message.published_at;
      copy.redelivered = message.redelivered;
      ingest(copy);
      return;
    }
    ingest_flat(message);
    return;
  }
  const Value* observations = message.payload.find("observations");
  if (observations == nullptr || !observations->is_array()) {
    // Not an observation batch (e.g. a Feedback message routed for
    // storage): store it raw when it is an object.
    if (message.payload.is_object()) {
      Value doc = message.payload;
      doc.as_object().set("routing_key", Value(message.routing_key));
      doc.as_object().set("received_at", Value(message.published_at));
      PendingBatch batch;
      batch.collection = "messages";
      batch.published_at = message.published_at;
      batch.docs.push_back(std::move(doc));
      batch.delays.push_back(0);
      std::uint64_t id = ++pending_counter_;
      log_batch_accepted(id, "", pending_batches_.emplace(id, std::move(batch))
                                     .first->second);
      store_batch(id);
    }
    return;
  }
  // Idempotent ingestion: the transport is at-least-once (store-and-
  // forward retries, broker redelivery), so a batch may arrive twice.
  std::string batch_id = message.payload.get_string("batch_id");
  bool batch_is_new = batch_id.empty() || seen_batch_ids_.insert(batch_id);
  note_dedup_evictions();
  if (!batch_is_new) {
    ++duplicate_batches_;
    if (metrics_.duplicate_batches != nullptr)
      metrics_.duplicate_batches->inc();
    // Recovery replays the rejection so the post-crash counter agrees
    // with what the operator saw live.
    log_record(Value(Object{{"op", Value("srv.dupb")}}));
    if (tracer_ != nullptr) {
      // The batch was already stored; these redelivered copies go nowhere.
      for (const Value& obs : observations->as_array()) {
        if (!obs.is_object()) continue;
        auto span = static_cast<std::uint64_t>(obs.get_int("span", 0));
        if (span != 0)
          tracer_->drop(span, obs::DropStage::kRejectedByServer, sim_.now());
      }
    }
    return;
  }
  AppId app = message.payload.get_string("app");
  std::string client = message.payload.get_string("client");

  // Accepting a batch and storing it are separate steps: documents are
  // prepared up front, and store_batch works through them with backoff
  // retries on transient docstore errors. The tail of a half-stored batch
  // is resumed internally — never redelivered through the broker, which
  // would trip the batch_id dedup and lose it.
  PendingBatch batch;
  batch.collection = config_.observations_collection;
  batch.app = app;
  batch.published_at = message.published_at;
  for (const Value& obs : observations->as_array()) {
    if (!obs.is_object()) continue;
    Value doc = obs;
    Object& o = doc.as_object();
    o.set("app", Value(app));
    o.set("client", Value(client));
    o.set("received_at", Value(message.published_at));
    TimeMs captured = doc.get_int("captured_at");
    DurationMs delay = message.published_at - captured;
    o.set("delay_ms", Value(delay));
    batch.docs.push_back(std::move(doc));
    batch.delays.push_back(delay);
  }
  std::uint64_t id = ++pending_counter_;
  log_batch_accepted(id, batch_id, pending_batches_.emplace(id, std::move(batch))
                                       .first->second);
  store_batch(id);
}

// The fast path: the batch stays flat end to end. Dedup reads the span-id
// column, acceptance keeps a shared_ptr to the columns (no document
// materialization), and storage goes through the docstore's column-wise
// insert_batch. Only reached when no journal is attached — durable runs
// fall back to the oracle path in ingest().
void GoFlowServer::ingest_flat(const broker::Message& message) {
  const ingest::ObsBatch& flat = *message.flat;
  std::string batch_id(flat.batch_id());
  bool batch_is_new = batch_id.empty() || seen_batch_ids_.insert(batch_id);
  note_dedup_evictions();
  if (!batch_is_new) {
    ++duplicate_batches_;
    if (metrics_.duplicate_batches != nullptr)
      metrics_.duplicate_batches->inc();
    if (tracer_ != nullptr) {
      for (std::size_t i = 0; i < flat.size(); ++i)
        if (flat.span_id(i) != 0)
          tracer_->drop(flat.span_id(i), obs::DropStage::kRejectedByServer,
                        sim_.now());
    }
    return;
  }
  PendingBatch batch;
  batch.collection = config_.observations_collection;
  batch.app = std::string(flat.app());
  batch.published_at = message.published_at;
  batch.flat = message.flat;
  std::uint64_t id = ++pending_counter_;
  pending_batches_.emplace(id, std::move(batch));
  store_batch(id);
}

// Acceptance is the durability point: once srv.batch is logged, the batch
// is the server's responsibility — a crash before the documents land is
// recovered by rebuilding the pending batch and resuming store_batch.
void GoFlowServer::log_batch_accepted(std::uint64_t id,
                                      const std::string& batch_id,
                                      const PendingBatch& batch) {
  if (journal_ == nullptr) return;
  Array docs;
  for (const Value& d : batch.docs) docs.push_back(d);
  log_record(Value(Object{{"op", Value("srv.batch")},
                          {"id", Value(static_cast<std::int64_t>(id))},
                          {"bid", Value(batch_id)},
                          {"c", Value(batch.collection)},
                          {"app", Value(batch.app)},
                          {"at", Value(batch.published_at)},
                          {"docs", Value(std::move(docs))}}));
}

void GoFlowServer::store_batch(std::uint64_t id) {
  if (down_) return;
  auto bit = pending_batches_.find(id);
  if (bit == pending_batches_.end()) return;
  PendingBatch& batch = bit->second;
  if (batch.flat != nullptr) {
    store_batch_flat(id, batch);
    return;
  }
  bool is_observations = !batch.app.empty() || batch.collection ==
                                                   config_.observations_collection;

  auto& collection = db_.collection(batch.collection);
  while (batch.next < batch.docs.size()) {
    const Value& doc = batch.docs[batch.next];
    auto span = static_cast<std::uint64_t>(doc.get_int("span", 0));
    // Second dedup line: a crash can interrupt a client's retry cycle
    // after the broker already routed the batch, and the re-packaged
    // upload carries a fresh batch_id — so observations are also deduped
    // individually by their stable (client, span) identity.
    std::string key;
    if (is_observations && span != 0)
      key = doc.get_string("client") + "#" + std::to_string(span);
    if (!key.empty() && seen_obs_keys_.contains(key)) {
      if (account_stored_doc(id, batch, /*dup=*/true, /*live=*/true)) return;
      continue;
    }
    try {
      collection.insert(doc);  // copies, so a failed attempt can retry
    } catch (const fault::TransientError&) {
      ++ingest_retries_;
      if (metrics_.ingest_retries != nullptr) metrics_.ingest_retries->inc();
      ++batch.attempts;
      DurationMs delay = fault::backoff_delay(
          batch.attempts, config_.ingest_retry_base, config_.ingest_retry_max,
          config_.ingest_retry_jitter, ingest_retry_rng_);
      // The timer belongs to this incarnation: if the server crashes
      // before it fires, recovery resumes the batch itself and a stale
      // timer must not double-drive it.
      sim_.after(delay, [this, id, epoch = epoch_] {
        if (epoch == epoch_) store_batch(id);
      });
      return;
    }
    if (account_stored_doc(id, batch, /*dup=*/false, /*live=*/true)) return;
  }
  // A batch with no storable documents closes out immediately.
  finish_batch(id, batch, /*live=*/true);
}

void GoFlowServer::store_batch_flat(std::uint64_t id, PendingBatch& batch) {
  const ingest::ObsBatch& flat = *batch.flat;
  auto& collection = db_.collection(batch.collection);
  std::string key;
  while (batch.next < flat.size()) {
    // Dedup decision for the current row, same line of defense as the
    // document path: stable (client, span) identity against repackaged
    // uploads.
    std::uint64_t span = flat.span_id(batch.next);
    bool dup = false;
    if (span != 0) {
      span_key(flat.client(), span, key);
      dup = seen_obs_keys_.contains(key);
    }
    if (dup) {
      if (account_stored_flat(id, batch, /*dup=*/true, key)) return;
      continue;
    }
    // Maximal run of consecutive non-duplicate rows, bulk-inserted with
    // one column-wise call. Span ids are unique within a batch, so rows
    // of the run cannot dedup against each other; the row that breaks
    // the run is re-decided fresh at the top of the loop.
    std::size_t run_end = batch.next + 1;
    while (run_end < flat.size()) {
      std::uint64_t s = flat.span_id(run_end);
      if (s != 0) {
        span_key(flat.client(), s, key);
        if (seen_obs_keys_.contains(key)) break;
      }
      ++run_end;
    }
    std::size_t run_len = run_end - batch.next;
    std::size_t inserted = collection.insert_batch(
        batch.flat, batch.next, run_len, batch.published_at);
    for (std::size_t r = 0; r < inserted; ++r)
      if (account_stored_flat(id, batch, /*dup=*/false, key)) return;
    if (inserted < run_len) {
      // Transient store failure on row batch.next — identical backoff
      // and resume-in-place behaviour to the document path.
      ++ingest_retries_;
      if (metrics_.ingest_retries != nullptr) metrics_.ingest_retries->inc();
      ++batch.attempts;
      DurationMs delay = fault::backoff_delay(
          batch.attempts, config_.ingest_retry_base, config_.ingest_retry_max,
          config_.ingest_retry_jitter, ingest_retry_rng_);
      sim_.after(delay, [this, id, epoch = epoch_] {
        if (epoch == epoch_) store_batch(id);
      });
      return;
    }
  }
  finish_batch(id, batch, /*live=*/true);
}

bool GoFlowServer::account_stored_flat(std::uint64_t id, PendingBatch& batch,
                                       bool dup, std::string& key_buf) {
  const ingest::ObsBatch& flat = *batch.flat;
  std::size_t i = batch.next;
  std::uint64_t span = flat.span_id(i);
  AppState* state = nullptr;
  auto ait = apps_.find(batch.app);
  if (ait != apps_.end()) state = &ait->second;

  if (dup) {
    ++duplicate_observations_;
    if (metrics_.duplicate_observations != nullptr)
      metrics_.duplicate_observations->inc();
    if (tracer_ != nullptr && span != 0)
      tracer_->drop(span, obs::DropStage::kRejectedByServer, sim_.now());
  } else {
    if (span != 0) {
      span_key(flat.client(), span, key_buf);
      seen_obs_keys_.insert(key_buf);
      note_dedup_evictions();
    }
    DurationMs delay = batch.published_at - flat.captured_at(i);
    ++total_observations_;
    if (metrics_.observations_stored != nullptr)
      metrics_.observations_stored->inc();
    if (metrics_.ingest_delay != nullptr)
      metrics_.ingest_delay->observe(static_cast<double>(delay));
    if (tracer_ != nullptr && span != 0) {
      tracer_->stamp(span, obs::Hop::kRouted, batch.published_at);
      tracer_->stamp(span, obs::Hop::kPersisted, sim_.now());
    }
    if (state != nullptr) {
      ++state->analytics.observations_stored;
      if (flat.has_location(i)) ++state->analytics.observations_localized;
      state->analytics.delay_stats.add(static_cast<double>(delay));
    }
  }
  ++batch.next;
  batch.attempts = 0;
  if (batch.next < flat.size()) return false;
  finish_batch(id, batch, /*live=*/true);
  return true;
}

bool GoFlowServer::account_stored_doc(std::uint64_t id, PendingBatch& batch,
                                      bool dup, bool live) {
  bool is_observations = !batch.app.empty() || batch.collection ==
                                                   config_.observations_collection;
  const Value& doc = batch.docs[batch.next];
  auto span = static_cast<std::uint64_t>(doc.get_int("span", 0));
  std::string key;
  if (is_observations && span != 0)
    key = doc.get_string("client") + "#" + std::to_string(span);
  AppState* state = nullptr;
  auto ait = apps_.find(batch.app);
  if (ait != apps_.end()) state = &ait->second;

  if (live)
    log_record(Value(Object{{"op", Value("srv.prog")},
                            {"id", Value(static_cast<std::int64_t>(id))},
                            {"dup", Value(dup)}}));
  if (dup) {
    ++duplicate_observations_;
    // Registry metrics and the tracer live outside the server process
    // (operator monitoring): replay must not double-count what they
    // already saw live.
    if (live && metrics_.duplicate_observations != nullptr)
      metrics_.duplicate_observations->inc();
    if (live && tracer_ != nullptr && span != 0)
      tracer_->drop(span, obs::DropStage::kRejectedByServer, sim_.now());
  } else {
    if (!key.empty()) {
      seen_obs_keys_.insert(key);
      if (live) note_dedup_evictions();
    }
    if (is_observations) {
      DurationMs delay = batch.delays[batch.next];
      ++total_observations_;
      if (live && metrics_.observations_stored != nullptr)
        metrics_.observations_stored->inc();
      if (live && metrics_.ingest_delay != nullptr)
        metrics_.ingest_delay->observe(static_cast<double>(delay));
      if (live && tracer_ != nullptr && span != 0) {
        tracer_->stamp(span, obs::Hop::kRouted, batch.published_at);
        tracer_->stamp(span, obs::Hop::kPersisted, sim_.now());
      }
      if (state != nullptr) {
        ++state->analytics.observations_stored;
        if (doc.find("location") != nullptr)
          ++state->analytics.observations_localized;
        state->analytics.delay_stats.add(static_cast<double>(delay));
      }
    }
  }
  ++batch.next;
  batch.attempts = 0;
  if (batch.next < batch.docs.size()) return false;
  finish_batch(id, batch, live);
  return true;
}

void GoFlowServer::finish_batch(std::uint64_t id, PendingBatch& batch,
                                bool live) {
  bool is_observations = !batch.app.empty() || batch.collection ==
                                                   config_.observations_collection;
  if (is_observations) {
    ++total_batches_;
    if (live && metrics_.batches_ingested != nullptr)
      metrics_.batches_ingested->inc();
    auto ait = apps_.find(batch.app);
    if (ait != apps_.end()) ++ait->second.analytics.batches_ingested;
  }
  pending_batches_.erase(id);
}

std::vector<std::uint64_t> GoFlowServer::pending_ingest_span_ids() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [_, batch] : pending_batches_) {
    if (batch.flat != nullptr) {
      for (std::size_t i = batch.next; i < batch.flat->size(); ++i)
        if (batch.flat->span_id(i) != 0) ids.push_back(batch.flat->span_id(i));
      continue;
    }
    for (std::size_t i = batch.next; i < batch.docs.size(); ++i) {
      auto span = static_cast<std::uint64_t>(batch.docs[i].get_int("span", 0));
      if (span != 0) ids.push_back(span);
    }
  }
  return ids;
}

// --- Shard rebalance (DESIGN.md §16) ----------------------------------------

namespace {

/// Client identity of a dedup key — both batch ids ("<client>#<counter>")
/// and observation keys ("<client>#<span>") carry the client as the
/// prefix before the first '#'. Keys with no '#' are treated as owned by
/// their whole text (defensive: such keys never match a client pred).
std::string_view key_client(const std::string& key) {
  std::string_view v(key);
  return v.substr(0, v.find('#'));
}

}  // namespace

Value GoFlowServer::extract_migration(
    const std::function<bool(std::string_view)>& pred) {
  auto keys_to_array = [](std::vector<std::string> keys) {
    Array out;
    for (std::string& k : keys) out.push_back(Value(std::move(k)));
    return out;
  };
  Array batch_keys = keys_to_array(seen_batch_ids_.extract_if(
      [&](const std::string& k) { return pred(key_client(k)); }));
  Array obs_keys = keys_to_array(seen_obs_keys_.extract_if(
      [&](const std::string& k) { return pred(key_client(k)); }));

  // Stored documents: full scan is fine — rebalance is a rare control
  // operation, not a data-path one. The recovery applier removes without
  // journaling or fault injection (see header contract).
  Array docs;
  auto& collection = db_.collection(config_.observations_collection);
  for (docstore::Document& doc : collection.find(docstore::Query::all())) {
    if (!pred(doc.get_string("client"))) continue;
    collection.apply_remove(doc.get_string("_id"));
    // _id is a storage-local handle, not part of the observation's
    // identity: the adopting shard assigns its own (a source id could
    // collide with a document the target already holds).
    doc.as_object().erase("_id");
    docs.push_back(std::move(doc));
  }

  // Pending batches move wholesale, resume position included. Raw
  // "messages" batches have no client and stay put.
  Array pending;
  for (auto it = pending_batches_.begin(); it != pending_batches_.end();) {
    PendingBatch& b = it->second;
    std::string client;
    if (b.flat != nullptr)
      client = std::string(b.flat->client());
    else if (!b.docs.empty())
      client = b.docs.front().get_string("client");
    if (client.empty() || !pred(client)) {
      ++it;
      continue;
    }
    Array batch_docs;
    if (b.flat != nullptr)
      for (std::size_t i = 0; i < b.flat->size(); ++i)
        batch_docs.push_back(b.flat->storage_document(i, b.published_at));
    for (const Value& d : b.docs) batch_docs.push_back(d);
    pending.push_back(Value(Object{
        {"c", Value(b.collection)},
        {"app", Value(b.app)},
        {"at", Value(b.published_at)},
        {"next", Value(static_cast<std::int64_t>(b.next))},
        {"docs", Value(std::move(batch_docs))}}));
    it = pending_batches_.erase(it);
  }

  return Value(Object{{"batch_keys", Value(std::move(batch_keys))},
                      {"obs_keys", Value(std::move(obs_keys))},
                      {"docs", Value(std::move(docs))},
                      {"pending", Value(std::move(pending))}});
}

void GoFlowServer::adopt_migration(const Value& migration) {
  const Value* batch_keys = migration.find("batch_keys");
  if (batch_keys != nullptr)
    for (const Value& k : batch_keys->as_array())
      seen_batch_ids_.insert(k.as_string());
  const Value* obs_keys = migration.find("obs_keys");
  if (obs_keys != nullptr)
    for (const Value& k : obs_keys->as_array())
      seen_obs_keys_.insert(k.as_string());
  note_dedup_evictions();

  const Value* docs = migration.find("docs");
  if (docs != nullptr) {
    auto& collection = db_.collection(config_.observations_collection);
    for (const Value& d : docs->as_array()) collection.apply_insert(d);
  }

  const Value* pending = migration.find("pending");
  if (pending != nullptr) {
    for (const Value& p : pending->as_array()) {
      PendingBatch batch;
      batch.collection = p.get_string("c");
      batch.app = p.get_string("app");
      batch.published_at = p.get_int("at");
      batch.next = static_cast<std::size_t>(p.get_int("next"));
      const Value* batch_docs = p.find("docs");
      if (batch_docs != nullptr)
        for (const Value& d : batch_docs->as_array()) {
          batch.delays.push_back(d.get_int("delay_ms", 0));
          batch.docs.push_back(d);
        }
      std::uint64_t id = ++pending_counter_;
      // The batch id itself moved with batch_keys above; srv.batch here
      // only covers the pending work until the post-rebalance snapshot.
      log_batch_accepted(id, "",
                         pending_batches_.emplace(id, std::move(batch))
                             .first->second);
      store_batch(id);
    }
  }
}

// --- Durability (DESIGN.md §11) ---------------------------------------------

void GoFlowServer::attach_journal(durable::Journal* journal) {
  journal_ = journal;
}

void GoFlowServer::log_record(Value record) {
  if (journal_ != nullptr) journal_->append(record);
}

void GoFlowServer::attribute_pending_drops(obs::DropStage stage) {
  if (tracer_ == nullptr) return;
  for (std::uint64_t span : pending_ingest_span_ids())
    tracer_->drop(span, stage, sim_.now());
}

void GoFlowServer::attribute_shutdown_drops() {
  attribute_pending_drops(obs::DropStage::kLostInServerShutdown);
}

void GoFlowServer::crash() {
  // Without a journal there is no recovery: whatever was accepted but not
  // yet stored is gone, and the books must say so.
  if (journal_ == nullptr)
    attribute_pending_drops(obs::DropStage::kLostInServerCrash);
  broker_.unsubscribe(ingest_tag_);  // no-op if the broker crashed first
  // Flow control died with the process; recovery reinstalls the gate.
  broker_.clear_admission_gate(config_.ingest_queue);
  ingest_tag_ = 0;
  tokens_.clear();
  apps_.clear();
  seen_batch_ids_.clear();
  seen_obs_keys_.clear();
  pending_batches_.clear();
  token_counter_ = 0;
  job_counter_ = 0;
  total_batches_ = 0;
  total_observations_ = 0;
  duplicate_batches_ = 0;
  duplicate_observations_ = 0;
  ingest_retries_ = 0;
  admission_sheds_ = 0;
  admission_accepted_ = 0;
  pending_counter_ = 0;
  down_ = true;
  ++epoch_;  // invalidates every scheduled ingest-retry timer
}

void GoFlowServer::finish_recovery() {
  down_ = false;
  // Resume half-stored batches before accepting new traffic so their
  // documents land ahead of anything newly routed. Collect ids first:
  // store_batch erases completed batches.
  std::vector<std::uint64_t> ids;
  for (const auto& [id, _] : pending_batches_) ids.push_back(id);
  for (std::uint64_t id : ids) store_batch(id);
  subscribe_ingest();
  update_admission_gate();
}

Value GoFlowServer::durable_snapshot() const {
  Array accounts;
  for (const auto& [token, a] : tokens_)
    accounts.push_back(Value(Object{
        {"app", Value(a.app)},
        {"user", Value(a.user)},
        {"role", Value(static_cast<std::int64_t>(a.role))},
        {"token", Value(token)}}));
  Array apps;
  for (const auto& [app, state] : apps_) {
    Array pf;
    for (const std::string& f : state.private_fields) pf.push_back(Value(f));
    const AppAnalytics& an = state.analytics;
    const RunningStats& ds = an.delay_stats;
    apps.push_back(Value(Object{
        {"app", Value(app)},
        {"pf", Value(std::move(pf))},
        {"cli", Value(static_cast<std::int64_t>(an.clients_logged_in))},
        {"bat", Value(static_cast<std::int64_t>(an.batches_ingested))},
        {"obs", Value(static_cast<std::int64_t>(an.observations_stored))},
        {"loc", Value(static_cast<std::int64_t>(an.observations_localized))},
        {"sub", Value(static_cast<std::int64_t>(an.subscriptions))},
        {"ds", Value(Object{{"n", Value(static_cast<std::int64_t>(ds.count()))},
                            {"mean", Value(ds.mean())},
                            {"m2", Value(ds.m2())},
                            {"min", Value(ds.min())},
                            {"max", Value(ds.max())}})}}));
  }
  auto keys_array = [](const BoundedKeySet& set) {
    Array out;
    for (const std::string& k : set.ordered()) out.push_back(Value(k));
    return out;
  };
  Array pending;
  for (const auto& [id, batch] : pending_batches_) {
    Array docs;
    if (batch.flat != nullptr) {
      // Defensive: the flat path only runs journal-less, but a snapshot
      // must never reference arena memory — materialize the oracle docs.
      for (std::size_t i = 0; i < batch.flat->size(); ++i)
        docs.push_back(batch.flat->storage_document(i, batch.published_at));
    }
    for (const Value& d : batch.docs) docs.push_back(d);
    pending.push_back(Value(Object{
        {"id", Value(static_cast<std::int64_t>(id))},
        {"c", Value(batch.collection)},
        {"app", Value(batch.app)},
        {"at", Value(batch.published_at)},
        {"next", Value(static_cast<std::int64_t>(batch.next))},
        {"docs", Value(std::move(docs))}}));
  }
  return Value(Object{
      {"accounts", Value(std::move(accounts))},
      {"apps", Value(std::move(apps))},
      {"seen_batches", Value(keys_array(seen_batch_ids_))},
      {"seen_obs", Value(keys_array(seen_obs_keys_))},
      {"pending", Value(std::move(pending))},
      {"token_counter", Value(static_cast<std::int64_t>(token_counter_))},
      {"job_counter", Value(static_cast<std::int64_t>(job_counter_))},
      {"total_batches", Value(static_cast<std::int64_t>(total_batches_))},
      {"total_observations",
       Value(static_cast<std::int64_t>(total_observations_))},
      {"duplicate_batches",
       Value(static_cast<std::int64_t>(duplicate_batches_))},
      {"duplicate_observations",
       Value(static_cast<std::int64_t>(duplicate_observations_))},
      {"ingest_retries", Value(static_cast<std::int64_t>(ingest_retries_))},
      {"pending_counter", Value(static_cast<std::int64_t>(pending_counter_))}});
}

void GoFlowServer::restore_snapshot(const Value& state) {
  const Value* accounts = state.find("accounts");
  if (accounts != nullptr) {
    for (const Value& a : accounts->as_array()) {
      std::string token = a.get_string("token");
      tokens_[token] = Account{a.get_string("app"), a.get_string("user"),
                               static_cast<Role>(a.get_int("role")), token};
    }
  }
  const Value* apps = state.find("apps");
  if (apps != nullptr) {
    for (const Value& a : apps->as_array()) {
      AppState& s = apps_[a.get_string("app")];
      const Value* pf = a.find("pf");
      if (pf != nullptr)
        for (const Value& f : pf->as_array())
          s.private_fields.push_back(f.as_string());
      AppAnalytics& an = s.analytics;
      an.clients_logged_in = static_cast<std::uint64_t>(a.get_int("cli"));
      an.batches_ingested = static_cast<std::uint64_t>(a.get_int("bat"));
      an.observations_stored = static_cast<std::uint64_t>(a.get_int("obs"));
      an.observations_localized = static_cast<std::uint64_t>(a.get_int("loc"));
      an.subscriptions = static_cast<std::uint64_t>(a.get_int("sub"));
      const Value* ds = a.find("ds");
      if (ds != nullptr)
        an.delay_stats = RunningStats::from_raw(
            static_cast<std::size_t>(ds->get_int("n")), ds->get_double("mean"),
            ds->get_double("m2"), ds->get_double("min"), ds->get_double("max"));
    }
  }
  // Re-inserting in eviction order rebuilds the exact FIFO queue.
  const Value* seen_batches = state.find("seen_batches");
  if (seen_batches != nullptr)
    for (const Value& k : seen_batches->as_array())
      seen_batch_ids_.insert(k.as_string());
  const Value* seen_obs = state.find("seen_obs");
  if (seen_obs != nullptr)
    for (const Value& k : seen_obs->as_array())
      seen_obs_keys_.insert(k.as_string());
  const Value* pending = state.find("pending");
  if (pending != nullptr) {
    for (const Value& p : pending->as_array()) {
      PendingBatch batch;
      batch.collection = p.get_string("c");
      batch.app = p.get_string("app");
      batch.published_at = p.get_int("at");
      batch.next = static_cast<std::size_t>(p.get_int("next"));
      const Value* docs = p.find("docs");
      if (docs != nullptr)
        for (const Value& d : docs->as_array()) {
          batch.delays.push_back(d.get_int("delay_ms", 0));
          batch.docs.push_back(d);
        }
      pending_batches_.emplace(static_cast<std::uint64_t>(p.get_int("id")),
                               std::move(batch));
    }
  }
  token_counter_ = static_cast<std::uint64_t>(state.get_int("token_counter"));
  job_counter_ = static_cast<std::uint64_t>(state.get_int("job_counter"));
  total_batches_ = static_cast<std::uint64_t>(state.get_int("total_batches"));
  total_observations_ =
      static_cast<std::uint64_t>(state.get_int("total_observations"));
  duplicate_batches_ =
      static_cast<std::uint64_t>(state.get_int("duplicate_batches"));
  duplicate_observations_ =
      static_cast<std::uint64_t>(state.get_int("duplicate_observations"));
  ingest_retries_ = static_cast<std::uint64_t>(state.get_int("ingest_retries"));
  pending_counter_ =
      static_cast<std::uint64_t>(state.get_int("pending_counter"));
}

void GoFlowServer::apply_journal_record(const Value& record) {
  const std::string op = record.get_string("op");
  if (op == "srv.app") {
    std::string app = record.get_string("app");
    std::string token = record.get_string("token");
    AppState& s = apps_[app];
    s.private_fields.clear();
    const Value* pf = record.find("pf");
    if (pf != nullptr)
      for (const Value& f : pf->as_array())
        s.private_fields.push_back(f.as_string());
    tokens_[token] = Account{app, "app-admin", Role::kAdmin, token};
    token_counter_ = std::max(token_counter_, token_suffix(token));
  } else if (op == "srv.acct") {
    std::string token = record.get_string("token");
    tokens_[token] =
        Account{record.get_string("app"), record.get_string("user"),
                static_cast<Role>(record.get_int("role")), token};
    token_counter_ = std::max(token_counter_, token_suffix(token));
  } else if (op == "srv.acct_rm") {
    std::string app = record.get_string("app");
    std::string user = record.get_string("user");
    for (auto it = tokens_.begin(); it != tokens_.end(); ++it) {
      if (it->second.app == app && it->second.user == user) {
        tokens_.erase(it);
        break;
      }
    }
  } else if (op == "srv.login") {
    ++apps_[record.get_string("app")].analytics.clients_logged_in;
  } else if (op == "srv.sub") {
    ++apps_[record.get_string("app")].analytics.subscriptions;
  } else if (op == "srv.job") {
    job_counter_ =
        std::max(job_counter_, static_cast<std::uint64_t>(record.get_int("n")));
  } else if (op == "srv.dupb") {
    ++duplicate_batches_;
  } else if (op == "srv.batch") {
    auto id = static_cast<std::uint64_t>(record.get_int("id"));
    std::string bid = record.get_string("bid");
    if (!bid.empty()) seen_batch_ids_.insert(bid);
    PendingBatch batch;
    batch.collection = record.get_string("c");
    batch.app = record.get_string("app");
    batch.published_at = record.get_int("at");
    const Value* docs = record.find("docs");
    if (docs != nullptr)
      for (const Value& d : docs->as_array()) {
        batch.delays.push_back(d.get_int("delay_ms", 0));
        batch.docs.push_back(d);
      }
    pending_counter_ = std::max(pending_counter_, id);
    auto [it, inserted] = pending_batches_.emplace(id, std::move(batch));
    if (inserted && it->second.docs.empty())
      finish_batch(id, it->second, /*live=*/false);
  } else if (op == "srv.prog") {
    auto id = static_cast<std::uint64_t>(record.get_int("id"));
    auto it = pending_batches_.find(id);
    if (it != pending_batches_.end() &&
        it->second.next < it->second.docs.size())
      account_stored_doc(id, it->second, record.get_bool("dup"),
                         /*live=*/false);
  }
  // Unknown srv.* ops are skipped: a newer log replaying through older
  // code degrades to the records it understands.
}

// --- Data API ------------------------------------------------------------------

docstore::Query GoFlowServer::build_query(
    const ObservationFilter& filter) const {
  using docstore::Query;
  std::vector<Query> clauses;
  clauses.push_back(Query::eq("app", Value(filter.app)));
  if (filter.user.has_value())
    clauses.push_back(Query::eq("user", Value(*filter.user)));
  if (filter.model.has_value())
    clauses.push_back(Query::eq("model", Value(*filter.model)));
  if (filter.mode.has_value())
    clauses.push_back(Query::eq("mode", Value(*filter.mode)));
  if (filter.provider.has_value())
    clauses.push_back(Query::eq("location.provider", Value(*filter.provider)));
  if (filter.from.has_value())
    clauses.push_back(Query::gte("captured_at", Value(*filter.from)));
  if (filter.until.has_value())
    clauses.push_back(Query::lt("captured_at", Value(*filter.until)));
  if (filter.localized_only)
    clauses.push_back(Query::exists("location"));
  if (filter.max_accuracy_m.has_value())
    clauses.push_back(
        Query::lte("location.accuracy", Value(*filter.max_accuracy_m)));
  return Query::and_(std::move(clauses));
}

Value GoFlowServer::strip_private_fields(const Value& doc,
                                         const AppId& owner_app) const {
  auto it = apps_.find(owner_app);
  if (it == apps_.end() || it->second.private_fields.empty()) return doc;
  Value out = doc;
  for (const std::string& field : it->second.private_fields)
    out.as_object().erase(field);
  return out;
}

Result<std::vector<Value>> GoFlowServer::query_observations(
    const std::string& auth_token, const ObservationFilter& filter) const {
  const Account* account = authenticate(auth_token);
  if (account == nullptr) return err(ErrorCode::kUnauthorized, "invalid token");
  docstore::FindOptions options;
  options.sort_by = "captured_at";
  options.limit = filter.limit;
  const docstore::Collection* collection =
      db_.find_collection(config_.observations_collection);
  if (collection == nullptr) return std::vector<Value>{};
  std::vector<Value> docs =
      collection->find(build_query(filter), options);
  // Open-data policy: foreign apps see shared fields only.
  if (account->app != filter.app) {
    for (Value& doc : docs) doc = strip_private_fields(doc, filter.app);
  }
  return docs;
}

Result<std::size_t> GoFlowServer::count_observations(
    const std::string& auth_token, const ObservationFilter& filter) const {
  if (authenticate(auth_token) == nullptr)
    return err(ErrorCode::kUnauthorized, "invalid token");
  const docstore::Collection* collection =
      db_.find_collection(config_.observations_collection);
  if (collection == nullptr) return std::size_t{0};
  return collection->count(build_query(filter));
}

Result<std::string> GoFlowServer::export_json(
    const std::string& auth_token, const ObservationFilter& filter) const {
  Result<std::vector<Value>> docs = query_observations(auth_token, filter);
  if (!docs.ok()) return docs.error();
  std::string out = "[";
  bool first = true;
  for (const Value& doc : docs.value()) {
    if (!first) out.push_back(',');
    first = false;
    out += doc.to_json();
  }
  out.push_back(']');
  return out;
}

Result<std::string> GoFlowServer::export_csv(
    const std::string& auth_token, const ObservationFilter& filter) const {
  Result<std::vector<Value>> docs = query_observations(auth_token, filter);
  if (!docs.ok()) return docs.error();
  std::string out =
      "user,model,captured_at,spl,mode,activity,provider,x,y,accuracy,delay_ms\n";
  auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char c : field) {
      if (c == '"') quoted += "\"\"";
      else quoted.push_back(c);
    }
    quoted.push_back('"');
    return quoted;
  };
  for (const Value& doc : docs.value()) {
    out += escape(doc.get_string("user")) + ',';
    out += escape(doc.get_string("model")) + ',';
    out += std::to_string(doc.get_int("captured_at")) + ',';
    out += format("%.3f", doc.get_double("spl")) + ',';
    out += doc.get_string("mode") + ',';
    out += doc.get_string("activity") + ',';
    const Value* location = doc.find("location");
    if (location != nullptr) {
      out += location->get_string("provider") + ',';
      out += format("%.1f", location->get_double("x")) + ',';
      out += format("%.1f", location->get_double("y")) + ',';
      out += format("%.1f", location->get_double("accuracy")) + ',';
    } else {
      out += ",,,,";
    }
    out += std::to_string(doc.get_int("delay_ms"));
    out.push_back('\n');
  }
  return out;
}

// --- Analytics -------------------------------------------------------------------

Result<AppAnalytics> GoFlowServer::analytics(const AppId& app) const {
  auto it = apps_.find(app);
  if (it == apps_.end())
    return err(ErrorCode::kNotFound, "app '" + app + "' not registered");
  return it->second.analytics;
}

// --- Background jobs ----------------------------------------------------------------

Result<JobId> GoFlowServer::submit_job(const std::string& auth_token,
                                       const AppId& app,
                                       const std::string& name, Job job,
                                       DurationMs delay) {
  Status s = require_role(auth_token, app, Role::kManager);
  if (!s.ok()) return s.error();
  JobId id = "job-" + std::to_string(++job_counter_);
  // Only the counter is durable: the callback is process-local and a job
  // in flight across a crash simply stays "scheduled" in the jobs
  // collection. The counter must survive or a recovered server would
  // reissue job ids and collide on _id.
  log_record(Value(Object{{"op", Value("srv.job")},
                          {"n", Value(static_cast<std::int64_t>(job_counter_))}}));
  Value doc(Object{{"_id", Value(id)},
                   {"name", Value(name)},
                   {"app", Value(app)},
                   {"status", Value("scheduled")}});
  db_.collection(config_.jobs_collection).insert(std::move(doc));
  sim_.after(delay, [this, id, job = std::move(job)] {
    Value result;
    std::string status = "done";
    try {
      result = job(db_);
    } catch (const std::exception& e) {
      status = "failed";
      result = Value(Object{{"error", Value(std::string(e.what()))}});
    }
    auto& jobs = db_.collection(config_.jobs_collection);
    auto doc = jobs.get(id);
    if (doc.has_value()) {
      doc->as_object().set("status", Value(status));
      doc->as_object().set("result", result);
      jobs.replace(id, std::move(*doc));
    }
  });
  return id;
}

Result<Value> GoFlowServer::job_info(const JobId& id) const {
  const docstore::Collection* jobs =
      db_.find_collection(config_.jobs_collection);
  if (jobs == nullptr) return err(ErrorCode::kNotFound, "job not found");
  auto doc = jobs->get(id);
  if (!doc.has_value()) return err(ErrorCode::kNotFound, "job not found");
  return *doc;
}

}  // namespace mps::core
