// The GoFlow crowd-sensing server (paper §3.1, Figure 2).
//
// Components mirrored from the paper:
//   - REST-flavoured API surface: every public method returns Result/
//     Status with REST-like error codes; authentication is token-based;
//   - account & access management: per-app accounts with admin/manager/
//     client roles;
//   - channel management: creates the RabbitMQ exchange/queue topology of
//     Figure 3 on behalf of clients (client exchange -> app exchange ->
//     GoFlow ingest queue; location exchange -> datatype exchange ->
//     client queues for subscriptions);
//   - data storage: observations and accounts persisted in the document
//     store (the MongoDB substitute), with indexes on the hot fields;
//   - crowd-sensed data management: filtered retrieval (time window,
//     provider, accuracy threshold, model, mode, user) with privacy
//     enforcement — an app's private fields are stripped when another
//     app reads shared data (GoFlow's open-data policy);
//   - crowd-sensing analytics: per-app operation statistics;
//   - background jobs: manager-submitted scripts executed against the
//     stored data at a scheduled virtual time.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/bounded_set.h"
#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "docstore/database.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timeseries.h"
#include "sim/simulation.h"

namespace mps::durable {
class Journal;
}  // namespace mps::durable

namespace mps::core {

/// Account roles, in increasing privilege order.
enum class Role { kClient, kManager, kAdmin };

const char* role_name(Role r);

/// Server configuration.
struct ServerConfig {
  ExchangeId goflow_exchange = "goflow";
  QueueId ingest_queue = "goflow.ingest";
  /// Collection names in the document store.
  std::string observations_collection = "observations";
  std::string accounts_collection = "accounts";
  std::string jobs_collection = "jobs";

  // Retry pacing for transient docstore write failures during ingest
  // (exponential backoff with jitter, sim-clock-driven, unlimited
  // attempts — the server must never drop an accepted batch).
  DurationMs ingest_retry_base = seconds(5);
  DurationMs ingest_retry_max = minutes(5);
  double ingest_retry_jitter = 0.2;

  // Ingest dedup is bounded: only the most recent N keys are kept (FIFO
  // eviction). At-least-once redelivery happens within retry windows of
  // minutes, so old keys protect nothing — and an unbounded set would
  // grow forever in a long-running deployment.
  std::size_t batch_dedup_capacity = 1 << 20;
  std::size_t obs_dedup_capacity = 1 << 20;

  // Admission control (edge backpressure, DESIGN.md §13): when more than
  // this many accepted batches are waiting out transient-store backoff,
  // new publishes into the ingest queue are shed at the broker edge with
  // kUnavailable — the client's jittered backoff retries the same batch
  // id later, so nothing is lost or duplicated. 0 disables the bound
  // (the gate is then only installed when a fault plan arms
  // kAdmissionShed).
  std::size_t admission_max_pending = 0;
};

/// Registration result for an application.
struct AppRegistration {
  AppId app;
  std::string admin_token;
};

/// Channel ids handed to a client on login (Figure 3: E_i and Q_i).
struct ClientChannels {
  ExchangeId exchange;
  QueueId queue;
};

/// Filter for the crowd-sensed data API.
struct ObservationFilter {
  AppId app;
  std::optional<UserId> user;
  std::optional<DeviceModelId> model;
  std::optional<std::string> mode;      ///< sensing mode name
  std::optional<std::string> provider;  ///< location provider name
  std::optional<TimeMs> from;           ///< captured_at >= from
  std::optional<TimeMs> until;          ///< captured_at < until
  bool localized_only = false;
  /// Keep only observations with accuracy <= this many meters.
  std::optional<double> max_accuracy_m;
  std::size_t limit = 0;  ///< 0 = unlimited
};

/// Per-app analytics snapshot (the "crowd-sensing analytics" component).
struct AppAnalytics {
  std::uint64_t clients_logged_in = 0;
  std::uint64_t batches_ingested = 0;
  std::uint64_t observations_stored = 0;
  std::uint64_t observations_localized = 0;
  std::uint64_t subscriptions = 0;
  /// Transmission delay (capture -> server) statistics.
  RunningStats delay_stats;
};

/// Identifier of a submitted background job.
using JobId = std::string;

/// The server.
class GoFlowServer {
 public:
  /// Wires the server to its infrastructure and declares the GoFlow
  /// exchange/ingest queue (consuming ingest messages immediately).
  GoFlowServer(sim::Simulation& simulation, broker::Broker& broker,
               docstore::Database& database, ServerConfig config = {});
  ~GoFlowServer();

  GoFlowServer(const GoFlowServer&) = delete;
  GoFlowServer& operator=(const GoFlowServer&) = delete;

  // --- App & account management ----------------------------------------

  /// Registers an application; returns its admin token. `private_fields`
  /// are observation fields never exposed to other apps (open-data
  /// policy).
  Result<AppRegistration> register_app(
      const AppId& app, std::vector<std::string> private_fields = {});

  /// Creates an account under `app`; requires a token of equal or higher
  /// role (managers can add clients, admins can add anyone).
  Result<std::string> register_account(const std::string& auth_token,
                                       const AppId& app, const UserId& user,
                                       Role role);

  /// Removes an account; admin token required.
  Status remove_account(const std::string& auth_token, const AppId& app,
                        const UserId& user);

  /// Role carried by a token, if valid.
  std::optional<Role> token_role(const std::string& auth_token) const;

  // --- Channel management (Figure 3) ------------------------------------

  /// Client login: creates (idempotently) the client's exchange bound to
  /// the app exchange and the client's queue, and returns both ids.
  Result<ClientChannels> login_client(const std::string& auth_token,
                                      const AppId& app,
                                      const ClientId& client);

  /// Tears down the client's exchange/queue.
  Status logout_client(const std::string& auth_token, const AppId& app,
                       const ClientId& client);

  /// Registers a subscription: the client's queue will receive messages
  /// published for (location, datatype) — e.g. Feedback reports at
  /// FR75013. Creates the location and datatype exchanges on demand.
  Status subscribe(const std::string& auth_token, const AppId& app,
                   const ClientId& client, const std::string& location_id,
                   const std::string& datatype);

  /// Removes a subscription.
  Status unsubscribe(const std::string& auth_token, const AppId& app,
                     const ClientId& client, const std::string& location_id,
                     const std::string& datatype);

  /// Routing key a client must use to publish a datatype at a location
  /// ("FR75013.Feedback.<client>").
  static std::string publish_key(const std::string& location_id,
                                 const std::string& datatype,
                                 const ClientId& client);

  // --- Crowd-sensed data management --------------------------------------

  /// Retrieves observations matching `filter`. Requesting with a token
  /// from a different app strips the owner app's private fields.
  Result<std::vector<Value>> query_observations(
      const std::string& auth_token, const ObservationFilter& filter) const;

  /// Number of stored observations matching `filter`.
  Result<std::size_t> count_observations(const std::string& auth_token,
                                         const ObservationFilter& filter) const;

  /// Packages matching observations as a JSON array string (the "file /
  /// json stream" packaging of the paper).
  Result<std::string> export_json(const std::string& auth_token,
                                  const ObservationFilter& filter) const;

  /// Packages matching observations as CSV with a fixed column set
  /// (user, model, captured_at, spl, mode, activity, provider, x, y,
  /// accuracy, delay_ms); absent location fields are empty. The other
  /// "file" packaging option of §3.1.
  Result<std::string> export_csv(const std::string& auth_token,
                                 const ObservationFilter& filter) const;

  // --- Analytics ----------------------------------------------------------

  /// Analytics for one app; kNotFound when the app is not registered.
  Result<AppAnalytics> analytics(const AppId& app) const;

  // --- Background jobs -----------------------------------------------------

  /// A job runs against the database and returns an arbitrary result
  /// document.
  using Job = std::function<Value(docstore::Database&)>;

  /// Schedules `job` to run after `delay` in virtual time; requires a
  /// manager or admin token of `app`. Returns the job id.
  Result<JobId> submit_job(const std::string& auth_token, const AppId& app,
                           const std::string& name, Job job,
                           DurationMs delay = 0);

  /// Job status/result document: {name, app, status, result?}.
  Result<Value> job_info(const JobId& id) const;

  // --- Introspection --------------------------------------------------------

  const ServerConfig& config() const { return config_; }
  docstore::Database& database() { return db_; }
  std::uint64_t total_batches() const { return total_batches_; }
  std::uint64_t total_observations() const { return total_observations_; }
  /// Batches discarded because their batch_id was already ingested
  /// (at-least-once transport redelivery made idempotent).
  std::uint64_t duplicate_batches() const { return duplicate_batches_; }
  /// Individual observations skipped because their (client, span) key was
  /// already stored — catches a batch that got re-packaged under a new
  /// batch_id after a crash interrupted its retry cycle.
  std::uint64_t duplicate_observations() const {
    return duplicate_observations_;
  }
  /// Backoff retries taken by the ingest path on transient store errors.
  std::uint64_t ingest_retries() const { return ingest_retries_; }
  /// Publishes shed / admitted by the ingest admission gate.
  std::uint64_t admission_sheds() const { return admission_sheds_; }
  std::uint64_t admission_accepted() const { return admission_accepted_; }
  /// Dedup keys evicted to stay within the configured capacity bounds.
  std::uint64_t dedup_evictions() const {
    return seen_batch_ids_.evictions() + seen_obs_keys_.evictions();
  }
  /// Batch-id dedup set (bounded, insertion-ordered).
  const BoundedKeySet& seen_batch_ids() const { return seen_batch_ids_; }
  /// Per-observation dedup set (bounded, insertion-ordered).
  const BoundedKeySet& seen_obs_keys() const { return seen_obs_keys_; }
  /// Accepted batches still waiting out a transient-store backoff.
  std::size_t pending_ingest_batches() const { return pending_batches_.size(); }
  /// Span ids inside pending (accepted, not yet fully stored) batches —
  /// the invariant harness counts these as in-server, not lost.
  std::vector<std::uint64_t> pending_ingest_span_ids() const;

  // --- Observability ----------------------------------------------------

  /// Mirrors ingest activity into "server.*" registry metrics
  /// (batches_ingested, observations_stored, duplicate_batches counters
  /// and the server.ingest_delay_ms histogram). The registry is also what
  /// the REST API serves at GET /metrics. Pass nullptr to detach.
  void set_metrics(obs::Registry* registry);

  /// The registry attached via set_metrics (nullptr when detached).
  obs::Registry* metrics() const { return metrics_registry_; }

  /// Attaches a windowed time-series over the metrics registry; the REST
  /// API serves it at GET /metrics/series. The server does not drive
  /// sampling — wire TimeSeries::sample into the sim metrics hook (or a
  /// wall-clock timer). Pass nullptr to detach.
  void set_timeseries(obs::TimeSeries* series) { timeseries_ = series; }

  /// The series attached via set_timeseries (nullptr when detached).
  obs::TimeSeries* timeseries() const { return timeseries_; }

  /// Arms the ingest admission fault (FaultSite::kAdmissionShed): random
  /// sheds at the broker edge on top of any admission_max_pending bound.
  /// Pass nullptr to disarm. Installs/removes the broker admission gate
  /// as needed.
  void arm_faults(fault::FaultPlan* plan);

  /// Attaches a span tracker: ingested observations carrying a "span" id
  /// get kRouted (broker publish time) and kPersisted (storage time)
  /// stamps, duplicate batches are attributed kRejectedByServer, and a
  /// broker drop hook attributes per-observation broker drops (TTL
  /// expiry, queue overflow, unroutable). Pass nullptr to detach.
  void set_tracer(obs::SpanTracker* tracer);

  // --- Durability (DESIGN.md §11) ---------------------------------------

  /// Attaches a journal: registrations, accepted batches and per-document
  /// ingest progress log "srv.*" records before applying, so a recovered
  /// server resumes with identical dedup state and pending work. The
  /// document writes themselves are journaled by the attached docstore —
  /// srv.* records only carry the server's own bookkeeping.
  void attach_journal(durable::Journal* journal);

  /// Full server state as one Value: accounts, apps (with analytics),
  /// counters, both dedup sets (in eviction order) and pending batches.
  Value durable_snapshot() const;
  /// Rebuilds from durable_snapshot() output (crash() first).
  void restore_snapshot(const Value& state);
  /// Re-applies one "srv.*" journal record (no re-logging).
  void apply_journal_record(const Value& record);

  /// Models the server process dying: unsubscribes from the ingest queue
  /// and empties all volatile state in place (the object survives —
  /// callers hold references across the crash). With no journal attached
  /// the in-flight pending batches are unrecoverable and their spans are
  /// attributed kLostInServerCrash; with a journal they will be rebuilt
  /// by recovery, so nothing is attributed here. Pending retry timers
  /// from the old incarnation are invalidated (epoch guard).
  void crash();

  /// Completes recovery after restore_snapshot + journal replay:
  /// re-subscribes to the ingest queue (consumer subscriptions are
  /// process-local and never journaled) and resumes every pending batch.
  void finish_recovery();

  /// True between crash() and finish_recovery().
  bool down() const { return down_; }

  // --- Shard rebalance (DESIGN.md §16) ----------------------------------

  /// Extracts every piece of per-client state owned by clients matching
  /// `pred` into one Value for adopt_migration() on another shard:
  /// stored observation documents (removed from this shard's store),
  /// pending ingest batches (descheduled here; their retry timers die
  /// against the empty pending map) and both dedup key sets in eviction
  /// order, so redirect + resend stays exactly-once on the target.
  /// Document moves use the recovery appliers (no journaling, no fault
  /// injection — moving acknowledged state must never fail), so the
  /// caller MUST snapshot both shards' lifecycles in the same sim event;
  /// until then a crash replays pre-move state.
  Value extract_migration(
      const std::function<bool(std::string_view client)>& pred);

  /// Installs extract_migration() output: dedup keys keep their eviction
  /// order, documents land via the recovery applier, and pending batches
  /// are re-accepted under fresh ids and resumed immediately.
  void adopt_migration(const Value& migration);

  /// Attributes every span still inside pending batches as lost at final
  /// shutdown (kLostInServerShutdown) — called by the destructor so
  /// check_invariants can close the books on a server that was simply
  /// destroyed with work in flight. Idempotent (first drop wins).
  void attribute_shutdown_drops();

 private:
  struct Account {
    AppId app;
    UserId user;
    Role role;
    std::string token;
  };
  struct AppState {
    std::vector<std::string> private_fields;
    AppAnalytics analytics;
  };

  /// A batch accepted from the broker whose documents are not all stored
  /// yet. Prepared documents are kept so a transient docstore failure can
  /// resume exactly where it stopped — never re-ingesting via the broker
  /// (which would double-count) and never dropping the tail. On the flat
  /// fast path (`flat` set, journal-less runs only) no documents are
  /// materialized: `next` indexes rows of the shared ObsBatch instead.
  struct PendingBatch {
    std::string collection;
    AppId app;  ///< empty for raw (non-observation) messages
    std::vector<Value> docs;
    std::vector<DurationMs> delays;  ///< parallel to docs (observation path)
    std::shared_ptr<const ingest::ObsBatch> flat;  ///< fast-path rows
    TimeMs published_at = 0;
    std::size_t next = 0;  ///< first doc (or flat row) not yet stored
    int attempts = 0;      ///< consecutive failures on docs[next]
  };

  void ingest(const broker::Message& message);
  /// Fast-path ingestion of a flat batch (journal-less runs): dedup over
  /// the span-id column, bulk column-wise inserts, no Value trees.
  void ingest_flat(const broker::Message& message);
  void store_batch(std::uint64_t id);
  void store_batch_flat(std::uint64_t id, PendingBatch& batch);
  /// The admission gate consulted by the broker before routing into the
  /// ingest queue.
  bool admit(TimeMs now);
  /// (Re)installs or removes the broker admission gate to match config
  /// and armed faults.
  void update_admission_gate();
  void on_broker_drop(const broker::Message& message,
                      broker::DropReason reason);
  /// Flight-records dedup-set evictions since the last check (the sets
  /// themselves have no clock or recorder access).
  void note_dedup_evictions();
  void subscribe_ingest();
  void log_record(Value record);
  void log_batch_accepted(std::uint64_t id, const std::string& batch_id,
                          const PendingBatch& batch);
  void attribute_pending_drops(obs::DropStage stage);
  /// Shared by store_batch (live, logs srv.prog) and replay: advances
  /// batch.next over docs[batch.next], updating dedup/counters/analytics.
  /// Returns true when that completed the batch (it is erased).
  bool account_stored_doc(std::uint64_t id, PendingBatch& batch, bool dup,
                          bool live);
  /// Column-wise mirror of account_stored_doc for flat batches (always
  /// live — the flat path never runs with a journal attached).
  /// `key_buf` is the caller's scratch buffer for the dedup key, reused
  /// across rows so the hot loop stays allocation-free.
  bool account_stored_flat(std::uint64_t id, PendingBatch& batch, bool dup,
                           std::string& key_buf);
  void finish_batch(std::uint64_t id, PendingBatch& batch, bool live);
  const Account* authenticate(const std::string& token) const;
  Status require_role(const std::string& token, const AppId& app,
                      Role minimum) const;
  static ExchangeId app_exchange(const AppId& app) { return "app." + app; }
  static ExchangeId client_exchange(const AppId& app, const ClientId& c) {
    return "app." + app + ".client." + c;
  }
  static QueueId client_queue(const AppId& app, const ClientId& c) {
    return "app." + app + ".queue." + c;
  }
  static ExchangeId location_exchange(const AppId& app,
                                      const std::string& location) {
    return "app." + app + ".loc." + location;
  }
  static ExchangeId datatype_exchange(const AppId& app,
                                      const std::string& location,
                                      const std::string& datatype) {
    return "app." + app + ".loc." + location + ".type." + datatype;
  }
  docstore::Query build_query(const ObservationFilter& filter) const;
  Value strip_private_fields(const Value& doc, const AppId& owner_app) const;

  sim::Simulation& sim_;
  broker::Broker& broker_;
  docstore::Database& db_;
  ServerConfig config_;
  std::map<std::string, Account> tokens_;
  std::map<AppId, AppState> apps_;
  broker::ConsumerTag ingest_tag_ = 0;
  std::uint64_t token_counter_ = 0;
  std::uint64_t job_counter_ = 0;
  std::uint64_t total_batches_ = 0;
  std::uint64_t total_observations_ = 0;
  std::uint64_t duplicate_batches_ = 0;
  std::uint64_t duplicate_observations_ = 0;
  std::uint64_t ingest_retries_ = 0;
  std::uint64_t admission_sheds_ = 0;
  std::uint64_t admission_accepted_ = 0;
  fault::FaultPoint admission_fault_;
  /// Recently ingested batch ids (bounded FIFO; capacity from config_).
  BoundedKeySet seen_batch_ids_{config_.batch_dedup_capacity};
  /// Per-observation dedup keys ("client#span") of stored observations.
  BoundedKeySet seen_obs_keys_{config_.obs_dedup_capacity};
  std::map<std::uint64_t, PendingBatch> pending_batches_;
  std::uint64_t pending_counter_ = 0;
  Rng ingest_retry_rng_{fnv1a64("goflow-server-ingest")};
  durable::Journal* journal_ = nullptr;
  bool down_ = false;
  /// Incarnation counter: scheduled ingest-retry timers capture it and
  /// no-op if the server crashed (and possibly recovered) since.
  std::uint64_t epoch_ = 0;

  /// Hoisted registry handles, null when no registry is attached.
  struct Metrics {
    obs::Counter* batches_ingested = nullptr;
    obs::Counter* observations_stored = nullptr;
    obs::Counter* duplicate_batches = nullptr;
    obs::Counter* duplicate_observations = nullptr;
    obs::Counter* ingest_retries = nullptr;
    obs::Counter* admission_shed = nullptr;
    obs::Counter* admission_accepted = nullptr;
    obs::LatencyHistogram* ingest_delay = nullptr;
  };
  Metrics metrics_;
  obs::Registry* metrics_registry_ = nullptr;
  obs::TimeSeries* timeseries_ = nullptr;
  std::uint64_t fr_dedup_evictions_seen_ = 0;
  obs::SpanTracker* tracer_ = nullptr;
};

}  // namespace mps::core
