#include "core/standard_jobs.h"

#include <array>

#include "common/stats.h"
#include "common/strings.h"

namespace mps::core {

namespace {
docstore::Query app_query(const AppId& app) {
  return docstore::Query::eq("app", Value(app));
}
}  // namespace

GoFlowServer::Job job_per_model_counts(const AppId& app) {
  return [app](docstore::Database& db) {
    Object out;
    for (const auto& [model, count] :
         db.collection("observations").group_count("model", app_query(app)))
      out.set(model.as_string(), Value(static_cast<std::int64_t>(count)));
    return Value(std::move(out));
  };
}

GoFlowServer::Job job_hourly_histogram(const AppId& app) {
  return [app](docstore::Database& db) {
    std::array<std::int64_t, 24> hours{};
    docstore::Query query = app_query(app);
    db.collection("observations").for_each([&](const Value& doc) {
      if (!query.matches(doc)) return;
      ++hours[static_cast<std::size_t>(hour_of_day(doc.get_int("captured_at")))];
    });
    Object out;
    for (int h = 0; h < 24; ++h)
      out.set(format("%02d", h), Value(hours[static_cast<std::size_t>(h)]));
    return Value(std::move(out));
  };
}

GoFlowServer::Job job_provider_shares(const AppId& app) {
  return [app](docstore::Database& db) {
    std::int64_t total = 0, localized = 0, gps = 0, network = 0, fused = 0;
    docstore::Query query = app_query(app);
    db.collection("observations").for_each([&](const Value& doc) {
      if (!query.matches(doc)) return;
      ++total;
      const Value* provider = doc.find_path("location.provider");
      if (provider == nullptr) return;
      ++localized;
      const std::string& name = provider->as_string();
      if (name == "gps") ++gps;
      else if (name == "network") ++network;
      else if (name == "fused") ++fused;
    });
    double denom = localized > 0 ? static_cast<double>(localized) : 1.0;
    return Value(Object{{"total", Value(total)},
                        {"localized", Value(localized)},
                        {"gps", Value(gps / denom)},
                        {"network", Value(network / denom)},
                        {"fused", Value(fused / denom)}});
  };
}

GoFlowServer::Job job_delay_stats(const AppId& app) {
  return [app](docstore::Database& db) {
    RunningStats stats;
    std::int64_t over_2h = 0;
    docstore::Query query = app_query(app);
    db.collection("observations").for_each([&](const Value& doc) {
      if (!query.matches(doc)) return;
      double delay = doc.get_double("delay_ms",
                                    static_cast<double>(doc.get_int("delay_ms")));
      stats.add(delay);
      if (delay > static_cast<double>(hours(2))) ++over_2h;
    });
    return Value(Object{
        {"count", Value(static_cast<std::int64_t>(stats.count()))},
        {"mean_ms", Value(stats.mean())},
        {"max_ms", Value(stats.empty() ? 0.0 : stats.max())},
        {"over_2h_share",
         Value(stats.count() > 0
                   ? static_cast<double>(over_2h) /
                         static_cast<double>(stats.count())
                   : 0.0)}});
  };
}

GoFlowServer::Job job_purge_before(const AppId& app, TimeMs cutoff) {
  return [app, cutoff](docstore::Database& db) {
    std::size_t removed = db.collection("observations")
                              .remove_many(docstore::Query::and_(
                                  {app_query(app),
                                   docstore::Query::lt("captured_at",
                                                       Value(cutoff))}));
    return Value(Object{{"removed", Value(static_cast<std::int64_t>(removed))}});
  };
}

}  // namespace mps::core
