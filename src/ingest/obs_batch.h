// Flat, arena-backed observation batches — the allocation-free ingest
// fast path (DESIGN.md §13).
//
// The document ingest path materializes a heap-heavy Value tree per
// observation at every hop: the client serializes the batch, the broker
// copies the payload, the server rehydrates and re-copies each document,
// and the docstore copies once more on insert. An ObsBatch serializes the
// batch exactly once, as struct-of-arrays columns inside one Arena, and
// every downstream stage consumes it by view through a shared_ptr:
//
//   header   app / client / batch_id / sent_at     (interned, batch-level)
//   columns  span_id  captured_at  spl  mode  activity
//            has_location  provider  x  y  accuracy
//            user_idx  model_idx  -> interned-string table
//
// Batches come from a BatchPool, which recycles each batch's Arena when
// the last shared_ptr drops (epoch reset, blocks retained) — steady-state
// uploads allocate nothing but the shared_ptr control block.
//
// The document path stays wired as the oracle: to_batch_document() and
// storage_document() reproduce the exact bytes the Value path produces,
// which the flat-vs-document equivalence suite pins.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "common/value.h"
#include "obs/metrics.h"
#include "phone/observation.h"

namespace mps::ingest {

/// One client upload as flat columns. Immutable after construction;
/// owns the Arena every column and interned string lives in.
class ObsBatch {
 public:
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  std::string_view app() const { return app_; }
  std::string_view client() const { return client_; }
  std::string_view batch_id() const { return batch_id_; }
  TimeMs sent_at() const { return sent_at_; }

  // --- Column views ------------------------------------------------------

  std::uint64_t span_id(std::size_t i) const { return span_ids_[i]; }
  TimeMs captured_at(std::size_t i) const { return captured_at_[i]; }
  double spl_db(std::size_t i) const { return spl_[i]; }
  phone::SensingMode mode(std::size_t i) const {
    return static_cast<phone::SensingMode>(mode_[i]);
  }
  phone::Activity activity(std::size_t i) const {
    return static_cast<phone::Activity>(activity_[i]);
  }
  bool has_location(std::size_t i) const { return has_location_[i] != 0; }
  phone::LocationProvider provider(std::size_t i) const {
    return static_cast<phone::LocationProvider>(provider_[i]);
  }
  double x_m(std::size_t i) const { return x_[i]; }
  double y_m(std::size_t i) const { return y_[i]; }
  double accuracy_m(std::size_t i) const { return accuracy_[i]; }
  std::string_view user(std::size_t i) const {
    return strings_[user_idx_[i]];
  }
  std::string_view model(std::size_t i) const {
    return strings_[model_idx_[i]];
  }
  /// Index into the interned-string table (strings()); rows sharing a
  /// model share the index, so per-model work can be memoized per entry.
  std::uint32_t model_index(std::size_t i) const { return model_idx_[i]; }
  /// The interned-string table (users and models, deduplicated).
  const std::string_view* strings() const { return strings_; }
  std::size_t string_count() const { return string_count_; }

  // --- Oracle materialization -------------------------------------------

  /// Rehydrates one row as a phone::Observation (tests, assim fallback).
  phone::Observation observation_at(std::size_t i) const;

  /// The full wire document, byte-identical to the Value the client's
  /// document path publishes ({app, client, batch_id, sent_at,
  /// observations:[...]}).
  Value to_batch_document() const;

  /// The document the server's ingest path would hand the docstore for
  /// row `i`: the observation document plus app/client/received_at/
  /// delay_ms in the exact order the oracle appends them.
  Value storage_document(std::size_t i, TimeMs received_at) const;

  /// The indexable value at `path` for row `i` without materializing the
  /// document; false when the path is not a flat column (caller falls
  /// back to the materialized document).
  bool index_value(std::string_view path, std::size_t i, TimeMs received_at,
                   Value& out) const;

  /// Bytes the batch occupies in its arena.
  std::size_t arena_bytes() const { return arena_->bytes_allocated(); }

 private:
  friend class BatchPool;
  ObsBatch() = default;

  /// Row `i`'s observation document (the to_document() byte layout).
  Object observation_object(std::size_t i) const;

  std::unique_ptr<Arena> arena_;
  std::string_view app_, client_, batch_id_;
  TimeMs sent_at_ = 0;
  std::size_t count_ = 0;
  std::uint64_t* span_ids_ = nullptr;
  std::int64_t* captured_at_ = nullptr;
  double* spl_ = nullptr;
  std::uint8_t* mode_ = nullptr;
  std::uint8_t* activity_ = nullptr;
  std::uint8_t* has_location_ = nullptr;
  std::uint8_t* provider_ = nullptr;
  double* x_ = nullptr;
  double* y_ = nullptr;
  double* accuracy_ = nullptr;
  std::uint32_t* user_idx_ = nullptr;
  std::uint32_t* model_idx_ = nullptr;
  std::string_view* strings_ = nullptr;
  std::size_t string_count_ = 0;
};

/// Pool statistics (also mirrored into the registry via set_metrics).
struct BatchPoolStats {
  std::uint64_t batches = 0;        ///< batches built
  std::uint64_t arenas_created = 0; ///< arenas newly allocated
  std::uint64_t arenas_reused = 0;  ///< arenas recycled via epoch reset
};

/// Builds ObsBatches and recycles their arenas. When the last shared_ptr
/// to a batch drops, its arena is epoch-reset and returned to the pool
/// (or freed if the pool died first) — the allocation-free steady state.
/// Single-threaded, like everything inside the simulation.
class BatchPool {
 public:
  BatchPool() : inner_(std::make_shared<Inner>()) {}

  /// Serializes `observations` into one flat batch. `batch_id` is the
  /// idempotency key the server dedups on (same convention as the
  /// document path: "<client>#<counter>").
  std::shared_ptr<const ObsBatch> make_batch(
      std::string_view app, std::string_view client, std::string_view batch_id,
      TimeMs sent_at, const std::vector<phone::Observation>& observations);

  const BatchPoolStats& stats() const { return inner_->stats; }
  std::size_t free_arenas() const { return inner_->free.size(); }
  /// Largest arena epoch ever built by this pool's batches.
  std::size_t arena_high_water() const { return inner_->high_water; }

  /// Mirrors pool activity into "ingest.*" registry metrics
  /// (flat_batches, arena_created, arena_reused counters and the
  /// ingest.arena_high_water_bytes gauge). Pass nullptr to detach.
  void set_metrics(obs::Registry* registry);

 private:
  struct Inner {
    std::vector<std::unique_ptr<Arena>> free;
    BatchPoolStats stats;
    std::size_t high_water = 0;
    obs::Counter* flat_batches = nullptr;
    obs::Counter* arena_created = nullptr;
    obs::Counter* arena_reused = nullptr;
    obs::Gauge* high_water_gauge = nullptr;
  };
  std::shared_ptr<Inner> inner_;
};

}  // namespace mps::ingest
