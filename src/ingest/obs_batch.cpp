#include "ingest/obs_batch.h"

namespace mps::ingest {

namespace {

Value value_from_view(std::string_view s) { return Value(std::string(s)); }

}  // namespace

phone::Observation ObsBatch::observation_at(std::size_t i) const {
  phone::Observation obs;
  obs.user = std::string(user(i));
  obs.model = std::string(model(i));
  obs.captured_at = captured_at_[i];
  obs.spl_db = spl_[i];
  obs.mode = mode(i);
  obs.activity = activity(i);
  if (has_location(i)) {
    phone::LocationFix fix;
    fix.provider = provider(i);
    fix.x_m = x_[i];
    fix.y_m = y_[i];
    fix.accuracy_m = accuracy_[i];
    obs.location = fix;
  }
  obs.span_id = span_ids_[i];
  return obs;
}

Object ObsBatch::observation_object(std::size_t i) const {
  // Field order must match phone::Observation::to_document() exactly —
  // the equivalence suite compares serialized bytes.
  Object doc{{"user", value_from_view(user(i))},
             {"model", value_from_view(model(i))},
             {"captured_at", Value(captured_at_[i])},
             {"spl", Value(spl_[i])},
             {"mode", Value(phone::sensing_mode_name(mode(i)))},
             {"activity", Value(phone::activity_name(activity(i)))}};
  if (has_location(i)) {
    doc.set("location",
            Value(Object{
                {"provider", Value(phone::location_provider_name(provider(i)))},
                {"x", Value(x_[i])},
                {"y", Value(y_[i])},
                {"accuracy", Value(accuracy_[i])}}));
  }
  if (span_ids_[i] != 0)
    doc.set("span", Value(static_cast<std::int64_t>(span_ids_[i])));
  return doc;
}

Value ObsBatch::to_batch_document() const {
  Array observations;
  observations.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i)
    observations.push_back(Value(observation_object(i)));
  return Value(Object{{"app", value_from_view(app_)},
                      {"client", value_from_view(client_)},
                      {"batch_id", value_from_view(batch_id_)},
                      {"sent_at", Value(sent_at_)},
                      {"observations", Value(std::move(observations))}});
}

Value ObsBatch::storage_document(std::size_t i, TimeMs received_at) const {
  Object doc = observation_object(i);
  doc.set("app", value_from_view(app_));
  doc.set("client", value_from_view(client_));
  doc.set("received_at", Value(received_at));
  doc.set("delay_ms", Value(received_at - captured_at_[i]));
  return Value(std::move(doc));
}

bool ObsBatch::index_value(std::string_view path, std::size_t i,
                           TimeMs received_at, Value& out) const {
  if (path == "user") {
    out = value_from_view(user(i));
  } else if (path == "model") {
    out = value_from_view(model(i));
  } else if (path == "captured_at") {
    out = Value(captured_at_[i]);
  } else if (path == "spl") {
    out = Value(spl_[i]);
  } else if (path == "mode") {
    out = Value(phone::sensing_mode_name(mode(i)));
  } else if (path == "activity") {
    out = Value(phone::activity_name(activity(i)));
  } else if (path == "app") {
    out = value_from_view(app_);
  } else if (path == "client") {
    out = value_from_view(client_);
  } else if (path == "received_at") {
    out = Value(received_at);
  } else if (path == "delay_ms") {
    out = Value(received_at - captured_at_[i]);
  } else if (path == "span") {
    if (span_ids_[i] != 0) out = Value(static_cast<std::int64_t>(span_ids_[i]));
  } else if (path == "location.provider") {
    if (has_location(i))
      out = Value(phone::location_provider_name(provider(i)));
  } else if (path == "location.x") {
    if (has_location(i)) out = Value(x_[i]);
  } else if (path == "location.y") {
    if (has_location(i)) out = Value(y_[i]);
  } else if (path == "location.accuracy") {
    if (has_location(i)) out = Value(accuracy_[i]);
  } else {
    return false;  // not a flat column ("location", "_id", app-specific)
  }
  return true;
}

std::shared_ptr<const ObsBatch> BatchPool::make_batch(
    std::string_view app, std::string_view client, std::string_view batch_id,
    TimeMs sent_at, const std::vector<phone::Observation>& observations) {
  std::shared_ptr<Inner> inner = inner_;
  std::unique_ptr<Arena> arena;
  if (!inner->free.empty()) {
    arena = std::move(inner->free.back());
    inner->free.pop_back();
    ++inner->stats.arenas_reused;
    if (inner->arena_reused != nullptr) inner->arena_reused->inc();
  } else {
    arena = std::make_unique<Arena>();
    ++inner->stats.arenas_created;
    if (inner->arena_created != nullptr) inner->arena_created->inc();
  }

  auto* batch = new ObsBatch();
  Arena& a = *arena;
  const std::size_t n = observations.size();
  batch->app_ = a.copy_string(app);
  batch->client_ = a.copy_string(client);
  batch->batch_id_ = a.copy_string(batch_id);
  batch->sent_at_ = sent_at;
  batch->count_ = n;
  batch->span_ids_ = a.alloc_array<std::uint64_t>(n);
  batch->captured_at_ = a.alloc_array<std::int64_t>(n);
  batch->spl_ = a.alloc_array<double>(n);
  batch->mode_ = a.alloc_array<std::uint8_t>(n);
  batch->activity_ = a.alloc_array<std::uint8_t>(n);
  batch->has_location_ = a.alloc_array<std::uint8_t>(n);
  batch->provider_ = a.alloc_array<std::uint8_t>(n);
  batch->x_ = a.alloc_array<double>(n);
  batch->y_ = a.alloc_array<double>(n);
  batch->accuracy_ = a.alloc_array<double>(n);
  batch->user_idx_ = a.alloc_array<std::uint32_t>(n);
  batch->model_idx_ = a.alloc_array<std::uint32_t>(n);
  // Worst case every row brings a distinct user and model.
  batch->strings_ = a.alloc_array<std::string_view>(2 * n);

  auto intern = [&](std::string_view s) -> std::uint32_t {
    // The table is tiny (one user, a handful of models per client), so a
    // linear probe beats any hashing and allocates nothing.
    for (std::size_t k = 0; k < batch->string_count_; ++k)
      if (batch->strings_[k] == s) return static_cast<std::uint32_t>(k);
    batch->strings_[batch->string_count_] = a.copy_string(s);
    return static_cast<std::uint32_t>(batch->string_count_++);
  };

  for (std::size_t i = 0; i < n; ++i) {
    const phone::Observation& obs = observations[i];
    batch->span_ids_[i] = obs.span_id;
    batch->captured_at_[i] = obs.captured_at;
    batch->spl_[i] = obs.spl_db;
    batch->mode_[i] = static_cast<std::uint8_t>(obs.mode);
    batch->activity_[i] = static_cast<std::uint8_t>(obs.activity);
    if (obs.location.has_value()) {
      batch->has_location_[i] = 1;
      batch->provider_[i] = static_cast<std::uint8_t>(obs.location->provider);
      batch->x_[i] = obs.location->x_m;
      batch->y_[i] = obs.location->y_m;
      batch->accuracy_[i] = obs.location->accuracy_m;
    }
    batch->user_idx_[i] = intern(obs.user);
    batch->model_idx_[i] = intern(obs.model);
  }

  if (a.bytes_allocated() > inner->high_water) {
    inner->high_water = a.bytes_allocated();
    if (inner->high_water_gauge != nullptr)
      inner->high_water_gauge->set(static_cast<double>(inner->high_water));
  }
  ++inner->stats.batches;
  if (inner->flat_batches != nullptr) inner->flat_batches->inc();

  batch->arena_ = std::move(arena);
  // The deleter recycles the arena into the pool (epoch reset, blocks
  // retained); if the pool died first the arena simply dies with it.
  std::weak_ptr<Inner> weak = inner;
  return std::shared_ptr<const ObsBatch>(batch, [weak](const ObsBatch* b) {
    auto* mutable_batch = const_cast<ObsBatch*>(b);
    if (std::shared_ptr<Inner> pool = weak.lock()) {
      mutable_batch->arena_->reset();
      pool->free.push_back(std::move(mutable_batch->arena_));
    }
    delete mutable_batch;
  });
}

void BatchPool::set_metrics(obs::Registry* registry) {
  Inner& inner = *inner_;
  if (registry == nullptr) {
    inner.flat_batches = nullptr;
    inner.arena_created = nullptr;
    inner.arena_reused = nullptr;
    inner.high_water_gauge = nullptr;
    return;
  }
  inner.flat_batches = &registry->counter("ingest.flat_batches");
  inner.arena_created = &registry->counter("ingest.arena_created");
  inner.arena_reused = &registry->counter("ingest.arena_reused");
  inner.high_water_gauge = &registry->gauge("ingest.arena_high_water_bytes");
  inner.high_water_gauge->set(static_cast<double>(inner.high_water));
}

}  // namespace mps::ingest
