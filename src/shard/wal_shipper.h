// WAL shipping: the replication pipe between a shard's primary and its
// follower (DESIGN.md §16).
//
// A WalShipper holds a shipping cursor (durable::Wal cursor API) on the
// primary's journal WAL and, driven by the WAL's append listener, drains
// every new record into kWalShip wire frames which it applies to the
// follower's StorageEnv — appending the records byte-identically
// (preserved LSNs, same segment framing and naming discipline) so the
// follower's log is a valid Wal the promoted Journal can recover from.
// The frames genuinely round-trip through the wire codec (encode then
// decode) even in-process, so the shipped bytes are exactly what a
// socketed follower would apply.
//
// Snapshots are mirrored separately: the primary's "snap-*" files are
// copied to the follower on demand (after each lifecycle snapshot),
// because state created before the journal attached only exists in the
// snapshot — a follower with only the WAL tail would recover an empty
// base. Failover = durable::Journal recovery over the follower env:
// newest mirrored snapshot + shipped tail replay.
//
// The cursor pins unread segments against truncate_through (the
// ship-while-snapshotting race fixed in the Wal), so shipping never
// observes a gap. After a primary recovery rebuilds its Wal, re-attach:
// the shipper remembers the last LSN it applied and re-opens its cursor
// there.
#pragma once

#include <cstdint>
#include <string>

#include "durable/storage.h"
#include "durable/wal.h"
#include "obs/metrics.h"

namespace mps::shard {

struct ShipperStats {
  std::uint64_t records_shipped = 0;
  std::uint64_t frames = 0;         ///< kWalShip frames encoded+decoded
  std::uint64_t bytes_shipped = 0;  ///< wire frame bytes
  std::uint64_t snapshots_mirrored = 0;
  std::uint64_t follower_segments = 0;
};

class WalShipper {
 public:
  /// `shard` tags the wire frames; `wal_config` supplies the follower's
  /// segment discipline (prefix, rotation threshold) — use the same
  /// config the primary journal uses so a promoted follower's log looks
  /// exactly like a primary's.
  WalShipper(std::uint32_t shard, durable::WalConfig wal_config,
             obs::Registry* metrics = nullptr);

  WalShipper(const WalShipper&) = delete;
  WalShipper& operator=(const WalShipper&) = delete;

  /// Points the shipper at (a possibly non-empty) follower env and scans
  /// it for existing shipped segments so appends continue in place.
  void set_follower(durable::StorageEnv* env);

  /// Attaches to a (fresh) primary WAL: opens a cursor after the last
  /// LSN already applied to the follower, registers the append listener
  /// and ships anything the cursor can already see. Call after every
  /// primary journal (re)construction — recovery rebuilds the Wal and
  /// cursors do not survive it.
  void attach(durable::Wal* wal);

  /// Closes the cursor and detaches the listener. MUST be called before
  /// the primary journal is torn down (crash/failover) — the shipper
  /// must never touch a dead Wal.
  void detach();

  /// Drains the cursor now (the append listener calls this; explicit
  /// calls are for tests and post-recovery catch-up).
  void ship();

  /// Copies the primary's snapshot files to the follower, removing
  /// follower snapshots the primary no longer has (pruning mirrors too).
  void mirror_snapshots(durable::StorageEnv& primary);

  std::uint64_t last_shipped_lsn() const { return last_shipped_lsn_; }
  bool attached() const { return wal_ != nullptr; }
  const ShipperStats& stats() const { return stats_; }

 private:
  void apply_record(std::uint64_t lsn, std::string_view payload);
  std::string segment_name(std::uint64_t first_lsn) const;

  std::uint32_t shard_;
  durable::WalConfig wal_config_;
  durable::StorageEnv* follower_ = nullptr;
  durable::Wal* wal_ = nullptr;
  std::uint64_t cursor_ = 0;
  std::uint64_t last_shipped_lsn_ = 0;
  /// Follower-side active segment (empty name = none yet).
  std::string cur_segment_;
  std::size_t cur_segment_size_ = 0;
  ShipperStats stats_;

  obs::Counter* records_metric_ = nullptr;
  obs::Counter* frames_metric_ = nullptr;
  obs::Counter* snapshots_metric_ = nullptr;
};

}  // namespace mps::shard
