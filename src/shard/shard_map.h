// Hash-slot shard map for the sharded serving plane (DESIGN.md §16).
//
// Ownership is decided by a stable client-id hash: every (app, client)
// pair maps to one of kHashSlots fixed slots via common::fnv1a64 — never
// std::hash, whose value is implementation-defined and would route the
// same client to different shards across processes or library versions.
// Slots, not clients, are the unit of placement: a rebalance moves one
// slot's worth of clients (dedup keys, stored documents, pending
// batches) between shards and flips a single table entry, so the route
// for every other client is untouched.
//
// The map is versioned: each move bumps a counter, which is what a
// redirect-aware edge compares to decide whether a cached route is
// stale. With shards == 1 every slot maps to shard 0 and the whole plane
// collapses to today's single server — the 1-shard byte-equivalence
// gate pins that.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace mps::shard {

/// Fixed slot count. Small enough to enumerate, large enough that a
/// rebalance granule is a few clients even for big fleets.
inline constexpr std::uint32_t kHashSlots = 256;

/// The stable placement hash: FNV-1a over "app\x1fclient" (the 0x1f
/// separator cannot appear in either id, so "ab"+"c" never collides
/// with "a"+"bc"). This exact function is pinned by golden-value tests
/// — changing it reshuffles every deployed fleet.
inline std::uint64_t stable_client_hash(std::string_view app,
                                        std::string_view client) {
  std::string key;
  key.reserve(app.size() + 1 + client.size());
  key.append(app);
  key.push_back('\x1f');
  key.append(client);
  return fnv1a64(key);
}

/// The slot an (app, client) pair lives in.
inline std::uint32_t slot_of(std::string_view app, std::string_view client) {
  return static_cast<std::uint32_t>(stable_client_hash(app, client) %
                                    kHashSlots);
}

/// Slot -> shard table with a version counter.
class ShardMap {
 public:
  explicit ShardMap(std::uint32_t shards) : shards_(shards) {
    if (shards == 0) throw std::invalid_argument("ShardMap: shards == 0");
    slots_.resize(kHashSlots);
    for (std::uint32_t s = 0; s < kHashSlots; ++s) slots_[s] = s % shards;
  }

  std::uint32_t shards() const { return shards_; }
  std::uint64_t version() const { return version_; }

  std::uint32_t shard_of_slot(std::uint32_t slot) const {
    return slots_.at(slot);
  }

  std::uint32_t shard_for(std::string_view app, std::string_view client) const {
    return slots_[slot_of(app, client)];
  }

  /// Moves one slot to `shard`; bumps the version. No-op (and no bump)
  /// when the slot already lives there.
  void move_slot(std::uint32_t slot, std::uint32_t shard) {
    if (shard >= shards_)
      throw std::invalid_argument("ShardMap::move_slot: no such shard");
    if (slots_.at(slot) == shard) return;
    slots_[slot] = shard;
    ++version_;
  }

  /// All slots currently owned by `shard`, ascending.
  std::vector<std::uint32_t> slots_of(std::uint32_t shard) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t s = 0; s < kHashSlots; ++s)
      if (slots_[s] == shard) out.push_back(s);
    return out;
  }

 private:
  std::uint32_t shards_;
  std::vector<std::uint32_t> slots_;
  std::uint64_t version_ = 0;
};

}  // namespace mps::shard
