#include "shard/fleet.h"

namespace mps::shard {

ShardNode::ShardNode(std::uint32_t index, sim::Simulation& sim,
                     const FleetConfig& config)
    : index_(index),
      server_(sim, broker_, db_, config.server),
      shipper_(index, config.journal.wal, config.metrics),
      lifecycle_(env_a_, sim, broker_, db_, server_, config.journal,
                 config.metrics) {
  if (config.metrics != nullptr)
    failovers_metric_ = &config.metrics->counter("shard.failovers");
  // The lifecycle constructor wrote the base snapshot; ship it and the
  // (empty) log so the follower is promotable from the first event on.
  shipper_.set_follower(&env_b_);
  shipper_.attach(&lifecycle_.journal()->wal());
  shipper_.mirror_snapshots(env_a_);
}

void ShardNode::kill() {
  if (down()) return;
  shipper_.detach();  // the journal (and its Wal) dies with the crash
  lifecycle_.crash();
}

void ShardNode::fail_over() {
  if (!down()) kill();
  durable::StorageEnv& promoted = follower_env();
  durable::StorageEnv& dead = primary_env();
  lifecycle_.failover_to(promoted);
  primary_is_a_ = !primary_is_a_;
  // The dead primary's disk is reformatted as the new follower; shipping
  // restarts from LSN zero against the promoted log's retained history
  // (recovery snapshotted, so that history is one snapshot + a short
  // tail, not the whole past).
  wipe(dead);
  shipper_.set_follower(&dead);
  shipper_.attach(&lifecycle_.journal()->wal());
  shipper_.mirror_snapshots(promoted);
  ++failovers_;
  if (failovers_metric_ != nullptr) failovers_metric_->inc();
}

void ShardNode::snapshot() {
  if (down()) return;
  lifecycle_.snapshot();
  shipper_.mirror_snapshots(primary_env());
}

void ShardNode::wipe(durable::StorageEnv& env) {
  for (const std::string& name : env.list()) env.remove(name);
}

ShardFleet::ShardFleet(sim::Simulation& sim, FleetConfig config)
    : config_(std::move(config)), map_(config_.shards) {
  if (config_.metrics != nullptr)
    rebalances_metric_ = &config_.metrics->counter("shard.rebalances");
  nodes_.reserve(config_.shards);
  for (std::uint32_t i = 0; i < config_.shards; ++i)
    nodes_.push_back(std::make_unique<ShardNode>(i, sim, config_));
}

bool ShardFleet::rebalance(std::uint32_t slot, std::uint32_t to_shard) {
  std::uint32_t from = map_.shard_of_slot(slot);
  if (from == to_shard) return true;
  ShardNode& src = *nodes_.at(from);
  ShardNode& dst = *nodes_.at(to_shard);
  if (src.down() || dst.down()) {
    ++rebalances_skipped_;
    return false;
  }
  const AppId& app = config_.app;
  Value migration = src.server().extract_migration(
      [&](std::string_view client) { return slot_of(app, client) == slot; });
  dst.server().adopt_migration(migration);
  map_.move_slot(slot, to_shard);
  // Same-event durability: extract/adopt used the recovery appliers
  // (never journaled), so the move only becomes crash-safe with these
  // two snapshots — and rebalance() is one atomic sim event, so no
  // traffic can slip in between.
  src.snapshot();
  dst.snapshot();
  ++rebalances_;
  if (rebalances_metric_ != nullptr) rebalances_metric_->inc();
  return true;
}

bool ShardFleet::rebalance_next(std::uint32_t slot) {
  if (size() < 2) return true;
  std::uint32_t from = map_.shard_of_slot(slot);
  return rebalance(slot, (from + 1) % size());
}

void ShardFleet::snapshot_all() {
  for (auto& node : nodes_) node->snapshot();
}

void ShardFleet::fail_over_all_down() {
  for (auto& node : nodes_)
    if (node->down()) node->fail_over();
}

}  // namespace mps::shard
