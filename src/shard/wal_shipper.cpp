#include "shard/wal_shipper.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/strings.h"
#include "durable/snapshot.h"
#include "net/wire.h"

namespace mps::shard {

namespace {

/// Records per kWalShip frame. Small enough that a frame stays far below
/// the wire's payload bound even with fat journal records; large enough
/// to amortize the codec round-trip during catch-up shipping.
constexpr std::uint64_t kRecordsPerFrame = 64;

bool is_snapshot_file(const std::string& name) {
  return starts_with(name, durable::kSnapshotPrefix);
}

}  // namespace

WalShipper::WalShipper(std::uint32_t shard, durable::WalConfig wal_config,
                       obs::Registry* metrics)
    : shard_(shard), wal_config_(std::move(wal_config)) {
  if (metrics != nullptr) {
    records_metric_ = &metrics->counter("shard.shipped_records");
    frames_metric_ = &metrics->counter("shard.ship_frames");
    snapshots_metric_ = &metrics->counter("shard.snapshots_mirrored");
  }
}

std::string WalShipper::segment_name(std::uint64_t first_lsn) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIu64, first_lsn);
  return wal_config_.prefix + buf;
}

void WalShipper::set_follower(durable::StorageEnv* env) {
  follower_ = env;
  cur_segment_.clear();
  cur_segment_size_ = 0;
  last_shipped_lsn_ = 0;
  if (follower_ == nullptr) return;
  // Resume in place: the lexicographically last segment is the active
  // one (same naming discipline as the primary Wal), and its last valid
  // record is where shipping left off.
  std::string last_segment;
  for (const std::string& name : follower_->list())
    if (starts_with(name, wal_config_.prefix)) last_segment = name;
  if (last_segment.empty()) return;
  std::string data = follower_->read(last_segment);
  std::size_t offset = 0;
  while (auto rec = durable::decode_record(data, offset)) {
    last_shipped_lsn_ = rec->lsn;
    offset = rec->end_offset;
  }
  cur_segment_ = last_segment;
  cur_segment_size_ = offset;  // valid prefix only; a torn tail is rewritten
}

void WalShipper::attach(durable::Wal* wal) {
  detach();
  wal_ = wal;
  if (wal_ == nullptr) return;
  cursor_ = wal_->open_cursor(last_shipped_lsn_);
  wal_->set_append_listener([this] { ship(); });
  ship();  // catch up on anything already in the log
}

void WalShipper::detach() {
  if (wal_ == nullptr) return;
  wal_->set_append_listener({});
  wal_->close_cursor(cursor_);
  wal_ = nullptr;
  cursor_ = 0;
}

void WalShipper::ship() {
  if (wal_ == nullptr || follower_ == nullptr) return;
  bool appended = false;
  while (true) {
    // Collect one frame's worth of records off the cursor...
    net::wire::WalShipMsg msg;
    msg.shard = shard_;
    std::uint64_t got = wal_->cursor_read(
        cursor_, kRecordsPerFrame,
        [&](std::uint64_t lsn, std::string_view payload) {
          msg.records.push_back({lsn, std::string(payload)});
        });
    if (got == 0) break;
    // ...round-trip them through the wire codec (the bytes a socketed
    // follower would receive are the bytes we apply)...
    std::string body;
    net::wire::encode_wal_ship(msg, body);
    net::wire::WalShipMsg decoded;
    if (!net::wire::decode_wal_ship(body, decoded))
      throw std::logic_error("WalShipper: own frame failed to decode");
    ++stats_.frames;
    stats_.bytes_shipped += body.size();
    if (frames_metric_ != nullptr) frames_metric_->inc();
    // ...and apply them to the follower's log.
    for (const net::wire::WalRecord& rec : decoded.records)
      apply_record(rec.lsn, rec.payload);
    appended = true;
    if (got < kRecordsPerFrame) break;  // caught up with the tail
  }
  // One durability point per drain, not per record: the follower is a
  // replica, group-committing its file is safe (the primary's ack never
  // depends on it in this topology).
  if (appended && !cur_segment_.empty()) follower_->sync(cur_segment_);
}

void WalShipper::apply_record(std::uint64_t lsn, std::string_view payload) {
  if (cur_segment_.empty() || cur_segment_size_ >= wal_config_.segment_bytes) {
    cur_segment_ = segment_name(lsn);
    cur_segment_size_ = 0;
    ++stats_.follower_segments;
  }
  std::string framed;
  durable::encode_record(lsn, payload, framed);
  follower_->append(cur_segment_, framed);
  cur_segment_size_ += framed.size();
  last_shipped_lsn_ = lsn;
  ++stats_.records_shipped;
  if (records_metric_ != nullptr) records_metric_->inc();
}

void WalShipper::mirror_snapshots(durable::StorageEnv& primary) {
  if (follower_ == nullptr) return;
  std::vector<std::string> primary_snaps;
  for (const std::string& name : primary.list())
    if (is_snapshot_file(name)) primary_snaps.push_back(name);
  // Prune first (the primary prunes after writing, so mirrored state
  // matches), then copy anything new or changed.
  for (const std::string& name : follower_->list()) {
    if (!is_snapshot_file(name)) continue;
    bool keep = false;
    for (const std::string& p : primary_snaps) keep = keep || p == name;
    if (!keep) follower_->remove(name);
  }
  for (const std::string& name : primary_snaps) {
    std::string data = primary.read(name);
    if (follower_->exists(name) && follower_->read(name) == data) continue;
    follower_->write_atomic(name, data);
    ++stats_.snapshots_mirrored;
    if (snapshots_metric_ != nullptr) snapshots_metric_->inc();
  }
}

}  // namespace mps::shard
