// The sharded, replicated serving plane (DESIGN.md §16).
//
// A ShardFleet partitions the whole middleware stack — broker, document
// store, GoFlow server, journal — into N independent shard nodes. Every
// (app, client) pair hashes to one of kHashSlots slots (shard_map.h),
// each slot lives on exactly one shard, and the router at the ingest
// edge (broker_for / shard_for) forwards a client's publishes to its
// owning shard's broker with zero extra copies: the same flat ObsBatch
// hand-off the single-server path uses, against a different broker
// reference.
//
// Replication: each node's primary journal is streamed by a WalShipper
// to a follower StorageEnv (snapshot mirror + WAL tail, preserved LSNs).
// kill() models the primary dying; fail_over() promotes the follower —
// Journal recovery over the shipped files — and reverses the shipping
// direction onto the wiped old-primary disk. Because the shipper applies
// every record at append time and snapshots are mirrored on write,
// nothing acknowledged is lost across a failover.
//
// Rebalance: rebalance(slot, to) extracts the slot's per-client state
// from its current owner (stored documents, pending ingest batches,
// both dedup key sets — GoFlowServer::extract_migration), adopts it on
// the target, flips the map entry and snapshots both nodes in the same
// sim event, so the move is atomic with respect to traffic and crash-
// durable the moment it completes. Dedup keys travelling with the slot
// is what keeps redirect + resend exactly-once (the satellite-3 fix).
//
// With shards == 1 the fleet is exactly today's single server plus an
// idle shipper — the byte-equivalence gate pins that.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "broker/broker.h"
#include "core/goflow_server.h"
#include "core/recovery.h"
#include "docstore/database.h"
#include "durable/journal.h"
#include "durable/storage.h"
#include "obs/metrics.h"
#include "shard/shard_map.h"
#include "shard/wal_shipper.h"
#include "sim/simulation.h"

namespace mps::shard {

struct FleetConfig {
  std::uint32_t shards = 1;
  /// The study app whose clients the router hashes (stable_client_hash
  /// keys on (app, client)).
  AppId app = "soundcity";
  core::ServerConfig server;
  durable::JournalConfig journal;
  obs::Registry* metrics = nullptr;
};

/// One shard: a full middleware stack with primary/follower storage and
/// a shipper keeping the follower current. Construction wires shipping
/// and mirrors the lifecycle's base snapshot immediately.
class ShardNode {
 public:
  ShardNode(std::uint32_t index, sim::Simulation& sim,
            const FleetConfig& config);

  ShardNode(const ShardNode&) = delete;
  ShardNode& operator=(const ShardNode&) = delete;

  std::uint32_t index() const { return index_; }
  broker::Broker& broker() { return broker_; }
  docstore::Database& db() { return db_; }
  core::GoFlowServer& server() { return server_; }
  core::ServerLifecycle& lifecycle() { return lifecycle_; }
  WalShipper& shipper() { return shipper_; }
  bool down() const { return lifecycle_.down(); }

  /// The primary process dies (shipper detached first — it must never
  /// touch the dead journal). Publishes fail until fail_over().
  void kill();

  /// Promotes the follower: recovery over the mirrored snapshot + the
  /// shipped WAL tail, then shipping restarts in the opposite direction
  /// onto the wiped old-primary env. If the node is still up it is
  /// killed first (a controller-driven switchover).
  void fail_over();

  /// Snapshot through the lifecycle, then mirror the new snapshot file
  /// to the follower (the shipped tail alone cannot recover pre-attach
  /// state). Use this — not lifecycle().snapshot() — so the follower
  /// stays promotable.
  void snapshot();

  std::uint64_t failovers() const { return failovers_; }

 private:
  durable::StorageEnv& primary_env() { return primary_is_a_ ? env_a_ : env_b_; }
  durable::StorageEnv& follower_env() {
    return primary_is_a_ ? env_b_ : env_a_;
  }
  static void wipe(durable::StorageEnv& env);

  std::uint32_t index_;
  durable::MemStorageEnv env_a_;  ///< initial primary disk
  durable::MemStorageEnv env_b_;  ///< initial follower disk
  bool primary_is_a_ = true;
  broker::Broker broker_;
  docstore::Database db_;
  core::GoFlowServer server_;
  WalShipper shipper_;
  core::ServerLifecycle lifecycle_;
  std::uint64_t failovers_ = 0;
  obs::Counter* failovers_metric_ = nullptr;
};

/// The fleet: N nodes plus the slot map and the rebalance path.
class ShardFleet {
 public:
  ShardFleet(sim::Simulation& sim, FleetConfig config);

  ShardFleet(const ShardFleet&) = delete;
  ShardFleet& operator=(const ShardFleet&) = delete;

  std::uint32_t size() const { return static_cast<std::uint32_t>(nodes_.size()); }
  ShardNode& node(std::uint32_t i) { return *nodes_.at(i); }
  ShardMap& map() { return map_; }
  const FleetConfig& config() const { return config_; }

  /// The shard owning this client right now.
  std::uint32_t shard_for(std::string_view client) const {
    return map_.shard_for(config_.app, client);
  }

  /// The router's answer at the ingest edge: the broker a publish for
  /// this client must go to. Consulted per publish (ClientConfig::
  /// broker_route), so a rebalance redirects the very next upload.
  broker::Broker& broker_for(std::string_view client) {
    return nodes_[shard_for(client)]->broker();
  }

  /// Moves one slot to `to_shard`: extract from the owner, adopt on the
  /// target, flip the map, snapshot both — all in the calling sim event.
  /// Skipped (returns false) when either end is down; the scheduler
  /// retries at the next rebalance tick rather than migrating against a
  /// dead store.
  bool rebalance(std::uint32_t slot, std::uint32_t to_shard);

  /// Convenience for chaos schedules: moves `slot` to the next shard in
  /// ring order. No-op with one shard.
  bool rebalance_next(std::uint32_t slot);

  /// Snapshot every live node (periodic durability tick).
  void snapshot_all();

  /// Recover every down node via failover (end-of-run: the books must
  /// close against live stores).
  void fail_over_all_down();

  std::uint64_t rebalances() const { return rebalances_; }
  std::uint64_t rebalances_skipped() const { return rebalances_skipped_; }

 private:
  FleetConfig config_;
  ShardMap map_;
  std::vector<std::unique_ptr<ShardNode>> nodes_;
  std::uint64_t rebalances_ = 0;
  std::uint64_t rebalances_skipped_ = 0;
  obs::Counter* rebalances_metric_ = nullptr;
};

}  // namespace mps::shard
