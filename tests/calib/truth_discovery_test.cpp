#include "calib/truth_discovery.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::calib {
namespace {

TEST(TruthDiscovery, EmptyInput) {
  TruthDiscoveryResult result = discover_truth({});
  EXPECT_TRUE(result.truths.empty());
  EXPECT_TRUE(result.source_weight.empty());
}

TEST(TruthDiscovery, SingleUnanimousEvent) {
  TruthEvent event;
  event.claims = {{"a", 60.0}, {"b", 60.0}, {"c", 60.0}};
  TruthDiscoveryResult result = discover_truth({event});
  ASSERT_EQ(result.truths.size(), 1u);
  EXPECT_NEAR(result.truths[0], 60.0, 1e-9);
}

TEST(TruthDiscovery, OutlierSourceDownweighted) {
  // Sources a, b agree across many events; source c is consistently off.
  std::vector<TruthEvent> events;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) {
    double truth = rng.uniform(40, 80);
    TruthEvent e;
    e.claims = {{"a", truth + rng.normal(0, 0.5)},
                {"b", truth + rng.normal(0, 0.5)},
                {"c", truth + rng.normal(8.0, 4.0)}};  // biased & noisy
    events.push_back(e);
  }
  TruthDiscoveryResult result = discover_truth(events);
  EXPECT_GT(result.source_weight.at("a"), result.source_weight.at("c") * 2.0);
  EXPECT_GT(result.source_weight.at("b"), result.source_weight.at("c") * 2.0);
}

TEST(TruthDiscovery, TruthCloserToReliableSources) {
  std::vector<TruthEvent> events;
  Rng rng(5);
  // Calibration events where a and b demonstrate reliability...
  for (int i = 0; i < 30; ++i) {
    double truth = rng.uniform(40, 80);
    events.push_back(TruthEvent{{{"a", truth + rng.normal(0, 0.3)},
                                 {"b", truth + rng.normal(0, 0.3)},
                                 {"noisy", truth + rng.normal(0, 10.0)}}});
  }
  // ...then a contested event: reliable sources say 60, noisy says 90.
  events.push_back(TruthEvent{{{"a", 60.0}, {"b", 60.2}, {"noisy", 90.0}}});
  TruthDiscoveryResult result = discover_truth(events);
  EXPECT_NEAR(result.truths.back(), 60.1, 2.0);
}

TEST(TruthDiscovery, WeightsNormalized) {
  std::vector<TruthEvent> events{
      TruthEvent{{{"a", 50.0}, {"b", 52.0}}},
      TruthEvent{{{"a", 61.0}, {"b", 60.0}}},
  };
  TruthDiscoveryResult result = discover_truth(events);
  double total = 0.0;
  for (const auto& [_, w] : result.source_weight) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(TruthDiscovery, ConvergesWithinIterationCap) {
  std::vector<TruthEvent> events;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    double truth = rng.uniform(40, 80);
    events.push_back(TruthEvent{{{"a", truth + rng.normal(0, 1)},
                                 {"b", truth + rng.normal(0, 2)},
                                 {"c", truth + rng.normal(0, 3)}}});
  }
  TruthDiscoveryParams params;
  params.max_iterations = 200;
  params.tolerance = 1e-4;
  TruthDiscoveryResult result = discover_truth(events, params);
  EXPECT_LT(result.iterations_run, 200);
}

TEST(TruthDiscovery, EventWithoutClaimsIgnored) {
  std::vector<TruthEvent> events{TruthEvent{}, TruthEvent{{{"a", 55.0}}}};
  TruthDiscoveryResult result = discover_truth(events);
  ASSERT_EQ(result.truths.size(), 2u);
  EXPECT_DOUBLE_EQ(result.truths[0], 0.0);
  EXPECT_NEAR(result.truths[1], 55.0, 1e-9);
}

// --- group_truth_events ------------------------------------------------

phone::Observation localized_obs(const char* user, double x, double y,
                                 TimeMs t, double spl = 60.0) {
  phone::Observation obs;
  obs.user = user;
  obs.model = "M";
  obs.captured_at = t;
  obs.spl_db = spl;
  phone::LocationFix fix;
  fix.x_m = x;
  fix.y_m = y;
  fix.accuracy_m = 20.0;
  obs.location = fix;
  return obs;
}

TEST(GroupTruthEvents, CoLocatedGrouped) {
  std::vector<phone::Observation> obs{
      localized_obs("a", 100, 100, minutes(0), 60),
      localized_obs("b", 120, 110, minutes(2), 62),
      localized_obs("c", 5000, 5000, minutes(1), 70),  // far away: alone
  };
  auto events = group_truth_events(obs, 150.0, minutes(10), 2);
  ASSERT_EQ(events.size(), 1u);  // the far-away singleton is dropped
  EXPECT_EQ(events[0].claims.size(), 2u);
}

TEST(GroupTruthEvents, TimeGapSplitsEvents) {
  std::vector<phone::Observation> obs{
      localized_obs("a", 100, 100, minutes(0)),
      localized_obs("b", 100, 100, minutes(2)),
      localized_obs("c", 100, 100, hours(5)),
      localized_obs("d", 100, 100, hours(5) + minutes(1)),
  };
  auto events = group_truth_events(obs, 150.0, minutes(10), 2);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].claims.size(), 2u);
  EXPECT_EQ(events[1].claims.size(), 2u);
}

TEST(GroupTruthEvents, MinClaimsFilters) {
  std::vector<phone::Observation> obs{
      localized_obs("a", 100, 100, minutes(0)),
  };
  EXPECT_TRUE(group_truth_events(obs, 150.0, minutes(10), 2).empty());
  EXPECT_EQ(group_truth_events(obs, 150.0, minutes(10), 1).size(), 1u);
}

TEST(GroupTruthEvents, UnlocalizedSkipped) {
  phone::Observation no_loc;
  no_loc.user = "x";
  no_loc.spl_db = 50;
  std::vector<phone::Observation> obs{no_loc, no_loc};
  EXPECT_TRUE(group_truth_events(obs, 150.0, minutes(10), 1).empty());
}

TEST(TruthDiscovery, EndToEndWithGrouping) {
  // Three devices repeatedly co-measure: one has a strong bias. Truth
  // discovery should land near the two unbiased ones.
  std::vector<phone::Observation> obs;
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    double truth = rng.uniform(50, 70);
    double x = rng.uniform(0, 10000), y = rng.uniform(0, 10000);
    TimeMs t = hours(i);
    obs.push_back(localized_obs("good1", x, y, t, truth + rng.normal(0, 1)));
    obs.push_back(localized_obs("good2", x + 20, y, t + minutes(1),
                                truth + rng.normal(0, 1)));
    obs.push_back(localized_obs("biased", x, y + 30, t + minutes(2),
                                truth + 7.0 + rng.normal(0, 1)));
  }
  auto events = group_truth_events(obs);
  ASSERT_GE(events.size(), 40u);
  TruthDiscoveryResult result = discover_truth(events);
  EXPECT_GT(result.source_weight.at("good1"),
            result.source_weight.at("biased"));
  // Mean absolute deviation of truths from the unbiased sources' claims
  // should be small.
  double dev = 0.0;
  int n = 0;
  for (std::size_t e = 0; e < events.size(); ++e) {
    for (const TruthClaim& claim : events[e].claims) {
      if (claim.source == "good1") {
        dev += std::abs(claim.value - result.truths[e]);
        ++n;
      }
    }
  }
  EXPECT_LT(dev / n, 2.5);
}

}  // namespace
}  // namespace mps::calib
