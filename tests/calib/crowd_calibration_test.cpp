#include "calib/crowd_calibration.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::calib {
namespace {

/// Builds observations from `model` at (x, y) and time t, where the true
/// ambient is `ambient` and the model has bias `bias`.
phone::Observation co_located_obs(const char* model, double bias,
                                  double ambient, double x, double y,
                                  TimeMs t, Rng& rng) {
  phone::Observation obs;
  obs.model = model;
  obs.user = std::string(model) + "-user";
  obs.captured_at = t;
  obs.spl_db = ambient + bias + rng.normal(0.0, 0.8);
  phone::LocationFix fix;
  fix.x_m = x;
  fix.y_m = y;
  fix.accuracy_m = 20.0;
  obs.location = fix;
  return obs;
}

std::vector<phone::Observation> build_dataset(Rng& rng) {
  // Three models with biases A:0 (anchor), B:+4, C:-3; many co-located
  // encounters A-B and B-C (C never meets A directly: tests transitivity).
  std::vector<phone::Observation> out;
  for (int i = 0; i < 200; ++i) {
    double ambient = rng.uniform(45, 75);
    double x = rng.uniform(0, 5000), y = rng.uniform(0, 5000);
    TimeMs t = minutes(i * 20);
    out.push_back(co_located_obs("A", 0.0, ambient, x, y, t, rng));
    out.push_back(co_located_obs("B", 4.0, ambient, x + 30, y - 20,
                                 t + seconds(60), rng));
  }
  for (int i = 0; i < 200; ++i) {
    double ambient = rng.uniform(45, 75);
    double x = rng.uniform(0, 5000), y = rng.uniform(0, 5000);
    TimeMs t = minutes(100000 + i * 20);
    out.push_back(co_located_obs("B", 4.0, ambient, x, y, t, rng));
    out.push_back(co_located_obs("C", -3.0, ambient, x - 40, y + 10,
                                 t + seconds(90), rng));
  }
  return out;
}

TEST(CrowdCalibration, RecoversRelativeBiases) {
  Rng rng(1);
  auto observations = build_dataset(rng);
  CrowdCalibrationResult result = crowd_calibrate(observations, "A", 0.0);
  ASSERT_EQ(result.models_covered, 3u);
  EXPECT_NEAR(result.bias_db.at("A"), 0.0, 1e-9);
  EXPECT_NEAR(result.bias_db.at("B"), 4.0, 0.5);
  EXPECT_NEAR(result.bias_db.at("C"), -3.0, 0.7);  // via B, transitively
  EXPECT_GT(result.pairs_used, 100u);
}

TEST(CrowdCalibration, AnchorOffsetShiftsAll) {
  Rng rng(2);
  auto observations = build_dataset(rng);
  CrowdCalibrationResult result = crowd_calibrate(observations, "A", 2.0);
  EXPECT_NEAR(result.bias_db.at("A"), 2.0, 1e-9);
  EXPECT_NEAR(result.bias_db.at("B"), 6.0, 0.5);
}

TEST(CrowdCalibration, MissingAnchorReturnsEmpty) {
  Rng rng(3);
  auto observations = build_dataset(rng);
  CrowdCalibrationResult result = crowd_calibrate(observations, "ZZZ", 0.0);
  EXPECT_TRUE(result.bias_db.empty());
  EXPECT_EQ(result.models_covered, 0u);
}

TEST(CrowdCalibration, DisconnectedModelOmitted) {
  Rng rng(4);
  auto observations = build_dataset(rng);
  // Model D appears but never near anyone (huge coordinates).
  for (int i = 0; i < 50; ++i)
    observations.push_back(co_located_obs("D", 9.0, 60.0, 1e7, 1e7,
                                          minutes(i), rng));
  CrowdCalibrationResult result = crowd_calibrate(observations, "A", 0.0);
  EXPECT_EQ(result.bias_db.count("D"), 0u);
  EXPECT_EQ(result.models_covered, 3u);
}

TEST(CrowdCalibration, FarApartPairsIgnored) {
  Rng rng(5);
  std::vector<phone::Observation> observations;
  // A and B co-occur in time but 10 km apart: no pairs, no estimate.
  for (int i = 0; i < 100; ++i) {
    TimeMs t = minutes(i * 30);
    observations.push_back(co_located_obs("A", 0.0, 60, 0, 0, t, rng));
    observations.push_back(co_located_obs("B", 4.0, 60, 10000, 10000,
                                          t + seconds(30), rng));
  }
  CrowdCalibrationResult result = crowd_calibrate(observations, "A", 0.0);
  EXPECT_EQ(result.pairs_used, 0u);
  EXPECT_EQ(result.bias_db.count("B"), 0u);
}

TEST(CrowdCalibration, TimeGapRespected) {
  Rng rng(6);
  std::vector<phone::Observation> observations;
  CrowdCalibrationParams params;
  params.max_time_gap = minutes(5);
  for (int i = 0; i < 100; ++i) {
    TimeMs t = hours(i);
    observations.push_back(co_located_obs("A", 0.0, 60, 100, 100, t, rng));
    // Same place but 30 minutes later: outside the window.
    observations.push_back(
        co_located_obs("B", 4.0, 60, 110, 100, t + minutes(30), rng));
  }
  CrowdCalibrationResult result =
      crowd_calibrate(observations, "A", 0.0, params);
  EXPECT_EQ(result.pairs_used, 0u);
}

TEST(CrowdCalibration, UnlocalizedObservationsIgnored) {
  Rng rng(7);
  std::vector<phone::Observation> observations;
  for (int i = 0; i < 50; ++i) {
    phone::Observation a = co_located_obs("A", 0.0, 60, 100, 100, minutes(i), rng);
    phone::Observation b = co_located_obs("B", 4.0, 60, 100, 100,
                                          minutes(i) + seconds(10), rng);
    a.location.reset();
    b.location.reset();
    observations.push_back(a);
    observations.push_back(b);
  }
  CrowdCalibrationResult result = crowd_calibrate(observations, "A", 0.0);
  EXPECT_EQ(result.pairs_used, 0u);
}

}  // namespace
}  // namespace mps::calib
