#include "calib/calibration.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "phone/microphone.h"

namespace mps::calib {
namespace {

TEST(CalibrationDatabase, UnknownModelPassthrough) {
  CalibrationDatabase db;
  EXPECT_FALSE(db.bias_db("X").has_value());
  EXPECT_DOUBLE_EQ(db.correct("X", 57.0), 57.0);
  EXPECT_FALSE(db.has_model("X"));
  EXPECT_EQ(db.model_count(), 0u);
}

TEST(CalibrationDatabase, BiasIsMeanDifference) {
  CalibrationDatabase db;
  db.add_sample("M", 62.0, 60.0);
  db.add_sample("M", 63.0, 60.0);
  db.add_sample("M", 64.0, 60.0);
  ASSERT_TRUE(db.bias_db("M").has_value());
  EXPECT_DOUBLE_EQ(*db.bias_db("M"), 3.0);
  EXPECT_DOUBLE_EQ(db.correct("M", 70.0), 67.0);
}

TEST(CalibrationDatabase, SessionsAccumulate) {
  CalibrationDatabase db;
  db.add_session("M", {{61, 60}, {62, 60}});
  db.add_session("M", {{64, 60}});
  EXPECT_EQ(db.records().at("M").sessions, 2);
  EXPECT_EQ(db.records().at("M").sample_count(), 3u);
  EXPECT_NEAR(*db.bias_db("M"), (1.0 + 2.0 + 4.0) / 3.0, 1e-12);
}

TEST(CalibrationDatabase, ResidualStddev) {
  CalibrationDatabase db;
  EXPECT_FALSE(db.residual_stddev("M").has_value());
  db.add_sample("M", 62.0, 60.0);
  EXPECT_FALSE(db.residual_stddev("M").has_value());  // needs >= 2
  db.add_sample("M", 64.0, 60.0);
  ASSERT_TRUE(db.residual_stddev("M").has_value());
  EXPECT_NEAR(*db.residual_stddev("M"), std::sqrt(2.0), 1e-9);
}

TEST(CalibrationDatabase, CalibrationPartyRecoversModelBias) {
  // Simulate a calibration party: several devices of one model measured
  // against a reference meter across varied levels. The estimated bias
  // should match the model's true microphone bias.
  const phone::DeviceModelSpec* spec = phone::find_model("ONEPLUS A0001");
  ASSERT_NE(spec, nullptr);
  CalibrationDatabase db;
  Rng rng(11);
  for (int device = 0; device < 5; ++device) {
    phone::Microphone mic(*spec, rng.normal(0.0, 0.5));
    std::vector<std::pair<double, double>> pairs;
    for (int i = 0; i < 100; ++i) {
      double reference = rng.uniform(50.0, 90.0);  // above the noise floor
      pairs.emplace_back(mic.measure(reference, rng), reference);
    }
    db.add_session(spec->id, pairs);
  }
  ASSERT_TRUE(db.bias_db(spec->id).has_value());
  EXPECT_NEAR(*db.bias_db(spec->id), spec->mic_bias_db, 0.7);
}

TEST(CalibrationDatabase, PerModelCalibrationTamesHeterogeneity) {
  // The §5.2 claim: calibrating per model removes most cross-model
  // spread. Measure the spread of corrected readings across models.
  CalibrationDatabase db;
  Rng rng(13);
  std::vector<const phone::DeviceModelSpec*> models;
  for (const auto& spec : phone::top20_catalog()) models.push_back(&spec);

  // Calibration phase.
  for (const auto* spec : models) {
    phone::Microphone mic(*spec);
    std::vector<std::pair<double, double>> pairs;
    for (int i = 0; i < 200; ++i) {
      double reference = rng.uniform(55.0, 90.0);
      pairs.emplace_back(mic.measure(reference, rng), reference);
    }
    db.add_session(spec->id, pairs);
  }

  // Evaluation phase: every model measures the same 70 dB scene.
  RunningStats raw_spread, corrected_spread;
  for (const auto* spec : models) {
    phone::Microphone mic(*spec);
    RunningStats raw;
    for (int i = 0; i < 500; ++i) raw.add(mic.measure(70.0, rng));
    raw_spread.add(raw.mean());
    corrected_spread.add(db.correct(spec->id, raw.mean()));
  }
  EXPECT_GT(raw_spread.stddev(), 3.0);       // heterogeneous raw responses
  EXPECT_LT(corrected_spread.stddev(), 1.0); // tamed after calibration
}

}  // namespace
}  // namespace mps::calib
