// Edge admission control: the ingest queue's gate sheds publishes at
// the broker edge when the server's pending backlog exceeds the bound
// (or the kAdmissionShed fault fires), and the client's existing
// backoff machinery turns a shed into a delayed, deduplicated retry —
// never a loss, never a duplicate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "client/goflow_client.h"
#include "core/goflow_server.h"
#include "docstore/database.h"
#include "fault/fault.h"

namespace mps::ingest {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  void build_server(core::ServerConfig cfg = {}) {
    server = std::make_unique<core::GoFlowServer>(sim, broker, db, cfg);
    auto reg = server->register_app("soundcity").value_or_throw();
    client_token = server
                       ->register_account(reg.admin_token, "soundcity", "u1",
                                          core::Role::kClient)
                       .value_or_throw();
  }

  Value batch(const std::string& client, int batch_no, TimeMs captured) {
    Object obs;
    obs.set("user", Value("u1"));
    obs.set("model", Value("GT-I9300"));
    obs.set("captured_at", Value(captured));
    obs.set("spl", Value(60.0));
    obs.set("mode", Value("opportunistic"));
    obs.set("activity", Value("still"));
    Array arr;
    arr.push_back(Value(std::move(obs)));
    return Value(Object{
        {"app", Value("soundcity")},
        {"client", Value(client)},
        {"batch_id", Value(client + "#" + std::to_string(batch_no))},
        {"sent_at", Value(sim.now())},
        {"observations", Value(std::move(arr))}});
  }

  Status publish(const std::string& client, int batch_no) {
    auto channels =
        server->login_client(client_token, "soundcity", client)
            .value_or_throw();
    auto r = broker.publish(channels.exchange, "soundcity.obs." + client,
                            batch(client, batch_no, sim.now()), sim.now());
    if (!r.ok()) return err(r.error().code, r.error().message);
    return {};
  }

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  std::unique_ptr<core::GoFlowServer> server;
  std::string client_token;
};

TEST_F(AdmissionTest, BacklogBoundShedsAtTheEdge) {
  core::ServerConfig cfg;
  cfg.admission_max_pending = 1;
  build_server(cfg);

  // Pin the first batch in the pending set: its insert keeps failing
  // transiently, so it waits out backoff as accepted-but-unstored work.
  fault::FaultPlan plan(1);
  plan.set_clock([this] { return sim.now(); });
  db.collection("observations").arm_faults(&plan);
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 3);

  EXPECT_TRUE(publish("c1", 1).ok());
  EXPECT_EQ(server->pending_ingest_batches(), 1u);

  // The backlog is at the bound: the next publish is shed at the edge —
  // kUnavailable, nothing routed, nothing stored, nothing duplicated.
  Status shed = publish("c1", 2);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(server->admission_sheds(), 1u);
  EXPECT_EQ(broker.queue_depth("goflow.ingest"), 0u);

  // Backoff retries drain the stuck batch; capacity frees up and the
  // shed batch goes through on its retry, exactly once.
  sim.run_until(minutes(2));
  EXPECT_EQ(server->pending_ingest_batches(), 0u);
  EXPECT_TRUE(publish("c1", 2).ok());
  EXPECT_EQ(server->total_observations(), 2u);
  EXPECT_EQ(server->duplicate_batches(), 0u);
  EXPECT_GT(server->admission_accepted(), 0u);
}

TEST_F(AdmissionTest, DisabledBoundNeverSheds) {
  build_server();  // admission_max_pending = 0: no gate installed
  fault::FaultPlan plan(1);
  plan.set_clock([this] { return sim.now(); });
  db.collection("observations").arm_faults(&plan);
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 50);
  EXPECT_TRUE(publish("c1", 1).ok());
  EXPECT_TRUE(publish("c1", 2).ok());
  EXPECT_TRUE(publish("c1", 3).ok());
  EXPECT_EQ(server->pending_ingest_batches(), 3u);
  EXPECT_EQ(server->admission_sheds(), 0u);
}

TEST_F(AdmissionTest, ShedFeedsClientBackoffWithoutLossOrDup) {
  build_server();
  obs::Registry registry;
  server->set_metrics(&registry);

  // Random shed on the first gate consult only; everything else clean.
  fault::FaultPlan plan(7);
  plan.set_clock([this] { return sim.now(); });
  plan.fail_next(fault::FaultSite::kAdmissionShed, 1);
  server->arm_faults(&plan);

  auto channels =
      server->login_client(client_token, "soundcity", "c1").value_or_throw();

  phone::PhoneConfig pc;
  pc.model = phone::top20_catalog().front();
  pc.user = "u1";
  pc.seed = 7;
  pc.connectivity = net::ConnectivityParams::always_connected();
  pc.horizon = days(1);
  phone::Phone phone(pc);

  client::ClientConfig cc =
      client::ClientConfig::v1_3("c1", channels.exchange, 1);
  cc.flat_ingest = true;  // the shed path must also cover publish_flat
  cc.retry_seed = 7;
  client::GoFlowClient client(
      sim, broker, phone, std::move(cc), [](TimeMs) { return 55.0; },
      [](TimeMs) { return std::pair<double, double>{10.0, 10.0}; });
  client.start();
  // First (and only) upload at ~5min: shed at the edge, retried ~30s on.
  sim.run_until(minutes(8));

  EXPECT_EQ(server->admission_sheds(), 1u);
  EXPECT_EQ(client.stats().publish_failures, 1u);
  EXPECT_GE(client.stats().upload_retries, 1u);
  // The retried batch carried the same batch_id: stored exactly once.
  EXPECT_EQ(server->total_observations(), client.stats().observations_uploaded);
  EXPECT_EQ(server->duplicate_batches(), 0u);
  EXPECT_EQ(server->duplicate_observations(), 0u);

  // The shed is visible to dashboards under the promised family.
  bool found = false;
  for (const auto& [name, value] : registry.snapshot().counters) {
    if (name == "server.admission_shed") {
      found = true;
      EXPECT_EQ(value, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(AdmissionTest, ServerCrashDropsTheGate) {
  core::ServerConfig cfg;
  cfg.admission_max_pending = 1;
  build_server(cfg);

  fault::FaultPlan plan(1);
  plan.set_clock([this] { return sim.now(); });
  db.collection("observations").arm_faults(&plan);
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 1000);

  // Tokens don't survive the crash below: resolve the channel up front.
  auto channels =
      server->login_client(client_token, "soundcity", "c1").value_or_throw();
  EXPECT_TRUE(publish("c1", 1).ok());
  EXPECT_FALSE(publish("c1", 2).ok());

  // Flow control belongs to the live process: after the server dies the
  // broker must stop consulting its gate (publishes buffer for later).
  server->crash();
  EXPECT_TRUE(broker
                  .publish(channels.exchange, "soundcity.obs.c1",
                           batch("c1", 3, sim.now()), sim.now())
                  .ok());
  EXPECT_EQ(broker.queue_depth("goflow.ingest"), 1u);
}

TEST_F(AdmissionTest, DisarmingFaultsRemovesTheGate) {
  build_server();
  fault::FaultPlan plan(3);
  plan.set_probability(fault::FaultSite::kAdmissionShed, 1.0);
  server->arm_faults(&plan);
  ASSERT_FALSE(publish("c1", 1).ok());
  server->arm_faults(nullptr);
  EXPECT_TRUE(publish("c1", 2).ok());
  EXPECT_EQ(server->total_observations(), 1u);
}

}  // namespace
}  // namespace mps::ingest
