// ObsBatch / BatchPool: SoA round trips, oracle byte-identity of the
// materialization methods, string interning and arena recycling.
#include "ingest/obs_batch.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "phone/observation.h"

namespace mps::ingest {
namespace {

using phone::Activity;
using phone::LocationFix;
using phone::LocationProvider;
using phone::Observation;
using phone::SensingMode;

std::vector<Observation> sample_observations() {
  std::vector<Observation> obs;
  Observation a;
  a.user = "alice";
  a.model = "GT-I9300";
  a.captured_at = 1000;
  a.spl_db = 61.5;
  a.mode = SensingMode::kOpportunistic;
  a.activity = Activity::kStill;
  a.location = LocationFix{LocationProvider::kGps, 120.0, -40.5, 12.0};
  a.span_id = 7;
  obs.push_back(a);

  Observation b;
  b.user = "alice";  // same user: interned once
  b.model = "iPhone6,2";
  b.captured_at = 2000;
  b.spl_db = 55.0;
  b.mode = SensingMode::kJourney;
  b.activity = Activity::kFoot;
  // no location, no span
  obs.push_back(b);

  Observation c;
  c.user = "bob";
  c.model = "GT-I9300";  // same model as a: interned once
  c.captured_at = 3000;
  c.spl_db = 70.25;
  c.mode = SensingMode::kManual;
  c.activity = Activity::kVehicle;
  c.location = LocationFix{LocationProvider::kNetwork, -3.0, 8.0, 55.0};
  c.span_id = 9;
  obs.push_back(c);
  return obs;
}

/// Random observations for the fuzzier checks.
std::vector<Observation> random_observations(std::uint64_t seed,
                                             std::size_t n) {
  Rng rng(seed);
  const char* users[] = {"u1", "u2", "u3"};
  const char* models[] = {"m1", "m2"};
  std::vector<Observation> obs;
  for (std::size_t i = 0; i < n; ++i) {
    Observation o;
    o.user = users[rng.uniform_int(0, 2)];
    o.model = models[rng.uniform_int(0, 1)];
    o.captured_at = static_cast<TimeMs>(1000 * i + rng.uniform_int(0, 999));
    o.spl_db = rng.uniform(30.0, 90.0);
    o.mode = static_cast<SensingMode>(rng.uniform_int(0, 2));
    o.activity = static_cast<Activity>(rng.uniform_int(0, 6));
    if (rng.bernoulli(0.7)) {
      o.location = LocationFix{
          static_cast<LocationProvider>(rng.uniform_int(0, 2)),
          rng.uniform(-500.0, 500.0), rng.uniform(-500.0, 500.0),
          rng.uniform(1.0, 150.0)};
    }
    if (rng.bernoulli(0.8)) o.span_id = 100 + i;
    obs.push_back(std::move(o));
  }
  return obs;
}

/// The document the client's oracle path publishes for `obs`.
Value oracle_batch_document(const std::vector<Observation>& obs,
                            const std::string& app, const std::string& client,
                            const std::string& batch_id, TimeMs sent_at) {
  Array observations;
  observations.reserve(obs.size());
  for (const Observation& o : obs) observations.push_back(o.to_document());
  return Value(Object{{"app", Value(app)},
                      {"client", Value(client)},
                      {"batch_id", Value(batch_id)},
                      {"sent_at", Value(sent_at)},
                      {"observations", Value(std::move(observations))}});
}

TEST(ObsBatch, ColumnsRoundTripEveryField) {
  BatchPool pool;
  std::vector<Observation> obs = sample_observations();
  auto batch = pool.make_batch("soundcity", "c1", "c1#1", 5000, obs);
  ASSERT_EQ(batch->size(), obs.size());
  EXPECT_EQ(batch->app(), "soundcity");
  EXPECT_EQ(batch->client(), "c1");
  EXPECT_EQ(batch->batch_id(), "c1#1");
  EXPECT_EQ(batch->sent_at(), 5000);

  for (std::size_t i = 0; i < obs.size(); ++i) {
    EXPECT_EQ(batch->user(i), obs[i].user);
    EXPECT_EQ(batch->model(i), obs[i].model);
    EXPECT_EQ(batch->captured_at(i), obs[i].captured_at);
    EXPECT_EQ(batch->spl_db(i), obs[i].spl_db);
    EXPECT_EQ(batch->mode(i), obs[i].mode);
    EXPECT_EQ(batch->activity(i), obs[i].activity);
    EXPECT_EQ(batch->span_id(i), obs[i].span_id);
    ASSERT_EQ(batch->has_location(i), obs[i].location.has_value());
    if (obs[i].location.has_value()) {
      EXPECT_EQ(batch->provider(i), obs[i].location->provider);
      EXPECT_EQ(batch->x_m(i), obs[i].location->x_m);
      EXPECT_EQ(batch->y_m(i), obs[i].location->y_m);
      EXPECT_EQ(batch->accuracy_m(i), obs[i].location->accuracy_m);
    }
  }
}

TEST(ObsBatch, ObservationAtRehydratesExactly) {
  BatchPool pool;
  std::vector<Observation> obs = random_observations(11, 40);
  auto batch = pool.make_batch("app", "c", "c#1", 123, obs);
  for (std::size_t i = 0; i < obs.size(); ++i) {
    Observation back = batch->observation_at(i);
    EXPECT_EQ(back.to_document().to_json(), obs[i].to_document().to_json());
  }
}

TEST(ObsBatch, ToBatchDocumentMatchesOracleBytes) {
  BatchPool pool;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    std::vector<Observation> obs = random_observations(seed, 25);
    auto batch = pool.make_batch("soundcity", "c9", "c9#42", 777, obs);
    Value oracle =
        oracle_batch_document(obs, "soundcity", "c9", "c9#42", 777);
    EXPECT_EQ(batch->to_batch_document().to_json(), oracle.to_json());
  }
}

TEST(ObsBatch, StorageDocumentMatchesOracleBytes) {
  BatchPool pool;
  std::vector<Observation> obs = random_observations(5, 20);
  TimeMs received_at = 999999;
  auto batch = pool.make_batch("soundcity", "c2", "c2#7", 5, obs);
  for (std::size_t i = 0; i < obs.size(); ++i) {
    // The oracle: the server's document path takes the wire observation
    // document and appends app/client/received_at/delay_ms.
    Value doc = obs[i].to_document();
    doc.as_object().set("app", Value(std::string("soundcity")));
    doc.as_object().set("client", Value(std::string("c2")));
    doc.as_object().set("received_at", Value(received_at));
    doc.as_object().set("delay_ms", Value(received_at - obs[i].captured_at));
    EXPECT_EQ(batch->storage_document(i, received_at).to_json(),
              doc.to_json());
  }
}

TEST(ObsBatch, IndexValueAgreesWithDocumentPaths) {
  BatchPool pool;
  std::vector<Observation> obs = random_observations(21, 30);
  TimeMs received_at = 424242;
  auto batch = pool.make_batch("soundcity", "c3", "c3#1", 17, obs);
  const char* paths[] = {"user",        "model",
                         "captured_at", "spl",
                         "mode",        "activity",
                         "app",         "client",
                         "received_at", "delay_ms",
                         "span",        "location.provider",
                         "location.x",  "location.y",
                         "location.accuracy"};
  for (std::size_t i = 0; i < obs.size(); ++i) {
    Value doc = batch->storage_document(i, received_at);
    for (const char* path : paths) {
      Value flat;
      ASSERT_TRUE(batch->index_value(path, i, received_at, flat))
          << path << " should be a flat column";
      const Value* via_doc = doc.find_path(path);
      if (via_doc == nullptr) {
        EXPECT_TRUE(flat.is_null()) << path << " row " << i;
      } else {
        ASSERT_FALSE(flat.is_null()) << path << " row " << i;
        EXPECT_EQ(Value::compare(flat, *via_doc), 0) << path << " row " << i;
      }
    }
    // Non-column paths must report false so callers fall back.
    Value out;
    EXPECT_FALSE(batch->index_value("_id", i, received_at, out));
    EXPECT_FALSE(batch->index_value("nope.nested", i, received_at, out));
  }
}

TEST(ObsBatch, InternsRepeatedUsersAndModels) {
  BatchPool pool;
  std::vector<Observation> obs = sample_observations();
  auto batch = pool.make_batch("a", "c", "c#1", 0, obs);
  // alice, GT-I9300, iPhone6,2, bob — 4 distinct strings across 6 refs.
  EXPECT_EQ(batch->string_count(), 4u);
  EXPECT_EQ(batch->model_index(0), batch->model_index(2));
}

TEST(BatchPool, RecyclesArenasThroughEpochReset) {
  BatchPool pool;
  std::vector<Observation> obs = random_observations(3, 10);
  {
    auto batch = pool.make_batch("a", "c", "c#1", 0, obs);
    EXPECT_EQ(pool.stats().arenas_created, 1u);
    EXPECT_EQ(pool.free_arenas(), 0u);
  }
  // Batch dropped: its arena returns to the pool, reset for reuse.
  EXPECT_EQ(pool.free_arenas(), 1u);
  {
    auto batch = pool.make_batch("a", "c", "c#2", 0, obs);
    EXPECT_EQ(pool.stats().arenas_created, 1u);  // no new arena
    EXPECT_EQ(pool.stats().arenas_reused, 1u);
    EXPECT_EQ(pool.free_arenas(), 0u);
  }
  EXPECT_EQ(pool.free_arenas(), 1u);
  EXPECT_EQ(pool.stats().batches, 2u);
}

TEST(BatchPool, TwoLiveBatchesUseTwoArenas) {
  BatchPool pool;
  std::vector<Observation> obs = random_observations(4, 5);
  auto b1 = pool.make_batch("a", "c", "c#1", 0, obs);
  auto b2 = pool.make_batch("a", "c", "c#2", 0, obs);
  EXPECT_EQ(pool.stats().arenas_created, 2u);
  b1.reset();
  b2.reset();
  EXPECT_EQ(pool.free_arenas(), 2u);
}

TEST(BatchPool, BatchOutlivesPool) {
  std::shared_ptr<const ObsBatch> batch;
  std::vector<Observation> obs = sample_observations();
  {
    BatchPool pool;
    batch = pool.make_batch("a", "c", "c#1", 0, obs);
  }
  // The pool died first: the batch (and its arena) must stay valid and
  // simply free on drop instead of recycling.
  EXPECT_EQ(batch->user(0), "alice");
  batch.reset();
}

TEST(BatchPool, HighWaterAndMetricsMirrored) {
  obs::Registry registry;
  BatchPool pool;
  pool.set_metrics(&registry);
  std::vector<Observation> obs = random_observations(8, 50);
  { auto b = pool.make_batch("a", "c", "c#1", 0, obs); }
  { auto b = pool.make_batch("a", "c", "c#2", 0, obs); }
  EXPECT_GT(pool.arena_high_water(), 0u);
  obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_TRUE(registry.has_counter("ingest.flat_batches"));
  EXPECT_TRUE(registry.has_counter("ingest.arena_created"));
  EXPECT_TRUE(registry.has_counter("ingest.arena_reused"));
  EXPECT_TRUE(registry.has_gauge("ingest.arena_high_water_bytes"));
}

}  // namespace
}  // namespace mps::ingest
