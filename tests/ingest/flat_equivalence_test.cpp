// Flat-vs-document equivalence: the arena-backed ingest fast path must
// leave the middleware in byte-identical observable state to the
// document oracle path — stored documents, dedup decisions, analytics —
// across random workloads, chaos profiles and full fleet studies.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "client/goflow_client.h"
#include "core/goflow_server.h"
#include "crowd/population.h"
#include "docstore/database.h"
#include "fault/fault.h"
#include "study/study.h"

namespace mps::ingest {
namespace {

/// Everything downstream code can observe about an ingest run.
struct StackSnapshot {
  std::string stored_docs_json;  ///< observations collection, insert order
  std::uint64_t batches = 0;
  std::uint64_t observations = 0;
  std::uint64_t duplicate_batches = 0;
  std::uint64_t duplicate_observations = 0;
  std::uint64_t ingest_retries = 0;
  std::uint64_t client_uploads = 0;
  std::uint64_t client_publish_failures = 0;
  std::string dedup_keys_json;  ///< obs dedup set in eviction order
};

std::string collection_json(docstore::Database& db) {
  Array docs;
  db.collection("observations")
      .for_each([&docs](const Value& doc) { docs.push_back(doc); });
  return Value(std::move(docs)).to_json();
}

std::string ordered_keys_json(const BoundedKeySet& set) {
  Array keys;
  for (const std::string& k : set.ordered()) keys.push_back(Value(k));
  return Value(std::move(keys)).to_json();
}

/// One client sensing for `horizon` against a real server, with an
/// optional chaos profile armed on broker + docstore. Identical inputs,
/// identical seeds — the only variable is the ingest serialization path.
StackSnapshot run_stack(bool flat, const std::string& fault_profile,
                        std::uint64_t seed, TimeMs horizon) {
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server(sim, broker, db);

  fault::FaultPlan plan = fault::FaultPlan::profile(fault_profile, seed);
  plan.set_clock([&sim] { return sim.now(); });
  if (fault_profile != "none") {
    broker.arm_faults(&plan);
    db.collection("observations").arm_faults(&plan);
    server.arm_faults(&plan);
  }

  auto reg = server.register_app("soundcity").value_or_throw();
  std::string token =
      server
          .register_account(reg.admin_token, "soundcity", "u1",
                            core::Role::kClient)
          .value_or_throw();
  auto channels =
      server.login_client(token, "soundcity", "c1").value_or_throw();

  phone::PhoneConfig pc;
  pc.model = phone::top20_catalog().front();
  pc.user = "u1";
  pc.seed = seed;
  pc.connectivity = net::ConnectivityParams::always_connected();
  pc.horizon = horizon + days(1);
  phone::Phone phone(pc);

  client::ClientConfig cc = client::ClientConfig::v1_3("c1", channels.exchange, 5);
  cc.retry_seed = seed;
  cc.flat_ingest = flat;
  client::GoFlowClient client(
      sim, broker, phone, std::move(cc), [](TimeMs t) { return 50.0 + (t % 7); },
      [](TimeMs t) {
        return std::pair<double, double>{static_cast<double>(t % 1000), 42.0};
      });
  client.start();
  sim.run_until(horizon);
  client.flush();
  sim.run_until(horizon + hours(2));  // let retries drain

  StackSnapshot snap;
  snap.stored_docs_json = collection_json(db);
  snap.batches = server.total_batches();
  snap.observations = server.total_observations();
  snap.duplicate_batches = server.duplicate_batches();
  snap.duplicate_observations = server.duplicate_observations();
  snap.ingest_retries = server.ingest_retries();
  snap.client_uploads = client.stats().uploads;
  snap.client_publish_failures = client.stats().publish_failures;
  snap.dedup_keys_json = ordered_keys_json(server.seen_obs_keys());
  return snap;
}

void expect_identical(const StackSnapshot& flat, const StackSnapshot& doc) {
  EXPECT_EQ(flat.stored_docs_json, doc.stored_docs_json);
  EXPECT_EQ(flat.batches, doc.batches);
  EXPECT_EQ(flat.observations, doc.observations);
  EXPECT_EQ(flat.duplicate_batches, doc.duplicate_batches);
  EXPECT_EQ(flat.duplicate_observations, doc.duplicate_observations);
  EXPECT_EQ(flat.ingest_retries, doc.ingest_retries);
  EXPECT_EQ(flat.client_uploads, doc.client_uploads);
  EXPECT_EQ(flat.client_publish_failures, doc.client_publish_failures);
  EXPECT_EQ(flat.dedup_keys_json, doc.dedup_keys_json);
}

TEST(FlatEquivalence, CleanRunStoresByteIdenticalState) {
  for (std::uint64_t seed : {1, 7, 23}) {
    StackSnapshot flat = run_stack(true, "none", seed, hours(8));
    StackSnapshot doc = run_stack(false, "none", seed, hours(8));
    ASSERT_GT(flat.observations, 0u) << "seed " << seed;
    expect_identical(flat, doc);
  }
}

TEST(FlatEquivalence, LossyNetworkRunsStayIdentical) {
  // Publish rejections, lost confirms and transient insert faults all
  // consult per-site RNG streams; the flat path must consume them in
  // exactly the document path's order or dedup outcomes diverge.
  for (std::uint64_t seed : {3, 11}) {
    StackSnapshot flat = run_stack(true, "lossy-network", seed, hours(8));
    StackSnapshot doc = run_stack(false, "lossy-network", seed, hours(8));
    expect_identical(flat, doc);
  }
}

TEST(FlatEquivalence, SheddingProfileStaysIdentical) {
  for (std::uint64_t seed : {5, 19}) {
    StackSnapshot flat = run_stack(true, "lossy-network-shed", seed, hours(8));
    StackSnapshot doc = run_stack(false, "lossy-network-shed", seed, hours(8));
    expect_identical(flat, doc);
  }
}

/// Full-fleet study equivalence: same population, same chaos plan; the
/// study report and the stored collection must match field for field.
TEST(FlatEquivalence, FleetStudyMatchesDocumentOracle) {
  auto run_study = [](bool flat) {
    crowd::PopulationConfig pc;
    pc.seed = 9;
    pc.device_scale = 0.004;
    pc.obs_scale = 0.02;
    pc.horizon = days(2);
    crowd::Population pop = crowd::Population::generate(pc);

    sim::Simulation sim;
    broker::Broker broker;
    docstore::Database db;
    core::GoFlowServer server(sim, broker, db);
    fault::FaultPlan plan = fault::FaultPlan::lossy_network(9);

    study::StudyConfig sc;
    sc.seed = 9;
    sc.duration_days = 1;
    sc.faults = &plan;
    sc.flat_ingest = flat;
    study::StudyRunner runner(pop, sc, sim, broker, server);
    study::StudyReport report = runner.run();
    return std::make_pair(report, collection_json(db));
  };

  auto [flat_report, flat_docs] = run_study(true);
  auto [doc_report, doc_docs] = run_study(false);

  EXPECT_EQ(flat_docs, doc_docs);
  EXPECT_EQ(flat_report.observations_recorded, doc_report.observations_recorded);
  EXPECT_EQ(flat_report.observations_stored, doc_report.observations_stored);
  EXPECT_EQ(flat_report.uploads, doc_report.uploads);
  EXPECT_EQ(flat_report.buffered_unsent, doc_report.buffered_unsent);
  EXPECT_EQ(flat_report.in_flight_unsent, doc_report.in_flight_unsent);
  EXPECT_EQ(flat_report.publish_failures, doc_report.publish_failures);
  EXPECT_EQ(flat_report.upload_retries, doc_report.upload_retries);
  EXPECT_EQ(flat_report.duplicate_observations,
            doc_report.duplicate_observations);
  EXPECT_DOUBLE_EQ(flat_report.mean_delay_ms, doc_report.mean_delay_ms);
  EXPECT_GT(flat_report.observations_stored, 0u);
}

}  // namespace
}  // namespace mps::ingest
