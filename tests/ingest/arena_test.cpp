// Arena: bump allocation, alignment, epoch reset and the
// allocation-free steady state the flat ingest plane relies on.
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

namespace mps {
namespace {

TEST(Arena, AllocateReturnsAlignedDistinctPointers) {
  Arena arena;
  void* p1 = arena.allocate(8, 8);
  void* p2 = arena.allocate(8, 8);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_NE(p1, p2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % 8, 0u);
  EXPECT_EQ(arena.bytes_allocated(), 16u);
}

TEST(Arena, AlignmentPaddingAfterOddAllocation) {
  Arena arena;
  arena.allocate(1, 1);
  void* p = arena.allocate(sizeof(double), alignof(double));
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(double), 0u);
}

TEST(Arena, AllocArrayDefaultConstructs) {
  Arena arena;
  std::uint32_t* xs = arena.alloc_array<std::uint32_t>(128);
  for (std::size_t i = 0; i < 128; ++i) EXPECT_EQ(xs[i], 0u);
  xs[0] = 7;
  xs[127] = 9;
  EXPECT_EQ(xs[0], 7u);
  EXPECT_EQ(xs[127], 9u);
}

TEST(Arena, CopyStringSurvivesAndMatches) {
  Arena arena;
  std::string original = "mobile-phone-sensing";
  std::string_view view = arena.copy_string(original);
  original.assign("clobbered");  // the copy must not alias the source
  EXPECT_EQ(view, "mobile-phone-sensing");
  EXPECT_EQ(arena.copy_string("").size(), 0u);
}

TEST(Arena, ResetRetainsBlocksAndBumpsEpoch) {
  Arena arena(1024);
  arena.allocate(900);
  arena.allocate(900);  // forces a second block
  std::size_t reserved = arena.bytes_reserved();
  std::size_t blocks = arena.block_count();
  EXPECT_GE(blocks, 2u);
  EXPECT_EQ(arena.epoch(), 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // capacity retained
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.epoch(), 1u);
}

TEST(Arena, SteadyStateReusesBlocksAcrossEpochs) {
  Arena arena(4096);
  arena.allocate(3000);
  arena.reset();
  std::size_t blocks = arena.block_count();
  std::size_t reserved = arena.bytes_reserved();
  // Same-shaped epochs must never grow the arena again.
  for (int i = 0; i < 50; ++i) {
    arena.allocate(1000);
    arena.allocate(2000);
    arena.reset();
  }
  EXPECT_EQ(arena.block_count(), blocks);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.epoch(), 51u);
}

TEST(Arena, HighWaterTracksPeakEpochAcrossResets) {
  Arena arena(1024);
  arena.allocate(100);
  EXPECT_EQ(arena.high_water(), 100u);
  arena.reset();
  arena.allocate(700);
  EXPECT_EQ(arena.high_water(), 700u);
  arena.reset();
  arena.allocate(50);
  EXPECT_EQ(arena.high_water(), 700u);  // the peak survives smaller epochs
}

TEST(Arena, OversizedAllocationGetsSnugBlock) {
  Arena arena(256);
  std::size_t big = 10 * 1024;
  void* p = arena.allocate(big);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, big);  // the whole range must be writable
  EXPECT_GE(arena.bytes_reserved(), big);
  EXPECT_EQ(arena.bytes_allocated(), big);
}

}  // namespace
}  // namespace mps
