#include "client/goflow_client.h"

#include <gtest/gtest.h>

namespace mps::client {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  ClientTest() {
    broker.declare_exchange("E1", broker::ExchangeType::kTopic).throw_if_error();
    broker.declare_queue("sink").throw_if_error();
    broker.bind_queue("E1", "sink", "#").throw_if_error();
  }

  phone::PhoneConfig phone_config(std::uint64_t seed = 1) {
    phone::PhoneConfig c;
    c.model = phone::top20_catalog().front();
    c.user = "u1";
    c.seed = seed;
    c.connectivity = net::ConnectivityParams::always_connected();
    c.horizon = days(2);
    return c;
  }

  GoFlowClient make_client(phone::Phone& phone, ClientConfig config) {
    config.exchange = "E1";
    return GoFlowClient(
        sim, broker, phone, std::move(config), [](TimeMs) { return 55.0; },
        [](TimeMs) { return std::pair<double, double>{100.0, 100.0}; });
  }

  std::size_t drain_sink(std::vector<Value>* payloads = nullptr) {
    std::size_t n = 0;
    while (auto m = broker.pop("sink")) {
      ++n;
      if (payloads != nullptr) payloads->push_back(m->payload);
    }
    return n;
  }

  sim::Simulation sim;
  broker::Broker broker;
};

TEST_F(ClientTest, OpportunisticSensingAtPeriod) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_2_9("c1", ""));
  client.start();
  sim.run_until(minutes(25));
  EXPECT_EQ(client.stats().observations_recorded, 5u);  // t = 5,10,15,20,25
  EXPECT_EQ(client.stats().uploads, 5u);                // unbuffered
  sim.run_until(minutes(25) + seconds(2));  // let the last transfer land
  EXPECT_EQ(drain_sink(), 5u);
}

TEST_F(ClientTest, StopHaltsSensing) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_2_9("c1", ""));
  client.start();
  sim.run_until(minutes(11));
  client.stop();
  sim.run_until(minutes(60));
  EXPECT_EQ(client.stats().observations_recorded, 2u);
  EXPECT_FALSE(client.running());
}

TEST_F(ClientTest, BufferedVersionBatchesUploads) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_3("c1", "", 10));
  client.start();
  sim.run_until(minutes(5 * 9));  // 9 observations: below buffer
  EXPECT_EQ(client.stats().uploads, 0u);
  EXPECT_EQ(client.buffered(), 9u);
  sim.run_until(minutes(5 * 10));  // 10th triggers the flush
  EXPECT_EQ(client.stats().uploads, 1u);
  EXPECT_EQ(client.buffered(), 0u);
  std::vector<Value> payloads;
  sim.run_until(minutes(51));  // let the transfer complete
  drain_sink(&payloads);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0].at("observations").as_array().size(), 10u);
  EXPECT_EQ(payloads[0].get_string("client"), "c1");
}

TEST_F(ClientTest, DeferredUploadsRetryNextCycle) {
  // Build a phone with deterministic connectivity: we exploit that
  // always_connected params yield a fully connected trace and instead
  // test deferral by making the device offline through a trace generated
  // with extreme parameters (p_start_connected=0, huge mean_down).
  phone::PhoneConfig pc = phone_config();
  pc.connectivity.p_start_connected = 0.0;
  pc.connectivity.p_long_down = 1.0;
  pc.connectivity.mean_down_long = days(10);  // offline for the whole run
  phone::Phone phone(pc);
  GoFlowClient client = make_client(phone, ClientConfig::v1_2_9("c1", ""));
  client.start();
  sim.run_until(hours(1));
  EXPECT_EQ(client.stats().uploads, 0u);
  EXPECT_GT(client.stats().deferred_uploads, 0u);
  EXPECT_EQ(client.buffered(), client.stats().observations_recorded);
  EXPECT_EQ(drain_sink(), 0u);
}

TEST_F(ClientTest, NoSharingKeepsDataLocal) {
  phone::Phone phone(phone_config());
  ClientConfig config = ClientConfig::v1_2_9("c1", "");
  config.share = false;
  GoFlowClient client = make_client(phone, config);
  client.start();
  sim.run_until(hours(1));
  EXPECT_GT(client.stats().observations_recorded, 0u);
  EXPECT_EQ(client.stats().uploads, 0u);
  EXPECT_EQ(client.stats().dropped_not_shared,
            client.stats().observations_recorded);
  EXPECT_EQ(client.buffered(), 0u);
}

TEST_F(ClientTest, SenseNowRecordsManualObservation) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_3("c1", "", 5));
  phone::Observation obs = client.sense_now(phone::SensingMode::kManual);
  EXPECT_EQ(obs.mode, phone::SensingMode::kManual);
  EXPECT_EQ(client.buffered(), 1u);
}

TEST_F(ClientTest, FlushForcesPartialBatch) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_3("c1", "", 10));
  client.sense_now(phone::SensingMode::kManual);
  client.sense_now(phone::SensingMode::kManual);
  EXPECT_EQ(client.buffered(), 2u);
  EXPECT_TRUE(client.flush());
  EXPECT_EQ(client.buffered(), 0u);
  EXPECT_EQ(client.stats().uploads, 1u);
  EXPECT_FALSE(client.flush());  // nothing left
}

TEST_F(ClientTest, DeliveryRecordsTrackDelay) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_3("c1", "", 10));
  client.start();
  sim.run_until(minutes(5 * 10) + seconds(5));
  ASSERT_EQ(client.deliveries().size(), 10u);
  // First observation captured at 5 min, delivered when the batch flushed
  // at 50 min: delay ~ 45 min.
  const DeliveryRecord& first = client.deliveries().front();
  EXPECT_NEAR(static_cast<double>(first.delay()),
              static_cast<double>(minutes(45)), static_cast<double>(seconds(2)));
  // Last observation flushed immediately: tiny delay (just latency).
  const DeliveryRecord& last = client.deliveries().back();
  EXPECT_LT(last.delay(), seconds(2));
  EXPECT_EQ(first.batch_size, 10u);
}

TEST_F(ClientTest, V11PaysConnectionOverhead) {
  phone::PhoneConfig pc1 = phone_config(3), pc2 = phone_config(3);
  phone::Phone p_v11(pc1), p_v129(pc2);
  GoFlowClient v11 = make_client(p_v11, ClientConfig::v1_1("a", ""));
  GoFlowClient v129 = make_client(p_v129, ClientConfig::v1_2_9("b", ""));
  v11.start();
  v129.start();
  sim.run_until(hours(4));
  EXPECT_GT(p_v11.radio().total_energy_mj(), p_v129.radio().total_energy_mj());
}

TEST_F(ClientTest, BufferingSavesRadioEnergy) {
  // The §5.3 headline: buffered uploads consume much less radio energy.
  phone::PhoneConfig pc1 = phone_config(4), pc2 = phone_config(4);
  pc1.technology = pc2.technology = net::Technology::kCell3G;
  phone::Phone unbuffered_phone(pc1), buffered_phone(pc2);
  ClientConfig unbuffered = ClientConfig::v1_2_9("a", "");
  unbuffered.sense_period = minutes(1);
  ClientConfig buffered = ClientConfig::v1_3("b", "", 10);
  buffered.sense_period = minutes(1);
  GoFlowClient cu = make_client(unbuffered_phone, unbuffered);
  GoFlowClient cb = make_client(buffered_phone, buffered);
  cu.start();
  cb.start();
  sim.run_until(hours(7));
  EXPECT_GT(unbuffered_phone.radio().total_energy_mj(),
            buffered_phone.radio().total_energy_mj() * 3.0);
}

TEST_F(ClientTest, PublishPayloadIsParsableBatch) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_2_9("c9", ""));
  client.sense_now(phone::SensingMode::kJourney);
  sim.run();  // deliver pending transfer event
  std::vector<Value> payloads;
  drain_sink(&payloads);
  ASSERT_EQ(payloads.size(), 1u);
  const Value& batch = payloads[0];
  EXPECT_EQ(batch.get_string("app"), "soundcity");
  const Array& obs = batch.at("observations").as_array();
  ASSERT_EQ(obs.size(), 1u);
  phone::Observation parsed = phone::Observation::from_document(obs[0]);
  EXPECT_EQ(parsed.mode, phone::SensingMode::kJourney);
  EXPECT_EQ(parsed.user, "u1");
}

TEST_F(ClientTest, PiggybackFlushesEarlyOnWarmRadio) {
  phone::PhoneConfig pc = phone_config();
  pc.foreground.sessions_per_hour = 60.0;  // radio warm often
  pc.foreground.mean_session = minutes(2);
  phone::Phone phone(pc);
  ClientConfig config = ClientConfig::v1_3("c1", "", 50);  // huge buffer
  config.piggyback = true;
  GoFlowClient client = make_client(phone, config);
  client.start();
  sim.run_until(hours(6));
  // The buffer threshold (50) was never reached within 6h (72 obs max,
  // but piggyback flushes keep draining it) — uploads happened anyway.
  EXPECT_GT(client.stats().piggyback_uploads, 0u);
  EXPECT_GT(client.stats().uploads, 0u);
}

TEST_F(ClientTest, PiggybackDisabledNeverFlushesEarly) {
  phone::PhoneConfig pc = phone_config();
  pc.foreground.sessions_per_hour = 60.0;
  phone::Phone phone(pc);
  ClientConfig config = ClientConfig::v1_3("c1", "", 50);
  config.piggyback = false;
  GoFlowClient client = make_client(phone, config);
  client.start();
  sim.run_until(hours(3));
  EXPECT_EQ(client.stats().piggyback_uploads, 0u);
  EXPECT_EQ(client.stats().uploads, 0u);  // 36 obs < 50 threshold
  EXPECT_EQ(client.buffered(), client.stats().observations_recorded);
}

TEST_F(ClientTest, PiggybackSavesEnergyVsSamePeriodicFlushing) {
  // Same workload on 3G: piggyback rides warm-radio windows (ramp paid by
  // the foreground app), periodic buffer-10 pays cold ramps.
  phone::PhoneConfig pc1 = phone_config(8), pc2 = phone_config(8);
  pc1.technology = pc2.technology = net::Technology::kCell3G;
  pc1.foreground.sessions_per_hour = 12.0;
  pc2.foreground.sessions_per_hour = 12.0;
  phone::Phone piggy_phone(pc1), periodic_phone(pc2);
  ClientConfig piggy = ClientConfig::v1_3("a", "", 10);
  piggy.piggyback = true;
  ClientConfig periodic = ClientConfig::v1_3("b", "", 10);
  GoFlowClient cp = make_client(piggy_phone, piggy);
  GoFlowClient cq = make_client(periodic_phone, periodic);
  cp.start();
  cq.start();
  sim.run_until(days(1));
  double piggy_per_obs =
      piggy_phone.radio().total_energy_mj() /
      static_cast<double>(cp.stats().observations_uploaded);
  double periodic_per_obs =
      periodic_phone.radio().total_energy_mj() /
      static_cast<double>(cq.stats().observations_uploaded);
  EXPECT_LT(piggy_per_obs, periodic_per_obs);
}

TEST_F(ClientTest, MaxBufferAgeForcesFlush) {
  phone::Phone phone(phone_config());
  ClientConfig config = ClientConfig::v1_3("c1", "", 100);
  config.max_buffer_age = minutes(30);
  GoFlowClient client = make_client(phone, config);
  client.start();
  sim.run_until(hours(2));
  EXPECT_GT(client.stats().age_forced_uploads, 0u);
  // No delivered observation waited much longer than the age bound plus
  // one sensing period.
  for (const DeliveryRecord& r : client.deliveries())
    EXPECT_LE(r.delay(), minutes(36));
}

TEST_F(ClientTest, MobilityGateSkipsStationaryTicks) {
  phone::Phone phone(phone_config());
  ClientConfig config = ClientConfig::v1_2_9("c1", "");
  config.still_backoff = 4;  // stationary device senses every 4th tick
  GoFlowClient client = make_client(phone, config);  // fixed position fn
  client.start();
  sim.run_until(hours(4));  // 48 ticks
  // First tick always senses (no previous position); after that, only
  // every 4th stationary tick.
  EXPECT_GT(client.stats().skipped_still, 30u);
  EXPECT_LT(client.stats().observations_recorded, 16u);
  EXPECT_GT(client.stats().observations_recorded, 8u);
}

TEST_F(ClientTest, MobilityGateDisabledByDefault) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_2_9("c1", ""));
  client.start();
  sim.run_until(hours(1));
  EXPECT_EQ(client.stats().skipped_still, 0u);
  EXPECT_EQ(client.stats().observations_recorded, 12u);
}

TEST_F(ClientTest, MobilityGateSensesWhileMoving) {
  phone::PhoneConfig pc = phone_config();
  phone::Phone phone(pc);
  ClientConfig config = ClientConfig::v1_2_9("c1", "");
  config.exchange = "E1";
  config.still_backoff = 4;
  // A walking user: position advances ~100 m per 5-min tick.
  GoFlowClient client(
      sim, broker, phone, config, [](TimeMs) { return 55.0; },
      [](TimeMs t) {
        return std::pair<double, double>{static_cast<double>(t) / 3000.0, 0.0};
      });
  client.start();
  sim.run_until(hours(2));
  EXPECT_EQ(client.stats().skipped_still, 0u);  // always moving
  EXPECT_EQ(client.stats().observations_recorded, 24u);
}

TEST_F(ClientTest, MobilityGateSavesEnergy) {
  phone::PhoneConfig pc1 = phone_config(5), pc2 = phone_config(5);
  phone::Phone gated_phone(pc1), plain_phone(pc2);
  ClientConfig gated = ClientConfig::v1_2_9("a", "");
  gated.still_backoff = 6;
  ClientConfig plain = ClientConfig::v1_2_9("b", "");
  GoFlowClient cg = make_client(gated_phone, gated);
  GoFlowClient cp = make_client(plain_phone, plain);
  cg.start();
  cp.start();
  sim.run_until(hours(8));
  EXPECT_LT(gated_phone.battery().discrete_drained_mj(),
            plain_phone.battery().discrete_drained_mj() / 2.0);
}

TEST_F(ClientTest, MobilityGateStillRetriesDeferredUploads) {
  phone::PhoneConfig pc = phone_config();
  pc.connectivity.p_start_connected = 0.0;
  pc.connectivity.p_long_down = 1.0;
  pc.connectivity.mean_down_long = hours(2);
  phone::Phone phone(pc);
  ClientConfig config = ClientConfig::v1_2_9("c1", "");
  config.still_backoff = 4;
  GoFlowClient client = make_client(phone, config);
  client.start();
  sim.run_until(hours(8));
  // The device reconnects at some point; everything sensed must have been
  // uploaded by then, even though most ticks were gated off.
  EXPECT_GT(client.stats().observations_recorded, 0u);
  EXPECT_EQ(client.buffered(), 0u);
}

TEST_F(ClientTest, JourneySessionRecordsAtChosenFrequency) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_3("c1", "", 100));
  // The user picks a 30 s frequency (paper: "defines the sensing
  // frequency").
  client.start_journey(seconds(30)).throw_if_error();
  EXPECT_TRUE(client.journey_active());
  sim.run_until(minutes(5));
  std::size_t recorded = client.stop_journey();
  EXPECT_FALSE(client.journey_active());
  EXPECT_EQ(recorded, 11u);  // t=0 plus 10 ticks over 5 minutes
  // stop_journey flushed the buffer despite it being under the threshold.
  EXPECT_EQ(client.buffered(), 0u);
  EXPECT_EQ(client.stats().uploads, 1u);
  sim.run_until(minutes(10));
  EXPECT_EQ(client.stats().observations_recorded, 11u);  // no more ticks
}

TEST_F(ClientTest, JourneyObservationsAreJourneyMode) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_3("c1", "", 100));
  client.start_journey(minutes(1)).throw_if_error();
  sim.run_until(minutes(3));
  client.stop_journey();
  sim.run();
  std::vector<Value> payloads;
  drain_sink(&payloads);
  ASSERT_EQ(payloads.size(), 1u);
  for (const Value& doc : payloads[0].at("observations").as_array())
    EXPECT_EQ(doc.get_string("mode"), "journey");
}

TEST_F(ClientTest, ConcurrentJourneyRejected) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_3("c1", "", 100));
  client.start_journey(minutes(1)).throw_if_error();
  Status second = client.start_journey(minutes(1));
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kConflict);
  client.stop_journey();
  // After stopping, a new journey may start.
  EXPECT_TRUE(client.start_journey(minutes(2)).ok());
  client.stop_journey();
  EXPECT_FALSE(client.start_journey(0).ok());  // invalid period
}

TEST_F(ClientTest, JourneyRunsAlongsideOpportunisticSensing) {
  phone::Phone phone(phone_config());
  GoFlowClient client = make_client(phone, ClientConfig::v1_2_9("c1", ""));
  client.start();  // opportunistic every 5 min
  sim.run_until(minutes(7));
  client.start_journey(minutes(1)).throw_if_error();
  sim.run_until(minutes(12));
  client.stop_journey();
  // 2 opportunistic (5, 10) + 6 journey (7..12).
  EXPECT_EQ(client.stats().observations_recorded, 8u);
}

TEST_F(ClientTest, VersionNames) {
  EXPECT_STREQ(app_version_name(AppVersion::kV1_1), "v1.1");
  EXPECT_STREQ(app_version_name(AppVersion::kV1_2_9), "v1.2.9");
  EXPECT_STREQ(app_version_name(AppVersion::kV1_3), "v1.3");
}

TEST_F(ClientTest, FactoriesSetPolicies) {
  ClientConfig v11 = ClientConfig::v1_1("c", "e");
  EXPECT_EQ(v11.version, AppVersion::kV1_1);
  EXPECT_EQ(v11.buffer_size, 1u);
  ClientConfig v13 = ClientConfig::v1_3("c", "e", 20);
  EXPECT_EQ(v13.version, AppVersion::kV1_3);
  EXPECT_EQ(v13.buffer_size, 20u);
  EXPECT_EQ(v13.exchange, "e");
}

}  // namespace
}  // namespace mps::client
