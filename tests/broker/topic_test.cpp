#include "broker/topic.h"

#include <gtest/gtest.h>

namespace mps::broker {
namespace {

TEST(Topic, ExactMatch) {
  EXPECT_TRUE(topic_matches("a.b.c", "a.b.c"));
  EXPECT_FALSE(topic_matches("a.b.c", "a.b.d"));
  EXPECT_FALSE(topic_matches("a.b.c", "a.b"));
  EXPECT_FALSE(topic_matches("a.b", "a.b.c"));
}

TEST(Topic, StarMatchesExactlyOneWord) {
  EXPECT_TRUE(topic_matches("a.*.c", "a.b.c"));
  EXPECT_TRUE(topic_matches("a.*.c", "a.x.c"));
  EXPECT_FALSE(topic_matches("a.*.c", "a.c"));
  EXPECT_FALSE(topic_matches("a.*.c", "a.b.b.c"));
  EXPECT_TRUE(topic_matches("*", "anything"));
  EXPECT_FALSE(topic_matches("*", "two.words"));
}

TEST(Topic, HashMatchesZeroOrMoreWords) {
  EXPECT_TRUE(topic_matches("#", ""));
  EXPECT_TRUE(topic_matches("#", "a"));
  EXPECT_TRUE(topic_matches("#", "a.b.c"));
  EXPECT_TRUE(topic_matches("a.#", "a"));
  EXPECT_TRUE(topic_matches("a.#", "a.b.c"));
  EXPECT_FALSE(topic_matches("a.#", "b.a"));
  EXPECT_TRUE(topic_matches("#.c", "c"));
  EXPECT_TRUE(topic_matches("#.c", "a.b.c"));
  EXPECT_FALSE(topic_matches("#.c", "c.d"));
}

TEST(Topic, HashInMiddle) {
  EXPECT_TRUE(topic_matches("a.#.c", "a.c"));
  EXPECT_TRUE(topic_matches("a.#.c", "a.b.c"));
  EXPECT_TRUE(topic_matches("a.#.c", "a.x.y.z.c"));
  EXPECT_FALSE(topic_matches("a.#.c", "a.b.d"));
}

TEST(Topic, MultipleWildcards) {
  EXPECT_TRUE(topic_matches("*.*", "a.b"));
  EXPECT_FALSE(topic_matches("*.*", "a"));
  EXPECT_TRUE(topic_matches("#.#", "a.b.c"));
  EXPECT_TRUE(topic_matches("#.#", ""));
  EXPECT_TRUE(topic_matches("a.*.#", "a.b"));
  EXPECT_TRUE(topic_matches("a.*.#", "a.b.c.d"));
  EXPECT_FALSE(topic_matches("a.*.#", "a"));
}

TEST(Topic, PaperFigure3Keys) {
  // Location+datatype bindings as used by GoFlow's channel management.
  EXPECT_TRUE(topic_matches("FR75013.Feedback.#", "FR75013.Feedback.mob2"));
  EXPECT_FALSE(topic_matches("FR75013.Feedback.#", "FR92120.Feedback.mob2"));
  EXPECT_TRUE(topic_matches("FR92120.Journey.#", "FR92120.Journey.user7.pub"));
  EXPECT_TRUE(topic_matches("*.Feedback.#", "FR75013.Feedback.mob1"));
}

TEST(Topic, EmptyKeyAndPattern) {
  EXPECT_TRUE(topic_matches("", ""));
  EXPECT_FALSE(topic_matches("", "a"));
  EXPECT_FALSE(topic_matches("a", ""));
}

TEST(Topic, ValidRoutingKey) {
  EXPECT_TRUE(valid_routing_key("a.b.c"));
  EXPECT_TRUE(valid_routing_key(""));
  EXPECT_FALSE(valid_routing_key(std::string(256, 'x')));
}

TEST(Topic, ValidBindingPattern) {
  EXPECT_TRUE(valid_binding_pattern("a.*.#"));
  EXPECT_TRUE(valid_binding_pattern("plain.words"));
  EXPECT_FALSE(valid_binding_pattern("a.*b"));
  EXPECT_FALSE(valid_binding_pattern("a#.b"));
  EXPECT_FALSE(valid_binding_pattern(std::string(256, 'x')));
}

// Property: '#'-free patterns match only keys with the same word count.
class TopicWordCountTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {};

TEST_P(TopicWordCountTest, StarPreservesWordCount) {
  auto [pattern, key] = GetParam();
  auto words = [](std::string_view s) {
    std::size_t n = 1;
    for (char c : s)
      if (c == '.') ++n;
    return n;
  };
  if (topic_matches(pattern, key) &&
      std::string_view(pattern).find('#') == std::string_view::npos) {
    EXPECT_EQ(words(pattern), words(key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TopicWordCountTest,
    ::testing::Values(std::make_pair("a.*", "a.b"), std::make_pair("*", "a"),
                      std::make_pair("*.*.c", "a.b.c"),
                      std::make_pair("a.*", "a.b.c"),
                      std::make_pair("x.y", "x.y")));

}  // namespace
}  // namespace mps::broker
