#include "broker/broker.h"

#include <gtest/gtest.h>

namespace mps::broker {
namespace {

Value payload(int n) { return Value(Object{{"n", Value(n)}}); }

class BrokerTest : public ::testing::Test {
 protected:
  Broker broker;
};

TEST_F(BrokerTest, DeclareExchangeIdempotent) {
  EXPECT_TRUE(broker.declare_exchange("e", ExchangeType::kTopic).ok());
  EXPECT_TRUE(broker.declare_exchange("e", ExchangeType::kTopic).ok());
  EXPECT_TRUE(broker.has_exchange("e"));
}

TEST_F(BrokerTest, RedeclareExchangeDifferentTypeConflicts) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  Status s = broker.declare_exchange("e", ExchangeType::kFanout);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kConflict);
}

TEST_F(BrokerTest, PublishToMissingExchangeFails) {
  auto r = broker.publish("nope", "k", payload(1));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
}

TEST_F(BrokerTest, DirectExchangeExactKey) {
  broker.declare_exchange("e", ExchangeType::kDirect).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "red").throw_if_error();
  broker.publish("e", "red", payload(1)).value_or_throw();
  broker.publish("e", "blue", payload(2)).value_or_throw();
  EXPECT_EQ(broker.queue_depth("q"), 1u);
  auto m = broker.pop("q");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.get_int("n"), 1);
  EXPECT_EQ(m->routing_key, "red");
}

TEST_F(BrokerTest, FanoutIgnoresKeys) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q1").throw_if_error();
  broker.declare_queue("q2").throw_if_error();
  broker.bind_queue("e", "q1", "whatever").throw_if_error();
  broker.bind_queue("e", "q2", "").throw_if_error();
  auto r = broker.publish("e", "any.key", payload(7)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 2u);
  EXPECT_EQ(broker.queue_depth("q1"), 1u);
  EXPECT_EQ(broker.queue_depth("q2"), 1u);
}

TEST_F(BrokerTest, TopicExchangeWildcards) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  broker.declare_queue("paris").throw_if_error();
  broker.declare_queue("all").throw_if_error();
  broker.bind_queue("e", "paris", "FR75013.#").throw_if_error();
  broker.bind_queue("e", "all", "#").throw_if_error();
  broker.publish("e", "FR75013.Feedback", payload(1)).value_or_throw();
  broker.publish("e", "FR92120.Feedback", payload(2)).value_or_throw();
  EXPECT_EQ(broker.queue_depth("paris"), 1u);
  EXPECT_EQ(broker.queue_depth("all"), 2u);
}

TEST_F(BrokerTest, ExchangeToExchangeRouting) {
  // Figure 3 topology: client exchange E1 -> app exchange SC -> GoFlow queue.
  broker.declare_exchange("E1", ExchangeType::kTopic).throw_if_error();
  broker.declare_exchange("SC", ExchangeType::kTopic).throw_if_error();
  broker.declare_queue("GF").throw_if_error();
  broker.bind_exchange("E1", "SC", "#").throw_if_error();
  broker.bind_queue("SC", "GF", "#").throw_if_error();
  auto r = broker.publish("E1", "obs.noise", payload(3)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 1u);
  auto m = broker.pop("GF");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.get_int("n"), 3);
  EXPECT_EQ(m->exchange, "E1");  // original exchange preserved
}

TEST_F(BrokerTest, ExchangeCycleDoesNotLoop) {
  broker.declare_exchange("a", ExchangeType::kFanout).throw_if_error();
  broker.declare_exchange("b", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_exchange("a", "b", "").throw_if_error();
  broker.bind_exchange("b", "a", "").throw_if_error();
  broker.bind_queue("b", "q", "").throw_if_error();
  auto r = broker.publish("a", "k", payload(1)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 1u);
  EXPECT_EQ(broker.queue_depth("q"), 1u);
}

TEST_F(BrokerTest, UnroutableCounted) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  auto r = broker.publish("e", "no.listeners", payload(1)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 0u);
  EXPECT_EQ(broker.stats().unroutable, 1u);
}

TEST_F(BrokerTest, QueueOverflowDropsHead) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  QueueOptions opt;
  opt.max_length = 3;
  broker.declare_queue("q", opt).throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  for (int i = 0; i < 5; ++i) broker.publish("e", "", payload(i)).value_or_throw();
  EXPECT_EQ(broker.queue_depth("q"), 3u);
  EXPECT_EQ(broker.stats().dropped_overflow, 2u);
  // Oldest two were dropped -> head is payload(2).
  EXPECT_EQ(broker.pop("q")->payload.get_int("n"), 2);
}

TEST_F(BrokerTest, PopEmptyQueue) {
  broker.declare_queue("q").throw_if_error();
  EXPECT_FALSE(broker.pop("q").has_value());
  EXPECT_FALSE(broker.pop("missing").has_value());
}

TEST_F(BrokerTest, FifoOrderPreserved) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  for (int i = 0; i < 10; ++i) broker.publish("e", "", payload(i)).value_or_throw();
  for (int i = 0; i < 10; ++i) {
    auto m = broker.pop("q");
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload.get_int("n"), i);
  }
}

TEST_F(BrokerTest, SequenceNumbersIncrease) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  auto r1 = broker.publish("e", "", payload(1)).value_or_throw();
  auto r2 = broker.publish("e", "", payload(2)).value_or_throw();
  EXPECT_LT(r1.sequence, r2.sequence);
}

TEST_F(BrokerTest, PushConsumerReceivesBufferedAndLive) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1)).value_or_throw();
  std::vector<int> seen;
  auto tag = broker.subscribe("q", [&](const Message& m) {
    seen.push_back(static_cast<int>(m.payload.get_int("n")));
  }).value_or_throw();
  EXPECT_EQ(seen, (std::vector<int>{1}));  // buffered drained on subscribe
  broker.publish("e", "", payload(2)).value_or_throw();
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));  // live push
  EXPECT_EQ(broker.queue_depth("q"), 0u);
  broker.unsubscribe(tag).throw_if_error();
  broker.publish("e", "", payload(3)).value_or_throw();
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(broker.queue_depth("q"), 1u);  // buffers again after unsubscribe
}

TEST_F(BrokerTest, CompetingConsumersRoundRobin) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  std::vector<int> a, b;
  broker.subscribe("q", [&](const Message& m) {
    a.push_back(static_cast<int>(m.payload.get_int("n")));
  }).value_or_throw();
  broker.subscribe("q", [&](const Message& m) {
    b.push_back(static_cast<int>(m.payload.get_int("n")));
  }).value_or_throw();
  for (int i = 0; i < 6; ++i) broker.publish("e", "", payload(i)).value_or_throw();
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 3u);
}

TEST_F(BrokerTest, SubscribeMissingQueueFails) {
  auto r = broker.subscribe("nope", [](const Message&) {});
  EXPECT_FALSE(r.ok());
}

TEST_F(BrokerTest, UnsubscribeUnknownTagFails) {
  EXPECT_FALSE(broker.unsubscribe(12345).ok());
}

TEST_F(BrokerTest, DeleteQueueRemovesBindings) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.delete_queue("q").throw_if_error();
  auto r = broker.publish("e", "", payload(1)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 0u);
  EXPECT_FALSE(broker.delete_queue("q").ok());
}

TEST_F(BrokerTest, DeleteExchangeRemovesIncomingBindings) {
  broker.declare_exchange("src", ExchangeType::kFanout).throw_if_error();
  broker.declare_exchange("dst", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_exchange("src", "dst", "").throw_if_error();
  broker.bind_queue("dst", "q", "").throw_if_error();
  broker.delete_exchange("dst").throw_if_error();
  auto r = broker.publish("src", "", payload(1)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 0u);
}

TEST_F(BrokerTest, BindToMissingEntitiesFails) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  EXPECT_FALSE(broker.bind_queue("e", "missing", "#").ok());
  EXPECT_FALSE(broker.bind_queue("missing", "q", "#").ok());
  EXPECT_FALSE(broker.bind_exchange("e", "missing", "#").ok());
}

TEST_F(BrokerTest, InvalidBindingPatternRejected) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  Status s = broker.bind_queue("e", "q", "bad*pattern");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(BrokerTest, DuplicateBindingIsIdempotent) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "#").throw_if_error();
  broker.bind_queue("e", "q", "#").throw_if_error();
  auto r = broker.publish("e", "k", payload(1)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 1u);  // one copy, not two
}

TEST_F(BrokerTest, UnbindStopsDelivery) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "#").throw_if_error();
  broker.unbind_queue("e", "q", "#").throw_if_error();
  auto r = broker.publish("e", "k", payload(1)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 0u);
  EXPECT_FALSE(broker.unbind_queue("e", "q", "#").ok());
}

TEST_F(BrokerTest, MultipleBindingsDifferentKeysDeliverOncePerMatch) {
  broker.declare_exchange("e", ExchangeType::kTopic).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "a.#").throw_if_error();
  broker.bind_queue("e", "q", "#.b").throw_if_error();
  // Both bindings match -> RabbitMQ delivers one copy per matching binding
  // between one exchange and one queue? No: RabbitMQ delivers only one copy
  // per queue. Our model delivers per matching binding; assert the actual
  // contract so regressions are visible.
  auto r = broker.publish("e", "a.b", payload(1)).value_or_throw();
  EXPECT_EQ(r.queues_delivered, 2u);
}

TEST_F(BrokerTest, StatsAggregate) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1)).value_or_throw();
  broker.pop("q");
  const BrokerStats& s = broker.stats();
  EXPECT_EQ(s.published, 1u);
  EXPECT_EQ(s.delivered, 1u);
  EXPECT_EQ(s.consumed, 1u);
}

TEST_F(BrokerTest, PublishedAtPropagated) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1), 12345).value_or_throw();
  EXPECT_EQ(broker.pop("q")->published_at, 12345);
}

TEST_F(BrokerTest, MessageTtlExpiresOldMessages) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  QueueOptions opt;
  opt.message_ttl = minutes(10);
  broker.declare_queue("q", opt).throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1), minutes(0)).value_or_throw();
  broker.publish("e", "", payload(2), minutes(8)).value_or_throw();
  // At t=12min the first message (published at 0) expired; second lives.
  auto m = broker.pop("q", minutes(12));
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.get_int("n"), 2);
  EXPECT_EQ(broker.stats().expired, 1u);
}

TEST_F(BrokerTest, TtlBoundaryIsInclusiveExpiry) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  QueueOptions opt;
  opt.message_ttl = minutes(10);
  broker.declare_queue("q", opt).throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1), 0).value_or_throw();
  EXPECT_EQ(broker.expire_messages("q", minutes(10)), 1u);
  EXPECT_EQ(broker.queue_depth("q"), 0u);
}

TEST_F(BrokerTest, NoTtlNeverExpires) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1), 0).value_or_throw();
  EXPECT_EQ(broker.expire_messages("q", days(365)), 0u);
  EXPECT_TRUE(broker.pop("q", days(365)).has_value());
}

TEST_F(BrokerTest, PurgeQueue) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  for (int i = 0; i < 5; ++i) broker.publish("e", "", payload(i)).value_or_throw();
  EXPECT_EQ(broker.purge_queue("q"), 5u);
  EXPECT_EQ(broker.queue_depth("q"), 0u);
  EXPECT_EQ(broker.purge_queue("q"), 0u);
  EXPECT_EQ(broker.purge_queue("missing"), 0u);
}

TEST_F(BrokerTest, ReliablePopAckRemovesMessage) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1)).value_or_throw();
  auto delivery = broker.pop_reliable("q");
  ASSERT_TRUE(delivery.has_value());
  EXPECT_FALSE(delivery->message.redelivered);
  EXPECT_EQ(broker.queue_depth("q"), 0u);
  EXPECT_EQ(broker.unacked_count(), 1u);
  broker.ack(delivery->delivery_tag).throw_if_error();
  EXPECT_EQ(broker.unacked_count(), 0u);
  EXPECT_FALSE(broker.pop_reliable("q").has_value());
}

TEST_F(BrokerTest, NackRequeuesAtHeadWithRedeliveredFlag) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1)).value_or_throw();
  broker.publish("e", "", payload(2)).value_or_throw();
  auto first = broker.pop_reliable("q");
  ASSERT_TRUE(first.has_value());
  broker.nack(first->delivery_tag, /*requeue=*/true).throw_if_error();
  // Redelivered message comes back first, flagged.
  auto again = broker.pop_reliable("q");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->message.payload.get_int("n"), 1);
  EXPECT_TRUE(again->message.redelivered);
  broker.ack(again->delivery_tag).throw_if_error();
  auto second = broker.pop_reliable("q");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->message.payload.get_int("n"), 2);
}

TEST_F(BrokerTest, NackWithoutRequeueDrops) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1)).value_or_throw();
  auto delivery = broker.pop_reliable("q");
  ASSERT_TRUE(delivery.has_value());
  broker.nack(delivery->delivery_tag, /*requeue=*/false).throw_if_error();
  EXPECT_EQ(broker.queue_depth("q"), 0u);
  EXPECT_EQ(broker.unacked_count(), 0u);
}

TEST_F(BrokerTest, AckUnknownTagFails) {
  EXPECT_FALSE(broker.ack(9999).ok());
  EXPECT_FALSE(broker.nack(9999, true).ok());
}

TEST_F(BrokerTest, DoubleAckFails) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1)).value_or_throw();
  auto delivery = broker.pop_reliable("q");
  broker.ack(delivery->delivery_tag).throw_if_error();
  EXPECT_FALSE(broker.ack(delivery->delivery_tag).ok());
}

TEST_F(BrokerTest, NackAfterQueueDeletionDropsGracefully) {
  broker.declare_exchange("e", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("q").throw_if_error();
  broker.bind_queue("e", "q", "").throw_if_error();
  broker.publish("e", "", payload(1)).value_or_throw();
  auto delivery = broker.pop_reliable("q");
  broker.delete_queue("q").throw_if_error();
  EXPECT_TRUE(broker.nack(delivery->delivery_tag, true).ok());
  EXPECT_EQ(broker.unacked_count(), 0u);
}

TEST_F(BrokerTest, ConsumerCanPublishReentrantly) {
  broker.declare_exchange("in", ExchangeType::kFanout).throw_if_error();
  broker.declare_exchange("out", ExchangeType::kFanout).throw_if_error();
  broker.declare_queue("qin").throw_if_error();
  broker.declare_queue("qout").throw_if_error();
  broker.bind_queue("in", "qin", "").throw_if_error();
  broker.bind_queue("out", "qout", "").throw_if_error();
  broker.subscribe("qin", [&](const Message& m) {
    broker.publish("out", "", m.payload).value_or_throw();
  }).value_or_throw();
  broker.publish("in", "", payload(9)).value_or_throw();
  EXPECT_EQ(broker.queue_depth("qout"), 1u);
}

}  // namespace
}  // namespace mps::broker
