// Property tests of the compiled routing trie against topic_matches, the
// reference oracle: for random (and adversarial) pattern sets and routing
// keys, TopicTrie::match must return exactly the indices of the patterns
// the oracle accepts. A second suite checks the broker end to end by
// publishing identical traffic through a compiled and a linear broker.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "broker/broker.h"
#include "broker/topic.h"
#include "broker/topic_trie.h"
#include "common/rng.h"

namespace mps::broker {
namespace {

/// Indices of `patterns` matching `key` per the oracle, ascending.
std::vector<std::uint32_t> oracle_match(
    const std::vector<std::string>& patterns, const std::string& key) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < patterns.size(); ++i)
    if (topic_matches(patterns[i], key)) out.push_back(i);
  return out;
}

std::vector<std::uint32_t> trie_match(const TopicTrie& trie,
                                      const std::string& key) {
  std::vector<std::uint32_t> out;
  trie.match(key, out);
  return out;
}

TEST(TopicTrieTest, HashEdgeCases) {
  // '#' matches zero words, so these pattern/key pairs are the ones a
  // naive "at least one word" trie edge gets wrong.
  const std::vector<std::string> patterns = {
      "#",     "a.#",   "#.a",   "a.#.b", "#.#",  "*",
      "a..b",  "",      "#.b.#", "*.#",   "#.*",  "a.*.#",
  };
  TopicTrie trie;
  for (std::uint32_t i = 0; i < patterns.size(); ++i)
    trie.add(patterns[i], i);
  const std::vector<std::string> keys = {
      "",      "a",     "b",         "a.b",     "b.a",    "a.b.c",
      "a..b",  ".",     "..",        "a.",      ".a",     "a.a.b",
      "a.b.b", "a.b.a.b", "b.b.b.b", "a.x.y.b", "a.b.c.d.e",
  };
  for (const std::string& key : keys)
    EXPECT_EQ(trie_match(trie, key), oracle_match(patterns, key))
        << "key=\"" << key << "\"";
}

TEST(TopicTrieTest, ClearForgetsPatterns) {
  TopicTrie trie;
  trie.add("a.#", 0);
  EXPECT_FALSE(trie.empty());
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie_match(trie, "a.b").empty());
  trie.add("a.b", 7);
  EXPECT_EQ(trie_match(trie, "a.b"), (std::vector<std::uint32_t>{7}));
}

TEST(TopicTrieTest, DuplicatePatternsKeepDistinctIndices) {
  TopicTrie trie;
  trie.add("a.*", 0);
  trie.add("a.*", 3);
  trie.add("a.b", 1);
  EXPECT_EQ(trie_match(trie, "a.b"), (std::vector<std::uint32_t>{0, 1, 3}));
}

std::string random_words(Rng& rng, bool wildcards) {
  // Small alphabet maximizes collisions between patterns and keys; empty
  // words ("a..b", leading/trailing dots) are deliberately included.
  static const char* literal[] = {"a", "b", "c", "FR75013", ""};
  static const char* wild[] = {"a", "b", "c", "FR75013", "", "*", "#"};
  auto n = rng.uniform_int(0, 4);
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back('.');
    out += wildcards ? wild[rng.uniform_int(0, 6)]
                     : literal[rng.uniform_int(0, 4)];
  }
  return out;
}

class TriePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TriePropertyTest, RandomPatternsAgreeWithOracle) {
  Rng rng(GetParam());
  std::vector<std::string> patterns;
  TopicTrie trie;
  for (std::uint32_t i = 0; i < 40; ++i) {
    patterns.push_back(random_words(rng, /*wildcards=*/true));
    trie.add(patterns.back(), i);
  }
  for (int i = 0; i < 400; ++i) {
    std::string key = random_words(rng, /*wildcards=*/false);
    EXPECT_EQ(trie_match(trie, key), oracle_match(patterns, key))
        << "key=\"" << key << "\"";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

/// Builds the same random topology into both brokers and returns the
/// (exchange, queue) name lists.
struct Topology {
  std::vector<std::string> exchanges;
  std::vector<std::string> queues;
};

Topology build_random_topology(Rng& rng, Broker& compiled, Broker& linear) {
  Topology topo;
  for (int i = 0; i < 5; ++i) {
    std::string name = "ex" + std::to_string(i);
    // ex0 is always a topic exchange so every seed exercises the trie.
    auto type = i == 0 ? ExchangeType::kTopic
                       : static_cast<ExchangeType>(rng.uniform_int(0, 2));
    compiled.declare_exchange(name, type).throw_if_error();
    linear.declare_exchange(name, type).throw_if_error();
    topo.exchanges.push_back(name);
  }
  for (int i = 0; i < 4; ++i) {
    std::string name = "q" + std::to_string(i);
    compiled.declare_queue(name).throw_if_error();
    linear.declare_queue(name).throw_if_error();
    topo.queues.push_back(name);
  }
  return topo;
}

class CompiledRoutingPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompiledRoutingPropertyTest, CompiledBrokerMatchesLinearBroker) {
  Rng rng(GetParam());
  Broker compiled;
  Broker linear;
  linear.set_compiled_routing(false);
  ASSERT_TRUE(compiled.compiled_routing());
  ASSERT_FALSE(linear.compiled_routing());
  Topology topo = build_random_topology(rng, compiled, linear);

  // Interleave binds, unbinds and publishes so the trie and the route
  // cache are rebuilt/invalidated mid-traffic, not just at setup time.
  struct Bound {
    std::string src, dst, key;
    bool to_queue;
  };
  std::vector<Bound> bound;
  for (int round = 0; round < 300; ++round) {
    double action = rng.uniform(0.0, 1.0);
    if (action < 0.25) {
      const std::string& src =
          topo.exchanges[static_cast<std::size_t>(rng.uniform_int(0, 4))];
      std::string pattern = random_words(rng, /*wildcards=*/true);
      if (rng.bernoulli(0.5)) {
        const std::string& dst =
            topo.exchanges[static_cast<std::size_t>(rng.uniform_int(0, 4))];
        bool a = compiled.bind_exchange(src, dst, pattern).ok();
        bool b = linear.bind_exchange(src, dst, pattern).ok();
        ASSERT_EQ(a, b);
        if (a) bound.push_back({src, dst, pattern, false});
      } else {
        const std::string& q =
            topo.queues[static_cast<std::size_t>(rng.uniform_int(0, 3))];
        bool a = compiled.bind_queue(src, q, pattern).ok();
        bool b = linear.bind_queue(src, q, pattern).ok();
        ASSERT_EQ(a, b);
        if (a) bound.push_back({src, q, pattern, true});
      }
    } else if (action < 0.32 && !bound.empty()) {
      auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(bound.size()) - 1));
      const Bound& b = bound[idx];
      if (b.to_queue) {
        ASSERT_EQ(compiled.unbind_queue(b.src, b.dst, b.key).ok(),
                  linear.unbind_queue(b.src, b.dst, b.key).ok());
      } else {
        ASSERT_EQ(compiled.unbind_exchange(b.src, b.dst, b.key).ok(),
                  linear.unbind_exchange(b.src, b.dst, b.key).ok());
      }
      bound.erase(bound.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const std::string& exchange =
          topo.exchanges[static_cast<std::size_t>(rng.uniform_int(0, 4))];
      std::string key = random_words(rng, /*wildcards=*/false);
      auto a = compiled.publish(exchange, key, Value(Object{{"n", Value(round)}}));
      auto b = linear.publish(exchange, key, Value(Object{{"n", Value(round)}}));
      ASSERT_EQ(a.ok(), b.ok()) << "exchange=" << exchange << " key=" << key;
      if (a.ok()) {
        EXPECT_EQ(a.value_or_throw().queues_delivered,
                  b.value_or_throw().queues_delivered)
            << "exchange=" << exchange << " key=\"" << key << "\"";
      }
    }
  }
  for (const std::string& q : topo.queues)
    EXPECT_EQ(compiled.queue_depth(q), linear.queue_depth(q)) << q;
  // The compiled broker must actually have exercised the fast path.
  EXPECT_GT(compiled.stats().route_cache_hits +
                compiled.stats().route_cache_misses,
            0u);
  EXPECT_EQ(linear.stats().route_cache_hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledRoutingPropertyTest,
                         ::testing::Values(7, 11, 23, 42, 77, 101));

}  // namespace
}  // namespace mps::broker
