// Property tests of broker routing against a reference evaluation: a
// random topology of exchanges/queues/bindings is built, random messages
// are published, and deliveries are compared with a naive graph-walk
// oracle that re-implements the routing semantics independently.
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "broker/broker.h"
#include "broker/topic.h"
#include "common/rng.h"

namespace mps::broker {
namespace {

struct OracleTopology {
  struct Binding {
    std::string key;
    std::string destination;
    bool to_queue;
  };
  std::map<std::string, ExchangeType> exchanges;
  std::map<std::string, std::vector<Binding>> bindings;  // by source exchange
  std::set<std::string> queues;

  /// Expected delivery multiset for a publish.
  std::multiset<std::string> route(const std::string& exchange,
                                   const std::string& key) const {
    std::multiset<std::string> delivered;
    std::set<std::string> visited;
    walk(exchange, key, visited, delivered);
    return delivered;
  }

 private:
  static bool matches(ExchangeType type, const std::string& binding,
                      const std::string& key) {
    switch (type) {
      case ExchangeType::kFanout: return true;
      case ExchangeType::kDirect: return binding == key;
      case ExchangeType::kTopic: return topic_matches(binding, key);
    }
    return false;
  }

  void walk(const std::string& exchange, const std::string& key,
            std::set<std::string>& visited,
            std::multiset<std::string>& delivered) const {
    if (!visited.insert(exchange).second) return;
    auto type_it = exchanges.find(exchange);
    if (type_it == exchanges.end()) return;
    auto binding_it = bindings.find(exchange);
    if (binding_it == bindings.end()) return;
    for (const Binding& b : binding_it->second) {
      if (!matches(type_it->second, b.key, key)) continue;
      if (b.to_queue) {
        if (queues.count(b.destination) > 0) delivered.insert(b.destination);
      } else {
        walk(b.destination, key, visited, delivered);
      }
    }
  }
};

std::string random_key(Rng& rng, int max_words = 3) {
  static const char* words[] = {"a", "b", "c", "FR75013", "Feedback"};
  auto n = rng.uniform_int(1, max_words);
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back('.');
    out += words[rng.uniform_int(0, 4)];
  }
  return out;
}

std::string random_pattern(Rng& rng) {
  static const char* words[] = {"a", "b", "c", "FR75013", "Feedback", "*", "#"};
  auto n = rng.uniform_int(1, 3);
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out.push_back('.');
    out += words[rng.uniform_int(0, 6)];
  }
  return out;
}

class RoutingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingPropertyTest, RandomTopologiesAgreeWithOracle) {
  Rng rng(GetParam());
  Broker broker;
  OracleTopology oracle;

  // Build a random topology: 6 exchanges, 5 queues, ~20 bindings.
  std::vector<std::string> exchange_names, queue_names;
  for (int i = 0; i < 6; ++i) {
    std::string name = "ex" + std::to_string(i);
    auto type = static_cast<ExchangeType>(rng.uniform_int(0, 2));
    broker.declare_exchange(name, type).throw_if_error();
    oracle.exchanges[name] = type;
    exchange_names.push_back(name);
  }
  for (int i = 0; i < 5; ++i) {
    std::string name = "q" + std::to_string(i);
    broker.declare_queue(name).throw_if_error();
    oracle.queues.insert(name);
    queue_names.push_back(name);
  }
  auto oracle_has = [&](const std::string& src, const std::string& dst,
                        const std::string& key, bool to_queue) {
    for (const auto& b : oracle.bindings[src])
      if (b.destination == dst && b.key == key && b.to_queue == to_queue)
        return true;
    return false;
  };
  for (int i = 0; i < 20; ++i) {
    const std::string& src =
        exchange_names[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    std::string pattern = random_pattern(rng);
    if (rng.bernoulli(0.5)) {
      const std::string& dst =
          exchange_names[static_cast<std::size_t>(rng.uniform_int(0, 5))];
      // Mirror the broker's duplicate-binding idempotence in the oracle.
      if (broker.bind_exchange(src, dst, pattern).ok() &&
          !oracle_has(src, dst, pattern, false))
        oracle.bindings[src].push_back({pattern, dst, false});
    } else {
      const std::string& q =
          queue_names[static_cast<std::size_t>(rng.uniform_int(0, 4))];
      if (broker.bind_queue(src, q, pattern).ok() &&
          !oracle_has(src, q, pattern, true))
        oracle.bindings[src].push_back({pattern, q, true});
    }
  }

  // Publish random messages and compare depths with oracle expectations.
  std::map<std::string, std::size_t> expected_depth;
  for (int i = 0; i < 100; ++i) {
    const std::string& exchange =
        exchange_names[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    std::string key = random_key(rng);
    auto result =
        broker.publish(exchange, key, Value(Object{{"n", Value(i)}})).value_or_throw();
    std::multiset<std::string> expected = oracle.route(exchange, key);
    EXPECT_EQ(result.queues_delivered, expected.size())
        << "exchange=" << exchange << " key=" << key;
    for (const std::string& q : expected) ++expected_depth[q];
  }
  for (const std::string& q : queue_names)
    EXPECT_EQ(broker.queue_depth(q), expected_depth[q]) << q;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mps::broker
