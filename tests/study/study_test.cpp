#include "study/study.h"

#include <gtest/gtest.h>

namespace mps::study {
namespace {

crowd::Population tiny_population(std::uint64_t seed = 1) {
  crowd::PopulationConfig config;
  config.seed = seed;
  config.device_scale = 0.005;  // ~20 devices (min 1 per model)
  config.obs_scale = 0.02;
  config.horizon = days(20);
  return crowd::Population::generate(config);
}

StudyConfig tiny_config() {
  StudyConfig config;
  config.duration_days = 10;
  config.connectivity = net::ConnectivityParams::always_connected();
  return config;
}

struct Fixture {
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server{sim, broker, db};
};

TEST(Study, RunsEndToEndThroughMiddleware) {
  Fixture f;
  crowd::Population pop = tiny_population();
  StudyRunner runner(pop, tiny_config(), f.sim, f.broker, f.server);
  StudyReport report = runner.run();
  EXPECT_EQ(report.devices, pop.users().size());
  EXPECT_GT(report.observations_recorded, 50u);
  EXPECT_GT(report.uploads, 0u);
  // Everything that was uploaded reached the document store.
  EXPECT_EQ(report.observations_stored,
            f.db.collection("observations").size());
  EXPECT_GT(report.observations_stored, 0u);
}

TEST(Study, ConservationOfObservations) {
  // recorded = stored + still-buffered + locally-dropped (non-sharers).
  Fixture f;
  crowd::Population pop = tiny_population(2);
  StudyRunner runner(pop, tiny_config(), f.sim, f.broker, f.server);
  StudyReport report = runner.run();
  std::uint64_t dropped = 0;
  for (const client::GoFlowClient* c : runner.clients())
    dropped += c->stats().dropped_not_shared;
  EXPECT_EQ(report.observations_recorded,
            report.observations_stored + report.buffered_unsent + dropped);
}

TEST(Study, Deterministic) {
  auto run_once = [] {
    Fixture f;
    crowd::Population pop = tiny_population(3);
    StudyRunner runner(pop, tiny_config(), f.sim, f.broker, f.server);
    return runner.run();
  };
  StudyReport a = run_once();
  StudyReport b = run_once();
  EXPECT_EQ(a.observations_recorded, b.observations_recorded);
  EXPECT_EQ(a.observations_stored, b.observations_stored);
  EXPECT_EQ(a.uploads, b.uploads);
}

TEST(Study, QueryableThroughDataApi) {
  Fixture f;
  crowd::Population pop = tiny_population(4);
  StudyRunner runner(pop, tiny_config(), f.sim, f.broker, f.server);
  StudyReport report = runner.run();
  core::ObservationFilter filter;
  filter.app = "soundcity";
  EXPECT_EQ(
      f.server.count_observations(runner.admin_token(), filter).value_or_throw(),
      report.observations_stored);
  filter.localized_only = true;
  std::size_t localized =
      f.server.count_observations(runner.admin_token(), filter).value_or_throw();
  // Roughly the catalog's ~40% localized share.
  EXPECT_GT(localized, report.observations_stored / 5);
  EXPECT_LT(localized, report.observations_stored * 4 / 5);
}

TEST(Study, DisconnectionsDeferUploads) {
  Fixture f;
  crowd::Population pop = tiny_population(5);
  StudyConfig config = tiny_config();
  config.connectivity = net::ConnectivityParams{};  // realistic, with downs
  config.connectivity.p_long_down = 0.5;
  config.connectivity.mean_down_long = hours(12);
  StudyRunner runner(pop, config, f.sim, f.broker, f.server);
  StudyReport report = runner.run();
  EXPECT_GT(report.deferred_uploads, 0u);
  EXPECT_GT(report.mean_delay_ms, 0.0);
}

TEST(Study, BufferingRaisesMeanDelay) {
  auto mean_delay = [](std::size_t buffer_size) {
    Fixture f;
    crowd::Population pop = tiny_population(6);
    StudyConfig config = tiny_config();
    config.buffer_size = buffer_size;
    StudyRunner runner(pop, config, f.sim, f.broker, f.server);
    return runner.run().mean_delay_ms;
  };
  double unbuffered = mean_delay(1);
  double buffered = mean_delay(10);
  EXPECT_GT(buffered, unbuffered);
}

TEST(Study, RunTwiceThrows) {
  Fixture f;
  crowd::Population pop = tiny_population(7);
  StudyRunner runner(pop, tiny_config(), f.sim, f.broker, f.server);
  runner.run();
  EXPECT_THROW(runner.run(), std::logic_error);
}

TEST(Study, HonoursDiurnalPattern) {
  Fixture f;
  crowd::Population pop = tiny_population(8);
  StudyRunner runner(pop, tiny_config(), f.sim, f.broker, f.server);
  runner.run();
  // Count stored observations by hour: night trough must hold.
  std::uint64_t day_count = 0, night_count = 0;
  f.db.collection("observations").for_each([&](const Value& doc) {
    int h = hour_of_day(doc.get_int("captured_at"));
    if (h >= 10 && h < 21) ++day_count;
    if (h >= 2 && h < 6) ++night_count;
  });
  ASSERT_GT(day_count + night_count, 0u);
  // 11 daytime hours should carry far more than 4 night hours.
  EXPECT_GT(day_count, night_count * 4);
}

}  // namespace
}  // namespace mps::study
