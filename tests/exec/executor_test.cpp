#include "exec/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"

namespace mps::exec {
namespace {

TEST(ThreadPoolTest, ZeroThreadsPicksHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
}

TEST(ThreadPoolTest, OneThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.run_chunks(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.stats().inline_regions, 1u);
  EXPECT_EQ(pool.stats().chunks, 5u);
}

TEST(ThreadPoolTest, EmptyRegionIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.run_chunks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(pool.stats().regions, 0u);
}

TEST(ThreadPoolTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 1000;
  std::vector<std::atomic<int>> hits(kChunks);
  pool.run_chunks(kChunks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kChunks; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_EQ(pool.stats().chunks, kChunks);
  EXPECT_EQ(pool.stats().regions, 1u);
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool pool(3);
  for (int region = 0; region < 50; ++region) {
    std::atomic<std::size_t> sum{0};
    pool.run_chunks(17, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 17u * 16u / 2u);
  }
  EXPECT_EQ(pool.stats().regions, 50u);
}

TEST(ThreadPoolTest, ExceptionPropagatesOutOfARegion) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_chunks(100,
                      [](std::size_t i) {
                        if (i == 42) throw std::runtime_error("chunk 42");
                      }),
      std::runtime_error);
  // The pool survives the failed region and keeps working.
  std::atomic<std::size_t> ran{0};
  pool.run_chunks(10, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10u);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromInlinePath) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.run_chunks(
                   3, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(ThreadPoolTest, NestedRegionIsRejected) {
  ThreadPool pool(4);
  std::atomic<bool> nested_threw{false};
  pool.run_chunks(8, [&](std::size_t) {
    ThreadPool inner(2);
    try {
      inner.run_chunks(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      nested_threw.store(true, std::memory_order_relaxed);
    }
  });
  EXPECT_TRUE(nested_threw.load());
}

TEST(ThreadPoolTest, NestedRejectionAppliesToInlinePoolsToo) {
  ThreadPool pool(1);
  bool nested_threw = false;
  pool.run_chunks(1, [&](std::size_t) {
    ThreadPool inner(1);
    try {
      inner.run_chunks(1, [](std::size_t) {});
    } catch (const std::logic_error&) {
      nested_threw = true;
    }
  });
  EXPECT_TRUE(nested_threw);
}

TEST(ParallelForTest, NullExecutorRunsSequentially) {
  std::vector<int> data(100, 0);
  parallel_for(nullptr, data.size(),
               [&](std::size_t b, std::size_t e) {
                 for (std::size_t i = b; i < e; ++i) data[i] = static_cast<int>(i);
               });
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_EQ(data[i], static_cast<int>(i));
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  parallel_for(&pool, 0, [&](std::size_t, std::size_t) { ran = true; });
  parallel_for(nullptr, 0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, ChunksCoverRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'001;  // deliberately not a multiple of anything
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(&pool, kN, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, ExplicitGrainControlsChunking) {
  EXPECT_EQ(resolve_grain(100, 7), 7u);
  EXPECT_EQ(chunk_count(100, 7), 15u);
  EXPECT_EQ(chunk_count(0, 7), 0u);
  // The default grain is a pure function of n.
  EXPECT_EQ(resolve_grain(64, 0), 1u);
  EXPECT_EQ(resolve_grain(6'400, 0), 100u);
}

// The determinism contract: identical results — bit for bit — for the
// sequential path and pools of any size, because the partition depends
// only on (n, grain) and partials fold in chunk order.
TEST(ParallelReduceTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(7);
  std::vector<double> data(50'000);
  for (double& v : data) v = rng.uniform(-1000.0, 1000.0);

  auto sum_with = [&](Executor* executor) {
    return parallel_reduce(
        executor, data.size(), 0.0,
        [&](std::size_t b, std::size_t e) {
          double s = 0.0;
          for (std::size_t i = b; i < e; ++i) s += data[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };

  double sequential = sum_with(nullptr);
  for (std::size_t threads : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(threads);
    double parallel = sum_with(&pool);
    // Bit-exact, not approximately equal: the whole point of ordered
    // chunk folding.
    EXPECT_EQ(sequential, parallel) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, EmptyRangeYieldsIdentity) {
  ThreadPool pool(4);
  double r = parallel_reduce(
      &pool, 0, 123.0, [](std::size_t, std::size_t) { return 0.0; },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(r, 123.0);
}

TEST(ParallelReduceTest, NonCommutativeCombineSeesChunkOrder) {
  // Concatenation exposes ordering: any out-of-order fold scrambles the
  // string.
  auto concat_with = [&](Executor* executor) {
    return parallel_reduce(
        executor, 26, std::string(),
        [](std::size_t b, std::size_t e) {
          std::string s;
          for (std::size_t i = b; i < e; ++i)
            s.push_back(static_cast<char>('a' + i));
          return s;
        },
        [](std::string a, std::string b) { return a + b; },
        /*grain=*/3);
  };
  std::string expected = "abcdefghijklmnopqrstuvwxyz";
  EXPECT_EQ(concat_with(nullptr), expected);
  ThreadPool pool(4);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(concat_with(&pool), expected);
}

TEST(ExecStatsTest, MirrorIntoRegistryTracksDeltas) {
  ThreadPool pool(2);
  obs::Registry registry;
  pool.run_chunks(10, [](std::size_t) {});
  pool.mirror_into(registry);
  EXPECT_EQ(registry.counter("exec.regions").value(), 1u);
  EXPECT_EQ(registry.counter("exec.chunks").value(), 10u);
  EXPECT_EQ(registry.gauge("exec.threads").value(), 2.0);

  pool.run_chunks(4, [](std::size_t) {});
  pool.mirror_into(registry);
  EXPECT_EQ(registry.counter("exec.regions").value(), 2u);
  EXPECT_EQ(registry.counter("exec.chunks").value(), 14u);
}

TEST(ResolveThreadsTest, EnvOverridesAndClamping) {
  ASSERT_EQ(unsetenv("MPS_TEST_THREADS_UNIT"), 0);
  std::size_t dflt = resolve_threads("MPS_TEST_THREADS_UNIT", 8);
  EXPECT_GE(dflt, 1u);
  EXPECT_LE(dflt, 8u);

  ASSERT_EQ(setenv("MPS_TEST_THREADS_UNIT", "3", 1), 0);
  EXPECT_EQ(resolve_threads("MPS_TEST_THREADS_UNIT", 8), 3u);

  ASSERT_EQ(setenv("MPS_TEST_THREADS_UNIT", "64", 1), 0);
  EXPECT_EQ(resolve_threads("MPS_TEST_THREADS_UNIT", 8), 8u);  // capped

  ASSERT_EQ(setenv("MPS_TEST_THREADS_UNIT", "not-a-number", 1), 0);
  EXPECT_EQ(resolve_threads("MPS_TEST_THREADS_UNIT", 8), dflt);  // fallback

  ASSERT_EQ(unsetenv("MPS_TEST_THREADS_UNIT"), 0);
}

}  // namespace
}  // namespace mps::exec
