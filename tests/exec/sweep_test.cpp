#include "exec/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/executor.h"
#include "obs/metrics.h"

namespace mps::exec {
namespace {

TEST(SweepExecutorTest, RunsEveryJobExactlyOnce) {
  SweepExecutor sweep(4);
  constexpr std::size_t kJobs = 100;
  std::vector<std::atomic<int>> hits(kJobs);
  sweep.run(kJobs, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_EQ(sweep.stats().sweeps, 1u);
  EXPECT_EQ(sweep.stats().jobs, kJobs);
}

TEST(SweepExecutorTest, OneThreadRunsInOrder) {
  SweepExecutor sweep(1);
  std::vector<std::size_t> order;
  sweep.run(6, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(SweepExecutorTest, EmptySweepIsANoOp) {
  SweepExecutor sweep(4);
  bool ran = false;
  sweep.run(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(sweep.stats().sweeps, 0u);
}

TEST(SweepExecutorTest, ConcurrencyNeverExceedsThreadBudget) {
  constexpr std::size_t kThreads = 3;
  SweepExecutor sweep(kThreads);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  sweep.run(24, [&](std::size_t) {
    int now = running.fetch_add(1, std::memory_order_relaxed) + 1;
    int seen = peak.load(std::memory_order_relaxed);
    while (now > seen &&
           !peak.compare_exchange_weak(seen, now, std::memory_order_relaxed)) {
    }
    // A little real work so jobs overlap.
    volatile double x = 0.0;
    for (int i = 0; i < 10'000; ++i) x = x + static_cast<double>(i);
    running.fetch_sub(1, std::memory_order_relaxed);
  });
  EXPECT_LE(peak.load(), static_cast<int>(kThreads));
  EXPECT_LE(sweep.stats().max_concurrency, kThreads);
}

TEST(SweepExecutorTest, ExceptionPropagates) {
  SweepExecutor sweep(4);
  EXPECT_THROW(sweep.run(50,
                         [](std::size_t i) {
                           if (i == 13) throw std::runtime_error("job 13");
                         }),
               std::runtime_error);
  // The executor stays usable afterwards.
  std::atomic<std::size_t> ran{0};
  sweep.run(5, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 5u);
}

TEST(SweepExecutorTest, PoolUseInsideASweepJobIsRejected) {
  SweepExecutor sweep(2);
  std::atomic<int> rejected{0};
  sweep.run(4, [&](std::size_t) {
    ThreadPool pool(2);
    try {
      pool.run_chunks(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      rejected.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(rejected.load(), 4);
}

TEST(SweepExecutorTest, NestedSweepIsRejected) {
  SweepExecutor outer(2);
  std::atomic<int> rejected{0};
  outer.run(2, [&](std::size_t) {
    SweepExecutor inner(2);
    try {
      inner.run(2, [](std::size_t) {});
    } catch (const std::logic_error&) {
      rejected.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(rejected.load(), 2);
}

TEST(SweepExecutorTest, ResultsIndependentOfThreadCount) {
  // Each job derives a value from its index only; the filled vector must
  // be identical for any concurrency.
  auto run_with = [](std::size_t threads) {
    SweepExecutor sweep(threads);
    std::vector<std::uint64_t> out(64, 0);
    sweep.run(out.size(), [&](std::size_t i) {
      std::uint64_t v = i + 1;
      for (int k = 0; k < 1000; ++k) v = v * 6364136223846793005ull + 1;
      out[i] = v;
    });
    return out;
  };
  auto baseline = run_with(1);
  EXPECT_EQ(run_with(2), baseline);
  EXPECT_EQ(run_with(8), baseline);
}

TEST(SweepExecutorTest, MirrorIntoRegistry) {
  SweepExecutor sweep(2);
  sweep.run(6, [](std::size_t) {});
  obs::Registry registry;
  sweep.mirror_into(registry);
  EXPECT_EQ(registry.gauge("exec.sweep_runs").value(), 1.0);
  EXPECT_EQ(registry.gauge("exec.sweep_jobs").value(), 6.0);
  EXPECT_EQ(registry.gauge("exec.sweep_threads").value(), 2.0);
  EXPECT_GE(registry.gauge("exec.sweep_wall_seconds").value(), 0.0);
}

}  // namespace
}  // namespace mps::exec
