#include "common/table.h"

#include <gtest/gtest.h>

namespace mps {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t;
  t.set_header({"Model", "Devices"});
  t.add_row({"SAMSUNG GT-I9505", "253"});
  t.add_row({"SONY D5803", "112"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("SAMSUNG GT-I9505"), std::string::npos);
  EXPECT_NE(s.find("253"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, NumericCellsRightAligned) {
  TextTable t;
  t.set_header({"name", "count"});
  t.add_row({"a", "5"});
  t.add_row({"b", "12345"});
  std::string s = t.to_string();
  // "5" should be right-aligned to the width of "12345".
  EXPECT_NE(s.find("    5"), std::string::npos);
}

TEST(TextTable, HandlesShortRows) {
  TextTable t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TextTable, NoHeader) {
  TextTable t;
  t.add_row({"x", "y"});
  std::string s = t.to_string();
  EXPECT_EQ(s.find("---"), std::string::npos);
  EXPECT_NE(s.find("x"), std::string::npos);
}

}  // namespace
}  // namespace mps
