#include "common/result.h"

#include <gtest/gtest.h>

namespace mps {
namespace {

TEST(Result, OkValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or_throw(), 42);
}

TEST(Result, ErrorPath) {
  Result<int> r(err(ErrorCode::kNotFound, "missing thing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNotFound);
  EXPECT_EQ(r.error().message, "missing thing");
  EXPECT_THROW(r.value_or_throw(), std::runtime_error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("abc"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "abc");
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_NO_THROW(s.throw_if_error());
}

TEST(StatusTest, ErrorStatus) {
  Status s(err(ErrorCode::kConflict, "dup"));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kConflict);
  EXPECT_THROW(s.throw_if_error(), std::runtime_error);
}

TEST(ErrorCodeNames, AllDistinct) {
  EXPECT_STREQ(error_code_name(ErrorCode::kOk), "ok");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnauthorized), "unauthorized");
  EXPECT_STREQ(error_code_name(ErrorCode::kNotFound), "not_found");
  EXPECT_STREQ(error_code_name(ErrorCode::kInternal), "internal");
}

}  // namespace
}  // namespace mps
