#include "common/histogram.h"

#include <gtest/gtest.h>

namespace mps {
namespace {

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(9), 90.0);
  EXPECT_DOUBLE_EQ(h.bin_mid(4), 45.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 1.0, 10), std::invalid_argument);
}

TEST(Histogram, AddRoutesToCorrectBin) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.5);
  h.add(9.99);
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(9), 1.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, UnderOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);  // hi edge is exclusive -> overflow
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, SharesSumToScaleWhenNoOverflow) {
  Histogram h(0.0, 10.0, 4);
  for (int i = 0; i < 100; ++i) h.add(0.1 * i);
  double sum = 0.0;
  for (double s : h.shares(100.0)) sum += s;
  EXPECT_NEAR(sum, 100.0, 1e-9);
}

TEST(Histogram, PerMilleScale) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(6.0);
  h.add(7.0);
  EXPECT_NEAR(h.share(1, 1000.0), 666.6667, 0.01);
}

TEST(Histogram, EmptyShareIsZero) {
  Histogram h(0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(h.share(0), 0.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0, 3.0);
  h.add(6.0, 1.0);
  EXPECT_DOUBLE_EQ(h.share(0), 75.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 30.0, 3);
  h.add(5.0);
  h.add(15.0);
  h.add(16.0);
  h.add(25.0);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, MergeCompatible) {
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  a.add(1.0);
  b.add(1.5);
  b.add(9.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0), 2.0);
  EXPECT_DOUBLE_EQ(a.count(4), 1.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.0);
}

TEST(Histogram, MergeIncompatibleThrows) {
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 4), c(0.0, 20.0, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Histogram, AsciiRenderContainsBars) {
  Histogram h(0.0, 10.0, 2);
  for (int i = 0; i < 10; ++i) h.add(1.0);
  std::string art = h.to_ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('%'), std::string::npos);
}

TEST(BucketHistogram, PaperAccuracyBuckets) {
  // The paper's location-accuracy buckets.
  BucketHistogram h({0, 6, 20, 50, 100, 500, 2000});
  h.add(3.0);    // [0,6)
  h.add(10.0);   // [6,20)
  h.add(25.0);   // [20,50)
  h.add(25.0);
  h.add(75.0);   // [50,100)
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(2), 2.0);
  EXPECT_DOUBLE_EQ(h.count(3), 1.0);
  EXPECT_DOUBLE_EQ(h.share(2), 40.0);
}

TEST(BucketHistogram, EdgeInclusivity) {
  BucketHistogram h({0, 10, 20});
  h.add(10.0);  // belongs to [10,20)
  EXPECT_DOUBLE_EQ(h.count(0), 0.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  h.add(20.0);  // overflow: hi edge exclusive
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
}

TEST(BucketHistogram, InvalidEdges) {
  EXPECT_THROW(BucketHistogram({1.0}), std::invalid_argument);
  EXPECT_THROW(BucketHistogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(BucketHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(BucketHistogram, Labels) {
  BucketHistogram h({0, 6, 20});
  EXPECT_EQ(h.bin_label(0), "[0,6)");
  EXPECT_EQ(h.bin_label(1), "[6,20)");
}

TEST(EmpiricalCdf, FractionAtMost) {
  EmpiricalCdf cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(10.0), 1.0);
}

TEST(EmpiricalCdf, Quantiles) {
  EmpiricalCdf cdf;
  for (int i = 0; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_NEAR(cdf.quantile(0.5), 50.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(0.0), 0.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(cdf.quantile(0.25), 25.0, 1e-9);
}

TEST(EmpiricalCdf, EmptyBehaviour) {
  EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(5.0), 0.0);
  EXPECT_THROW(cdf.quantile(0.5), std::logic_error);
  EXPECT_THROW(cdf.min(), std::logic_error);
}

TEST(EmpiricalCdf, AddAllAndMinMax) {
  EmpiricalCdf cdf;
  cdf.add_all({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_EQ(cdf.size(), 3u);
}

// Property: fraction_at_most is monotone non-decreasing.
class CdfMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(CdfMonotoneTest, Monotone) {
  EmpiricalCdf cdf;
  unsigned seed = static_cast<unsigned>(GetParam());
  for (int i = 0; i < 200; ++i) {
    seed = seed * 1664525u + 1013904223u;
    cdf.add(static_cast<double>(seed % 1000) / 10.0);
  }
  double prev = -1.0;
  for (double x = -5.0; x <= 105.0; x += 0.7) {
    double f = cdf.fraction_at_most(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CdfMonotoneTest, ::testing::Values(1, 2, 3, 7, 42));

}  // namespace
}  // namespace mps
