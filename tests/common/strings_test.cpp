#include "common/strings.h"

#include <gtest/gtest.h>

namespace mps {
namespace {

TEST(Strings, SplitBasic) {
  auto parts = split("a.b.c", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmptyTokens) {
  auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitEmptyInput) {
  auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitTrailingSeparator) {
  auto parts = split("a.", '.');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, JoinRoundTrip) {
  std::vector<std::string> parts{"FR75013", "Feedback", "mob1"};
  EXPECT_EQ(join(parts, '.'), "FR75013.Feedback.mob1");
  EXPECT_EQ(split(join(parts, '.'), '.'), parts);
}

TEST(Strings, JoinEmpty) { EXPECT_EQ(join({}, '.'), ""); }

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("goflow.client", "goflow"));
  EXPECT_FALSE(starts_with("go", "goflow"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f%%", 12.345), "12.35%");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Strings, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1 000");
  EXPECT_EQ(with_thousands(23108136), "23 108 136");
  EXPECT_EQ(with_thousands(-1234567), "-1 234 567");
}

}  // namespace
}  // namespace mps
