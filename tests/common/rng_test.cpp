#include "common/rng.h"

#include <gtest/gtest.h>

namespace mps {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 5);
}

TEST(Rng, ChildStreamsReproducible) {
  Rng parent(7);
  Rng c1 = parent.child("battery");
  Rng c2 = Rng(7).child("battery");
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, ChildStreamsIndependentOfParentConsumption) {
  Rng p1(9), p2(9);
  p1.uniform();  // consume from one parent only
  Rng c1 = p1.child("x");
  Rng c2 = p2.child("x");
  EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
}

TEST(Rng, DifferentLabelsGiveDifferentStreams) {
  Rng parent(7);
  Rng a = parent.child("a"), b = parent.child("b");
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (a.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, IntegerChildKeys) {
  Rng parent(3);
  Rng u0 = parent.child(std::uint64_t{0});
  Rng u1 = parent.child(std::uint64_t{1});
  EXPECT_NE(u0.seed(), u1.seed());
}

TEST(Rng, UniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(5.0, 6.0);
    EXPECT_GE(x, 5.0);
    EXPECT_LT(x, 6.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    std::int64_t x = rng.uniform_int(1, 3);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 3);
    saw_lo |= (x == 1);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  double mean = sum / n;
  double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ExponentialMean) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_mean(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  std::vector<double> w{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedIndexAllZeroReturnsZero) {
  Rng rng(37);
  std::vector<double> w{0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(w), 0u);
}

TEST(Rng, PoissonMean) {
  Rng rng(41);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.poisson(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-1.0), 0);
}

TEST(Fnv1a, StableAndDistinct) {
  EXPECT_EQ(fnv1a64("abc"), fnv1a64("abc"));
  EXPECT_NE(fnv1a64("abc"), fnv1a64("abd"));
  EXPECT_NE(fnv1a64(""), fnv1a64("a"));
}

}  // namespace
}  // namespace mps
