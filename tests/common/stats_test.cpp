#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mps {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428571, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double x = std::sin(i * 0.7) * 10 + i * 0.1;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  RunningStats copy = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), copy.mean());
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Correlation, PerfectPositive) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y), -1.0, 1e-12);
  EXPECT_NEAR(spearman_correlation(x, y), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero) {
  std::vector<double> x{1, 1, 1};
  std::vector<double> y{1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, y), 0.0);
}

TEST(Correlation, MismatchedSizesIsZero) {
  EXPECT_DOUBLE_EQ(pearson_correlation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(Correlation, SpearmanRobustToMonotoneTransform) {
  std::vector<double> x{1, 2, 3, 4, 5, 6};
  std::vector<double> y;
  for (double v : x) y.push_back(std::exp(v));  // nonlinear but monotone
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson_correlation(x, y), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  std::vector<double> x{1, 2, 2, 3};
  std::vector<double> y{1, 2, 2, 3};
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
}

TEST(LinearFitTest, RecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 * i - 7.0);
  }
  LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-12);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-10);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LinearFitTest, DegenerateInput) {
  LinearFit fit = linear_fit({1.0}, {2.0});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  fit = linear_fit({2.0, 2.0}, {1.0, 5.0});  // constant x
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

TEST(Rmse, KnownValue) {
  EXPECT_DOUBLE_EQ(rmse({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_NEAR(rmse({0, 0}, {3, 4}), std::sqrt(12.5), 1e-12);
}

TEST(TotalVariation, IdenticalAndDisjoint) {
  EXPECT_NEAR(total_variation_distance({1, 2, 3}, {2, 4, 6}), 0.0, 1e-12);
  EXPECT_NEAR(total_variation_distance({1, 0}, {0, 1}), 1.0, 1e-12);
}

TEST(TotalVariation, Range) {
  double tv = total_variation_distance({3, 1, 1}, {1, 1, 3});
  EXPECT_GT(tv, 0.0);
  EXPECT_LT(tv, 1.0);
}

}  // namespace
}  // namespace mps
