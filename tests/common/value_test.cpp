#include "common/value.h"

#include <gtest/gtest.h>

namespace mps {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Value::Type::kNull);
}

TEST(Value, ScalarConstruction) {
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(std::int64_t{1} << 40).is_int());
  EXPECT_TRUE(Value(3.14).is_double());
  EXPECT_TRUE(Value("hello").is_string());
  EXPECT_TRUE(Value(std::string("hi")).is_string());
}

TEST(Value, CheckedAccessors) {
  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_EQ(Value("x").as_string(), "x");
}

TEST(Value, AsDoubleAcceptsInt) {
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);
}

TEST(Value, TypeMismatchThrows) {
  EXPECT_THROW(Value(1).as_string(), std::runtime_error);
  EXPECT_THROW(Value("x").as_int(), std::runtime_error);
  EXPECT_THROW(Value().as_bool(), std::runtime_error);
  EXPECT_THROW(Value("x").as_double(), std::runtime_error);
}

TEST(Value, ObjectSetAndFind) {
  Object o;
  o.set("a", Value(1)).set("b", Value("two"));
  Value v(std::move(o));
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->as_int(), 1);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.at("b").as_string(), "two");
}

TEST(Value, ObjectSetReplacesExisting) {
  Object o;
  o.set("k", Value(1));
  o.set("k", Value(2));
  EXPECT_EQ(o.size(), 1u);
  EXPECT_EQ(o.at("k").as_int(), 2);
}

TEST(Value, ObjectErase) {
  Object o{{"a", Value(1)}, {"b", Value(2)}};
  EXPECT_TRUE(o.erase("a"));
  EXPECT_FALSE(o.erase("a"));
  EXPECT_FALSE(o.contains("a"));
  EXPECT_TRUE(o.contains("b"));
}

TEST(Value, FindPathTraversesNestedObjects) {
  Value doc(Object{
      {"location", Value(Object{{"accuracy", Value(25.5)},
                                {"provider", Value("network")}})},
      {"spl", Value(60.0)}});
  ASSERT_NE(doc.find_path("location.accuracy"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find_path("location.accuracy")->as_double(), 25.5);
  EXPECT_EQ(doc.find_path("location.missing"), nullptr);
  EXPECT_EQ(doc.find_path("spl.x"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find_path("spl")->as_double(), 60.0);
}

TEST(Value, GettersWithDefaults) {
  Value doc(Object{{"n", Value(5)}, {"s", Value("str")}, {"b", Value(true)},
                   {"d", Value(1.5)}});
  EXPECT_EQ(doc.get_int("n"), 5);
  EXPECT_EQ(doc.get_int("missing", -1), -1);
  EXPECT_EQ(doc.get_string("s"), "str");
  EXPECT_EQ(doc.get_string("missing", "dflt"), "dflt");
  EXPECT_TRUE(doc.get_bool("b"));
  EXPECT_DOUBLE_EQ(doc.get_double("d"), 1.5);
  EXPECT_DOUBLE_EQ(doc.get_double("n"), 5.0);  // int readable as double
}

TEST(Value, EqualityMixedNumerics) {
  EXPECT_EQ(Value(1), Value(1.0));
  EXPECT_EQ(Value(1.0), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value("1"));
}

TEST(Value, ObjectEqualityIsOrderInsensitive) {
  Value a(Object{{"x", Value(1)}, {"y", Value(2)}});
  Value b(Object{{"y", Value(2)}, {"x", Value(1)}});
  EXPECT_EQ(a, b);
}

TEST(Value, CompareTotalOrder) {
  EXPECT_LT(Value::compare(Value(), Value(false)), 0);   // null < bool
  EXPECT_LT(Value::compare(Value(true), Value(0)), 0);   // bool < number
  EXPECT_LT(Value::compare(Value(5), Value("a")), 0);    // number < string
  EXPECT_EQ(Value::compare(Value(2), Value(2.0)), 0);    // numeric equality
  EXPECT_LT(Value::compare(Value(1), Value(2)), 0);
  EXPECT_GT(Value::compare(Value("b"), Value("a")), 0);
  EXPECT_LT(Value::compare(Value(Array{Value(1)}), Value(Array{Value(1), Value(2)})), 0);
}

TEST(Value, JsonRoundTripScalars) {
  for (const char* text :
       {"null", "true", "false", "0", "-17", "3.5", "\"hello\"", "[]", "{}"}) {
    Value v = Value::parse_json(text);
    EXPECT_EQ(Value::parse_json(v.to_json()), v) << text;
  }
}

TEST(Value, JsonRoundTripNested) {
  Value doc(Object{
      {"user", Value("u-1")},
      {"spl", Value(55.25)},
      {"tags", Value(Array{Value("a"), Value("b")})},
      {"loc", Value(Object{{"lat", Value(48.85)}, {"lon", Value(2.35)}})},
      {"ok", Value(true)},
      {"none", Value()}});
  EXPECT_EQ(Value::parse_json(doc.to_json()), doc);
}

TEST(Value, JsonStringEscapes) {
  Value v(std::string("line1\nline2\t\"quoted\"\\"));
  Value back = Value::parse_json(v.to_json());
  EXPECT_EQ(back.as_string(), v.as_string());
}

TEST(Value, JsonParseWhitespace) {
  Value v = Value::parse_json("  { \"a\" :\n [ 1 , 2 ] }  ");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Value, JsonParseUnicodeEscape) {
  Value v = Value::parse_json("\"\\u0041\\u00e9\"");
  EXPECT_EQ(v.as_string(), "A\xc3\xa9");
}

TEST(Value, JsonParseErrors) {
  EXPECT_THROW(Value::parse_json(""), std::runtime_error);
  EXPECT_THROW(Value::parse_json("{"), std::runtime_error);
  EXPECT_THROW(Value::parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(Value::parse_json("tru"), std::runtime_error);
  EXPECT_THROW(Value::parse_json("1 2"), std::runtime_error);
  EXPECT_THROW(Value::parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(Value::parse_json("\"unterminated"), std::runtime_error);
}

TEST(Value, JsonParseNumbers) {
  EXPECT_EQ(Value::parse_json("12345").as_int(), 12345);
  EXPECT_TRUE(Value::parse_json("1.0").is_double());
  EXPECT_TRUE(Value::parse_json("1e3").is_double());
  EXPECT_DOUBLE_EQ(Value::parse_json("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(Value::parse_json("-2.5e-1").as_double(), -0.25);
}

}  // namespace
}  // namespace mps
