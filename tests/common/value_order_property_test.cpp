// Property tests for Value::compare: it must be a strict weak ordering
// (docstore indexes and sorts depend on it), consistent with operator==
// for comparable types, and stable under JSON round-trips.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/value.h"

namespace mps {
namespace {

Value random_value(Rng& rng, int depth = 0) {
  int kind = static_cast<int>(rng.uniform_int(0, depth < 2 ? 6 : 4));
  switch (kind) {
    case 0: return Value();
    case 1: return Value(rng.bernoulli(0.5));
    case 2: return Value(rng.uniform_int(-5, 5));
    case 3: return Value(rng.uniform(-5.0, 5.0));
    case 4: {
      static const char* strs[] = {"", "a", "b", "ab", "FR75013"};
      return Value(strs[rng.uniform_int(0, 4)]);
    }
    case 5: {
      Array arr;
      auto n = rng.uniform_int(0, 3);
      for (int i = 0; i < n; ++i) arr.push_back(random_value(rng, depth + 1));
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      auto n = rng.uniform_int(0, 3);
      for (int i = 0; i < n; ++i)
        obj.set("k" + std::to_string(i), random_value(rng, depth + 1));
      return Value(std::move(obj));
    }
  }
}

int sign(int x) { return (x > 0) - (x < 0); }

class ValueOrderPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValueOrderPropertyTest, Antisymmetry) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    Value a = random_value(rng), b = random_value(rng);
    EXPECT_EQ(sign(Value::compare(a, b)), -sign(Value::compare(b, a)))
        << a.to_json() << " vs " << b.to_json();
  }
}

TEST_P(ValueOrderPropertyTest, Reflexivity) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 300; ++i) {
    Value a = random_value(rng);
    EXPECT_EQ(Value::compare(a, a), 0) << a.to_json();
  }
}

TEST_P(ValueOrderPropertyTest, Transitivity) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 200; ++i) {
    Value a = random_value(rng), b = random_value(rng), c = random_value(rng);
    if (Value::compare(a, b) <= 0 && Value::compare(b, c) <= 0) {
      EXPECT_LE(Value::compare(a, c), 0)
          << a.to_json() << " <= " << b.to_json() << " <= " << c.to_json();
    }
  }
}

TEST_P(ValueOrderPropertyTest, EqualityConsistentForScalars) {
  // For scalar (non-container) values, compare()==0 iff operator==.
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 300; ++i) {
    Value a = random_value(rng), b = random_value(rng);
    if (a.is_array() || a.is_object() || b.is_array() || b.is_object())
      continue;
    EXPECT_EQ(Value::compare(a, b) == 0, a == b)
        << a.to_json() << " vs " << b.to_json();
  }
}

TEST_P(ValueOrderPropertyTest, StableUnderJsonRoundTrip) {
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 200; ++i) {
    Value a = random_value(rng), b = random_value(rng);
    Value a2 = Value::parse_json(a.to_json());
    Value b2 = Value::parse_json(b.to_json());
    EXPECT_EQ(sign(Value::compare(a, b)), sign(Value::compare(a2, b2)))
        << a.to_json() << " vs " << b.to_json();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueOrderPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace mps
