// Pinned golden values for the project-wide stable hash.
//
// fnv1a64 keys cross-process state: shard placement, dedup-key folding,
// child RNG stream derivation. If its output ever changes, every shard
// map built by an older binary disagrees with a newer one and clients
// land on the wrong shard after a rolling restart — and every seeded
// simulation in the repo replays differently. These goldens pin the
// function byte-for-byte (project-pinned offset basis 1469598103934665603,
// FNV prime 0x100000001b3 — see common/hash.h on why the basis is not
// the canonical published one): any edit that shifts a single output
// fails here first.
#include <gtest/gtest.h>

#include <string>

#include "common/hash.h"

namespace mps {
namespace {

TEST(Fnv1a64, PinnedGoldenVectors) {
  EXPECT_EQ(fnv1a64(""), 1469598103934665603ull);
  EXPECT_EQ(fnv1a64("a"), 0x44bd8ad473cd9906ull);
  EXPECT_EQ(fnv1a64("b"), 0x44bd89d473cd9753ull);
  EXPECT_EQ(fnv1a64("c"), 0x44bd88d473cd95a0ull);
  EXPECT_EQ(fnv1a64("abc"), 0xe16801510db89efdull);
  EXPECT_EQ(fnv1a64("foobar"), 0x88fad7c0a8ff07f2ull);
}

TEST(Fnv1a64, PinnedDomainKeys) {
  // The exact key shapes the middleware derives placement and dedup
  // identity from. These pin the concatenation conventions (separator
  // bytes included) as much as the hash itself.
  EXPECT_EQ(fnv1a64("soundcity\x1fu0001"), 0xcad1019fb91e09aeull);
  EXPECT_EQ(fnv1a64("u0001#42"), 0x33f8eb7d69e34490ull);
  EXPECT_EQ(fnv1a64("goflow-server-ingest"), 0xc55c819a8df8320aull);
}

TEST(Fnv1a64, ConstexprAndNulByteSafe) {
  static_assert(fnv1a64("") == 1469598103934665603ull);
  static_assert(fnv1a64("a") == 0x44bd8ad473cd9906ull);
  // Embedded NUL bytes hash (string_view carries length, not C strings).
  std::string with_nul("a\0b", 3);
  EXPECT_NE(fnv1a64(with_nul), fnv1a64("ab"));
  EXPECT_NE(fnv1a64(with_nul), fnv1a64("a"));
}

TEST(Fnv1a64, HighBytesAreUnsigned) {
  // chars >= 0x80 must widen as unsigned — a sign-extension bug would
  // produce different hashes depending on the platform's char signedness.
  std::string high("\xff\x80", 2);
  std::uint64_t h = 1469598103934665603ull;
  h ^= 0xffu;
  h *= 1099511628211ull;
  h ^= 0x80u;
  h *= 1099511628211ull;
  EXPECT_EQ(fnv1a64(high), h);
}

}  // namespace
}  // namespace mps
