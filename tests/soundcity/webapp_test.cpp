#include "soundcity/webapp.h"

#include <gtest/gtest.h>

namespace mps::soundcity {
namespace {

class WebAppTest : public ::testing::Test {
 protected:
  WebAppTest() : server(sim, broker, db) {
    auto reg = server.register_app("soundcity").value_or_throw();
    service_token = server
                        .register_account(reg.admin_token, "soundcity",
                                          "webapp", core::Role::kManager)
                        .value_or_throw();
    client_token = server
                       .register_account(reg.admin_token, "soundcity", "mob",
                                         core::Role::kClient)
                       .value_or_throw();
    webapp = std::make_unique<WebAppServer>(server, "soundcity", service_token);
  }

  /// Ingests observations for `user` directly through the broker.
  void ingest(const std::string& user, std::vector<std::pair<TimeMs, double>>
                                           time_and_spl) {
    auto channels = server.login_client(client_token, "soundcity", user)
                        .value_or_throw();
    Array arr;
    for (auto [t, spl] : time_and_spl) {
      arr.push_back(Value(Object{
          {"user", Value(user)},
          {"model", Value("LGE NEXUS 5")},
          {"captured_at", Value(t)},
          {"spl", Value(spl)},
          {"mode", Value("opportunistic")},
          {"activity", Value("still")},
          {"location", Value(Object{{"provider", Value("network")},
                                    {"x", Value(1234.0)},
                                    {"y", Value(777.0)},
                                    {"accuracy", Value(30.0)}})}}));
    }
    Value batch(Object{{"app", Value("soundcity")},
                       {"client", Value(user)},
                       {"observations", Value(std::move(arr))}});
    broker.publish(channels.exchange, "soundcity.obs." + user, std::move(batch),
                   hours(1))
        .value_or_throw();
  }

  static double identity(const DeviceModelId&, double raw) { return raw; }

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server;
  std::string service_token;
  std::string client_token;
  std::unique_ptr<WebAppServer> webapp;
};

TEST_F(WebAppTest, RegisterAndLogin) {
  EXPECT_TRUE(webapp->register_web_user("alice", "pw1").ok());
  Status dup = webapp->register_web_user("alice", "other");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.error().code, ErrorCode::kConflict);

  auto session = webapp->login("alice", "pw1");
  ASSERT_TRUE(session.ok());
  EXPECT_EQ(webapp->session_user(session.value()), "alice");

  EXPECT_FALSE(webapp->login("alice", "wrong").ok());
  EXPECT_FALSE(webapp->login("ghost", "pw1").ok());
}

TEST_F(WebAppTest, EmptyCredentialsRejected) {
  EXPECT_FALSE(webapp->register_web_user("", "pw").ok());
  EXPECT_FALSE(webapp->register_web_user("u", "").ok());
}

TEST_F(WebAppTest, LogoutInvalidatesSession) {
  webapp->register_web_user("alice", "pw").throw_if_error();
  WebSession session = webapp->login("alice", "pw").value_or_throw();
  EXPECT_TRUE(webapp->logout(session).ok());
  EXPECT_FALSE(webapp->session_user(session).has_value());
  EXPECT_FALSE(webapp->logout(session).ok());
  EXPECT_FALSE(webapp->my_contributions(session).ok());
}

TEST_F(WebAppTest, SessionTokenDoesNotLeakUser) {
  webapp->register_web_user("alice", "pw").throw_if_error();
  WebSession session = webapp->login("alice", "pw").value_or_throw();
  EXPECT_EQ(session.find("alice"), std::string::npos);
}

TEST_F(WebAppTest, DashboardShowsExposure) {
  ingest("alice", {{hours(9), 60.0}, {hours(10), 60.0},
                   {days(1) + hours(9), 70.0}});
  webapp->register_web_user("alice", "pw").throw_if_error();
  WebSession session = webapp->login("alice", "pw").value_or_throw();
  Value dashboard = webapp->my_dashboard(session, identity).value_or_throw();
  EXPECT_EQ(dashboard.get_string("user"), "alice");
  EXPECT_EQ(dashboard.get_int("observations"), 3);
  const Array& daily = dashboard.at("daily").as_array();
  ASSERT_EQ(daily.size(), 2u);
  EXPECT_NEAR(daily[0].get_double("leq_db"), 60.0, 1e-9);
  EXPECT_EQ(daily[0].get_string("band"), "moderate");
  EXPECT_EQ(daily[1].get_string("band"), "high");
  const Array& monthly = dashboard.at("monthly").as_array();
  ASSERT_EQ(monthly.size(), 1u);
  EXPECT_EQ(monthly[0].get_int("days_covered"), 2);
  EXPECT_FALSE(monthly[0].get_string("health_note").empty());
}

TEST_F(WebAppTest, DashboardRequiresSession) {
  EXPECT_FALSE(webapp->my_dashboard("bogus", identity).ok());
}

TEST_F(WebAppTest, MyContributionsOnlyOwnData) {
  ingest("alice", {{hours(9), 60.0}});
  ingest("bob", {{hours(9), 70.0}, {hours(10), 71.0}});
  webapp->register_web_user("alice", "pw").throw_if_error();
  WebSession session = webapp->login("alice", "pw").value_or_throw();
  auto docs = webapp->my_contributions(session).value_or_throw();
  ASSERT_EQ(docs.size(), 1u);
  EXPECT_EQ(docs[0].get_string("user"), "alice");
}

TEST_F(WebAppTest, PublicObservationsAnonymized) {
  ingest("alice", {{hours(9), 60.0}});
  auto docs = webapp->public_observations().value_or_throw();
  ASSERT_EQ(docs.size(), 1u);
  const Value& doc = docs[0];
  EXPECT_NE(doc.get_string("user"), "alice");
  EXPECT_EQ(doc.get_string("user").rfind("anon-", 0), 0u);
  EXPECT_EQ(doc.find("client"), nullptr);  // dropped field
  // Location coarsened to the 500 m grid.
  EXPECT_DOUBLE_EQ(doc.find_path("location.x")->as_double(), 1250.0);
}

TEST_F(WebAppTest, MyMapAggregatesPerCell) {
  // Two observations in one 250 m cell, one in another.
  ingest("alice", {{hours(9), 60.0}});   // at (1234, 777) per the fixture
  ingest("alice", {{hours(10), 66.0}});  // same place
  webapp->register_web_user("alice", "pw").throw_if_error();
  WebSession session = webapp->login("alice", "pw").value_or_throw();
  Value map = webapp->my_map(session, identity, 250.0).value_or_throw();
  EXPECT_EQ(map.get_string("user"), "alice");
  EXPECT_DOUBLE_EQ(map.get_double("cell_m"), 250.0);
  const Array& cells = map.at("cells").as_array();
  ASSERT_EQ(cells.size(), 1u);
  // Energetic mean of 60 and 66 dB is ~63.97 dB, not the arithmetic 63.
  EXPECT_NEAR(cells[0].get_double("mean_spl"), 63.97, 0.05);
  EXPECT_EQ(cells[0].get_int("samples"), 2);
  // Cell center of (1234, 777) on the 250 m grid.
  EXPECT_DOUBLE_EQ(cells[0].get_double("x"), 1125.0);
  EXPECT_DOUBLE_EQ(cells[0].get_double("y"), 875.0);
}

TEST_F(WebAppTest, MyMapRequiresSessionAndValidCell) {
  EXPECT_FALSE(webapp->my_map("bogus", identity).ok());
  webapp->register_web_user("alice", "pw").throw_if_error();
  WebSession session = webapp->login("alice", "pw").value_or_throw();
  EXPECT_FALSE(webapp->my_map(session, identity, 0.0).ok());
  // No data: empty cell list, not an error.
  Value map = webapp->my_map(session, identity).value_or_throw();
  EXPECT_TRUE(map.at("cells").as_array().empty());
}

TEST_F(WebAppTest, CommunityStats) {
  ingest("alice", {{hours(9), 60.0}, {hours(10), 61.0}});
  ingest("bob", {{hours(9), 70.0}});
  Value stats = webapp->community_stats().value_or_throw();
  EXPECT_EQ(stats.get_int("observations"), 3);
  EXPECT_EQ(stats.get_int("contributors"), 2);
  EXPECT_NEAR(stats.get_double("localized_share"), 1.0, 1e-9);
  EXPECT_EQ(stats.at("per_model").get_int("LGE NEXUS 5"), 3);
}

}  // namespace
}  // namespace mps::soundcity
