#include "soundcity/anonymizer.h"

#include <gtest/gtest.h>

namespace mps::soundcity {
namespace {

Value sample_doc() {
  return Value(Object{
      {"user", Value("alice")},
      {"client", Value("mob1")},
      {"spl", Value(61.5)},
      {"location", Value(Object{{"provider", Value("network")},
                                {"x", Value(1234.0)},
                                {"y", Value(5678.0)},
                                {"accuracy", Value(30.0)}})}});
}

TEST(Pseudonymize, StablePerSalt) {
  EXPECT_EQ(pseudonymize("alice", "s1"), pseudonymize("alice", "s1"));
  EXPECT_NE(pseudonymize("alice", "s1"), pseudonymize("alice", "s2"));
  EXPECT_NE(pseudonymize("alice", "s1"), pseudonymize("bob", "s1"));
}

TEST(Pseudonymize, DoesNotLeakUserId) {
  std::string p = pseudonymize("alice", "salt");
  EXPECT_EQ(p.find("alice"), std::string::npos);
  EXPECT_EQ(p.rfind("anon-", 0), 0u);
}

TEST(GeneralizeCoordinate, SnapsToCellCenter) {
  EXPECT_DOUBLE_EQ(generalize_coordinate(1234.0, 500.0), 1250.0);
  EXPECT_DOUBLE_EQ(generalize_coordinate(0.0, 500.0), 250.0);
  EXPECT_DOUBLE_EQ(generalize_coordinate(999.0, 500.0), 750.0);
}

TEST(GeneralizeCoordinate, ZeroGranularityKeepsExact) {
  EXPECT_DOUBLE_EQ(generalize_coordinate(1234.5, 0.0), 1234.5);
}

TEST(Anonymize, PseudonymizesUser) {
  AnonymizationPolicy policy;
  Value out = anonymize_observation(sample_doc(), policy);
  EXPECT_EQ(out.get_string("user"), pseudonymize("alice", policy.salt));
}

TEST(Anonymize, CoarsensLocation) {
  AnonymizationPolicy policy;
  policy.location_granularity_m = 500.0;
  Value out = anonymize_observation(sample_doc(), policy);
  EXPECT_DOUBLE_EQ(out.find_path("location.x")->as_double(), 1250.0);
  EXPECT_DOUBLE_EQ(out.find_path("location.y")->as_double(), 5750.0);
  // Provider/accuracy untouched.
  EXPECT_EQ(out.find_path("location.provider")->as_string(), "network");
}

TEST(Anonymize, DropsConfiguredFields) {
  AnonymizationPolicy policy;  // default drops "client"
  Value out = anonymize_observation(sample_doc(), policy);
  EXPECT_EQ(out.find("client"), nullptr);
  EXPECT_NE(out.find("spl"), nullptr);
}

TEST(Anonymize, SameUserSamePseudonymAcrossDocs) {
  AnonymizationPolicy policy;
  Value a = anonymize_observation(sample_doc(), policy);
  Value b = anonymize_observation(sample_doc(), policy);
  EXPECT_EQ(a.get_string("user"), b.get_string("user"));
}

TEST(Anonymize, NonObjectPassthrough) {
  AnonymizationPolicy policy;
  EXPECT_EQ(anonymize_observation(Value(5), policy), Value(5));
}

TEST(Anonymize, MissingLocationTolerated) {
  AnonymizationPolicy policy;
  Value doc(Object{{"user", Value("x")}, {"spl", Value(50.0)}});
  Value out = anonymize_observation(doc, policy);
  EXPECT_EQ(out.find("location"), nullptr);
}

TEST(Anonymize, OriginalDocumentUntouched) {
  AnonymizationPolicy policy;
  Value doc = sample_doc();
  anonymize_observation(doc, policy);
  EXPECT_EQ(doc.get_string("user"), "alice");
  EXPECT_NE(doc.find("client"), nullptr);
}

}  // namespace
}  // namespace mps::soundcity
