#include "soundcity/exposure.h"

#include <gtest/gtest.h>

namespace mps::soundcity {
namespace {

double identity(const DeviceModelId&, double raw) { return raw; }

phone::Observation obs_at(TimeMs t, double spl, const char* model = "M") {
  phone::Observation obs;
  obs.user = "u";
  obs.model = model;
  obs.captured_at = t;
  obs.spl_db = spl;
  return obs;
}

TEST(EnergeticMean, EmptyIsNullopt) {
  EXPECT_FALSE(energetic_mean_db({}).has_value());
}

TEST(EnergeticMean, ConstantInput) {
  EXPECT_NEAR(*energetic_mean_db({60.0, 60.0, 60.0}), 60.0, 1e-12);
}

TEST(EnergeticMean, DominatedByLoudEvents) {
  // Leq of {40, 80} is ~77 dB: energetic, not arithmetic, averaging.
  double leq = *energetic_mean_db({40.0, 80.0});
  EXPECT_GT(leq, 76.0);
  EXPECT_LT(leq, 78.0);
}

TEST(EnergeticMean, TwoEqualSourcesPlus3dB) {
  // Doubling sound energy adds ~3 dB; the mean of two equal levels stays
  // equal, but sum-of-two at equal level = level + 3.01.
  double one = *energetic_mean_db({70.0});
  EXPECT_NEAR(one, 70.0, 1e-12);
}

TEST(ExposureBands, Thresholds) {
  EXPECT_EQ(classify_exposure(40.0), ExposureBand::kLow);
  EXPECT_EQ(classify_exposure(54.99), ExposureBand::kLow);
  EXPECT_EQ(classify_exposure(55.0), ExposureBand::kModerate);
  EXPECT_EQ(classify_exposure(64.99), ExposureBand::kModerate);
  EXPECT_EQ(classify_exposure(65.0), ExposureBand::kHigh);
  EXPECT_EQ(classify_exposure(75.0), ExposureBand::kVeryHigh);
}

TEST(ExposureBands, NamesAndNotes) {
  EXPECT_STREQ(exposure_band_name(ExposureBand::kLow), "low");
  EXPECT_STREQ(exposure_band_name(ExposureBand::kVeryHigh), "very-high");
  EXPECT_NE(std::string(exposure_health_note(ExposureBand::kHigh)).find("heart"),
            std::string::npos);
}

TEST(ComputeExposure, EmptyInput) {
  ExposureReport report = compute_exposure({}, identity);
  EXPECT_TRUE(report.daily.empty());
  EXPECT_TRUE(report.monthly.empty());
  EXPECT_FALSE(report.overall_leq_db.has_value());
}

TEST(ComputeExposure, GroupsByDay) {
  std::vector<phone::Observation> obs{
      obs_at(hours(10), 60), obs_at(hours(14), 60),      // day 0
      obs_at(days(1) + hours(9), 45),                    // day 1
      obs_at(days(2) + hours(9), 72), obs_at(days(2), 72)};  // day 2
  ExposureReport report = compute_exposure(obs, identity);
  ASSERT_EQ(report.daily.size(), 3u);
  EXPECT_EQ(report.daily[0].day, 0);
  EXPECT_NEAR(report.daily[0].leq_db, 60.0, 1e-9);
  EXPECT_EQ(report.daily[0].samples, 2u);
  EXPECT_EQ(report.daily[0].band, ExposureBand::kModerate);
  EXPECT_EQ(report.daily[1].band, ExposureBand::kLow);
  EXPECT_EQ(report.daily[2].band, ExposureBand::kHigh);
}

TEST(ComputeExposure, PeakTracked) {
  std::vector<phone::Observation> obs{obs_at(hours(1), 50),
                                      obs_at(hours(2), 85),
                                      obs_at(hours(3), 60)};
  ExposureReport report = compute_exposure(obs, identity);
  ASSERT_EQ(report.daily.size(), 1u);
  EXPECT_DOUBLE_EQ(report.daily[0].peak_db, 85.0);
}

TEST(ComputeExposure, MonthlyRollup) {
  std::vector<phone::Observation> obs;
  for (int day = 0; day < 35; ++day)
    obs.push_back(obs_at(days(day) + hours(12), 58.0));
  ExposureReport report = compute_exposure(obs, identity);
  ASSERT_EQ(report.monthly.size(), 2u);  // days 0-29 and 30-34
  EXPECT_EQ(report.monthly[0].days_covered, 30);
  EXPECT_EQ(report.monthly[1].days_covered, 5);
  EXPECT_NEAR(report.monthly[0].leq_db, 58.0, 1e-9);
}

TEST(ComputeExposure, CalibrationApplied) {
  std::vector<phone::Observation> obs{obs_at(hours(1), 66, "biased")};
  auto calibrate = [](const DeviceModelId& model, double raw) {
    return model == "biased" ? raw - 6.0 : raw;
  };
  ExposureReport report = compute_exposure(obs, calibrate);
  ASSERT_EQ(report.daily.size(), 1u);
  EXPECT_NEAR(report.daily[0].leq_db, 60.0, 1e-9);
}

TEST(ComputeExposure, OverallLeq) {
  std::vector<phone::Observation> obs{obs_at(hours(1), 55),
                                      obs_at(days(1), 55)};
  ExposureReport report = compute_exposure(obs, identity);
  ASSERT_TRUE(report.overall_leq_db.has_value());
  EXPECT_NEAR(*report.overall_leq_db, 55.0, 1e-9);
}

TEST(InferExposure, EmptyTrajectory) {
  assim::Grid map(4, 4, 400, 400, 60.0);
  EXPECT_FALSE(infer_exposure_from_map(map, {}).has_value());
}

TEST(InferExposure, ConstantMap) {
  assim::Grid map(4, 4, 400, 400, 63.0);
  auto leq = infer_exposure_from_map(map, {{100, 100}, {300, 300}});
  ASSERT_TRUE(leq.has_value());
  EXPECT_NEAR(*leq, 63.0, 1e-9);
}

TEST(InferExposure, LoudSegmentDominates) {
  assim::Grid map(2, 1, 200, 100, 40.0);
  map.at(1, 0) = 80.0;
  auto leq = infer_exposure_from_map(map, {{50, 50}, {150, 50}});
  ASSERT_TRUE(leq.has_value());
  EXPECT_GT(*leq, 75.0);
}

}  // namespace
}  // namespace mps::soundcity
