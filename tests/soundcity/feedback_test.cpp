#include "soundcity/feedback.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::soundcity {
namespace {

phone::Observation good_obs(const char* user, TimeMs t, double spl = 62.0,
                            double accuracy = 15.0) {
  phone::Observation obs;
  obs.user = user;
  obs.model = "M";
  obs.captured_at = t;
  obs.spl_db = spl;
  phone::LocationFix fix;
  fix.accuracy_m = accuracy;
  obs.location = fix;
  return obs;
}

TEST(Feedback, PromptsOnAccurateInterestingObservation) {
  FeedbackManager manager;
  EXPECT_TRUE(manager.should_prompt(good_obs("u", hours(10))));
  EXPECT_EQ(manager.prompts_issued(), 1u);
}

TEST(Feedback, NoPromptWithoutLocation) {
  FeedbackManager manager;
  phone::Observation obs = good_obs("u", hours(10));
  obs.location.reset();
  EXPECT_FALSE(manager.should_prompt(obs));
  EXPECT_EQ(manager.prompts_suppressed(), 1u);
}

TEST(Feedback, NoPromptWithPoorAccuracy) {
  FeedbackManager manager;
  EXPECT_FALSE(manager.should_prompt(good_obs("u", hours(10), 62.0, 80.0)));
}

TEST(Feedback, NoPromptOutsideLevelRange) {
  FeedbackManager manager;
  EXPECT_FALSE(manager.should_prompt(good_obs("u", hours(10), 30.0)));
  EXPECT_FALSE(manager.should_prompt(good_obs("u", hours(10), 99.0)));
}

TEST(Feedback, MinimumGapEnforced) {
  FeedbackManager manager;
  EXPECT_TRUE(manager.should_prompt(good_obs("u", hours(10))));
  EXPECT_FALSE(manager.should_prompt(good_obs("u", hours(10) + minutes(30))));
  EXPECT_TRUE(manager.should_prompt(good_obs("u", hours(13))));
}

TEST(Feedback, DailyCapEnforced) {
  FeedbackPolicy policy;
  policy.max_prompts_per_day = 2;
  policy.min_prompt_gap = minutes(1);
  FeedbackManager manager(policy);
  EXPECT_TRUE(manager.should_prompt(good_obs("u", hours(8))));
  EXPECT_TRUE(manager.should_prompt(good_obs("u", hours(10))));
  EXPECT_FALSE(manager.should_prompt(good_obs("u", hours(12))));
  // Next day resets the counter.
  EXPECT_TRUE(manager.should_prompt(good_obs("u", days(1) + hours(8))));
}

TEST(Feedback, RateLimitPerUser) {
  FeedbackManager manager;
  EXPECT_TRUE(manager.should_prompt(good_obs("a", hours(10))));
  // A different user is unaffected by a's rate limit.
  EXPECT_TRUE(manager.should_prompt(good_obs("b", hours(10))));
}

TEST(Feedback, AnswersStoredAndQueried) {
  FeedbackManager manager;
  manager.record_answer("a", hours(1), 60, true);
  manager.record_answer("a", hours(2), 50, false);
  manager.record_answer("b", hours(3), 70, true);
  EXPECT_EQ(manager.total_answers(), 3u);
  EXPECT_EQ(manager.answers_for("a").size(), 2u);
  EXPECT_EQ(manager.answers_for("b").size(), 1u);
  EXPECT_TRUE(manager.answers_for("c").empty());
}

TEST(Feedback, ProfileNeedsMinimumAnswers) {
  FeedbackManager manager;
  for (int i = 0; i < 5; ++i)
    manager.record_answer("u", hours(i), 80.0, true);
  SensitivityProfile profile = manager.profile_for("u", 10);
  EXPECT_EQ(profile.answers, 5u);
  EXPECT_FALSE(profile.annoyance_threshold_db.has_value());
  EXPECT_DOUBLE_EQ(profile.annoyed_fraction, 1.0);
}

TEST(Feedback, ThresholdRecoveredFromSyntheticUser) {
  // A user annoyed above 65 dB (with a little noise in their answers).
  FeedbackManager manager;
  Rng rng(5);
  for (int i = 0; i < 300; ++i) {
    double level = rng.uniform(45.0, 90.0);
    double p_annoyed = level > 65.0 ? 0.9 : 0.08;
    manager.record_answer("u", minutes(i), level, rng.bernoulli(p_annoyed));
  }
  SensitivityProfile profile = manager.profile_for("u");
  ASSERT_TRUE(profile.annoyance_threshold_db.has_value());
  EXPECT_NEAR(*profile.annoyance_threshold_db, 65.0, 5.1);
}

TEST(Feedback, SensitiveVsTolerantUsersDiffer) {
  FeedbackManager manager;
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    double level = rng.uniform(45.0, 90.0);
    manager.record_answer("sensitive", minutes(i), level,
                          rng.bernoulli(level > 55.0 ? 0.9 : 0.05));
    manager.record_answer("tolerant", minutes(i), level,
                          rng.bernoulli(level > 80.0 ? 0.9 : 0.05));
  }
  auto sensitive = manager.profile_for("sensitive");
  auto tolerant = manager.profile_for("tolerant");
  ASSERT_TRUE(sensitive.annoyance_threshold_db.has_value());
  ASSERT_TRUE(tolerant.annoyance_threshold_db.has_value());
  EXPECT_LT(*sensitive.annoyance_threshold_db,
            *tolerant.annoyance_threshold_db - 10.0);
}

TEST(Feedback, NeverAnnoyedUserHasNoThreshold) {
  FeedbackManager manager;
  for (int i = 0; i < 50; ++i)
    manager.record_answer("calm", minutes(i), 50.0 + i * 0.5, false);
  SensitivityProfile profile = manager.profile_for("calm");
  EXPECT_FALSE(profile.annoyance_threshold_db.has_value());
  EXPECT_DOUBLE_EQ(profile.annoyed_fraction, 0.0);
}

}  // namespace
}  // namespace mps::soundcity
