#include "sim/simulation.h"

#include <gtest/gtest.h>

namespace mps::sim {
namespace {

TEST(Simulation, StartsAtZero) {
  Simulation s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, RunsEventsInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.at(30, [&] { order.push_back(3); });
  s.at(10, [&] { order.push_back(1); });
  s.at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulation, EqualTimesFifo) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) s.at(100, [&order, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, AfterSchedulesRelative) {
  Simulation s;
  TimeMs fired_at = -1;
  s.at(50, [&] { s.after(25, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 75);
}

TEST(Simulation, PastSchedulingClampsToNow) {
  Simulation s;
  TimeMs fired_at = -1;
  s.at(100, [&] { s.at(10, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Simulation, NegativeDelayClamps) {
  Simulation s;
  TimeMs fired_at = -1;
  s.at(40, [&] { s.after(-500, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 40);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation s;
  bool ran = false;
  EventId id = s.at(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Simulation, CancelTwiceFails) {
  Simulation s;
  EventId id = s.at(10, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
}

TEST(Simulation, CancelUnknownIdFails) {
  Simulation s;
  EXPECT_FALSE(s.cancel(0));
  EXPECT_FALSE(s.cancel(9999));
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation s;
  std::vector<TimeMs> fired;
  for (TimeMs t : {10, 20, 30, 40}) s.at(t, [&fired, &s] { fired.push_back(s.now()); });
  s.run_until(25);
  EXPECT_EQ(fired, (std::vector<TimeMs>{10, 20}));
  EXPECT_EQ(s.now(), 25);
  s.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulation, RunUntilIncludesBoundaryEvents) {
  Simulation s;
  bool ran = false;
  s.at(25, [&] { ran = true; });
  s.run_until(25);
  EXPECT_TRUE(ran);
}

TEST(Simulation, StepExecutesOne) {
  Simulation s;
  int n = 0;
  s.at(1, [&] { ++n; });
  s.at(2, [&] { ++n; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(n, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.after(5, recurse);
  };
  s.after(5, recurse);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), 50);
}

TEST(Simulation, PendingExcludesCancelled) {
  Simulation s;
  s.at(1, [] {});
  EventId id = s.at(2, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(id);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulation, StressManyInterleavedEventsStayOrdered) {
  // 100k events scheduled in shuffled order must execute in time order
  // with FIFO ties — the property every model in the stack leans on.
  Simulation s;
  const int kEvents = 100'000;
  std::vector<TimeMs> fired;
  fired.reserve(kEvents);
  unsigned seed = 12345;
  for (int i = 0; i < kEvents; ++i) {
    seed = seed * 1664525u + 1013904223u;
    TimeMs t = static_cast<TimeMs>(seed % 10'000);
    s.at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents));
  for (std::size_t i = 1; i < fired.size(); ++i)
    ASSERT_GE(fired[i], fired[i - 1]);
  EXPECT_EQ(s.executed(), static_cast<std::uint64_t>(kEvents));
}

TEST(Simulation, CancelInterleavedWithExecution) {
  Simulation s;
  std::vector<EventId> ids;
  int executed = 0;
  for (int i = 0; i < 1000; ++i)
    ids.push_back(s.at(i, [&executed] { ++executed; }));
  // Cancel every third event, some of which may be cancelled after others
  // with equal times already ran.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3)
    if (s.cancel(ids[i])) ++cancelled;
  s.run();
  EXPECT_EQ(executed + cancelled, 1000);
  EXPECT_EQ(cancelled, 334);
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulation s;
  std::vector<TimeMs> ticks;
  PeriodicTimer timer(s, 100, [&](TimeMs t) { ticks.push_back(t); });
  timer.start();
  s.run_until(350);
  EXPECT_EQ(ticks, (std::vector<TimeMs>{100, 200, 300}));
}

TEST(PeriodicTimer, InitialDelay) {
  Simulation s;
  std::vector<TimeMs> ticks;
  PeriodicTimer timer(s, 100, [&](TimeMs t) { ticks.push_back(t); });
  timer.start(10);
  s.run_until(250);
  EXPECT_EQ(ticks, (std::vector<TimeMs>{10, 110, 210}));
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulation s;
  int n = 0;
  PeriodicTimer timer(s, 50, [&](TimeMs) { ++n; });
  timer.start();
  s.run_until(120);
  timer.stop();
  s.run_until(1000);
  EXPECT_EQ(n, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StopFromWithinCallback) {
  Simulation s;
  int n = 0;
  PeriodicTimer timer(s, 50, [&](TimeMs) {
    if (++n == 3) timer.stop();
  });
  timer.start();
  s.run();
  EXPECT_EQ(n, 3);
}

TEST(PeriodicTimer, ChangePeriodTakesEffect) {
  Simulation s;
  std::vector<TimeMs> ticks;
  PeriodicTimer timer(s, 100, [&](TimeMs t) { ticks.push_back(t); });
  timer.start();
  s.run_until(100);  // first tick at 100
  timer.set_period(50);
  s.run_until(220);
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_EQ(ticks[0], 100);
  EXPECT_EQ(ticks[1], 150);
  EXPECT_EQ(ticks[2], 200);
}

TEST(PeriodicTimer, RestartReschedules) {
  Simulation s;
  std::vector<TimeMs> ticks;
  PeriodicTimer timer(s, 100, [&](TimeMs t) { ticks.push_back(t); });
  timer.start();
  s.run_until(150);
  timer.start();  // restart at t=150 -> next tick 250
  s.run_until(300);
  EXPECT_EQ(ticks, (std::vector<TimeMs>{100, 250}));
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulation s;
  int n = 0;
  {
    PeriodicTimer timer(s, 10, [&](TimeMs) { ++n; });
    timer.start();
  }
  s.run();
  EXPECT_EQ(n, 0);
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation s;
  int n = 0;
  EventId id = s.at(1, [&] { ++n; });
  s.run();
  EXPECT_EQ(n, 1);
  // The id already fired: cancelling it must fail and must not poison a
  // future lookup or the pending count.
  EXPECT_FALSE(s.cancel(id));
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.tombstones(), 0u);
}

TEST(Simulation, TombstonesStayBoundedUnderTimerChurn) {
  // A workload that cancels most of what it schedules (the upload-timer
  // pattern) must not accumulate tombstoned heap entries: the compaction
  // policy keeps them below the live-event count plus the purge threshold.
  Simulation s;
  int executed = 0;
  std::vector<EventId> ids;
  for (int round = 0; round < 200; ++round) {
    ids.clear();
    for (int i = 0; i < 100; ++i)
      ids.push_back(s.at(1'000'000 + round, [&] { ++executed; }));
    // Cancel 99 of the 100 — only one per round survives to fire.
    for (std::size_t i = 1; i < ids.size(); ++i) s.cancel(ids[i]);
    EXPECT_LE(s.tombstones(), s.pending() + 64) << round;
  }
  EXPECT_EQ(s.pending(), 200u);
  s.run();
  EXPECT_EQ(executed, 200);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.tombstones(), 0u);
}

TEST(Simulation, CompactionPreservesOrderAndFifoTies) {
  Simulation s;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 300; ++i) {
    int slot = i;
    s.at(5, [&order, slot] { order.push_back(slot); });
    doomed.push_back(s.at(4, [] {}));
  }
  for (EventId id : doomed) s.cancel(id);  // triggers in-place compaction
  s.run();
  ASSERT_EQ(order.size(), 300u);
  for (int i = 0; i < 300; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, ReserveDoesNotDisturbScheduling) {
  Simulation s;
  s.reserve(10'000);
  int n = 0;
  for (int i = 0; i < 100; ++i) s.at(i, [&] { ++n; });
  EXPECT_EQ(s.pending(), 100u);
  s.run();
  EXPECT_EQ(n, 100);
}

TEST(Simulation, PendingTracksLifecycleExactly) {
  Simulation s;
  EventId a = s.at(1, [] {});
  EventId b = s.at(2, [] {});
  s.at(3, [] {});
  EXPECT_EQ(s.pending(), 3u);
  EXPECT_TRUE(s.cancel(a));
  EXPECT_FALSE(s.cancel(a));  // double cancel
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_TRUE(s.step());      // fires b
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_FALSE(s.cancel(b));  // cancel after fire
  s.run();
  EXPECT_EQ(s.pending(), 0u);
}

TEST(PeriodicTimer, LongRunStaysFlat) {
  // Ten thousand ticks with a stop/start every 100: pending events and
  // tombstones must end where they started (no per-tick growth).
  Simulation s;
  int n = 0;
  PeriodicTimer timer(s, 10, [&](TimeMs) { ++n; });
  timer.start();
  for (int i = 0; i < 100; ++i) {
    s.run_until(s.now() + 1'000);
    timer.stop();
    timer.start();
  }
  EXPECT_EQ(n, 100 * 100);
  EXPECT_EQ(s.pending(), 1u);  // just the next scheduled tick
  EXPECT_LE(s.tombstones(), 64u);
}

TEST(PeriodicTimer, RestartFromWithinCallbackKeepsSingleCadence) {
  // Regression: a crash/restart handler calling stop()+start() from
  // inside the tick callback used to end with TWO live periodic chains —
  // start() scheduled one event, then the returning tick scheduled
  // another because running_ was true again. The orphan chain doubled
  // the cadence and survived stop() (pending_event_ only tracks one id).
  Simulation s;
  std::vector<TimeMs> ticks;
  PeriodicTimer timer(s, 100, [&](TimeMs t) {
    ticks.push_back(t);
    if (t == 100) {  // simulated crash/restart inside the tick
      timer.stop();
      timer.start();
    }
  });
  timer.start();
  s.run_until(600);
  // One chain only: 100 (restart), then every 100 ms from there.
  EXPECT_EQ(ticks, (std::vector<TimeMs>{100, 200, 300, 400, 500, 600}));
  EXPECT_EQ(s.pending(), 1u);

  // stop() must actually silence the timer afterwards.
  timer.stop();
  std::size_t before = ticks.size();
  s.run_until(1'200);
  EXPECT_EQ(ticks.size(), before);
}

}  // namespace
}  // namespace mps::sim
