#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "common/types.h"
#include "common/value.h"

namespace mps::obs {
namespace {

TEST(CounterTest, IncrementsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.add(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(LatencyHistogramTest, BucketsSamplesByUpperEdge) {
  LatencyHistogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);     // <= 10
  h.observe(10.0);    // <= 10 (edges are inclusive upper bounds)
  h.observe(50.0);    // <= 100
  h.observe(5000.0);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);  // overflow bucket
}

TEST(LatencyHistogramTest, RejectsBadEdges) {
  EXPECT_THROW(LatencyHistogram(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram({10.0, 10.0}), std::invalid_argument);
  EXPECT_THROW(LatencyHistogram({10.0, 5.0}), std::invalid_argument);
}

TEST(LatencyHistogramTest, QuantileInterpolatesWithinBucket) {
  LatencyHistogram h({10.0, 20.0});
  // Ten samples in (0, 10]: the median sits in the middle of that bucket.
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(LatencyHistogramTest, QuantileOverflowReportsLastEdge) {
  LatencyHistogram h({10.0});
  h.observe(1e9);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
}

TEST(LatencyHistogramTest, QuantileOnEmptyIsZero) {
  LatencyHistogram h({10.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogramTest, DefaultEdgesSpanMillisecondsToHours) {
  const auto& edges = LatencyHistogram::default_latency_edges_ms();
  ASSERT_GE(edges.size(), 2u);
  EXPECT_DOUBLE_EQ(edges.front(), 1.0);
  EXPECT_DOUBLE_EQ(edges.back(), static_cast<double>(hours(24)));
  for (std::size_t i = 1; i < edges.size(); ++i)
    EXPECT_LT(edges[i - 1], edges[i]);
}

TEST(RegistryTest, MetricsCreatedOnFirstAccessAndStable) {
  Registry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);  // same object: hoisted references stay valid
  EXPECT_TRUE(registry.has_counter("x"));
  EXPECT_FALSE(registry.has_counter("y"));
  EXPECT_FALSE(registry.has_gauge("x"));  // namespaces are per-kind
  registry.gauge("g");
  registry.histogram("h");
  EXPECT_EQ(registry.size(), 3u);
}

TEST(RegistryTest, CustomEdgesOnlyApplyToFirstCreation) {
  Registry registry;
  LatencyHistogram& h = registry.histogram("h", {1.0, 2.0});
  EXPECT_EQ(h.bucket_count(), 3u);  // 2 edges + overflow
  LatencyHistogram& again = registry.histogram("h", {5.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bucket_count(), 3u);  // redundant edges ignored
}

TEST(RegistryTest, SnapshotRoundTripsValues) {
  Registry registry;
  registry.counter("broker.published").inc(7);
  registry.gauge("docstore.documents").set(12.0);
  registry.histogram("client.delay_ms", {10.0, 100.0}).observe(42.0);

  MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "broker.published");
  EXPECT_EQ(snap.counters[0].second, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 12.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& h = snap.histograms[0].second;
  EXPECT_EQ(h.count, 1u);
  EXPECT_DOUBLE_EQ(h.sum, 42.0);
  ASSERT_EQ(h.edges.size(), 2u);
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[1], 1u);
}

TEST(RegistryTest, SnapshotAndResetZeroesButKeepsObjects) {
  Registry registry;
  Counter& c = registry.counter("c");
  c.inc(5);
  registry.gauge("g").set(1.0);
  registry.histogram("h").observe(10.0);

  MetricsSnapshot snap = registry.snapshot_and_reset();
  EXPECT_EQ(snap.counters[0].second, 5u);
  // Values are zeroed, the hoisted reference still works.
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  EXPECT_EQ(registry.snapshot().counters[0].second, 1u);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauges[0].second, 0.0);
  EXPECT_EQ(registry.snapshot().histograms[0].second.count, 0u);
}

TEST(ExporterTest, TextExportGolden) {
  Registry registry;
  registry.counter("broker.published").inc(42);
  registry.gauge("broker.queues").set(3.0);
  LatencyHistogram& h = registry.histogram("lat", {10.0, 100.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);

  // One line per metric, kind first, sorted by name within each kind.
  EXPECT_EQ(registry.export_text(),
            "counter broker.published 42\n"
            "gauge broker.queues 3\n"
            "histogram lat count=10 mean=5.000 p50=5.000 p90=9.000 "
            "p99=9.900\n");
}

TEST(ExporterTest, TextExportSortsByName) {
  Registry registry;
  registry.counter("b");
  registry.counter("a");
  EXPECT_EQ(registry.export_text(), "counter a 0\ncounter b 0\n");
}

TEST(ExporterTest, JsonExportGolden) {
  Registry registry;
  registry.counter("n").inc(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h", {10.0}).observe(3.0);

  Value doc = registry.export_json();
  EXPECT_EQ(doc.find("counters")->get_int("n"), 2);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->get_double("g"), 1.5);
  const Value* h = doc.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->get_int("count"), 1);
  EXPECT_DOUBLE_EQ(h->get_double("sum"), 3.0);
  const Value* buckets = h->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(buckets->as_array()[0].get_double("le"), 10.0);
  EXPECT_EQ(buckets->as_array()[0].get_int("count"), 1);
  // The overflow bucket cannot carry +infinity in JSON.
  EXPECT_EQ(buckets->as_array()[1].get_string("le"), "+inf");
  EXPECT_EQ(buckets->as_array()[1].get_int("count"), 0);

  // The export round-trips through the JSON text form.
  Value parsed = Value::parse_json(doc.to_json());
  EXPECT_EQ(parsed.find("counters")->get_int("n"), 2);
}

}  // namespace
}  // namespace mps::obs
