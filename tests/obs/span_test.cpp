#include "obs/span.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace mps::obs {
namespace {

TEST(SpanRecordTest, DelayRequiresBothStamps) {
  SpanRecord record;
  record.hops[static_cast<std::size_t>(Hop::kSensed)] = 100;
  EXPECT_TRUE(record.stamped(Hop::kSensed));
  EXPECT_FALSE(record.stamped(Hop::kUploaded));
  EXPECT_EQ(record.delay(Hop::kSensed, Hop::kUploaded), SpanRecord::kUnstamped);
  record.hops[static_cast<std::size_t>(Hop::kUploaded)] = 350;
  EXPECT_EQ(record.delay(Hop::kSensed, Hop::kUploaded), 250);
}

TEST(SpanTrackerTest, BeginStampsSensed) {
  SpanTracker tracker;
  std::uint64_t id = tracker.begin(1000);
  EXPECT_GT(id, 0u);
  const SpanRecord* record = tracker.find(id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->at(Hop::kSensed), 1000);
  EXPECT_EQ(record->dropped, DropStage::kNone);
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(SpanTrackerTest, FullLifecycle) {
  SpanTracker tracker;
  std::uint64_t id = tracker.begin(0);
  tracker.stamp(id, Hop::kBuffered, 10);
  tracker.stamp(id, Hop::kUploaded, 250);
  tracker.stamp(id, Hop::kRouted, 250);
  tracker.stamp(id, Hop::kPersisted, 251);
  tracker.stamp(id, Hop::kAssimilated, hours(1));

  const SpanRecord* record = tracker.find(id);
  ASSERT_NE(record, nullptr);
  for (std::size_t h = 0; h < kHopCount; ++h)
    EXPECT_TRUE(record->stamped(static_cast<Hop>(h)));
  EXPECT_EQ(record->delay(Hop::kSensed, Hop::kUploaded), 250);
  EXPECT_EQ(record->delay(Hop::kUploaded, Hop::kRouted), 0);
  EXPECT_EQ(tracker.count_through(Hop::kAssimilated), 1u);
}

TEST(SpanTrackerTest, UnknownAndZeroIdsAreIgnored) {
  SpanTracker tracker;
  tracker.stamp(0, Hop::kUploaded, 10);    // untraced producer
  tracker.stamp(999, Hop::kUploaded, 10);  // never allocated
  tracker.drop(0, DropStage::kUnroutable, 10);
  tracker.drop(999, DropStage::kUnroutable, 10);
  EXPECT_EQ(tracker.size(), 0u);
}

TEST(SpanTrackerTest, FirstDropWins) {
  SpanTracker tracker;
  std::uint64_t id = tracker.begin(0);
  tracker.drop(id, DropStage::kExpiredInBroker, 100);
  tracker.drop(id, DropStage::kRejectedByServer, 200);
  EXPECT_EQ(tracker.find(id)->dropped, DropStage::kExpiredInBroker);

  auto counts = tracker.drop_counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].first, DropStage::kExpiredInBroker);
  EXPECT_EQ(counts[0].second, 1u);
}

TEST(SpanTrackerTest, DropCountsGroupByStage) {
  SpanTracker tracker;
  tracker.drop(tracker.begin(0), DropStage::kNotShared, 0);
  tracker.drop(tracker.begin(0), DropStage::kNotShared, 0);
  tracker.drop(tracker.begin(0), DropStage::kOverflowInBroker, 0);
  tracker.begin(0);  // alive

  auto counts = tracker.drop_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0].first, DropStage::kNone);
  EXPECT_EQ(counts[0].second, 1u);
  EXPECT_EQ(counts[1].first, DropStage::kNotShared);
  EXPECT_EQ(counts[1].second, 2u);
  EXPECT_EQ(counts[2].first, DropStage::kOverflowInBroker);
  EXPECT_EQ(counts[2].second, 1u);
}

TEST(SpanTrackerTest, HopDelaysAndCdfSkipPartialSpans) {
  SpanTracker tracker;
  for (TimeMs delay : {100, 200, 300}) {
    std::uint64_t id = tracker.begin(0);
    tracker.stamp(id, Hop::kUploaded, delay);
  }
  tracker.begin(0);  // sensed only: no uploaded stamp, excluded

  auto delays = tracker.hop_delays(Hop::kSensed, Hop::kUploaded);
  ASSERT_EQ(delays.size(), 3u);
  EmpiricalCdf cdf = tracker.delay_cdf(Hop::kSensed, Hop::kUploaded);
  EXPECT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(200.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 300.0);
}

TEST(SpanTrackerTest, RegistryMirrorsHopLatenciesAndDrops) {
  Registry registry;
  SpanTracker tracker(&registry);

  std::uint64_t id = tracker.begin(0);
  tracker.stamp(id, Hop::kBuffered, 5);
  tracker.stamp(id, Hop::kUploaded, 105);
  std::uint64_t dropped = tracker.begin(0);
  tracker.drop(dropped, DropStage::kExpiredInBroker, 50);

  EXPECT_EQ(registry.counter("span.started").value(), 2u);
  EXPECT_EQ(registry.counter("span.dropped.expired_in_broker").value(), 1u);
  LatencyHistogram& buffered = registry.histogram("span.sensed_to_buffered_ms");
  EXPECT_EQ(buffered.count(), 1u);
  EXPECT_DOUBLE_EQ(buffered.sum(), 5.0);
  LatencyHistogram& uploaded =
      registry.histogram("span.buffered_to_uploaded_ms");
  EXPECT_EQ(uploaded.count(), 1u);
  EXPECT_DOUBLE_EQ(uploaded.sum(), 100.0);
}

TEST(SpanTrackerTest, SkippedHopDoesNotFeedHistogram) {
  Registry registry;
  SpanTracker tracker(&registry);
  std::uint64_t id = tracker.begin(0);
  // Jump straight to kUploaded without a kBuffered stamp: the
  // buffered->uploaded histogram has no previous-hop time to diff against.
  tracker.stamp(id, Hop::kUploaded, 100);
  EXPECT_EQ(registry.histogram("span.buffered_to_uploaded_ms").count(), 0u);
  EXPECT_EQ(registry.histogram("span.sensed_to_buffered_ms").count(), 0u);
}

TEST(SpanTrackerTest, ClearRestartsIds) {
  SpanTracker tracker;
  tracker.begin(0);
  tracker.begin(0);
  tracker.clear();
  EXPECT_EQ(tracker.size(), 0u);
  EXPECT_EQ(tracker.begin(0), 1u);
}

}  // namespace
}  // namespace mps::obs
