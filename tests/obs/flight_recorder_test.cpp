// The flight recorder's black-box guarantees: the last kRingCapacity
// events per thread survive in global order, wraparound keeps the newest
// tail, concurrent writers never tear a dump (the TSan target), and the
// JSONL dump is parseable line-by-line.
//
// The recorder is process-global, so every test starts from clear() and
// re-enables recording on exit; tests in this binary must not assume a
// pristine recorder beyond that.
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/value.h"

namespace mps::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::instance().clear();
    FlightRecorder::instance().set_enabled(true);
  }
  void TearDown() override {
    FlightRecorder::instance().clear();
    FlightRecorder::instance().set_enabled(true);
  }
};

TEST_F(FlightRecorderTest, RecordsDecodeFaithfully) {
  FlightRecorder::record(FrEvent::kWalAppend, 17, 256, 1234);
  FlightRecorder::record(FrEvent::kBrokerReject, 1, 0);  // no timestamp
  std::vector<FrRecord> records =
      FlightRecorder::instance().collect_current_thread();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, FrEvent::kWalAppend);
  EXPECT_EQ(records[0].a, 17u);
  EXPECT_EQ(records[0].b, 256u);
  EXPECT_EQ(records[0].t_ms, 1234);
  EXPECT_EQ(records[1].type, FrEvent::kBrokerReject);
  EXPECT_EQ(records[1].t_ms, -1);
  EXPECT_LT(records[0].seq, records[1].seq);
}

TEST_F(FlightRecorderTest, DisabledIsInert) {
  FlightRecorder& recorder = FlightRecorder::instance();
  std::uint64_t before = recorder.total_recorded();
  recorder.set_enabled(false);
  FlightRecorder::record(FrEvent::kBrokerPublish, 1, 1);
  EXPECT_EQ(recorder.total_recorded(), before);
  EXPECT_TRUE(recorder.collect_current_thread().empty());
  // Re-enabling picks the sequence back up.
  recorder.set_enabled(true);
  FlightRecorder::record(FrEvent::kBrokerPublish, 2, 1);
  EXPECT_EQ(recorder.total_recorded(), before + 1);
}

TEST_F(FlightRecorderTest, WraparoundKeepsNewestTailInOrder) {
  constexpr std::uint64_t kTotal = FlightRecorder::kRingCapacity + 500;
  for (std::uint64_t i = 1; i <= kTotal; ++i)
    FlightRecorder::record(FrEvent::kExecChunkClaim, i, kTotal);
  std::vector<FrRecord> records =
      FlightRecorder::instance().collect_current_thread();
  ASSERT_EQ(records.size(), FlightRecorder::kRingCapacity);
  // The survivors are exactly the last kRingCapacity events, in order.
  EXPECT_EQ(records.front().a, kTotal - FlightRecorder::kRingCapacity + 1);
  EXPECT_EQ(records.back().a, kTotal);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].a, records[i - 1].a + 1);
    EXPECT_GT(records[i].seq, records[i - 1].seq);
  }
}

TEST_F(FlightRecorderTest, EventNamesCoverEveryKind) {
  for (std::size_t i = 0; i < kFrEventCount; ++i) {
    const char* name = fr_event_name(static_cast<FrEvent>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u) << "event " << i;
  }
}

TEST_F(FlightRecorderTest, ScopeLabelsThisThreadsRing) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_thread_scope("lossy-network/seed=7");
  FlightRecorder::record(FrEvent::kFaultInject, 0, 1, 99);
  std::vector<FrRecord> records = recorder.collect_current_thread();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].scope, "lossy-network/seed=7");
  recorder.set_thread_scope("");
}

TEST_F(FlightRecorderTest, JsonlLinesParse) {
  FlightRecorder& recorder = FlightRecorder::instance();
  recorder.set_thread_scope("jsonl-test");
  FlightRecorder::record(FrEvent::kServerKill, 1, 0, 500);
  FlightRecorder::record(FrEvent::kServerRecover, 1, 42, 600);
  std::ostringstream out;
  FlightRecorder::write_jsonl(out, recorder.collect_current_thread());
  recorder.set_thread_scope("");

  std::istringstream in(out.str());
  std::string line;
  std::vector<Value> parsed;
  while (std::getline(in, line)) parsed.push_back(Value::parse_json(line));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].get_string("type"), "server_kill");
  EXPECT_EQ(parsed[0].get_int("t_ms", -2), 500);
  EXPECT_EQ(parsed[1].get_string("type"), "server_recover");
  EXPECT_EQ(parsed[1].get_int("a", 0), 1);
  EXPECT_EQ(parsed[1].get_int("b", 0), 42);
  EXPECT_EQ(parsed[1].get_string("scope"), "jsonl-test");
  EXPECT_LT(parsed[0].get_int("seq", 0), parsed[1].get_int("seq", 0));
}

TEST_F(FlightRecorderTest, DumpToFileWritesParseableJsonl) {
  FlightRecorder::record(FrEvent::kWalFsync, 9, 3, 1000);
  std::string path = ::testing::TempDir() + "flight_dump_test.jsonl";
  ASSERT_TRUE(
      FlightRecorder::instance().dump_current_thread_to_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  bool saw_fsync = false;
  while (std::getline(in, line)) {
    Value v = Value::parse_json(line);
    if (v.get_string("type") == "wal_fsync") {
      saw_fsync = true;
      EXPECT_EQ(v.get_int("a", 0), 9);
    }
  }
  EXPECT_TRUE(saw_fsync);
  std::remove(path.c_str());
}

// The TSan target: many writer threads hammering their private rings
// while a reader collects concurrently. The guarantee is absence of
// races and torn reads — every collected record must decode to a value
// some writer actually wrote.
TEST_F(FlightRecorderTest, ConcurrentWritersAndReaderAreRaceFree) {
  constexpr int kWriters = 4;
  constexpr std::uint64_t kEventsPerWriter = 20000;
  FlightRecorder& recorder = FlightRecorder::instance();

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([w] {
      FlightRecorder::instance().set_thread_scope("writer-" +
                                                  std::to_string(w));
      for (std::uint64_t i = 1; i <= kEventsPerWriter; ++i)
        FlightRecorder::record(FrEvent::kBrokerPublish, i,
                               static_cast<std::uint64_t>(w), 7);
    });
  }
  // Read while the writers are mid-flight; torn slots must be skipped,
  // never surfaced.
  for (int pass = 0; pass < 10; ++pass) {
    std::vector<FrRecord> snapshot = recorder.collect();
    for (const FrRecord& r : snapshot) {
      if (r.type != FrEvent::kBrokerPublish) continue;
      EXPECT_GE(r.a, 1u);
      EXPECT_LE(r.a, kEventsPerWriter);
      EXPECT_LT(r.b, static_cast<std::uint64_t>(kWriters));
      EXPECT_EQ(r.t_ms, 7);
    }
  }
  for (std::thread& t : writers) t.join();

  // Quiescent: the merged dump is sorted by seq with no duplicates, and
  // each writer's ring holds its newest kRingCapacity events.
  std::vector<FrRecord> all = recorder.collect();
  for (std::size_t i = 1; i < all.size(); ++i)
    ASSERT_GT(all[i].seq, all[i - 1].seq);
  std::size_t publishes = 0;
  for (const FrRecord& r : all)
    if (r.type == FrEvent::kBrokerPublish) ++publishes;
  EXPECT_EQ(publishes, kWriters * FlightRecorder::kRingCapacity);
}

TEST_F(FlightRecorderTest, ClearEmptiesRingsButSequenceMarchesOn) {
  FlightRecorder& recorder = FlightRecorder::instance();
  FlightRecorder::record(FrEvent::kDedupEvict, 1);
  std::uint64_t seq_before = recorder.total_recorded();
  recorder.clear();
  EXPECT_TRUE(recorder.collect().empty());
  FlightRecorder::record(FrEvent::kDedupEvict, 2);
  std::vector<FrRecord> records = recorder.collect_current_thread();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GT(records[0].seq, seq_before);
}

}  // namespace
}  // namespace mps::obs
