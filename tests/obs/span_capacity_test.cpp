// The SpanTracker's bounded-memory contract: at most `capacity` retained
// spans, FIFO retirement of *closed* spans only (dropped or persisted),
// open spans never evicted — the invariant harness must never lose an
// in-flight observation to the bound — and eviction visible through the
// obs.spans_evicted counter.
#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/span.h"

namespace mps::obs {
namespace {

TEST(SpanCapacity, ClosedSpansRetireFifoWhenOverCapacity) {
  Registry registry;
  SpanTracker tracker(&registry, /*capacity=*/2);
  std::uint64_t a = tracker.begin(0);
  tracker.stamp(a, Hop::kPersisted, 10);
  std::uint64_t b = tracker.begin(1);
  tracker.stamp(b, Hop::kPersisted, 11);
  // Third span pushes past capacity: `a` (oldest closed) retires.
  std::uint64_t c = tracker.begin(2);
  EXPECT_EQ(tracker.size(), 2u);
  EXPECT_EQ(tracker.evicted(), 1u);
  EXPECT_EQ(tracker.first_id(), b);
  EXPECT_EQ(tracker.last_id(), c);
  EXPECT_EQ(tracker.find(a), nullptr);
  EXPECT_NE(tracker.find(b), nullptr);
  EXPECT_EQ(registry.counter("obs.spans_evicted").value(), 1u);
  // Totals still count retired spans.
  EXPECT_EQ(tracker.total_started(), 3u);
}

TEST(SpanCapacity, DroppedSpansCountAsClosed) {
  SpanTracker tracker(nullptr, /*capacity=*/1);
  std::uint64_t a = tracker.begin(0);
  tracker.drop(a, DropStage::kExpiredInBuffer, 5);
  tracker.begin(1);
  EXPECT_EQ(tracker.size(), 1u);
  EXPECT_EQ(tracker.find(a), nullptr);
  EXPECT_EQ(tracker.evicted(), 1u);
}

TEST(SpanCapacity, OpenSpansAreNeverEvicted) {
  Registry registry;
  SpanTracker tracker(&registry, /*capacity=*/2);
  // Five spans, all in flight: the window transiently exceeds capacity
  // rather than sacrificing loss accounting.
  std::uint64_t ids[5];
  for (int i = 0; i < 5; ++i) ids[i] = tracker.begin(i);
  EXPECT_EQ(tracker.size(), 5u);
  EXPECT_EQ(tracker.evicted(), 0u);
  EXPECT_EQ(registry.counter("obs.spans_evicted").value(), 0u);
  for (std::uint64_t id : ids) EXPECT_NE(tracker.find(id), nullptr);

  // A closed span behind an open one stays put too: FIFO stops at the
  // first open front.
  tracker.stamp(ids[1], Hop::kPersisted, 100);  // ids[0] still open
  std::uint64_t f = tracker.begin(5);
  EXPECT_EQ(tracker.evicted(), 0u);
  EXPECT_NE(tracker.find(ids[1]), nullptr);

  // Close the front: the backlog drains down to capacity.
  tracker.drop(ids[0], DropStage::kUnroutable, 101);
  for (int i = 2; i < 5; ++i) tracker.stamp(ids[i], Hop::kPersisted, 102);
  tracker.stamp(f, Hop::kPersisted, 102);
  tracker.begin(6);
  EXPECT_EQ(tracker.size(), 2u);
  EXPECT_EQ(tracker.evicted(), 5u);
  EXPECT_EQ(registry.counter("obs.spans_evicted").value(), 5u);
}

TEST(SpanCapacity, LateStampsOnRetiredIdsAreIgnored) {
  Registry registry;
  SpanTracker tracker(&registry, /*capacity=*/1);
  std::uint64_t a = tracker.begin(0);
  tracker.stamp(a, Hop::kPersisted, 10);
  std::uint64_t b = tracker.begin(1);
  ASSERT_EQ(tracker.find(a), nullptr);
  // A late assimilation stamp for the retired id must not crash, resurrect
  // the span, or corrupt the retained range.
  tracker.stamp(a, Hop::kAssimilated, 999);
  tracker.drop(a, DropStage::kRejectedByServer, 999);
  EXPECT_EQ(tracker.find(a), nullptr);
  EXPECT_EQ(tracker.first_id(), b);
  EXPECT_EQ(tracker.size(), 1u);
}

TEST(SpanCapacity, UnboundedWhenCapacityZero) {
  SpanTracker tracker(nullptr, /*capacity=*/0);
  for (int i = 0; i < 100; ++i) {
    std::uint64_t id = tracker.begin(i);
    tracker.stamp(id, Hop::kPersisted, i + 1);
  }
  EXPECT_EQ(tracker.size(), 100u);
  EXPECT_EQ(tracker.evicted(), 0u);
}

TEST(SpanCapacity, SetCapacityTakesEffectOnNextBegin) {
  SpanTracker tracker(nullptr, /*capacity=*/0);
  for (int i = 0; i < 10; ++i) {
    std::uint64_t id = tracker.begin(i);
    tracker.stamp(id, Hop::kPersisted, i + 1);
  }
  tracker.set_capacity(3);
  EXPECT_EQ(tracker.size(), 10u);  // shrink is lazy
  tracker.begin(11);
  EXPECT_EQ(tracker.size(), 3u);
  EXPECT_EQ(tracker.evicted(), 8u);
}

TEST(SpanCapacity, ClearResetsIdsAndRetainedSpans) {
  SpanTracker tracker(nullptr, /*capacity=*/2);
  std::uint64_t a = tracker.begin(0);
  tracker.stamp(a, Hop::kPersisted, 1);
  tracker.begin(1);
  tracker.begin(2);
  tracker.clear();
  EXPECT_EQ(tracker.size(), 0u);
  EXPECT_GT(tracker.first_id(), tracker.last_id());  // empty range
  EXPECT_EQ(tracker.begin(0), 1u);  // ids restart from 1
}

}  // namespace
}  // namespace mps::obs
