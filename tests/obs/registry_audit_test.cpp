// Registry coverage audit: after a full chaos run with the durability
// substrate wired and the fleet publishing over loopback sockets, the
// registry export must carry every metric family the telemetry plane
// promises — durable.*, exec.*, retry.*, fault.*, net.* — and both
// exporters must be deterministic (sorted by name, identical across
// repeated export calls).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/value.h"
#include "core/recovery.h"
#include "durable/storage.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "net/net_server.h"
#include "obs/metrics.h"
#include "study/invariants.h"
#include "study/study.h"

namespace mps::study {
namespace {

// One small kill-chaos run wiring every subsystem into `registry`.
void run_wired_chaos(obs::Registry& registry) {
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server(sim, broker, db);
  obs::SpanTracker tracer(&registry);
  broker.set_metrics(&registry);
  server.set_metrics(&registry);
  server.set_tracer(&tracer);

  // Socket mode, so the net.* families land in the same export. The
  // registry (the caller's) outlives the server: ~NetServer closes its
  // connections, which bumps the disconnect counter.
  net::NetServer net_server(sim, broker);
  net_server.set_metrics(&registry);

  durable::MemStorageEnv env;
  core::ServerLifecycle lifecycle(env, sim, broker, db, server, {}, &registry);

  fault::FaultPlan plan = fault::FaultPlan::profile("server-kill-lossy", 5);

  crowd::PopulationConfig pc;
  pc.seed = 5;
  pc.device_scale = 0.005;
  pc.obs_scale = 0.02;
  pc.horizon = days(2);
  crowd::Population pop = crowd::Population::generate(pc);

  StudyConfig sc;
  sc.seed = 5;
  sc.duration_days = 1;
  sc.metrics = &registry;
  sc.tracer = &tracer;
  sc.faults = &plan;
  sc.lifecycle = &lifecycle;
  sc.snapshot_period = hours(6);
  sc.drain = hours(1);
  sc.net_server = &net_server;

  StudyRunner runner(pop, sc, sim, broker, server);
  runner.run();

  // The sweep/executor layer mirrors its stats explicitly.
  exec::SweepExecutor sweep(2);
  sweep.run(4, [](std::size_t) {});
  sweep.mirror_into(registry);
}

bool any_starts_with(const std::vector<std::string>& names,
                     const std::string& prefix) {
  for (const std::string& n : names)
    if (n.rfind(prefix, 0) == 0) return true;
  return false;
}

TEST(RegistryAudit, ChaosRunExportsEveryMetricFamily) {
  obs::Registry registry;
  run_wired_chaos(registry);

  obs::MetricsSnapshot snap = registry.snapshot();
  std::vector<std::string> names;
  for (const auto& [name, v] : snap.counters) names.push_back(name);
  for (const auto& [name, v] : snap.gauges) names.push_back(name);
  for (const auto& [name, v] : snap.histograms) names.push_back(name);

  // The families the telemetry plane documents. A wiring regression that
  // silently detaches one of them fails here, not in a dashboard.
  for (const char* prefix :
       {"durable.", "exec.", "retry.", "fault.", "broker.", "server.",
        "client.", "span.", "obs.", "ingest.", "net."}) {
    EXPECT_TRUE(any_starts_with(names, prefix))
        << "no metric with prefix " << prefix << " in the export";
  }

  // Specific load-bearing metrics the tooling reads by exact name.
  EXPECT_TRUE(registry.has_counter("durable.wal_appends"));
  EXPECT_TRUE(registry.has_counter("durable.replayed_records"));
  EXPECT_TRUE(registry.has_counter("retry.client_upload"));
  EXPECT_TRUE(registry.has_counter("obs.spans_evicted"));
  EXPECT_TRUE(registry.has_gauge("exec.sweep_runs"));
  // Ingest fast path & admission control (DESIGN.md §13).
  EXPECT_TRUE(registry.has_counter("server.admission_shed"));
  EXPECT_TRUE(registry.has_counter("server.admission_accepted"));
  EXPECT_TRUE(registry.has_counter("ingest.flat_batches"));
  EXPECT_TRUE(registry.has_counter("ingest.arena_created"));
  EXPECT_TRUE(registry.has_gauge("ingest.arena_high_water_bytes"));
  EXPECT_TRUE(registry.has_counter("fault.checked.admission_shed"));
  // Network serving plane (DESIGN.md §14): both ends of the socket.
  EXPECT_TRUE(registry.has_counter("net.accepted"));
  EXPECT_TRUE(registry.has_counter("net.frame_rejects"));
  EXPECT_TRUE(registry.has_counter("net.publishes"));
  EXPECT_TRUE(registry.has_counter("net.client_connects"));
  EXPECT_TRUE(registry.has_counter("net.client_resends"));
  EXPECT_TRUE(registry.has_gauge("net.connections"));
}

TEST(RegistryAudit, ExportsAreSortedAndDeterministic) {
  obs::Registry registry;
  registry.counter("z.last").inc();
  registry.counter("a.first").inc(2);
  registry.counter("m.middle").inc(3);
  registry.gauge("g.b").set(1.0);
  registry.gauge("g.a").set(2.0);
  registry.histogram("h.x").observe(5.0);

  obs::MetricsSnapshot snap = registry.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  for (std::size_t i = 1; i < snap.gauges.size(); ++i)
    EXPECT_LT(snap.gauges[i - 1].first, snap.gauges[i].first);

  // Same registry, same values -> byte-identical exports, both formats.
  EXPECT_EQ(registry.export_text(), registry.export_text());
  EXPECT_EQ(registry.export_json().to_json(),
            registry.export_json().to_json());

  // The text export lists counters in sorted order.
  std::string text = registry.export_text();
  EXPECT_LT(text.find("a.first"), text.find("m.middle"));
  EXPECT_LT(text.find("m.middle"), text.find("z.last"));

  // The JSON export round-trips with the same values.
  Value parsed = Value::parse_json(registry.export_json().to_json());
  EXPECT_EQ(parsed.at("counters").get_int("a.first", 0), 2);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").get_double("g.a", 0.0), 2.0);
}

}  // namespace
}  // namespace mps::study
