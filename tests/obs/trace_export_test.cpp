// Chrome trace_event export: the output must be a valid trace document
// (the schema Perfetto / about://tracing loads), with span lifecycles as
// complete events, drops and recorder events as instants, and metadata
// naming the tracks. The schema check parses the serialized JSON back —
// the same path a trace viewer takes.
#include "obs/trace_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/value.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace mps::obs {
namespace {

// Every trace_event must carry the required keys for its phase type.
void check_trace_schema(const Value& trace) {
  ASSERT_TRUE(trace.is_object());
  EXPECT_EQ(trace.get_string("displayTimeUnit"), "ms");
  const Value* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  for (const Value& ev : events->as_array()) {
    ASSERT_TRUE(ev.is_object());
    std::string ph = ev.get_string("ph");
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << "phase: " << ph;
    EXPECT_FALSE(ev.get_string("name").empty());
    ASSERT_NE(ev.find("pid"), nullptr);
    if (ph == "X") {
      // Complete events need a track, a timestamp and a duration.
      ASSERT_NE(ev.find("tid"), nullptr);
      ASSERT_NE(ev.find("ts"), nullptr);
      ASSERT_NE(ev.find("dur"), nullptr);
      EXPECT_GE(ev.get_double("dur", -1.0), 0.0);
    } else if (ph == "i") {
      ASSERT_NE(ev.find("tid"), nullptr);
      ASSERT_NE(ev.find("ts"), nullptr);
      EXPECT_EQ(ev.get_string("s"), "t");  // thread-scoped instant
    }
  }
}

TEST(TraceExport, SpanLifecycleBecomesCompleteEvents) {
  SpanTracker tracker;
  std::uint64_t id = tracker.begin(100);
  tracker.stamp(id, Hop::kBuffered, 110);
  tracker.stamp(id, Hop::kUploaded, 400);
  tracker.stamp(id, Hop::kRouted, 401);
  tracker.stamp(id, Hop::kPersisted, 450);

  Array events = spans_to_trace_events(tracker);
  // Four stamped consecutive pairs -> four "X" events (metadata events
  // naming the tracks ride along in front).
  std::vector<const Value*> complete;
  for (const Value& ev : events)
    if (ev.get_string("ph") == "X") complete.push_back(&ev);
  ASSERT_EQ(complete.size(), 4u);
  const Value& first = *complete[0];
  EXPECT_EQ(first.get_string("name"), "sensed -> buffered");
  // Sim ms scaled to trace microseconds.
  EXPECT_DOUBLE_EQ(first.get_double("ts", 0.0), 100.0 * 1000.0);
  EXPECT_DOUBLE_EQ(first.get_double("dur", 0.0), 10.0 * 1000.0);
  EXPECT_EQ(first.get_int("pid", 0), 1);
  const Value* args = first.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->get_int("span", 0), static_cast<std::int64_t>(id));
}

TEST(TraceExport, SkippedHopBridgesToNextStamped) {
  // An untraced middle hop must not split the lifecycle: sensed ->
  // uploaded renders as one event when buffered was never stamped.
  SpanTracker tracker;
  std::uint64_t id = tracker.begin(0);
  tracker.stamp(id, Hop::kUploaded, 50);
  Array events = spans_to_trace_events(tracker);
  std::vector<const Value*> complete;
  for (const Value& ev : events)
    if (ev.get_string("ph") == "X") complete.push_back(&ev);
  ASSERT_EQ(complete.size(), 1u);
  EXPECT_EQ(complete[0]->get_string("name"), "sensed -> uploaded");
  EXPECT_DOUBLE_EQ(complete[0]->get_double("dur", 0.0), 50.0 * 1000.0);
}

TEST(TraceExport, DropsBecomeInstantEvents) {
  SpanTracker tracker;
  std::uint64_t id = tracker.begin(10);
  tracker.stamp(id, Hop::kBuffered, 20);
  tracker.drop(id, DropStage::kExpiredInBuffer, 30);
  Array events = spans_to_trace_events(tracker);
  bool saw_drop = false;
  for (const Value& ev : events) {
    if (ev.get_string("ph") != "i") continue;
    saw_drop = true;
    EXPECT_NE(ev.get_string("name").find("expired_in_buffer"),
              std::string::npos);
    EXPECT_EQ(ev.get_int("tid", -1),
              static_cast<std::int64_t>(kHopCount));  // the drop track
  }
  EXPECT_TRUE(saw_drop);
}

TEST(TraceExport, RecorderEventsBecomeInstantsWithSeqFallback) {
  FlightRecorder::instance().clear();
  FlightRecorder::record(FrEvent::kWalAppend, 3, 64, 2000);  // has sim time
  FlightRecorder::record(FrEvent::kExecChunkClaim, 0, 8);    // t_ms == -1
  std::vector<FrRecord> records =
      FlightRecorder::instance().collect_current_thread();
  ASSERT_EQ(records.size(), 2u);

  Array events = recorder_to_trace_events(records);
  const Value* timed = nullptr;
  const Value* untimed = nullptr;
  for (const Value& ev : events) {
    if (ev.get_string("name") == "wal_append") timed = &ev;
    if (ev.get_string("name") == "exec_chunk_claim") untimed = &ev;
  }
  ASSERT_NE(timed, nullptr);
  ASSERT_NE(untimed, nullptr);
  EXPECT_DOUBLE_EQ(timed->get_double("ts", 0.0), 2000.0 * 1000.0);
  // No sim time: the global sequence stands in as a microsecond tick.
  EXPECT_DOUBLE_EQ(untimed->get_double("ts", -1.0),
                   static_cast<double>(records[1].seq));
  EXPECT_EQ(timed->get_int("pid", 0), 2);
  FlightRecorder::instance().clear();
}

TEST(TraceExport, BuildTracePassesSchemaCheckAndRoundTrips) {
  FlightRecorder::instance().clear();
  SpanTracker tracker;
  for (int i = 0; i < 5; ++i) {
    std::uint64_t id = tracker.begin(i * 100);
    tracker.stamp(id, Hop::kBuffered, i * 100 + 10);
    tracker.stamp(id, Hop::kPersisted, i * 100 + 60);
  }
  tracker.drop(tracker.begin(900), DropStage::kUnroutable, 950);
  FlightRecorder::record(FrEvent::kServerKill, 1, 0, 300);
  FlightRecorder::record(FrEvent::kServerRecover, 1, 12, 360);

  Value trace = build_trace(&tracker, &FlightRecorder::instance());
  // The serialized form must parse back — what a viewer actually loads.
  Value parsed = Value::parse_json(trace.to_json());
  check_trace_schema(parsed);

  // Both sources are present: span "X" events (pid 1) and recorder
  // instants (pid 2), plus metadata naming the processes.
  std::set<std::string> phases;
  std::set<std::int64_t> pids;
  for (const Value& ev : parsed.at("traceEvents").as_array()) {
    phases.insert(ev.get_string("ph"));
    pids.insert(ev.get_int("pid", 0));
  }
  EXPECT_TRUE(phases.count("X"));
  EXPECT_TRUE(phases.count("i"));
  EXPECT_TRUE(phases.count("M"));
  EXPECT_TRUE(pids.count(1));
  EXPECT_TRUE(pids.count(2));
  FlightRecorder::instance().clear();
}

TEST(TraceExport, NullSourcesYieldValidEmptyishTrace) {
  Value trace = build_trace(nullptr, nullptr);
  Value parsed = Value::parse_json(trace.to_json());
  check_trace_schema(parsed);
}

TEST(TraceExport, WriteTraceFileProducesLoadableJson) {
  SpanTracker tracker;
  std::uint64_t id = tracker.begin(0);
  tracker.stamp(id, Hop::kPersisted, 40);
  std::string path = ::testing::TempDir() + "trace_export_test.json";
  ASSERT_TRUE(write_trace_file(path, &tracker, nullptr));
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buf;
  buf << in.rdbuf();
  Value parsed = Value::parse_json(buf.str());
  check_trace_schema(parsed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mps::obs
