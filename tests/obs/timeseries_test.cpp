// The windowed time-series over the Registry: exact interpolated
// quantiles from delta buckets, exact rollups across window boundaries
// however irregular the sampling, empty windows for dead air, and
// clock-skew folding instead of ring teardown.
#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/value.h"

namespace mps::obs {
namespace {

// --- quantile_from_buckets: the arithmetic is exact, not approximate ---

TEST(QuantileFromBuckets, InterpolatesWithinBucket) {
  // Edges 10|20|30, all 10 samples in (10, 20]: the q-quantile lands at
  // 10 + q*count/bucket * 10.
  std::vector<double> edges = {10.0, 20.0, 30.0};
  std::vector<std::uint64_t> buckets = {0, 10, 0, 0};
  EXPECT_DOUBLE_EQ(TimeSeries::quantile_from_buckets(edges, buckets, 10, 0.5),
                   15.0);
  EXPECT_DOUBLE_EQ(TimeSeries::quantile_from_buckets(edges, buckets, 10, 1.0),
                   20.0);
  EXPECT_DOUBLE_EQ(TimeSeries::quantile_from_buckets(edges, buckets, 10, 0.1),
                   11.0);
}

TEST(QuantileFromBuckets, SpansBuckets) {
  // 4 samples <= 10, 4 in (10,20], 2 in (20,30]. p50 -> target 5: one
  // sample into the second bucket -> 10 + (1/4)*10 = 12.5. p90 -> target
  // 9: one into the third -> 20 + (1/2)*10 = 25.
  std::vector<double> edges = {10.0, 20.0, 30.0};
  std::vector<std::uint64_t> buckets = {4, 4, 2, 0};
  EXPECT_DOUBLE_EQ(TimeSeries::quantile_from_buckets(edges, buckets, 10, 0.5),
                   12.5);
  EXPECT_DOUBLE_EQ(TimeSeries::quantile_from_buckets(edges, buckets, 10, 0.9),
                   25.0);
}

TEST(QuantileFromBuckets, OverflowReportsLastFiniteEdge) {
  std::vector<double> edges = {10.0, 20.0};
  std::vector<std::uint64_t> buckets = {0, 0, 5};  // all in overflow
  EXPECT_DOUBLE_EQ(TimeSeries::quantile_from_buckets(edges, buckets, 5, 0.5),
                   20.0);
}

TEST(QuantileFromBuckets, EmptyIsZero) {
  std::vector<double> edges = {10.0};
  std::vector<std::uint64_t> buckets = {0, 0};
  EXPECT_DOUBLE_EQ(TimeSeries::quantile_from_buckets(edges, buckets, 0, 0.5),
                   0.0);
}

// --- windowed rollup ---

TEST(TimeSeries, BaselineAtConstructionIsNotActivity) {
  Registry registry;
  registry.counter("c").inc(100);  // pre-series history
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 8});
  registry.counter("c").inc(3);
  series.sample(10);  // closes [0,10)
  ASSERT_EQ(series.window_count(), 1u);
  EXPECT_EQ(series.windows()[0].counter_deltas.at("c"), 3u);
}

TEST(TimeSeries, DeltasSplitExactlyAcrossBoundaries) {
  // Samples at irregular times; the sum of window deltas must equal the
  // cumulative counter no matter where the boundaries fell.
  Registry registry;
  Counter& c = registry.counter("ingest");
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 64});
  TimeMs times[] = {3, 7, 12, 29, 31, 58};
  for (TimeMs t : times) {
    c.inc(2);
    series.sample(t);
  }
  series.flush(60);
  std::uint64_t total = 0;
  for (const SeriesWindow& w : series.windows()) {
    auto it = w.counter_deltas.find("ingest");
    if (it != w.counter_deltas.end()) total += it->second;
  }
  EXPECT_EQ(total, c.value());
  // Window starts are boundary-aligned and contiguous.
  TimeMs expect_start = 0;
  for (const SeriesWindow& w : series.windows()) {
    EXPECT_EQ(w.start, expect_start);
    expect_start += 10;
  }
}

TEST(TimeSeries, SkippedWindowsCloseEmpty) {
  Registry registry;
  Counter& c = registry.counter("c");
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 64});
  c.inc(1);
  series.sample(5);
  // Dead air, then a jump four windows ahead: [0,10) holds the delta;
  // [10,20), [20,30) and [30,40) must appear as empty windows, not
  // holes in the series.
  series.sample(45);
  ASSERT_EQ(series.window_count(), 4u);
  EXPECT_EQ(series.windows()[0].counter_deltas.at("c"), 1u);
  for (std::size_t i = 1; i < 4; ++i)
    EXPECT_TRUE(series.windows()[i].counter_deltas.empty())
        << "window " << i << " not empty";
}

TEST(TimeSeries, ClockSkewFoldsIntoOpenWindow) {
  Registry registry;
  Counter& c = registry.counter("c");
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 8});
  c.inc(1);
  series.sample(25);  // closes [0,10) and [10,20), open = [20,30)
  std::size_t closed_before = series.window_count();
  c.inc(5);
  series.sample(4);  // the past: folds into [20,30), must not rewind
  EXPECT_EQ(series.window_count(), closed_before);
  series.flush(25);
  EXPECT_EQ(series.windows().back().counter_deltas.at("c"), 5u);
}

TEST(TimeSeries, RegistryResetTreatedAsFreshDelta) {
  Registry registry;
  Counter& c = registry.counter("c");
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 8});
  c.inc(7);
  series.sample(3);
  registry.reset();  // cumulative value jumps backwards
  c.inc(2);
  series.flush(8);
  ASSERT_EQ(series.window_count(), 1u);
  EXPECT_EQ(series.windows()[0].counter_deltas.at("c"), 9u);
}

TEST(TimeSeries, RingEvictsOldestWindows) {
  Registry registry;
  Counter& c = registry.counter("c");
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 3});
  for (TimeMs t = 10; t <= 60; t += 10) {
    c.inc(1);
    series.sample(t);
  }
  EXPECT_EQ(series.window_count(), 3u);
  EXPECT_EQ(series.windows_closed(), 6u);
  EXPECT_EQ(series.windows().front().start, 30);
}

// --- derived series ---

TEST(TimeSeries, CounterRatePerSecond) {
  Registry registry;
  Counter& c = registry.counter("c");
  TimeSeries series(registry, {.bucket_width = 2000, .window_capacity = 8});
  c.inc(10);
  series.sample(2000);  // 10 events over 2 s -> 5/s
  std::vector<SeriesPoint> rate = series.counter_rate("c");
  ASSERT_EQ(rate.size(), 1u);
  EXPECT_DOUBLE_EQ(rate[0].value, 5.0);
  // Unknown counters yield zeros, one point per window.
  std::vector<SeriesPoint> none = series.counter_rate("nope");
  ASSERT_EQ(none.size(), 1u);
  EXPECT_DOUBLE_EQ(none[0].value, 0.0);
}

TEST(TimeSeries, GaugeSeriesCarriesLastValueForward) {
  Registry registry;
  Gauge& g = registry.gauge("depth");
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 8});
  g.set(4.0);
  series.sample(10);
  series.sample(30);  // two more windows with no fresh gauge sample
  std::vector<SeriesPoint> pts = series.gauge_series("depth");
  ASSERT_EQ(pts.size(), 3u);
  for (const SeriesPoint& p : pts) EXPECT_DOUBLE_EQ(p.value, 4.0);
}

TEST(TimeSeries, HistogramWindowQuantilesAreFromDeltasNotCumulative) {
  Registry registry;
  LatencyHistogram& h =
      registry.histogram("lat", std::vector<double>{10.0, 20.0, 30.0});
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 8});
  // Window 1: all fast.
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  series.sample(10);
  // Window 2: all slow. If the series used cumulative buckets the p50
  // would be dragged toward the fast mass; deltas keep it in (20,30].
  for (int i = 0; i < 10; ++i) h.observe(25.0);
  series.sample(20);
  std::vector<WindowQuantiles> wq = series.histogram_series("lat");
  ASSERT_EQ(wq.size(), 2u);
  EXPECT_EQ(wq[0].count, 10u);
  EXPECT_LE(wq[0].p50, 10.0);
  EXPECT_EQ(wq[1].count, 10u);
  EXPECT_GT(wq[1].p50, 20.0);
  EXPECT_LE(wq[1].p50, 30.0);
  // Rolling over both windows merges the delta mass: 20 samples, half
  // fast, half slow -> p50 at the fast/slow boundary, p95 in the slow
  // bucket.
  EXPECT_LE(series.rolling_quantile("lat", 0.5), 10.0);
  EXPECT_GT(series.rolling_quantile("lat", 0.95), 20.0);
  // Restricted to the last window only, p50 is slow.
  EXPECT_GT(series.rolling_quantile("lat", 0.5, 1), 20.0);
}

// --- exports ---

TEST(TimeSeries, ToJsonRoundTripsThroughParser) {
  Registry registry;
  TimeSeries series(registry, {.bucket_width = 1000, .window_capacity = 8});
  registry.counter("c").inc(4);
  registry.histogram("h").observe(12.0);
  registry.gauge("g").set(1.5);
  series.flush(500);
  std::string text = series.to_json().to_json();
  Value parsed = Value::parse_json(text);
  EXPECT_EQ(parsed.get_int("bucket_width_ms", 0), 1000);
  EXPECT_EQ(parsed.get_int("windows_closed", 0), 1);
  const Value& windows = parsed.at("windows");
  ASSERT_TRUE(windows.is_array());
  ASSERT_EQ(windows.as_array().size(), 1u);
  const Value& w = windows.as_array()[0];
  EXPECT_EQ(w.at("counters").at("c").get_int("delta", 0), 4);
  EXPECT_EQ(w.at("histograms").at("h").get_int("count", 0), 1);
  EXPECT_DOUBLE_EQ(w.at("gauges").get_double("g", 0.0), 1.5);
}

TEST(TimeSeries, SinkEmitsOneLinePerClosedWindow) {
  Registry registry;
  Counter& c = registry.counter("c");
  TimeSeries series(registry, {.bucket_width = 10, .window_capacity = 8});
  std::vector<std::string> lines;
  series.set_sink([&](const std::string& line) { lines.push_back(line); });
  c.inc(1);
  series.sample(25);  // closes two windows
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    Value parsed = Value::parse_json(line);
    EXPECT_TRUE(parsed.is_object()) << line;
  }
  EXPECT_EQ(
      Value::parse_json(lines[0]).at("counters").at("c").get_int("delta", 0),
      1);
}

}  // namespace
}  // namespace mps::obs
