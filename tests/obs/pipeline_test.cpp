// Observability across the real pipeline: spans stamped by client, broker
// drop hook, server ingest and assimilation must (a) reproduce the
// Figure-17 delay CDF that the bench computes from DeliveryRecords and
// (b) attribute drops to the stage that caused them, while the shared
// registry serves one /metrics document for the whole deployment.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "assim/cycle.h"
#include "client/goflow_client.h"
#include "core/goflow_server.h"
#include "core/rest_api.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace mps {
namespace {

class PipelineObservabilityTest : public ::testing::Test {
 protected:
  PipelineObservabilityTest() : server(sim, broker, db), tracker(&registry) {
    broker.set_metrics(&registry);
    db.set_metrics(&registry);
    server.set_metrics(&registry);
    server.set_tracer(&tracker);

    auto reg = server.register_app("soundcity").value_or_throw();
    admin_token = reg.admin_token;
    client_token = server
                       .register_account(admin_token, "soundcity", "field",
                                         core::Role::kClient)
                       .value_or_throw();
  }

  struct Device {
    std::unique_ptr<phone::Phone> phone;
    std::unique_ptr<client::GoFlowClient> goflow;
  };

  Device make_device(const std::string& id, std::size_t buffer_size,
                     bool share = true) {
    auto channels =
        server.login_client(client_token, "soundcity", id).value_or_throw();
    phone::PhoneConfig pc;
    pc.model = phone::top20_catalog().front();
    pc.user = id;
    pc.seed = 7;
    pc.connectivity = net::ConnectivityParams::always_connected();
    pc.horizon = days(3);
    Device d;
    d.phone = std::make_unique<phone::Phone>(pc);
    client::ClientConfig cc =
        client::ClientConfig::v1_3(id, channels.exchange, buffer_size);
    cc.share = share;
    d.goflow = std::make_unique<client::GoFlowClient>(
        sim, broker, *d.phone, cc, [](TimeMs) { return 62.0; },
        [](TimeMs) { return std::pair<double, double>{5000.0, 5000.0}; });
    d.goflow->set_metrics(&registry);
    d.goflow->set_tracer(&tracker);
    return d;
  }

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server;
  obs::Registry registry;
  obs::SpanTracker tracker;
  std::string admin_token;
  std::string client_token;
};

TEST_F(PipelineObservabilityTest, SpanDelaysMatchDeliveryRecords) {
  Device d = make_device("mob1", 10);
  d.goflow->start();
  sim.run_until(hours(6));

  // The bench's Figure-17 input: per-observation DeliveryRecord delays.
  const auto& deliveries = d.goflow->deliveries();
  ASSERT_GT(deliveries.size(), 0u);
  std::vector<double> expected;
  expected.reserve(deliveries.size());
  for (const auto& record : deliveries)
    expected.push_back(static_cast<double>(record.delay()));
  std::sort(expected.begin(), expected.end());

  // The span view of the same observations: sensed -> uploaded.
  std::vector<double> traced =
      tracker.hop_delays(obs::Hop::kSensed, obs::Hop::kUploaded);
  std::sort(traced.begin(), traced.end());
  ASSERT_EQ(traced.size(), expected.size());
  for (std::size_t i = 0; i < traced.size(); ++i)
    EXPECT_DOUBLE_EQ(traced[i], expected[i]) << "sample " << i;

  // The broker publishes at the delivery time, so sensed -> routed is the
  // same distribution (the CDF the paper plots as capture-to-server).
  EmpiricalCdf span_cdf = tracker.delay_cdf(obs::Hop::kSensed, obs::Hop::kRouted);
  EmpiricalCdf bench_cdf;
  bench_cdf.add_all(expected);
  ASSERT_EQ(span_cdf.size(), bench_cdf.size());
  for (double q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_DOUBLE_EQ(span_cdf.quantile(q), bench_cdf.quantile(q)) << "q=" << q;
}

TEST_F(PipelineObservabilityTest, EveryHopIsStampedThroughTheStack) {
  Device d = make_device("mob1", 5);
  d.goflow->start();
  sim.run_until(hours(1));

  std::size_t persisted = tracker.count_through(obs::Hop::kPersisted);
  EXPECT_EQ(persisted, server.total_observations());
  EXPECT_GT(persisted, 0u);

  // Per-hop ordering holds on every completed span.
  for (std::uint64_t id = 1; id <= tracker.size(); ++id) {
    const obs::SpanRecord* record = tracker.find(id);
    ASSERT_NE(record, nullptr);
    if (!record->stamped(obs::Hop::kPersisted)) continue;
    EXPECT_LE(record->at(obs::Hop::kSensed), record->at(obs::Hop::kBuffered));
    EXPECT_LE(record->at(obs::Hop::kBuffered), record->at(obs::Hop::kUploaded));
    // Broker publish happens at the upload completion time.
    EXPECT_EQ(record->at(obs::Hop::kUploaded), record->at(obs::Hop::kRouted));
    EXPECT_LE(record->at(obs::Hop::kRouted), record->at(obs::Hop::kPersisted));
  }
}

TEST_F(PipelineObservabilityTest, AssimilationStampsFinalHop) {
  Device d = make_device("mob1", 1);
  d.goflow->start();
  sim.run_until(hours(1));

  // Pull the stored window back out and run one analysis step over it.
  core::ObservationFilter filter;
  filter.app = "soundcity";
  auto docs = server.query_observations(admin_token, filter).value_or_throw();
  ASSERT_GT(docs.size(), 0u);
  std::vector<phone::Observation> window;
  for (const Value& doc : docs)
    window.push_back(phone::Observation::from_document(doc));

  assim::CycleConfig cc;
  cc.step = hours(1);
  assim::AssimilationCycle cycle(
      [](TimeMs) { return assim::Grid(4, 4, 10000.0, 10000.0, 50.0); }, 0, cc);
  cycle.set_metrics(&registry);
  cycle.set_tracer(&tracker);
  assim::CycleStep step = cycle.advance(window);

  EXPECT_EQ(tracker.count_through(obs::Hop::kAssimilated), window.size());
  EXPECT_EQ(registry.counter("assim.steps").value(), 1u);
  EXPECT_EQ(registry.counter("assim.observations_used").value(),
            step.observations_used);
  EXPECT_GT(registry.histogram("assim.cycle_ms").count(), 0u);

  // With the cycle wired into the shared registry, GET /metrics now carries
  // broker + client + docstore + assimilation metrics in one document.
  core::GoFlowRestApi api(server);
  core::RestRequest request;
  request.method = "GET";
  request.path = "/metrics";
  core::RestResponse response = api.handle(request);
  ASSERT_EQ(response.status, 200);
  const Value* counters = response.body.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get_int("assim.steps"), 1);
  EXPECT_GT(counters->get_int("broker.published"), 0);
  EXPECT_GT(counters->get_int("client.recorded"), 0);
  EXPECT_GT(counters->get_int("docstore.inserts"), 0);
  EXPECT_DOUBLE_EQ(
      response.body.find("gauges")->get_double("assim.innovation_rms"),
      registry.gauge("assim.innovation_rms").value());
}

TEST_F(PipelineObservabilityTest, MetricsEndpointServesOneDocument) {
  Device d = make_device("mob1", 5);
  d.goflow->start();
  sim.run_until(hours(2));
  // Exercise the docstore query path too.
  core::ObservationFilter filter;
  filter.app = "soundcity";
  server.query_observations(admin_token, filter).value_or_throw();

  core::GoFlowRestApi api(server);
  core::RestRequest request;
  request.method = "GET";
  request.path = "/metrics";
  core::RestResponse response = api.handle(request);
  ASSERT_EQ(response.status, 200);

  // One document carries broker, client, docstore and server metrics.
  const Value* counters = response.body.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->get_int("broker.published"), 0);
  EXPECT_GT(counters->get_int("broker.consumed"), 0);
  EXPECT_GT(counters->get_int("client.recorded"), 0);
  EXPECT_GT(counters->get_int("client.uploads"), 0);
  EXPECT_GT(counters->get_int("docstore.inserts"), 0);
  EXPECT_GT(counters->get_int("docstore.finds_indexed"), 0);
  EXPECT_GT(counters->get_int("server.batches_ingested"), 0);
  EXPECT_GT(counters->get_int("span.started"), 0);
  const Value* gauges = response.body.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_GT(gauges->get_double("docstore.documents"), 0.0);
  EXPECT_GT(gauges->get_double("broker.queues"), 0.0);
  const Value* histograms = response.body.find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_NE(histograms->find("client.delivery_delay_ms"), nullptr);
  EXPECT_GT(histograms->find("client.delivery_delay_ms")->get_int("count"), 0);
  ASSERT_NE(histograms->find("server.ingest_delay_ms"), nullptr);

  // Text form on request.
  request.query["format"] = "text";
  response = api.handle(request);
  ASSERT_EQ(response.status, 200);
  EXPECT_NE(response.body.get_string("text").find("counter broker.published"),
            std::string::npos);
}

TEST_F(PipelineObservabilityTest, MetricsEndpointUnavailableWithoutRegistry) {
  server.set_metrics(nullptr);
  core::GoFlowRestApi api(server);
  core::RestRequest request;
  request.method = "GET";
  request.path = "/metrics";
  EXPECT_EQ(api.handle(request).status, 503);
}

TEST_F(PipelineObservabilityTest, NotSharedDropsAreAttributed) {
  Device d = make_device("private1", 5, /*share=*/false);
  d.goflow->sense_now(phone::SensingMode::kManual);
  EXPECT_EQ(tracker.size(), 1u);
  EXPECT_EQ(tracker.find(1)->dropped, obs::DropStage::kNotShared);
  EXPECT_EQ(registry.counter("span.dropped.not_shared").value(), 1u);
  EXPECT_EQ(broker.stats().published, 0u);
}

TEST_F(PipelineObservabilityTest, BrokerExpiryAndOverflowAreAttributed) {
  // A side queue with a short TTL and a tiny bound, fed by the app
  // exchange: batches land both here and in the ingest queue.
  broker::QueueOptions options;
  options.message_ttl = minutes(1);
  options.max_length = 1;
  broker.declare_queue("slow-consumer", options).throw_if_error();
  broker.bind_queue("app.soundcity", "slow-consumer", "#").throw_if_error();

  Device d = make_device("mob1", 1);
  d.goflow->sense_now(phone::SensingMode::kManual);
  sim.run();
  std::uint64_t first = 1;  // the only span so far
  ASSERT_EQ(tracker.size(), 1u);
  EXPECT_TRUE(tracker.find(first)->stamped(obs::Hop::kPersisted));

  // A second batch overflows the bounded queue: the *first* batch is the
  // drop-head victim (its ingest-queue copy already completed the
  // pipeline; the side-queue copy records the drop). The second batch
  // then ages out via TTL.
  d.goflow->sense_now(phone::SensingMode::kManual);
  sim.run();
  EXPECT_EQ(tracker.find(first)->dropped, obs::DropStage::kOverflowInBroker);

  sim.run_until(sim.now() + minutes(5));
  broker.expire_messages("slow-consumer", sim.now());
  const obs::SpanRecord* second = tracker.find(2);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->dropped, obs::DropStage::kExpiredInBroker);
  EXPECT_EQ(registry.counter("broker.expired").value(), 1u);
  EXPECT_EQ(registry.counter("broker.dropped_overflow").value(), 1u);
}

TEST_F(PipelineObservabilityTest, DuplicateBatchesAreRejectedByServer) {
  Device d = make_device("mob1", 1);
  d.goflow->sense_now(phone::SensingMode::kManual);
  sim.run();
  ASSERT_EQ(server.total_observations(), 1u);

  // Replay the stored batch: at-least-once redelivery with the same
  // batch_id. The span of the redelivered copy is attributed to the
  // server's idempotence check.
  core::ObservationFilter filter;
  filter.app = "soundcity";
  auto docs = server.query_observations(admin_token, filter).value_or_throw();
  ASSERT_EQ(docs.size(), 1u);
  std::uint64_t replay_span = tracker.begin(sim.now());
  Object obs_doc;
  obs_doc.set("captured_at", Value(sim.now()));
  obs_doc.set("span", Value(static_cast<std::int64_t>(replay_span)));
  Value batch(Object{
      {"app", Value("soundcity")},
      {"client", Value("mob1")},
      {"batch_id", Value("mob1#1")},  // first batch's id -> duplicate
      {"observations", Value(Array{Value(std::move(obs_doc))})}});
  broker
      .publish(server.config().goflow_exchange, "soundcity.obs.mob1",
               std::move(batch), sim.now())
      .value_or_throw();

  EXPECT_EQ(server.duplicate_batches(), 1u);
  EXPECT_EQ(server.total_observations(), 1u);
  EXPECT_EQ(tracker.find(replay_span)->dropped,
            obs::DropStage::kRejectedByServer);
  EXPECT_EQ(registry.counter("server.duplicate_batches").value(), 1u);
  EXPECT_EQ(registry.counter("span.dropped.rejected_by_server").value(), 1u);
}

TEST_F(PipelineObservabilityTest, UnroutablePublishesAreAttributed) {
  broker.declare_exchange("dead-end", broker::ExchangeType::kTopic)
      .throw_if_error();
  std::uint64_t span = tracker.begin(0);
  Object obs_doc;
  obs_doc.set("captured_at", Value(static_cast<std::int64_t>(0)));
  obs_doc.set("span", Value(static_cast<std::int64_t>(span)));
  Value batch(
      Object{{"observations", Value(Array{Value(std::move(obs_doc))})}});
  broker.publish("dead-end", "nowhere", std::move(batch), 0).value_or_throw();
  EXPECT_EQ(tracker.find(span)->dropped, obs::DropStage::kUnroutable);
  EXPECT_EQ(registry.counter("broker.unroutable").value(), 1u);
}

TEST_F(PipelineObservabilityTest, SimHookSnapshotsPeriodically) {
  Device d = make_device("mob1", 5);
  d.goflow->start();
  std::vector<TimeMs> fired;
  sim.set_metrics_hook(hours(1), [&](TimeMs t) {
    fired.push_back(t);
    registry.snapshot();  // a registry read at a period boundary
  });
  sim.run_until(hours(6));
  ASSERT_EQ(fired.size(), 6u);
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], static_cast<TimeMs>(hours(1) * (i + 1)));
  sim.clear_metrics_hook();
  sim.run_until(hours(8));
  EXPECT_EQ(fired.size(), 6u);
}

TEST_F(PipelineObservabilityTest, TakeStatsReturnsDeltas) {
  Device d = make_device("mob1", 1);
  d.goflow->sense_now(phone::SensingMode::kManual);
  sim.run();
  client::ClientStats first = d.goflow->take_stats();
  EXPECT_EQ(first.observations_recorded, 1u);
  EXPECT_EQ(d.goflow->stats().observations_recorded, 0u);

  broker::BrokerStats broker_first = broker.take_stats();
  EXPECT_GT(broker_first.published, 0u);
  EXPECT_EQ(broker.stats().published, 0u);

  d.goflow->sense_now(phone::SensingMode::kManual);
  sim.run();
  EXPECT_EQ(d.goflow->take_stats().observations_recorded, 1u);
  EXPECT_EQ(broker.take_stats().published, 1u);
  // Registry aggregates survive component-level resets.
  EXPECT_EQ(registry.counter("client.recorded").value(), 2u);
}

}  // namespace
}  // namespace mps
