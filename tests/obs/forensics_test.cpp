// The acceptance test for crash forensics: a chaos run whose invariant
// report is violated must leave a flight-recorder JSONL dump containing
// the injected faults and the surrounding WAL/broker activity — the
// black box a red seed hands the investigating engineer.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/value.h"
#include "core/recovery.h"
#include "durable/storage.h"
#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "study/invariants.h"
#include "study/study.h"

namespace mps::study {
namespace {

// A small kill+lossy chaos run on the calling thread, so the recorder
// ring that dump_forensics captures is this run's timeline.
void run_small_chaos(const std::string& profile, std::uint64_t seed) {
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server(sim, broker, db);
  obs::Registry registry;
  obs::SpanTracker tracer(&registry);
  server.set_metrics(&registry);
  server.set_tracer(&tracer);

  durable::MemStorageEnv env;
  core::ServerLifecycle lifecycle(env, sim, broker, db, server, {}, &registry);

  fault::FaultPlan plan = fault::FaultPlan::profile(profile, seed);
  // A scripted mid-run kill on top of the profile's rate-driven ones, so
  // the timeline always contains a kill/recover pair.
  plan.kill_server_at(hours(5), minutes(7));

  // Tiny on purpose: the whole run must fit inside one recorder ring
  // (kRingCapacity events) so the dump covers the faults, not just the
  // tail — the test asserts this explicitly.
  crowd::PopulationConfig pc;
  pc.seed = seed;
  pc.device_scale = 0.002;
  pc.obs_scale = 0.005;
  pc.horizon = days(2);
  crowd::Population pop = crowd::Population::generate(pc);

  StudyConfig sc;
  sc.seed = seed;
  sc.duration_days = 1;
  sc.metrics = &registry;
  sc.tracer = &tracer;
  sc.faults = &plan;
  sc.lifecycle = &lifecycle;
  sc.snapshot_period = hours(6);
  sc.drain = hours(1);

  StudyRunner runner(pop, sc, sim, broker, server);
  runner.run();
}

TEST(Forensics, ViolatedReportDumpsFaultAndPipelineTimeline) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
  recorder.clear();
  recorder.set_enabled(true);
  recorder.set_thread_scope("forensics-test");

  run_small_chaos("server-kill-lossy", 3);

  // The ring must still hold the whole run — if this trips, shrink the
  // run, not the assertions: wrap would silently drop the early faults.
  std::vector<obs::FrRecord> ring = recorder.collect_current_thread();
  ASSERT_GT(ring.size(), 0u);
  ASSERT_LT(ring.size(), obs::FlightRecorder::kRingCapacity)
      << "run overflowed the ring; the dump no longer covers the faults";

  // A fabricated red report (the sweep path feeds real ones; the dump
  // logic must not depend on how the books failed to close).
  InvariantReport violated;
  violated.lost = 1;
  ASSERT_FALSE(violated.ok());

  std::string dir = ::testing::TempDir() + "forensics_test_dump";
  std::string cleanup = "rm -rf " + dir;
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  ASSERT_EQ(setenv("MPS_FLIGHT_DIR", dir.c_str(), 1), 0);
  std::string path = dump_forensics(violated, "server-kill-lossy_seed3");
  unsetenv("MPS_FLIGHT_DIR");
  ASSERT_EQ(path, dir + "/flight_server-kill-lossy_seed3.jsonl");

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::size_t faults = 0, wal_appends = 0, broker_publishes = 0, kills = 0,
              recovers = 0;
  std::string line, last_type;
  std::int64_t last_seq = 0;
  while (std::getline(in, line)) {
    Value v = Value::parse_json(line);
    std::string type = v.get_string("type");
    if (type == "fault_inject") ++faults;
    if (type == "wal_append") ++wal_appends;
    if (type == "broker_publish") ++broker_publishes;
    if (type == "server_kill") ++kills;
    if (type == "server_recover") ++recovers;
    // Globally ordered, scope-attributed lines.
    EXPECT_GT(v.get_int("seq", 0), last_seq);
    last_seq = v.get_int("seq", 0);
    EXPECT_EQ(v.get_string("scope"), "forensics-test");
    last_type = type;
  }
  // The timeline the investigating engineer needs: the injected faults
  // and the WAL/broker traffic around them, the kills and recoveries,
  // and the violation itself as the closing event.
  EXPECT_GT(faults, 0u);
  EXPECT_GT(wal_appends, 0u);
  EXPECT_GT(broker_publishes, 0u);
  EXPECT_GT(kills, 0u);
  EXPECT_GT(recovers, 0u);
  EXPECT_EQ(last_type, "invariant_violation");

  std::system(cleanup.c_str());
  recorder.set_thread_scope("");
  recorder.clear();
}

TEST(Forensics, OkReportDumpsNothing) {
  InvariantReport ok_report;
  ASSERT_TRUE(ok_report.ok());
  std::string dir = ::testing::TempDir() + "forensics_ok_dump";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  ASSERT_EQ(setenv("MPS_FLIGHT_DIR", dir.c_str(), 1), 0);
  EXPECT_EQ(dump_forensics(ok_report, "green"), "");
  unsetenv("MPS_FLIGHT_DIR");
  std::ifstream in(dir + "/flight_green.jsonl");
  EXPECT_FALSE(in.is_open());
  std::system(("rm -rf " + dir).c_str());
}

TEST(Forensics, NoDumpDirConfiguredReturnsEmpty) {
  const char* saved = std::getenv("MPS_FAULT_REPORT_DIR");
  std::string saved_value = saved != nullptr ? saved : "";
  unsetenv("MPS_FLIGHT_DIR");
  unsetenv("MPS_FAULT_REPORT_DIR");
  InvariantReport violated;
  violated.lost = 2;
  EXPECT_EQ(dump_forensics(violated, "nowhere"), "");
  if (saved != nullptr) setenv("MPS_FAULT_REPORT_DIR", saved_value.c_str(), 1);
}

}  // namespace
}  // namespace mps::study
