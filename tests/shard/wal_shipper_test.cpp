// WalShipper: the replication stream that keeps a follower disk
// promotable. Every appended record must arrive on the follower byte-
// compatible with the primary's log (same LSNs, same payloads), shipping
// must survive detach/re-attach (recovery rebuilds the Wal and the
// cursor with it), and a fresh shipper pointed at a half-shipped
// follower must resume where the previous one left off — not re-ship
// from zero and not skip the gap.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "durable/storage.h"
#include "durable/wal.h"
#include "shard/wal_shipper.h"

namespace mps::shard {
namespace {

using durable::MemStorageEnv;
using durable::Wal;
using durable::WalConfig;

using Records = std::vector<std::pair<std::uint64_t, std::string>>;

Records replay_all(durable::StorageEnv& env, const WalConfig& config) {
  Records out;
  Wal wal(env, config);
  wal.replay(0, [&](std::uint64_t lsn, std::string_view payload) {
    out.emplace_back(lsn, std::string(payload));
  });
  return out;
}

TEST(WalShipper, ShipsEveryAppendAsItHappens) {
  WalConfig config;
  MemStorageEnv primary;
  MemStorageEnv follower;
  Wal wal(primary, config);
  WalShipper shipper(0, config);
  shipper.set_follower(&follower);
  shipper.attach(&wal);
  EXPECT_TRUE(shipper.attached());

  Records expected;
  for (int i = 0; i < 20; ++i) {
    std::string payload = "record-" + std::to_string(i);
    expected.emplace_back(wal.append(payload), payload);
  }
  // The append listener drains per append: nothing left to pull.
  EXPECT_EQ(shipper.last_shipped_lsn(), wal.last_lsn());
  EXPECT_EQ(shipper.stats().records_shipped, 20u);
  EXPECT_GT(shipper.stats().frames, 0u);
  EXPECT_GT(shipper.stats().bytes_shipped, 0u);
  shipper.detach();
  EXPECT_FALSE(shipper.attached());
  EXPECT_EQ(wal.open_cursor_count(), 0u);

  EXPECT_EQ(replay_all(follower, config), expected);
}

TEST(WalShipper, CatchesUpOnAttachAndRotatesFollowerSegments) {
  WalConfig config;
  config.segment_bytes = 128;  // force rotation on both sides
  MemStorageEnv primary;
  MemStorageEnv follower;
  Wal wal(primary, config);
  // Appends before anyone is attached: attach() must catch up on the
  // whole backlog, not just tail appends.
  for (int i = 0; i < 50; ++i) wal.append("backlog-" + std::to_string(i));

  WalShipper shipper(0, config);
  shipper.set_follower(&follower);
  shipper.attach(&wal);
  EXPECT_EQ(shipper.last_shipped_lsn(), wal.last_lsn());
  EXPECT_GT(shipper.stats().follower_segments, 1u);
  EXPECT_EQ(replay_all(follower, config), replay_all(primary, config));
}

TEST(WalShipper, FreshShipperResumesFromFollowerContents) {
  WalConfig config;
  MemStorageEnv primary;
  MemStorageEnv follower;
  Wal wal(primary, config);
  {
    WalShipper first(0, config);
    first.set_follower(&follower);
    first.attach(&wal);
    for (int i = 0; i < 10; ++i) wal.append("early-" + std::to_string(i));
    first.detach();
  }
  // Appends while nobody ships: the gap the successor must close.
  for (int i = 0; i < 10; ++i) wal.append("gap-" + std::to_string(i));

  WalShipper second(0, config);
  second.set_follower(&follower);
  // Scanning the follower recovered the resume point before attaching.
  EXPECT_EQ(second.last_shipped_lsn(), 10u);
  second.attach(&wal);
  EXPECT_EQ(second.last_shipped_lsn(), 20u);
  // Exactly the gap was shipped — no re-ship, no skip.
  EXPECT_EQ(second.stats().records_shipped, 10u);
  EXPECT_EQ(replay_all(follower, config), replay_all(primary, config));
}

TEST(WalShipper, ShipsNothingWithoutAFollower) {
  WalConfig config;
  MemStorageEnv primary;
  Wal wal(primary, config);
  WalShipper shipper(0, config);
  shipper.attach(&wal);
  wal.append("unreplicated");
  EXPECT_EQ(shipper.stats().records_shipped, 0u);
  shipper.detach();
}

TEST(WalShipper, MirrorsSnapshotsAndPrunesStaleOnes) {
  WalConfig config;
  MemStorageEnv primary;
  MemStorageEnv follower;
  WalShipper shipper(0, config);
  shipper.set_follower(&follower);

  primary.write_atomic("snap-0000000000000003", "first");
  shipper.mirror_snapshots(primary);
  EXPECT_EQ(follower.read("snap-0000000000000003"), "first");
  EXPECT_EQ(shipper.stats().snapshots_mirrored, 1u);

  // Unchanged snapshots are not re-copied.
  shipper.mirror_snapshots(primary);
  EXPECT_EQ(shipper.stats().snapshots_mirrored, 1u);

  // The primary pruned the old snapshot after writing a new one; the
  // mirror must converge to the same file set or the follower's
  // recovery could load a snapshot the primary already discarded.
  primary.remove("snap-0000000000000003");
  primary.write_atomic("snap-0000000000000009", "second");
  shipper.mirror_snapshots(primary);
  EXPECT_FALSE(follower.exists("snap-0000000000000003"));
  EXPECT_EQ(follower.read("snap-0000000000000009"), "second");
  EXPECT_EQ(shipper.stats().snapshots_mirrored, 2u);

  // Non-snapshot files on the primary are never mirrored.
  primary.write_atomic("wal-0000000000000001", "not a snapshot");
  shipper.mirror_snapshots(primary);
  EXPECT_FALSE(follower.exists("wal-0000000000000001"));
}

}  // namespace
}  // namespace mps::shard
