// ShardFleet end to end: routing at the ingest edge, follower promotion
// after a primary kill, and the rebalance path's no-loss/no-dup
// contract. These are the invariants the chaos sweeps lean on — every
// acknowledged observation survives a failover, migrated dedup keys keep
// redelivery exactly-once across a slot move, and a 1-shard fleet is
// indistinguishable from the plain single server.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/goflow_server.h"
#include "core/recovery.h"
#include "docstore/database.h"
#include "durable/storage.h"
#include "fault/fault.h"
#include "shard/fleet.h"
#include "sim/simulation.h"

namespace mps::shard {
namespace {

Value make_batch(const std::string& batch_id, const std::string& client,
                 int first_seq, int count, TimeMs captured_at) {
  Array observations;
  for (int i = 0; i < count; ++i)
    observations.push_back(Value(Object{{"seq", Value(first_seq + i)},
                                        {"captured_at", Value(captured_at)},
                                        {"spl", Value(55.0 + i)}}));
  return Value(Object{{"batch_id", Value(batch_id)},
                      {"app", Value("app1")},
                      {"client", Value(client)},
                      {"observations", Value(std::move(observations))}});
}

std::multiset<std::string> stored_keys(docstore::Database& db) {
  std::multiset<std::string> keys;
  if (!db.has_collection("observations")) return keys;
  db.collection("observations").for_each([&](const Value& doc) {
    keys.insert(doc.get_string("client") + "#" +
                std::to_string(doc.get_int("seq", -1)));
  });
  return keys;
}

struct Fixture {
  sim::Simulation sim;
  obs::Registry registry;
  ShardFleet fleet;

  explicit Fixture(std::uint32_t shards)
      : fleet(sim, make_config(shards, &registry)) {
    for (std::uint32_t i = 0; i < fleet.size(); ++i)
      fleet.node(i).server().register_app("app1").value_or_throw();
  }

  static FleetConfig make_config(std::uint32_t shards, obs::Registry* reg) {
    FleetConfig config;
    config.shards = shards;
    config.app = "app1";
    config.metrics = reg;
    return config;
  }

  /// A client publish as the router forwards it: straight into the
  /// owning shard's broker.
  Result<broker::PublishResult> publish(const std::string& client,
                                        const std::string& batch_id,
                                        int first_seq, int count, TimeMs t) {
    return fleet.broker_for(client).publish(
        "goflow", "b", make_batch(batch_id, client, first_seq, count, t), t);
  }
};

// Golden routes (pinned in shard_map_test): with two shards, dev1's
// slot 12 lives on shard 0 and dev2's slot 37 on shard 1.
TEST(ShardFleet, RoutesEachClientToItsOwningShard) {
  Fixture f(2);
  ASSERT_EQ(f.fleet.shard_for("dev1"), 0u);
  ASSERT_EQ(f.fleet.shard_for("dev2"), 1u);

  f.publish("dev1", "b1", 0, 3, 100).value_or_throw();
  f.publish("dev2", "b2", 0, 2, 110).value_or_throw();

  EXPECT_EQ(f.fleet.node(0).server().total_observations(), 3u);
  EXPECT_EQ(f.fleet.node(1).server().total_observations(), 2u);
  EXPECT_EQ(stored_keys(f.fleet.node(0).db()),
            (std::multiset<std::string>{"dev1#0", "dev1#1", "dev1#2"}));
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()),
            (std::multiset<std::string>{"dev2#0", "dev2#1"}));
}

TEST(ShardFleet, FailoverPromotesFollowerWithNothingAcknowledgedLost) {
  Fixture f(1);
  ShardNode& node = f.fleet.node(0);
  f.publish("dev1", "b1", 0, 3, 100).value_or_throw();
  node.snapshot();  // b1 now lives in the mirrored snapshot
  f.publish("dev1", "b2", 3, 2, 200).value_or_throw();  // b2 only in the tail

  node.kill();
  EXPECT_TRUE(node.down());
  EXPECT_FALSE(f.publish("dev1", "b3", 5, 1, 300).ok());

  node.fail_over();
  EXPECT_FALSE(node.down());
  EXPECT_EQ(node.failovers(), 1u);
  EXPECT_EQ(f.registry.counter("shard.failovers").value(), 1u);

  // Both the snapshotted batch and the shipped tail survived promotion.
  EXPECT_EQ(node.server().total_observations(), 5u);
  EXPECT_EQ(stored_keys(node.db()),
            (std::multiset<std::string>{"dev1#0", "dev1#1", "dev1#2", "dev1#3",
                                        "dev1#4"}));
  // Dedup state survived too: redelivering b1 is rejected.
  f.publish("dev1", "b1", 0, 3, 100).value_or_throw();
  EXPECT_EQ(node.server().duplicate_batches(), 1u);
  EXPECT_EQ(node.server().total_observations(), 5u);
  // And the promoted primary ingests fresh traffic.
  f.publish("dev1", "b4", 5, 2, 400).value_or_throw();
  EXPECT_EQ(node.server().total_observations(), 7u);
}

TEST(ShardFleet, RepeatedFailoverPingPongsBetweenDisks) {
  Fixture f(1);
  ShardNode& node = f.fleet.node(0);
  f.publish("dev1", "b1", 0, 2, 100).value_or_throw();

  node.kill();
  node.fail_over();  // primary now on disk B
  f.publish("dev1", "b2", 2, 2, 200).value_or_throw();

  node.kill();
  node.fail_over();  // back on (wiped, re-shipped) disk A
  EXPECT_EQ(node.failovers(), 2u);
  EXPECT_EQ(node.server().total_observations(), 4u);
  EXPECT_EQ(stored_keys(node.db()), (std::multiset<std::string>{
                                        "dev1#0", "dev1#1", "dev1#2", "dev1#3"}));

  // Shipping re-attached after every promotion: new appends still flow.
  EXPECT_TRUE(node.shipper().attached());
  std::uint64_t shipped = node.shipper().stats().records_shipped;
  f.publish("dev1", "b3", 4, 1, 300).value_or_throw();
  EXPECT_GT(node.shipper().stats().records_shipped, shipped);
}

TEST(ShardFleet, ControllerSwitchoverWorksWhileUp) {
  Fixture f(1);
  ShardNode& node = f.fleet.node(0);
  f.publish("dev1", "b1", 0, 2, 100).value_or_throw();
  node.fail_over();  // no kill first: planned switchover
  EXPECT_EQ(node.server().total_observations(), 2u);
  f.publish("dev1", "b2", 2, 1, 200).value_or_throw();
  EXPECT_EQ(node.server().total_observations(), 3u);
}

TEST(ShardFleet, RebalanceMovesDocumentsAndDedupKeysWithoutLossOrDup) {
  // Batch ids follow the client convention "<client>#<counter>" — the
  // prefix is what lets the migration find a client's dedup keys.
  Fixture f(2);
  f.publish("dev1", "dev1#1", 0, 3, 100).value_or_throw();
  f.publish("dev1", "dev1#2", 3, 2, 110).value_or_throw();
  f.publish("dev2", "dev2#1", 0, 1, 120).value_or_throw();

  ASSERT_TRUE(f.fleet.rebalance(slot_of("app1", "dev1"), 1));
  EXPECT_EQ(f.fleet.rebalances(), 1u);
  EXPECT_EQ(f.registry.counter("shard.rebalances").value(), 1u);
  EXPECT_EQ(f.fleet.shard_for("dev1"), 1u);
  EXPECT_EQ(f.fleet.map().version(), 1u);

  // No loss: every dev1 document moved; no dup: none left behind.
  EXPECT_EQ(stored_keys(f.fleet.node(0).db()), (std::multiset<std::string>{}));
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()),
            (std::multiset<std::string>{"dev1#0", "dev1#1", "dev1#2", "dev1#3",
                                        "dev1#4", "dev2#0"}));

  // The dedup keys travelled with the slot: a redelivery of dev1#1 --
  // which the router now sends to shard 1 -- is still exactly-once.
  f.publish("dev1", "dev1#1", 0, 3, 100).value_or_throw();
  EXPECT_EQ(f.fleet.node(1).server().duplicate_batches(), 1u);
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()).size(), 6u);

  // Fresh traffic for the moved client lands on the new owner.
  f.publish("dev1", "dev1#3", 5, 1, 200).value_or_throw();
  EXPECT_EQ(stored_keys(f.fleet.node(0).db()).size(), 0u);
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()).size(), 7u);
}

TEST(ShardFleet, RebalanceSurvivesFailoverOnBothEnds) {
  // The moved state must be crash-durable the moment rebalance returns:
  // kill both ends right after and promote their followers.
  Fixture f(2);
  f.publish("dev1", "dev1#1", 0, 3, 100).value_or_throw();
  ASSERT_TRUE(f.fleet.rebalance(slot_of("app1", "dev1"), 1));

  f.fleet.node(0).kill();
  f.fleet.node(1).kill();
  f.fleet.fail_over_all_down();
  EXPECT_FALSE(f.fleet.node(0).down());
  EXPECT_FALSE(f.fleet.node(1).down());

  EXPECT_EQ(stored_keys(f.fleet.node(0).db()).size(), 0u);
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()),
            (std::multiset<std::string>{"dev1#0", "dev1#1", "dev1#2"}));
  // Dedup keys survived migration + failover.
  f.publish("dev1", "dev1#1", 0, 3, 100).value_or_throw();
  EXPECT_EQ(f.fleet.node(1).server().duplicate_batches(), 1u);
}

TEST(ShardFleet, RebalanceMigratesPendingIngestWork) {
  Fixture f(2);
  fault::FaultPlan plan(7);
  plan.set_clock([&] { return f.sim.now(); });
  f.fleet.node(0).db().arm_faults(&plan);
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 1);

  f.publish("dev1", "dev1#1", 0, 2, 100).value_or_throw();
  ASSERT_EQ(f.fleet.node(0).server().pending_ingest_batches(), 1u);
  f.fleet.node(0).db().arm_faults(nullptr);

  // The parked batch moves with its slot and completes on the target.
  ASSERT_TRUE(f.fleet.rebalance(slot_of("app1", "dev1"), 1));
  EXPECT_EQ(f.fleet.node(0).server().pending_ingest_batches(), 0u);
  f.sim.run_until(f.sim.now() + hours(1));
  EXPECT_EQ(f.fleet.node(1).server().pending_ingest_batches(), 0u);
  EXPECT_EQ(stored_keys(f.fleet.node(0).db()).size(), 0u);
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()),
            (std::multiset<std::string>{"dev1#0", "dev1#1"}));
  EXPECT_EQ(f.fleet.node(1).server().duplicate_observations(), 0u);
}

TEST(ShardFleet, OpaqueBatchIdsDoNotMigrateWithTheSlot) {
  // The documented trade-off: dedup-key migration keys on the
  // "<client>#<counter>" convention. A batch id that doesn't follow it
  // has no extractable owner, so the key stays behind and a redelivery
  // to the new owner is accepted as new. The GoFlow client always uses
  // the convention; this pins what happens for clients that don't.
  Fixture f(2);
  f.publish("dev1", "opaque-batch", 0, 2, 100).value_or_throw();
  ASSERT_TRUE(f.fleet.rebalance(slot_of("app1", "dev1"), 1));
  // Documents still migrate (they carry the client field)...
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()),
            (std::multiset<std::string>{"dev1#0", "dev1#1"}));
  // ...but the opaque key did not, so the new owner can't dedup it.
  f.publish("dev1", "opaque-batch", 0, 2, 100).value_or_throw();
  EXPECT_EQ(f.fleet.node(1).server().duplicate_batches(), 0u);
  EXPECT_EQ(stored_keys(f.fleet.node(1).db()).size(), 4u);
}

TEST(ShardFleet, RebalanceIsRefusedWhileEitherEndIsDown) {
  Fixture f(2);
  f.publish("dev1", "b1", 0, 1, 100).value_or_throw();
  std::uint32_t slot = slot_of("app1", "dev1");

  f.fleet.node(1).kill();
  EXPECT_FALSE(f.fleet.rebalance(slot, 1));
  EXPECT_EQ(f.fleet.rebalances_skipped(), 1u);
  EXPECT_EQ(f.fleet.shard_for("dev1"), 0u);  // route unchanged
  EXPECT_EQ(stored_keys(f.fleet.node(0).db()).size(), 1u);

  f.fleet.node(1).fail_over();
  EXPECT_TRUE(f.fleet.rebalance(slot, 1));
  EXPECT_EQ(f.fleet.shard_for("dev1"), 1u);
}

TEST(ShardFleet, RebalanceNextWalksTheRing) {
  Fixture f(3);
  std::uint32_t slot = slot_of("app1", "dev1");  // 12 -> shard 0
  ASSERT_TRUE(f.fleet.rebalance_next(slot));
  EXPECT_EQ(f.fleet.map().shard_of_slot(slot), 1u);
  ASSERT_TRUE(f.fleet.rebalance_next(slot));
  EXPECT_EQ(f.fleet.map().shard_of_slot(slot), 2u);
  ASSERT_TRUE(f.fleet.rebalance_next(slot));
  EXPECT_EQ(f.fleet.map().shard_of_slot(slot), 0u);

  // With one shard it is a structural no-op that still reports success.
  Fixture single(1);
  EXPECT_TRUE(single.fleet.rebalance_next(slot));
  EXPECT_EQ(single.fleet.rebalances(), 0u);
}

// The 1-shard configuration is today's single server: same documents,
// same counters, same dedup behaviour for the same driven workload.
TEST(ShardFleet, SingleShardFleetMatchesPlainServer) {
  auto drive = [](broker::Broker& broker) {
    const char* clients[] = {"dev1", "dev2", "client-0042"};
    for (int b = 0; b < 9; ++b)
      broker
          .publish("goflow", "b",
                   make_batch("batch-" + std::to_string(b), clients[b % 3],
                              b * 10, 2, 100 + b),
                   1000 + b)
          .value_or_throw();
    // One redelivery to exercise dedup on both sides.
    broker
        .publish("goflow", "b", make_batch("batch-0", "dev1", 0, 2, 100), 2000)
        .value_or_throw();
  };

  Fixture f(1);
  drive(f.fleet.node(0).broker());

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server(sim, broker, db);
  durable::MemStorageEnv env;
  core::ServerLifecycle lc(env, sim, broker, db, server);
  server.register_app("app1").value_or_throw();
  drive(broker);

  EXPECT_EQ(stored_keys(f.fleet.node(0).db()), stored_keys(db));
  EXPECT_EQ(f.fleet.node(0).server().total_observations(),
            server.total_observations());
  EXPECT_EQ(f.fleet.node(0).server().total_batches(), server.total_batches());
  EXPECT_EQ(f.fleet.node(0).server().duplicate_batches(),
            server.duplicate_batches());
}

}  // namespace
}  // namespace mps::shard
