// The fleet chaos gate (ISSUE satellite: shard-kill and rebalance
// sweeps): the city deployment at small scale on a 3-shard replicated
// fleet, with shard primaries dying and failing over to their WAL-
// shipped followers and hash slots rebalancing between shards — all
// while ingest is running. The pipeline invariants must hold against
// the *union* of the shards: nothing acknowledged is lost, no span is
// stored twice anywhere in the fleet (a migration that copied instead
// of moved fails here), per-device upload order survives. A failing
// (profile, seed) pair replays bit-for-bit.
//
// Also the 1-shard byte-equivalence gate: a fleet of one must leave the
// middleware in byte-identical observable state to the plain single
// server — stored documents, both dedup sets, the report figures. The
// sharded plane is an organisation of the existing stack, not a fork
// of its semantics.
//
// When MPS_FAULT_REPORT_DIR is set (CI chaos job), a per-seed JSONL
// report is written there for artifact upload.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "docstore/database.h"
#include "exec/executor.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "obs/flight_recorder.h"
#include "shard/fleet.h"
#include "study/invariants.h"
#include "study/study.h"

namespace mps::study {
namespace {

constexpr std::uint64_t kSeeds = 10;

std::string collection_json(docstore::Database& db) {
  Array docs;
  if (db.has_collection("observations"))
    db.collection("observations")
        .for_each([&docs](const Value& doc) { docs.push_back(doc); });
  return Value(std::move(docs)).to_json();
}

std::string ordered_keys_json(const BoundedKeySet& set) {
  Array keys;
  for (const std::string& k : set.ordered()) keys.push_back(Value(k));
  return Value(std::move(keys)).to_json();
}

struct ChaosOutcome {
  StudyReport study;
  InvariantReport invariants;
  std::uint64_t faults_injected = 0;
  std::uint64_t shipped_records = 0;
  std::string docs_json;  ///< all shards, node order (determinism check)
};

ChaosOutcome run_fleet_chaos(const std::string& profile, std::uint64_t seed) {
  obs::FlightRecorder::instance().set_thread_scope(
      profile + "/seed=" + std::to_string(seed));
  sim::Simulation sim;
  obs::Registry registry;
  obs::SpanTracker tracer(&registry);

  shard::FleetConfig fc;
  fc.shards = 3;
  fc.metrics = &registry;
  shard::ShardFleet fleet(sim, fc);
  for (std::uint32_t i = 0; i < fleet.size(); ++i) {
    fleet.node(i).server().set_metrics(&registry);
    fleet.node(i).server().set_tracer(&tracer);
  }

  fault::FaultPlan plan = fault::FaultPlan::profile(profile, seed);

  crowd::PopulationConfig pc;
  pc.seed = seed;
  pc.device_scale = 0.005;  // ~20 devices (min 1 per model)
  pc.obs_scale = 0.05;
  pc.horizon = days(4);
  crowd::Population pop = crowd::Population::generate(pc);

  StudyConfig sc;
  sc.seed = seed;
  sc.duration_days = 2;
  sc.metrics = &registry;
  sc.tracer = &tracer;
  sc.faults = &plan;
  sc.shard_fleet = &fleet;
  sc.snapshot_period = hours(6);  // bounds failover replay between kills
  sc.drain = hours(1);

  StudyRunner runner(pop, sc, sim, fleet.node(0).broker(),
                     fleet.node(0).server());
  ChaosOutcome out;
  out.study = runner.run();

  std::vector<core::GoFlowServer*> servers;
  for (std::uint32_t i = 0; i < fleet.size(); ++i)
    servers.push_back(&fleet.node(i).server());
  out.invariants = check_invariants(tracer, servers, runner.clients());
  std::string forensics = dump_forensics(
      out.invariants, profile + "_seed" + std::to_string(seed));
  if (!forensics.empty())
    std::fprintf(stderr, "invariant violation: flight recorder dumped to %s\n",
                 forensics.c_str());
  out.faults_injected = plan.total_injected();
  out.shipped_records = registry.counter("shard.shipped_records").value();
  for (std::uint32_t i = 0; i < fleet.size(); ++i)
    out.docs_json += collection_json(fleet.node(i).db());
  return out;
}

std::size_t sweep_threads() {
  return exec::resolve_threads("MPS_TEST_THREADS", /*cap=*/8);
}

TEST(FleetChaosSweep, NoLossNoDupAcrossFailoversAndRebalances) {
  const char* report_dir = std::getenv("MPS_FAULT_REPORT_DIR");
  std::ofstream report_out;
  if (report_dir != nullptr) {
    report_out.open(std::string(report_dir) + "/shard_chaos_invariants.jsonl");
    ASSERT_TRUE(report_out.is_open())
        << "cannot write to MPS_FAULT_REPORT_DIR=" << report_dir;
  }

  const std::vector<std::string>& profiles =
      fault::FaultPlan::shard_profile_names();
  struct Job {
    std::string profile;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const std::string& profile : profiles)
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
      jobs.push_back({profile, seed});

  std::vector<ChaosOutcome> outcomes(jobs.size());
  exec::SweepExecutor sweep(sweep_threads());
  sweep.run(jobs.size(), [&](std::size_t i) {
    outcomes[i] = run_fleet_chaos(jobs[i].profile, jobs[i].seed);
  });

  // Assert (and report) on the main thread, in deterministic job order.
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const std::string& profile = profiles[p];
    std::uint64_t failovers_across_seeds = 0;
    std::uint64_t rebalances_across_seeds = 0;
    std::uint64_t injected_across_seeds = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const ChaosOutcome& out = outcomes[p * kSeeds + (seed - 1)];
      failovers_across_seeds += out.study.shard_failovers;
      rebalances_across_seeds += out.study.shard_rebalances;
      injected_across_seeds += out.faults_injected;

      SCOPED_TRACE("profile=" + profile + " seed=" + std::to_string(seed));
      // The fleet-wide durability invariants, per run: no acknowledged
      // observation lost, no span stored twice on ANY shard, per-device
      // order preserved — through every failover and slot move.
      EXPECT_EQ(out.invariants.lost, 0u);
      EXPECT_EQ(out.invariants.duplicate_spans_stored, 0u);
      EXPECT_EQ(out.invariants.order_violations, 0u);
      EXPECT_TRUE(out.invariants.ok());
      // Every span landed in exactly one bucket.
      EXPECT_EQ(out.invariants.spans_total,
                out.invariants.persisted + out.invariants.on_device +
                    out.invariants.in_server +
                    out.invariants.dropped_attributed +
                    out.invariants.never_shared + out.invariants.lost);
      // The run did real work and the chaos was real: primaries died,
      // followers were promoted over the shipped WAL, slots moved.
      EXPECT_GT(out.study.observations_recorded, 0u);
      EXPECT_GT(out.invariants.persisted, 0u);
      EXPECT_GT(out.study.shard_failovers, 0u);
      EXPECT_GT(out.study.shard_rebalances +
                    out.study.shard_rebalances_skipped,
                0u);
      EXPECT_GT(out.shipped_records, 0u);

      if (report_out.is_open()) {
        report_out << "{\"profile\":\"" << profile << "\",\"seed\":" << seed
                   << ",\"shard_failovers\":" << out.study.shard_failovers
                   << ",\"shard_rebalances\":" << out.study.shard_rebalances
                   << ",\"rebalances_skipped\":"
                   << out.study.shard_rebalances_skipped
                   << ",\"shipped_records\":" << out.shipped_records
                   << ",\"faults_injected\":" << out.faults_injected
                   << ",\"publish_failures\":" << out.study.publish_failures
                   << ",\"upload_retries\":" << out.study.upload_retries
                   << ",\"invariants\":" << out.invariants.to_json() << "}\n";
      }
    }
    EXPECT_GT(failovers_across_seeds, 0u);
    EXPECT_GT(rebalances_across_seeds, 0u);
    // The lossy variant must combine fleet churn with network hostility.
    if (profile == "shard-kill-lossy") {
      EXPECT_GT(injected_across_seeds, 0u);
    }
  }
}

TEST(FleetChaosSweep, FleetChaosIsDeterministicPerSeed) {
  ChaosOutcome a = run_fleet_chaos("shard-kill", 5);
  ChaosOutcome b = run_fleet_chaos("shard-kill", 5);
  EXPECT_EQ(a.study.shard_failovers, b.study.shard_failovers);
  EXPECT_EQ(a.study.shard_rebalances, b.study.shard_rebalances);
  EXPECT_EQ(a.study.observations_recorded, b.study.observations_recorded);
  EXPECT_EQ(a.study.observations_stored, b.study.observations_stored);
  EXPECT_EQ(a.shipped_records, b.shipped_records);
  EXPECT_EQ(a.docs_json, b.docs_json);
  EXPECT_EQ(a.invariants.to_json(), b.invariants.to_json());
}

// Per-shard kill streams are independent child streams: shard 0's
// schedule never changes when the fleet grows, and distinct shards draw
// distinct schedules. Rebalance schedules are pure functions of the
// seed with disjoint-downtime kills per shard.
TEST(FleetChaosSweep, ShardSchedulesAreDeterministicAndPerShard) {
  fault::FaultPlan plan = fault::FaultPlan::shard_kill(7);
  auto s0 = plan.shard_kill_schedule(0, days(2));
  auto s1 = plan.shard_kill_schedule(1, days(2));
  ASSERT_FALSE(s0.empty());
  ASSERT_FALSE(s1.empty());
  // Distinct shards, distinct streams.
  bool differs = s0.size() != s1.size();
  for (std::size_t i = 0; !differs && i < s0.size(); ++i)
    differs = s0[i].at != s1[i].at || s0[i].down_for != s1[i].down_for;
  EXPECT_TRUE(differs);
  // Replayable, with downtimes disjoint and inside the horizon.
  auto again = plan.shard_kill_schedule(0, days(2));
  ASSERT_EQ(s0.size(), again.size());
  TimeMs up_at = 0;
  for (std::size_t i = 0; i < s0.size(); ++i) {
    EXPECT_EQ(s0[i].at, again[i].at);
    EXPECT_EQ(s0[i].down_for, again[i].down_for);
    EXPECT_GE(s0[i].at, up_at) << "downtimes overlap";
    EXPECT_LT(s0[i].at, days(2));
    up_at = s0[i].at + s0[i].down_for;
  }

  auto r = plan.rebalance_schedule(days(2));
  ASSERT_FALSE(r.empty());
  auto r2 = plan.rebalance_schedule(days(2));
  ASSERT_EQ(r.size(), r2.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_EQ(r[i].at, r2[i].at);
    EXPECT_EQ(r[i].slot, r2[i].slot);
    EXPECT_LT(r[i].at, days(2));
    EXPECT_LT(r[i].slot, 256u);
    if (i > 0) {
      EXPECT_GE(r[i].at, r[i - 1].at);
    }
  }

  // The fleet profiles resolve by name but stay out of profile_names()
  // (single-server sweeps must not pick them up).
  for (const std::string& name : fault::FaultPlan::shard_profile_names()) {
    fault::FaultPlan p = fault::FaultPlan::profile(name, 3);
    EXPECT_EQ(p.profile_name(), name);
    EXPECT_GT(p.shard_kill_rate_per_day, 0.0);
    for (const std::string& single : fault::FaultPlan::profile_names())
      EXPECT_NE(single, name);
  }
}

// The 1-shard byte-equivalence gate: the same clean study against a
// fleet of one and against the plain single server must close in
// byte-identical state — documents in insertion order, both dedup sets
// in eviction order, and every report figure. Pinning this means every
// single-server result in the repo transfers to the sharded plane.
TEST(FleetChaosSweep, SingleShardStudyIsByteIdenticalToPlainServer) {
  struct Outcome {
    std::string docs_json;
    std::string dedup_keys_json;
    std::string batch_ids_json;
    StudyReport report;
    InvariantReport invariants;
  };

  crowd::PopulationConfig pc;
  pc.seed = 9;
  pc.device_scale = 0.004;
  pc.obs_scale = 0.02;
  pc.horizon = days(2);

  auto run_study = [&pc](bool fleet_mode) {
    sim::Simulation sim;
    obs::Registry registry;
    obs::SpanTracker tracer(&registry);
    crowd::Population pop = crowd::Population::generate(pc);

    StudyConfig sc;
    sc.seed = 9;
    sc.duration_days = 1;
    sc.metrics = &registry;
    sc.tracer = &tracer;

    Outcome out;
    if (fleet_mode) {
      shard::FleetConfig fc;
      fc.shards = 1;
      shard::ShardFleet fleet(sim, fc);
      core::GoFlowServer& server = fleet.node(0).server();
      server.set_metrics(&registry);
      server.set_tracer(&tracer);
      sc.shard_fleet = &fleet;
      StudyRunner runner(pop, sc, sim, fleet.node(0).broker(), server);
      out.report = runner.run();
      out.invariants = check_invariants(tracer, server, runner.clients());
      out.docs_json = collection_json(fleet.node(0).db());
      out.dedup_keys_json = ordered_keys_json(server.seen_obs_keys());
      out.batch_ids_json = ordered_keys_json(server.seen_batch_ids());
    } else {
      broker::Broker broker;
      docstore::Database db;
      core::GoFlowServer server(sim, broker, db);
      server.set_metrics(&registry);
      server.set_tracer(&tracer);
      StudyRunner runner(pop, sc, sim, broker, server);
      out.report = runner.run();
      out.invariants = check_invariants(tracer, server, runner.clients());
      out.docs_json = collection_json(db);
      out.dedup_keys_json = ordered_keys_json(server.seen_obs_keys());
      out.batch_ids_json = ordered_keys_json(server.seen_batch_ids());
    }
    return out;
  };

  Outcome fleet = run_study(true);
  Outcome plain = run_study(false);
  ASSERT_GT(plain.report.observations_stored, 0u);
  EXPECT_EQ(fleet.docs_json, plain.docs_json);
  EXPECT_EQ(fleet.dedup_keys_json, plain.dedup_keys_json);
  EXPECT_EQ(fleet.batch_ids_json, plain.batch_ids_json);
  EXPECT_EQ(fleet.report.observations_recorded,
            plain.report.observations_recorded);
  EXPECT_EQ(fleet.report.observations_stored, plain.report.observations_stored);
  EXPECT_EQ(fleet.report.uploads, plain.report.uploads);
  EXPECT_EQ(fleet.report.deferred_uploads, plain.report.deferred_uploads);
  EXPECT_EQ(fleet.report.buffered_unsent, plain.report.buffered_unsent);
  EXPECT_EQ(fleet.report.in_flight_unsent, plain.report.in_flight_unsent);
  EXPECT_EQ(fleet.report.pending_server_batches,
            plain.report.pending_server_batches);
  EXPECT_EQ(fleet.report.duplicate_observations,
            plain.report.duplicate_observations);
  EXPECT_DOUBLE_EQ(fleet.report.mean_delay_ms, plain.report.mean_delay_ms);
  EXPECT_EQ(fleet.invariants.to_json(), plain.invariants.to_json());
  // Fleet bookkeeping stayed quiet: nothing to fail over or move.
  EXPECT_EQ(fleet.report.shard_failovers, 0u);
  EXPECT_EQ(fleet.report.shard_rebalances, 0u);
}

}  // namespace
}  // namespace mps::study
