// Pins the placement function of the sharded serving plane. The slot a
// client hashes to decides which shard owns its documents, dedup keys
// and pending batches — if these golden values ever change, every
// deployed fleet silently reshuffles and the exactly-once guarantees
// across redirects break. The values were computed from the repo's
// fnv1a64 (common/hash.h, including its pinned non-canonical offset
// basis) and must never be "fixed" to match published FNV vectors.
#include <gtest/gtest.h>

#include <set>

#include "shard/shard_map.h"

namespace mps::shard {
namespace {

TEST(ShardMap, GoldenSlotAssignments) {
  EXPECT_EQ(stable_client_hash("app1", "dev1"), 6157455798511333644ull);
  EXPECT_EQ(stable_client_hash("app1", "dev2"), 6157459097046218277ull);
  EXPECT_EQ(stable_client_hash("soundcity", "client-0042"),
            1357955819623680090ull);
  EXPECT_EQ(slot_of("app1", "dev1"), 12u);
  EXPECT_EQ(slot_of("app1", "dev2"), 37u);
  EXPECT_EQ(slot_of("soundcity", "client-0042"), 90u);
  EXPECT_EQ(slot_of("soundcity", "alpha"), 6u);
  EXPECT_EQ(slot_of("soundcity", "beta"), 60u);
}

TEST(ShardMap, SeparatorPreventsConcatenationCollisions) {
  // "app"+"1dev" vs "app1"+"dev" concatenate identically without the
  // 0x1f separator; with it they are distinct keys.
  EXPECT_NE(stable_client_hash("app", "1dev"),
            stable_client_hash("app1", "dev"));
  EXPECT_EQ(stable_client_hash("app", "1dev"), 5428261350221009493ull);
}

TEST(ShardMap, DefaultLayoutIsRoundRobinOverSlots) {
  ShardMap map(3);
  EXPECT_EQ(map.shards(), 3u);
  EXPECT_EQ(map.version(), 0u);
  for (std::uint32_t s = 0; s < kHashSlots; ++s)
    EXPECT_EQ(map.shard_of_slot(s), s % 3);
  // Every shard owns a nontrivial share.
  for (std::uint32_t shard = 0; shard < 3; ++shard)
    EXPECT_GE(map.slots_of(shard).size(), kHashSlots / 3);
}

TEST(ShardMap, SingleShardOwnsEverySlot) {
  ShardMap map(1);
  for (std::uint32_t s = 0; s < kHashSlots; ++s)
    EXPECT_EQ(map.shard_of_slot(s), 0u);
  EXPECT_EQ(map.shard_for("app1", "dev1"), 0u);
  EXPECT_EQ(map.slots_of(0).size(), kHashSlots);
}

TEST(ShardMap, MoveSlotReroutesOnlyThatSlot) {
  ShardMap map(2);
  std::uint32_t slot = slot_of("app1", "dev1");  // 12 -> shard 0
  ASSERT_EQ(map.shard_for("app1", "dev1"), 0u);
  map.move_slot(slot, 1);
  EXPECT_EQ(map.shard_for("app1", "dev1"), 1u);
  EXPECT_EQ(map.version(), 1u);
  // Every other slot kept its owner.
  for (std::uint32_t s = 0; s < kHashSlots; ++s) {
    if (s != slot) {
      EXPECT_EQ(map.shard_of_slot(s), s % 2);
    }
  }
}

TEST(ShardMap, NoOpMoveDoesNotBumpVersion) {
  ShardMap map(2);
  map.move_slot(0, 0);
  EXPECT_EQ(map.version(), 0u);
  map.move_slot(0, 1);
  EXPECT_EQ(map.version(), 1u);
  map.move_slot(0, 1);
  EXPECT_EQ(map.version(), 1u);
}

TEST(ShardMap, RejectsInvalidConfigurations) {
  EXPECT_THROW(ShardMap(0), std::invalid_argument);
  ShardMap map(2);
  EXPECT_THROW(map.move_slot(0, 2), std::invalid_argument);
  EXPECT_THROW(map.shard_of_slot(kHashSlots), std::out_of_range);
}

TEST(ShardMap, DistinctMapsAgreeOnRouting) {
  // The route must be a pure function of (app, client, layout): two maps
  // built the same way agree on every client, which is what lets the
  // ingest edge and the serving plane hold independent copies.
  ShardMap a(4);
  ShardMap b(4);
  const char* clients[] = {"dev1", "dev2", "client-0042", "alpha", "beta"};
  for (const char* c : clients)
    EXPECT_EQ(a.shard_for("soundcity", c), b.shard_for("soundcity", c));
}

}  // namespace
}  // namespace mps::shard
