#include "core/goflow_server.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "phone/observation.h"

namespace mps::core {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : server(sim, broker, db) {
    auto reg = server.register_app("soundcity", {"user"}).value_or_throw();
    admin_token = reg.admin_token;
    client_token = server
                       .register_account(admin_token, "soundcity", "alice",
                                         Role::kClient)
                       .value_or_throw();
  }

  /// Publishes an observation batch the way the mobile client does.
  void publish_batch(const ClientId& client, std::vector<Value> observations,
                     TimeMs received_at = 1000) {
    Array arr;
    for (Value& v : observations) arr.push_back(std::move(v));
    Value batch(Object{{"app", Value("soundcity")},
                       {"client", Value(client)},
                       {"observations", Value(std::move(arr))}});
    auto channels =
        server.login_client(client_token, "soundcity", client).value_or_throw();
    broker
        .publish(channels.exchange, "soundcity.obs." + client, std::move(batch),
                 received_at)
        .value_or_throw();
  }

  static Value obs_doc(const char* user, const char* model, double spl,
                       TimeMs captured, const char* provider = nullptr,
                       double accuracy = 30.0) {
    Object o;
    o.set("user", Value(user));
    o.set("model", Value(model));
    o.set("captured_at", Value(captured));
    o.set("spl", Value(spl));
    o.set("mode", Value("opportunistic"));
    o.set("activity", Value("still"));
    if (provider != nullptr) {
      o.set("location", Value(Object{{"provider", Value(provider)},
                                     {"x", Value(10.0)},
                                     {"y", Value(20.0)},
                                     {"accuracy", Value(accuracy)}}));
    }
    return Value(std::move(o));
  }

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  GoFlowServer server;
  std::string admin_token;
  std::string client_token;
};

TEST_F(ServerTest, RegisterAppIdempotenceAndConflicts) {
  EXPECT_FALSE(server.register_app("soundcity").ok());
  EXPECT_TRUE(server.register_app("airquality").ok());
  EXPECT_FALSE(server.register_app("").ok());
}

TEST_F(ServerTest, AccountRolesEnforced) {
  // Client tokens cannot create accounts.
  auto r = server.register_account(client_token, "soundcity", "bob",
                                   Role::kClient);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kForbidden);

  // Manager can add clients but not managers.
  std::string manager_token =
      server.register_account(admin_token, "soundcity", "mgr", Role::kManager)
          .value_or_throw();
  EXPECT_TRUE(server
                  .register_account(manager_token, "soundcity", "bob",
                                    Role::kClient)
                  .ok());
  EXPECT_FALSE(server
                   .register_account(manager_token, "soundcity", "mgr2",
                                     Role::kManager)
                   .ok());
}

TEST_F(ServerTest, DuplicateAccountConflicts) {
  auto r =
      server.register_account(admin_token, "soundcity", "alice", Role::kClient);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kConflict);
}

TEST_F(ServerTest, RemoveAccountRequiresAdmin) {
  EXPECT_FALSE(server.remove_account(client_token, "soundcity", "alice").ok());
  EXPECT_TRUE(server.remove_account(admin_token, "soundcity", "alice").ok());
  EXPECT_FALSE(server.remove_account(admin_token, "soundcity", "alice").ok());
}

TEST_F(ServerTest, TokenRole) {
  EXPECT_EQ(server.token_role(admin_token), Role::kAdmin);
  EXPECT_EQ(server.token_role(client_token), Role::kClient);
  EXPECT_FALSE(server.token_role("bogus").has_value());
}

TEST_F(ServerTest, CrossAppTokenForbidden) {
  server.register_app("other").value_or_throw();
  auto r = server.login_client(client_token, "other", "mob1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kForbidden);
}

TEST_F(ServerTest, LoginCreatesFigure3Topology) {
  auto channels =
      server.login_client(client_token, "soundcity", "mob1").value_or_throw();
  EXPECT_TRUE(broker.has_exchange(channels.exchange));
  EXPECT_TRUE(broker.has_queue(channels.queue));
  // Publishing through the client exchange reaches the ingest pipeline.
  Value batch(Object{{"app", Value("soundcity")},
                     {"client", Value("mob1")},
                     {"observations",
                      Value(Array{obs_doc("alice", "LGE NEXUS 5", 50, 10)})}});
  broker.publish(channels.exchange, "soundcity.obs.mob1", std::move(batch), 500)
      .value_or_throw();
  EXPECT_EQ(server.total_observations(), 1u);
}

TEST_F(ServerTest, LogoutTearsDownChannels) {
  auto channels =
      server.login_client(client_token, "soundcity", "mob1").value_or_throw();
  EXPECT_TRUE(server.logout_client(client_token, "soundcity", "mob1").ok());
  EXPECT_FALSE(broker.has_exchange(channels.exchange));
  EXPECT_FALSE(broker.has_queue(channels.queue));
}

TEST_F(ServerTest, IngestStoresEnrichedDocuments) {
  publish_batch("mob1", {obs_doc("alice", "LGE NEXUS 5", 52.5, 100, "gps", 8.0)},
                2500);
  auto& col = db.collection("observations");
  ASSERT_EQ(col.size(), 1u);
  std::vector<Value> docs = col.find(docstore::Query::all());
  const Value& doc = docs[0];
  EXPECT_EQ(doc.get_string("app"), "soundcity");
  EXPECT_EQ(doc.get_string("client"), "mob1");
  EXPECT_EQ(doc.get_int("received_at"), 2500);
  EXPECT_EQ(doc.get_int("delay_ms"), 2400);
}

TEST_F(ServerTest, QueryFilters) {
  publish_batch("mob1",
                {obs_doc("alice", "LGE NEXUS 5", 52, 100, "gps", 8.0),
                 obs_doc("alice", "LGE NEXUS 5", 58, 200, "network", 40.0),
                 obs_doc("alice", "SONY D5803", 61, 300),
                 obs_doc("alice", "SONY D5803", 63, 400, "network", 250.0)});
  ObservationFilter filter;
  filter.app = "soundcity";

  EXPECT_EQ(server.count_observations(admin_token, filter).value_or_throw(), 4u);

  filter.localized_only = true;
  EXPECT_EQ(server.count_observations(admin_token, filter).value_or_throw(), 3u);

  filter.max_accuracy_m = 100.0;
  EXPECT_EQ(server.count_observations(admin_token, filter).value_or_throw(), 2u);

  filter.provider = "gps";
  EXPECT_EQ(server.count_observations(admin_token, filter).value_or_throw(), 1u);

  ObservationFilter by_model;
  by_model.app = "soundcity";
  by_model.model = "SONY D5803";
  EXPECT_EQ(server.count_observations(admin_token, by_model).value_or_throw(),
            2u);

  ObservationFilter window;
  window.app = "soundcity";
  window.from = 150;
  window.until = 350;
  EXPECT_EQ(server.count_observations(admin_token, window).value_or_throw(), 2u);
}

TEST_F(ServerTest, QuerySortedAndLimited) {
  publish_batch("mob1", {obs_doc("a", "M", 1, 300), obs_doc("a", "M", 2, 100),
                         obs_doc("a", "M", 3, 200)});
  ObservationFilter filter;
  filter.app = "soundcity";
  filter.limit = 2;
  auto docs = server.query_observations(admin_token, filter).value_or_throw();
  ASSERT_EQ(docs.size(), 2u);
  EXPECT_EQ(docs[0].get_int("captured_at"), 100);
  EXPECT_EQ(docs[1].get_int("captured_at"), 200);
}

TEST_F(ServerTest, QueryRequiresValidToken) {
  ObservationFilter filter;
  filter.app = "soundcity";
  EXPECT_FALSE(server.query_observations("bad", filter).ok());
  EXPECT_FALSE(server.count_observations("bad", filter).ok());
}

TEST_F(ServerTest, OpenDataStripsPrivateFieldsForForeignApps) {
  publish_batch("mob1", {obs_doc("alice", "LGE NEXUS 5", 52, 100, "gps")});
  auto other = server.register_app("airquality").value_or_throw();
  ObservationFilter filter;
  filter.app = "soundcity";
  // Foreign app: "user" (declared private at registration) is stripped.
  auto foreign =
      server.query_observations(other.admin_token, filter).value_or_throw();
  ASSERT_EQ(foreign.size(), 1u);
  EXPECT_EQ(foreign[0].find("user"), nullptr);
  EXPECT_NE(foreign[0].find("spl"), nullptr);
  // Owner app keeps everything.
  auto own = server.query_observations(admin_token, filter).value_or_throw();
  EXPECT_NE(own[0].find("user"), nullptr);
}

TEST_F(ServerTest, ExportJsonIsParsableArray) {
  publish_batch("mob1", {obs_doc("alice", "LGE NEXUS 5", 52, 100),
                         obs_doc("alice", "LGE NEXUS 5", 53, 200)});
  ObservationFilter filter;
  filter.app = "soundcity";
  std::string json = server.export_json(admin_token, filter).value_or_throw();
  Value parsed = Value::parse_json(json);
  ASSERT_TRUE(parsed.is_array());
  EXPECT_EQ(parsed.as_array().size(), 2u);
}

TEST_F(ServerTest, ExportCsv) {
  publish_batch("mob1", {obs_doc("alice", "LGE NEXUS 5", 52.125, 100, "gps", 8.0),
                         obs_doc("bob,jr", "M", 60, 200)});
  ObservationFilter filter;
  filter.app = "soundcity";
  std::string csv = server.export_csv(admin_token, filter).value_or_throw();
  std::vector<std::string> lines = split(csv, '\n');
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "user,model,captured_at,spl,mode,activity,provider,x,y,accuracy,"
            "delay_ms");
  EXPECT_NE(lines[1].find("alice,LGE NEXUS 5,100,52.125"), std::string::npos);
  EXPECT_NE(lines[1].find("gps,10.0,20.0,8.0"), std::string::npos);
  // Comma-containing user is quoted; missing location leaves empty fields.
  EXPECT_NE(lines[2].find("\"bob,jr\""), std::string::npos);
  EXPECT_NE(lines[2].find(",,,,"), std::string::npos);
  EXPECT_FALSE(server.export_csv("bad", filter).ok());
}

TEST_F(ServerTest, AnalyticsAggregates) {
  publish_batch("mob1", {obs_doc("alice", "M", 50, 0, "gps"),
                         obs_doc("alice", "M", 51, 0)},
                minutes(2));
  AppAnalytics analytics = server.analytics("soundcity").value_or_throw();
  EXPECT_EQ(analytics.batches_ingested, 1u);
  EXPECT_EQ(analytics.observations_stored, 2u);
  EXPECT_EQ(analytics.observations_localized, 1u);
  EXPECT_EQ(analytics.clients_logged_in, 1u);
  EXPECT_EQ(analytics.delay_stats.count(), 2u);
  EXPECT_NEAR(analytics.delay_stats.mean(), static_cast<double>(minutes(2)),
              1.0);
  EXPECT_FALSE(server.analytics("nope").ok());
}

TEST_F(ServerTest, SubscriptionRoutesFeedbackToSubscriber) {
  // mob1 subscribes to Feedback at FR75013; mob2 publishes one.
  auto ch1 =
      server.login_client(client_token, "soundcity", "mob1").value_or_throw();
  auto ch2 =
      server.login_client(client_token, "soundcity", "mob2").value_or_throw();
  server.subscribe(client_token, "soundcity", "mob1", "FR75013", "Feedback")
      .throw_if_error();
  Value feedback(Object{{"text", Value("noisy bar")}, {"client", Value("mob2")}});
  broker
      .publish(ch2.exchange,
               GoFlowServer::publish_key("FR75013", "Feedback", "mob2"),
               feedback, 10)
      .value_or_throw();
  // Subscriber receives it...
  auto m = broker.pop(ch1.queue);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.get_string("text"), "noisy bar");
  // ...and it is also persisted by the ingest path (raw message store).
  EXPECT_GT(db.collection("messages").size(), 0u);
}

TEST_F(ServerTest, SubscriptionFiltersByLocationAndType) {
  auto ch1 =
      server.login_client(client_token, "soundcity", "mob1").value_or_throw();
  auto ch2 =
      server.login_client(client_token, "soundcity", "mob2").value_or_throw();
  server.subscribe(client_token, "soundcity", "mob1", "FR75013", "Feedback")
      .throw_if_error();
  // Wrong location.
  broker
      .publish(ch2.exchange,
               GoFlowServer::publish_key("FR92120", "Feedback", "mob2"),
               Value(Object{{"n", Value(1)}}), 0)
      .value_or_throw();
  // Wrong datatype.
  broker
      .publish(ch2.exchange,
               GoFlowServer::publish_key("FR75013", "Journey", "mob2"),
               Value(Object{{"n", Value(2)}}), 0)
      .value_or_throw();
  EXPECT_EQ(broker.queue_depth(ch1.queue), 0u);
}

TEST_F(ServerTest, UnsubscribeStopsDelivery) {
  auto ch1 =
      server.login_client(client_token, "soundcity", "mob1").value_or_throw();
  auto ch2 =
      server.login_client(client_token, "soundcity", "mob2").value_or_throw();
  server.subscribe(client_token, "soundcity", "mob1", "FR75013", "Feedback")
      .throw_if_error();
  server.unsubscribe(client_token, "soundcity", "mob1", "FR75013", "Feedback")
      .throw_if_error();
  broker
      .publish(ch2.exchange,
               GoFlowServer::publish_key("FR75013", "Feedback", "mob2"),
               Value(Object{{"n", Value(1)}}), 0)
      .value_or_throw();
  EXPECT_EQ(broker.queue_depth(ch1.queue), 0u);
}

TEST_F(ServerTest, SubscribeRequiresLogin) {
  Status s =
      server.subscribe(client_token, "soundcity", "ghost", "FR75013", "Feedback");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kNotFound);
}

TEST_F(ServerTest, BackgroundJobRunsAtScheduledTime) {
  publish_batch("mob1", {obs_doc("alice", "M", 50, 0)});
  JobId id = server
                 .submit_job(admin_token, "soundcity", "count-obs",
                             [](docstore::Database& database) {
                               return Value(Object{
                                   {"count",
                                    Value(static_cast<std::int64_t>(
                                        database.collection("observations")
                                            .size()))}});
                             },
                             minutes(10))
                 .value_or_throw();
  Value before = server.job_info(id).value_or_throw();
  EXPECT_EQ(before.get_string("status"), "scheduled");
  sim.run_until(minutes(10));
  Value after = server.job_info(id).value_or_throw();
  EXPECT_EQ(after.get_string("status"), "done");
  EXPECT_EQ(after.at("result").get_int("count"), 1);
}

TEST_F(ServerTest, FailingJobReportsFailure) {
  JobId id = server
                 .submit_job(admin_token, "soundcity", "boom",
                             [](docstore::Database&) -> Value {
                               throw std::runtime_error("kaput");
                             })
                 .value_or_throw();
  sim.run();
  Value info = server.job_info(id).value_or_throw();
  EXPECT_EQ(info.get_string("status"), "failed");
  EXPECT_EQ(info.at("result").get_string("error"), "kaput");
}

TEST_F(ServerTest, JobsRequireManagerRole) {
  auto r = server.submit_job(client_token, "soundcity", "x",
                             [](docstore::Database&) { return Value(); });
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kForbidden);
  EXPECT_FALSE(server.job_info("job-999").ok());
}

TEST_F(ServerTest, DuplicateBatchIngestedOnce) {
  auto channels =
      server.login_client(client_token, "soundcity", "mob1").value_or_throw();
  Value batch(Object{{"app", Value("soundcity")},
                     {"client", Value("mob1")},
                     {"batch_id", Value("mob1#1")},
                     {"observations",
                      Value(Array{obs_doc("alice", "M", 50, 10)})}});
  broker.publish(channels.exchange, "soundcity.obs.mob1", batch, 100)
      .value_or_throw();
  // The transport redelivers the same batch (at-least-once).
  broker.publish(channels.exchange, "soundcity.obs.mob1", batch, 200)
      .value_or_throw();
  EXPECT_EQ(server.total_observations(), 1u);
  EXPECT_EQ(server.duplicate_batches(), 1u);
  // A different batch id ingests normally.
  batch.as_object().set("batch_id", Value("mob1#2"));
  broker.publish(channels.exchange, "soundcity.obs.mob1", batch, 300)
      .value_or_throw();
  EXPECT_EQ(server.total_observations(), 2u);
}

TEST_F(ServerTest, BatchesWithoutIdAreNotDeduplicated) {
  // Legacy clients without batch ids keep the old (at-least-once) story.
  publish_batch("mob1", {obs_doc("alice", "M", 50, 10)});
  publish_batch("mob2", {obs_doc("alice", "M", 50, 10)});
  EXPECT_EQ(server.total_observations(), 2u);
  EXPECT_EQ(server.duplicate_batches(), 0u);
}

TEST_F(ServerTest, MultipleAppsIsolated) {
  auto other = server.register_app("airquality").value_or_throw();
  std::string other_client =
      server.register_account(other.admin_token, "airquality", "carol",
                              Role::kClient)
          .value_or_throw();
  auto ch = server.login_client(other_client, "airquality", "mobX")
                .value_or_throw();
  Value batch(Object{{"app", Value("airquality")},
                     {"client", Value("mobX")},
                     {"observations",
                      Value(Array{obs_doc("carol", "M", 30, 5)})}});
  broker.publish(ch.exchange, "airquality.obs.mobX", std::move(batch), 10)
      .value_or_throw();
  ObservationFilter mine;
  mine.app = "soundcity";
  EXPECT_EQ(server.count_observations(admin_token, mine).value_or_throw(), 0u);
  ObservationFilter theirs;
  theirs.app = "airquality";
  EXPECT_EQ(server.count_observations(admin_token, theirs).value_or_throw(), 1u);
}

}  // namespace
}  // namespace mps::core
