#include "core/standard_jobs.h"

#include <gtest/gtest.h>

namespace mps::core {
namespace {

class StandardJobsTest : public ::testing::Test {
 protected:
  StandardJobsTest() {
    auto& col = db.collection("observations");
    col.insert(obs("soundcity", "M1", 60.0, hours(9), "gps", minutes(1)));
    col.insert(obs("soundcity", "M1", 62.0, hours(9) + minutes(10), "network",
                   hours(3)));
    col.insert(obs("soundcity", "M2", 70.0, hours(22), nullptr, minutes(2)));
    col.insert(obs("otherapp", "M9", 50.0, hours(9), "gps", minutes(1)));
  }

  static Value obs(const char* app, const char* model, double spl,
                   TimeMs captured, const char* provider, DurationMs delay) {
    Object o;
    o.set("app", Value(app));
    o.set("model", Value(model));
    o.set("spl", Value(spl));
    o.set("captured_at", Value(captured));
    o.set("delay_ms", Value(delay));
    if (provider != nullptr)
      o.set("location", Value(Object{{"provider", Value(provider)},
                                     {"accuracy", Value(20.0)}}));
    return Value(std::move(o));
  }

  docstore::Database db;
};

TEST_F(StandardJobsTest, PerModelCounts) {
  Value result = job_per_model_counts("soundcity")(db);
  EXPECT_EQ(result.get_int("M1"), 2);
  EXPECT_EQ(result.get_int("M2"), 1);
  EXPECT_EQ(result.find("M9"), nullptr);  // other app excluded
}

TEST_F(StandardJobsTest, HourlyHistogram) {
  Value result = job_hourly_histogram("soundcity")(db);
  EXPECT_EQ(result.get_int("09"), 2);
  EXPECT_EQ(result.get_int("22"), 1);
  EXPECT_EQ(result.get_int("03"), 0);
}

TEST_F(StandardJobsTest, ProviderShares) {
  Value result = job_provider_shares("soundcity")(db);
  EXPECT_EQ(result.get_int("total"), 3);
  EXPECT_EQ(result.get_int("localized"), 2);
  EXPECT_NEAR(result.get_double("gps"), 0.5, 1e-9);
  EXPECT_NEAR(result.get_double("network"), 0.5, 1e-9);
  EXPECT_NEAR(result.get_double("fused"), 0.0, 1e-9);
}

TEST_F(StandardJobsTest, DelayStats) {
  Value result = job_delay_stats("soundcity")(db);
  EXPECT_EQ(result.get_int("count"), 3);
  EXPECT_NEAR(result.get_double("max_ms"), static_cast<double>(hours(3)), 1.0);
  EXPECT_NEAR(result.get_double("over_2h_share"), 1.0 / 3.0, 1e-9);
}

TEST_F(StandardJobsTest, PurgeBefore) {
  Value result = job_purge_before("soundcity", hours(12))(db);
  EXPECT_EQ(result.get_int("removed"), 2);
  EXPECT_EQ(db.collection("observations").size(), 2u);  // M2 + otherapp kept
}

TEST_F(StandardJobsTest, RunThroughServerJobPipeline) {
  sim::Simulation sim;
  broker::Broker broker;
  GoFlowServer server(sim, broker, db);
  // The db already holds observations; register the app and submit.
  auto reg = server.register_app("soundcity").value_or_throw();
  JobId id = server
                 .submit_job(reg.admin_token, "soundcity", "per-model",
                             job_per_model_counts("soundcity"), minutes(1))
                 .value_or_throw();
  sim.run();
  Value info = server.job_info(id).value_or_throw();
  EXPECT_EQ(info.get_string("status"), "done");
  EXPECT_EQ(info.at("result").get_int("M1"), 2);
}

}  // namespace
}  // namespace mps::core
