#include "core/rest_api.h"

#include <gtest/gtest.h>

namespace mps::core {
namespace {

class RestApiTest : public ::testing::Test {
 protected:
  RestApiTest() : server(sim, broker, db), api(server) {}

  RestResponse post(const std::string& path, Value body,
                    const std::string& token = "") {
    return api.handle(RestRequest{"POST", path, token, std::move(body), {}});
  }
  RestResponse get(const std::string& path, const std::string& token = "",
                   std::map<std::string, std::string> query = {}) {
    return api.handle(RestRequest{"GET", path, token, Value(), std::move(query)});
  }
  RestResponse del(const std::string& path, Value body = Value(),
                   const std::string& token = "") {
    return api.handle(RestRequest{"DELETE", path, token, std::move(body), {}});
  }

  /// Registers the app and a client account; returns (admin, client) tokens.
  std::pair<std::string, std::string> bootstrap() {
    RestResponse r = post("/apps", Value(Object{{"id", Value("soundcity")}}));
    EXPECT_EQ(r.status, 201);
    std::string admin = r.body.get_string("admin_token");
    RestResponse a = post("/apps/soundcity/accounts",
                          Value(Object{{"user", Value("alice")},
                                       {"role", Value("client")}}),
                          admin);
    EXPECT_EQ(a.status, 201);
    return {admin, a.body.get_string("token")};
  }

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  GoFlowServer server;
  GoFlowRestApi api;
};

TEST_F(RestApiTest, RegisterAppRoute) {
  RestResponse r = post("/apps", Value(Object{{"id", Value("soundcity")}}));
  EXPECT_EQ(r.status, 201);
  EXPECT_EQ(r.body.get_string("app"), "soundcity");
  EXPECT_FALSE(r.body.get_string("admin_token").empty());
  // Duplicate -> 409.
  EXPECT_EQ(post("/apps", Value(Object{{"id", Value("soundcity")}})).status, 409);
  // Missing id -> 400.
  EXPECT_EQ(post("/apps", Value(Object{})).status, 400);
}

TEST_F(RestApiTest, UnknownRoutes404) {
  EXPECT_EQ(get("/nope").status, 404);
  EXPECT_EQ(get("/").status, 404);
  EXPECT_EQ(post("/apps/x/unknown", Value()).status, 404);
  EXPECT_EQ(api.handle(RestRequest{"PATCH", "/apps", "", Value(), {}}).status,
            404);
}

TEST_F(RestApiTest, AccountRoutes) {
  auto [admin, client] = bootstrap();
  // Client token cannot create accounts -> 403.
  RestResponse forbidden = post(
      "/apps/soundcity/accounts",
      Value(Object{{"user", Value("bob")}, {"role", Value("client")}}), client);
  EXPECT_EQ(forbidden.status, 403);
  // Bad role -> 400.
  EXPECT_EQ(post("/apps/soundcity/accounts",
                 Value(Object{{"user", Value("bob")}, {"role", Value("boss")}}),
                 admin)
                .status,
            400);
  // Delete account.
  EXPECT_EQ(del("/apps/soundcity/accounts/alice", Value(), admin).status, 204);
  EXPECT_EQ(del("/apps/soundcity/accounts/alice", Value(), admin).status, 404);
}

TEST_F(RestApiTest, LoginLogoutAndSubscriptions) {
  auto [admin, client] = bootstrap();
  RestResponse login = post("/apps/soundcity/clients/mob1/login", Value(), client);
  EXPECT_EQ(login.status, 200);
  EXPECT_FALSE(login.body.get_string("exchange").empty());
  EXPECT_FALSE(login.body.get_string("queue").empty());

  RestResponse sub = post("/apps/soundcity/clients/mob1/subscriptions",
                          Value(Object{{"location", Value("FR75013")},
                                       {"datatype", Value("Feedback")}}),
                          client);
  EXPECT_EQ(sub.status, 201);
  RestResponse unsub = del("/apps/soundcity/clients/mob1/subscriptions",
                           Value(Object{{"location", Value("FR75013")},
                                        {"datatype", Value("Feedback")}}),
                           client);
  EXPECT_EQ(unsub.status, 204);

  EXPECT_EQ(post("/apps/soundcity/clients/mob1/logout", Value(), client).status,
            204);
  // Unauthorized without a token -> 401.
  EXPECT_EQ(post("/apps/soundcity/clients/mob2/login", Value()).status, 401);
}

TEST_F(RestApiTest, ObservationRoutes) {
  auto [admin, client] = bootstrap();
  RestResponse login = post("/apps/soundcity/clients/mob1/login", Value(), client);
  // Ingest a batch through the broker, as the mobile client does.
  Array arr{Value(Object{{"user", Value("alice")},
                         {"model", Value("M")},
                         {"captured_at", Value(10)},
                         {"spl", Value(61.0)},
                         {"location", Value(Object{{"provider", Value("gps")},
                                                   {"accuracy", Value(8.0)}})}}),
            Value(Object{{"user", Value("alice")},
                         {"model", Value("M")},
                         {"captured_at", Value(20)},
                         {"spl", Value(55.0)}})};
  broker
      .publish(login.body.get_string("exchange"), "soundcity.obs.mob1",
               Value(Object{{"app", Value("soundcity")},
                            {"client", Value("mob1")},
                            {"observations", Value(std::move(arr))}}),
               500)
      .value_or_throw();

  RestResponse all = get("/apps/soundcity/observations", admin);
  EXPECT_EQ(all.status, 200);
  EXPECT_EQ(all.body.at("observations").as_array().size(), 2u);

  RestResponse count =
      get("/apps/soundcity/observations/count", admin, {{"localized", "true"}});
  EXPECT_EQ(count.status, 200);
  EXPECT_EQ(count.body.get_int("count"), 1);

  RestResponse filtered = get("/apps/soundcity/observations", admin,
                              {{"provider", "gps"}, {"max_accuracy", "10"}});
  EXPECT_EQ(filtered.body.at("observations").as_array().size(), 1u);

  RestResponse window = get("/apps/soundcity/observations/count", admin,
                            {{"from", "15"}, {"until", "25"}});
  EXPECT_EQ(window.body.get_int("count"), 1);

  RestResponse exported = get("/apps/soundcity/observations/export", admin);
  EXPECT_EQ(exported.status, 200);
  Value parsed = Value::parse_json(exported.body.get_string("json"));
  EXPECT_EQ(parsed.as_array().size(), 2u);

  RestResponse csv = get("/apps/soundcity/observations/export", admin,
                         {{"format", "csv"}});
  EXPECT_EQ(csv.status, 200);
  const std::string& text = csv.body.get_string("csv");
  EXPECT_EQ(text.rfind("user,model,", 0), 0u);
  EXPECT_NE(text.find("alice"), std::string::npos);

  // Bad token -> 401.
  EXPECT_EQ(get("/apps/soundcity/observations", "bad").status, 401);
}

TEST_F(RestApiTest, AnalyticsRoute) {
  bootstrap();
  RestResponse r = get("/apps/soundcity/analytics");
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body.get_int("observations_stored"), 0);
  EXPECT_EQ(get("/apps/ghost/analytics").status, 404);
}

TEST_F(RestApiTest, JobRoutes) {
  auto [admin, client] = bootstrap();
  api.register_job_type("count-observations", [](docstore::Database& database) {
    return Value(Object{{"count", Value(static_cast<std::int64_t>(
                                      database.collection("observations")
                                          .size()))}});
  });
  // Unknown type -> 404.
  EXPECT_EQ(post("/apps/soundcity/jobs",
                 Value(Object{{"type", Value("nope")}}), admin)
                .status,
            404);
  // Client role cannot submit -> 403.
  EXPECT_EQ(post("/apps/soundcity/jobs",
                 Value(Object{{"type", Value("count-observations")}}), client)
                .status,
            403);
  RestResponse submitted =
      post("/apps/soundcity/jobs",
           Value(Object{{"type", Value("count-observations")},
                        {"delay_ms", Value(1000)}}),
           admin);
  EXPECT_EQ(submitted.status, 202);
  std::string job_id = submitted.body.get_string("job");

  RestResponse before = get("/jobs/" + job_id);
  EXPECT_EQ(before.status, 200);
  EXPECT_EQ(before.body.get_string("status"), "scheduled");
  sim.run();
  RestResponse after = get("/jobs/" + job_id);
  EXPECT_EQ(after.body.get_string("status"), "done");
  EXPECT_EQ(after.body.at("result").get_int("count"), 0);
  EXPECT_EQ(get("/jobs/job-999").status, 404);
}

TEST_F(RestApiTest, TrailingSlashTolerated) {
  RestResponse r = post("/apps/", Value(Object{{"id", Value("x")}}));
  EXPECT_EQ(r.status, 201);
}

TEST_F(RestApiTest, HttpStatusMapping) {
  EXPECT_EQ(http_status(ErrorCode::kOk), 200);
  EXPECT_EQ(http_status(ErrorCode::kInvalidArgument), 400);
  EXPECT_EQ(http_status(ErrorCode::kUnauthorized), 401);
  EXPECT_EQ(http_status(ErrorCode::kForbidden), 403);
  EXPECT_EQ(http_status(ErrorCode::kNotFound), 404);
  EXPECT_EQ(http_status(ErrorCode::kConflict), 409);
  EXPECT_EQ(http_status(ErrorCode::kUnavailable), 503);
  EXPECT_EQ(http_status(ErrorCode::kInternal), 500);
}

}  // namespace
}  // namespace mps::core
