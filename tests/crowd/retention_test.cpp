#include "crowd/retention.h"

#include <gtest/gtest.h>

namespace mps::crowd {
namespace {

TEST(Retention, HazardGrowsWithDrain) {
  RetentionModel model;
  EXPECT_GT(model.daily_hazard(5.0, 30), model.daily_hazard(1.0, 30));
  EXPECT_GT(model.daily_hazard(1.0, 30), model.daily_hazard(0.0, 30));
}

TEST(Retention, NegativeDrainTreatedAsZero) {
  RetentionModel model;
  EXPECT_DOUBLE_EQ(model.daily_hazard(-3.0, 30), model.daily_hazard(0.0, 30));
}

TEST(Retention, FirstWeekMultiplier) {
  RetentionModel model;
  EXPECT_NEAR(model.daily_hazard(2.0, 3),
              model.daily_hazard(2.0, 30) * model.params().first_week_multiplier,
              1e-12);
}

TEST(Retention, HazardClamped) {
  RetentionParams params;
  params.churn_per_drain_point = 1.0;
  RetentionModel model(params);
  EXPECT_DOUBLE_EQ(model.daily_hazard(500.0, 30), 1.0);
  Rng rng(1);
  EXPECT_EQ(model.simulate_churn_day(500.0, 100, rng), 0);
}

TEST(Retention, SurvivalCurveMonotoneAndNormalized) {
  RetentionModel model;
  std::vector<double> curve = model.survival_curve(2.0, 100);
  ASSERT_EQ(curve.size(), 101u);
  EXPECT_DOUBLE_EQ(curve.front(), 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1]);
    EXPECT_GE(curve[i], 0.0);
  }
}

TEST(Retention, MoreDrainLowerSurvival) {
  RetentionModel model;
  std::vector<double> low = model.survival_curve(0.5, 305);
  std::vector<double> high = model.survival_curve(10.0, 305);
  EXPECT_GT(low.back(), high.back() * 5.0);
}

TEST(Retention, SimulationMatchesAnalyticCurve) {
  RetentionModel model;
  Rng rng(7);
  const int kUsers = 20000;
  const int kHorizon = 60;
  const double kDrain = 3.0;
  int survivors = 0;
  for (int i = 0; i < kUsers; ++i)
    if (model.simulate_churn_day(kDrain, kHorizon, rng) == kHorizon)
      ++survivors;
  double simulated = static_cast<double>(survivors) / kUsers;
  double analytic = model.survival_curve(kDrain, kHorizon).back();
  EXPECT_NEAR(simulated, analytic, 0.02);
}

TEST(Retention, ZeroHazardNeverChurns) {
  RetentionParams params;
  params.base_daily_churn = 0.0;
  params.churn_per_drain_point = 0.0;
  RetentionModel model(params);
  Rng rng(9);
  EXPECT_EQ(model.simulate_churn_day(0.0, 365, rng), 365);
  EXPECT_DOUBLE_EQ(model.survival_curve(0.0, 365).back(), 1.0);
}

}  // namespace
}  // namespace mps::crowd
