#include "crowd/user_profile.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.h"

namespace mps::crowd {
namespace {

const phone::DeviceModelSpec& test_model() {
  return phone::top20_catalog().front();
}

UserProfile make_user(int index, std::uint64_t seed = 1,
                      double target_total = 1000.0) {
  UserProfileParams params;
  return generate_user_profile(
      test_model(), index, days(305), target_total, params,
      Rng(seed).child("test").child(static_cast<std::uint64_t>(index)));
}

TEST(UserProfile, BaseShapeNormalizedAndPeaked) {
  const auto& base = base_diurnal_shape();
  double total = 0.0;
  for (double w : base) total += w;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Peak 10AM-9PM vs trough 2-6AM (Figure 18).
  EXPECT_GT(base[12], base[3] * 5.0);
  EXPECT_GT(base[19], base[4] * 5.0);
}

TEST(UserProfile, HourlyWeightsNormalized) {
  UserProfile u = make_user(0);
  double total = 0.0;
  for (double w : u.hourly_weight) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(UserProfile, Deterministic) {
  UserProfile a = make_user(3, 9);
  UserProfile b = make_user(3, 9);
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_DOUBLE_EQ(a.obs_per_day, b.obs_per_day);
  EXPECT_EQ(a.hourly_weight, b.hourly_weight);
  EXPECT_EQ(a.active_from, b.active_from);
}

TEST(UserProfile, UsersAreHeterogeneous) {
  // Figure 19: individual diurnal shapes differ strongly.
  UserProfile a = make_user(0), b = make_user(1);
  double l1 = 0.0;
  for (int h = 0; h < 24; ++h)
    l1 += std::abs(a.hourly_weight[h] - b.hourly_weight[h]);
  EXPECT_GT(l1, 0.2);
}

TEST(UserProfile, ActiveWindowWithinHorizon) {
  for (int i = 0; i < 50; ++i) {
    UserProfile u = make_user(i);
    EXPECT_GE(u.active_from, 0);
    EXPECT_GT(u.active_until, u.active_from);
    EXPECT_LE(u.active_until, days(305));
    EXPECT_TRUE(u.active_at(u.active_from));
    EXPECT_FALSE(u.active_at(u.active_until));
  }
}

TEST(UserProfile, ExpectedTotalMatchesTargetOnAverage) {
  // Mean of obs_per_day * active_days over many users ~= target.
  double total = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    UserProfile u = make_user(i, 5, 2000.0);
    total += u.obs_per_day * u.active_days();
  }
  EXPECT_NEAR(total / n, 2000.0, 300.0);
}

TEST(UserProfile, IntensityHeterogeneous) {
  RunningStats stats;
  for (int i = 0; i < 200; ++i) stats.add(make_user(i).obs_per_day);
  EXPECT_GT(stats.stddev() / stats.mean(), 0.4);  // strong spread
}

TEST(UserProfile, MixOfTechnologiesAndSharing) {
  int wifi = 0, shares = 0;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    UserProfile u = make_user(i);
    if (u.technology == net::Technology::kWifi) ++wifi;
    if (u.shares) ++shares;
  }
  EXPECT_GT(wifi, n / 3);
  EXPECT_LT(wifi, n);
  EXPECT_GT(shares, n / 2);
  EXPECT_LT(shares, n);
}

TEST(UserProfile, HomesSpreadOverCity) {
  RunningStats xs, ys;
  for (int i = 0; i < 200; ++i) {
    UserProfile u = make_user(i);
    xs.add(u.home_x_m);
    ys.add(u.home_y_m);
  }
  EXPECT_GT(xs.max() - xs.min(), 10'000);
  EXPECT_GT(ys.max() - ys.min(), 10'000);
}

TEST(UserPosition, DeterministicWithinHour) {
  UserProfile u = make_user(0);
  auto p1 = user_position(u, hours(10) + minutes(5));
  auto p2 = user_position(u, hours(10) + minutes(50));
  EXPECT_DOUBLE_EQ(p1.first, p2.first);
  EXPECT_DOUBLE_EQ(p1.second, p2.second);
  auto p3 = user_position(u, hours(11));
  EXPECT_TRUE(p3.first != p1.first || p3.second != p1.second);
}

TEST(UserPosition, StaysNearHomeMostly) {
  UserProfile u = make_user(0);
  int near = 0;
  const int n = 500;
  for (int h = 0; h < n; ++h) {
    auto [x, y] = user_position(u, hours(h));
    double d = std::hypot(x - u.home_x_m, y - u.home_y_m);
    if (d <= u.roam_radius_m * 1.01) ++near;
  }
  EXPECT_GT(near, n * 8 / 10);  // ~95% within radius (5% long trips)
}

TEST(UserProfile, JourneyLengthPositive) {
  for (int i = 0; i < 50; ++i) EXPECT_GE(make_user(i).journey_length, 5);
}

}  // namespace
}  // namespace mps::crowd
