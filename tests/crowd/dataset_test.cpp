#include "crowd/dataset.h"

#include <map>

#include <gtest/gtest.h>

namespace mps::crowd {
namespace {

Population small_population(std::uint64_t seed = 1, double obs_scale = 0.002) {
  PopulationConfig config;
  config.seed = seed;
  config.device_scale = 0.01;  // ~20 users
  config.obs_scale = obs_scale;
  config.horizon = days(305);
  return Population::generate(config);
}

TEST(Dataset, GeneratesObservations) {
  Population pop = small_population();
  DatasetGenerator gen(pop);
  std::uint64_t n = 0;
  std::uint64_t returned = gen.generate([&](const phone::Observation&) { ++n; });
  EXPECT_EQ(n, returned);
  EXPECT_GT(n, 100u);
}

TEST(Dataset, Deterministic) {
  Population pop = small_population();
  DatasetGenerator gen(pop);
  std::vector<double> run1, run2;
  gen.generate([&](const phone::Observation& o) { run1.push_back(o.spl_db); });
  gen.generate([&](const phone::Observation& o) { run2.push_back(o.spl_db); });
  EXPECT_EQ(run1, run2);
}

TEST(Dataset, ObservationsWithinUserWindows) {
  Population pop = small_population();
  DatasetGenerator gen(pop);
  std::map<std::string, const UserProfile*> by_id;
  for (const UserProfile& u : pop.users()) by_id[u.id] = &u;
  gen.generate([&](const phone::Observation& o) {
    const UserProfile* u = by_id.at(o.user);
    EXPECT_GE(o.captured_at, u->active_from);
    EXPECT_LT(o.captured_at, u->active_until);
  });
}

TEST(Dataset, PerUserChronologicalOrder) {
  Population pop = small_population();
  DatasetGenerator gen(pop);
  std::map<std::string, TimeMs> last;
  gen.generate([&](const phone::Observation& o) {
    auto it = last.find(o.user);
    if (it != last.end()) {
      EXPECT_GE(o.captured_at, it->second);
    }
    last[o.user] = o.captured_at;
  });
}

TEST(Dataset, NoJourneysBeforeRelease) {
  Population pop = small_population(2, 0.005);
  DatasetConfig config;
  config.journey_release = days(275);
  DatasetGenerator gen(pop, config);
  gen.generate([&](const phone::Observation& o) {
    if (o.mode == phone::SensingMode::kJourney) {
      EXPECT_GE(o.captured_at, days(275));
    }
  });
}

TEST(Dataset, OpportunisticDominates) {
  Population pop = small_population(3, 0.01);
  DatasetGenerator gen(pop);
  std::map<phone::SensingMode, std::uint64_t> by_mode;
  gen.generate([&](const phone::Observation& o) { ++by_mode[o.mode]; });
  EXPECT_GT(by_mode[phone::SensingMode::kOpportunistic],
            by_mode[phone::SensingMode::kManual]);
}

TEST(Dataset, VolumeTracksExpectation) {
  Population pop = small_population(4, 0.01);
  DatasetGenerator gen(pop);
  std::uint64_t n = gen.generate([](const phone::Observation&) {});
  double expected = pop.expected_observations();
  // Poisson thinning + manual/journey extras: within a factor ~2.
  EXPECT_GT(static_cast<double>(n), expected * 0.5);
  EXPECT_LT(static_cast<double>(n), expected * 2.5);
}

TEST(Dataset, ModelsTaggedCorrectly) {
  Population pop = small_population();
  DatasetGenerator gen(pop);
  gen.generate([&](const phone::Observation& o) {
    EXPECT_NE(phone::find_model(o.model), nullptr);
    EXPECT_NE(o.user.find(o.model), std::string::npos)
        << "user id embeds model name";
  });
}

TEST(Dataset, GenerateSingleUser) {
  Population pop = small_population();
  DatasetGenerator gen(pop);
  const UserProfile& u = pop.users().front();
  std::uint64_t n = gen.generate_user(u, [&](const phone::Observation& o) {
    EXPECT_EQ(o.user, u.id);
  });
  // A user with a multi-day window at these scales yields some data;
  // zero is possible only for near-empty windows.
  (void)n;
}

TEST(Dataset, LocalizedShareNearModelFractions) {
  Population pop = small_population(5, 0.02);
  DatasetGenerator gen(pop);
  std::uint64_t localized = 0, total = 0;
  gen.generate([&](const phone::Observation& o) {
    ++total;
    if (o.location.has_value()) ++localized;
  });
  ASSERT_GT(total, 500u);
  double share = static_cast<double>(localized) / static_cast<double>(total);
  // Paper: ~41% overall; manual/journey raise it slightly.
  EXPECT_GT(share, 0.3);
  EXPECT_LT(share, 0.6);
}

}  // namespace
}  // namespace mps::crowd
