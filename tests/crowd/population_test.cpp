#include "crowd/population.h"

#include <map>

#include <gtest/gtest.h>

namespace mps::crowd {
namespace {

TEST(Population, FullScaleMatchesPaperDeviceCounts) {
  PopulationConfig config;
  config.device_scale = 1.0;
  config.obs_scale = 0.01;
  Population pop = Population::generate(config);
  EXPECT_EQ(pop.users().size(), 2091u);
  EXPECT_EQ(pop.users_of_model("SAMSUNG GT-I9505").size(), 253u);
  EXPECT_EQ(pop.users_of_model("SONY D2303").size(), 40u);
}

TEST(Population, ScaledDownKeepsEveryModel) {
  PopulationConfig config;
  config.device_scale = 0.02;  // tiny
  Population pop = Population::generate(config);
  std::map<std::string, int> per_model;
  for (const UserProfile& u : pop.users()) ++per_model[u.model];
  EXPECT_EQ(per_model.size(), 20u);  // min 1 device per model
  for (const auto& [model, n] : per_model) EXPECT_GE(n, 1);
}

TEST(Population, Deterministic) {
  PopulationConfig config;
  config.device_scale = 0.05;
  Population a = Population::generate(config);
  Population b = Population::generate(config);
  ASSERT_EQ(a.users().size(), b.users().size());
  for (std::size_t i = 0; i < a.users().size(); ++i) {
    EXPECT_EQ(a.users()[i].id, b.users()[i].id);
    EXPECT_DOUBLE_EQ(a.users()[i].obs_per_day, b.users()[i].obs_per_day);
  }
}

TEST(Population, DifferentSeedsDifferentUsers) {
  PopulationConfig c1, c2;
  c1.device_scale = c2.device_scale = 0.05;
  c1.seed = 1;
  c2.seed = 2;
  Population a = Population::generate(c1);
  Population b = Population::generate(c2);
  ASSERT_EQ(a.users().size(), b.users().size());
  int same = 0;
  for (std::size_t i = 0; i < a.users().size(); ++i)
    if (a.users()[i].obs_per_day == b.users()[i].obs_per_day) ++same;
  EXPECT_LT(same, static_cast<int>(a.users().size() / 10));
}

TEST(Population, ExpectedObservationsScaleWithObsScale) {
  PopulationConfig lo, hi;
  lo.device_scale = hi.device_scale = 0.1;
  lo.obs_scale = 0.01;
  hi.obs_scale = 0.02;
  double e_lo = Population::generate(lo).expected_observations();
  double e_hi = Population::generate(hi).expected_observations();
  EXPECT_GT(e_lo, 0.0);
  EXPECT_NEAR(e_hi / e_lo, 2.0, 0.4);
}

TEST(Population, PerModelProportionsTrackPaper) {
  // With full device scale, the expected per-model observation totals
  // should be ordered like the paper's measurement counts.
  PopulationConfig config;
  config.device_scale = 1.0;
  config.obs_scale = 0.01;
  config.seed = 3;
  Population pop = Population::generate(config);
  std::map<std::string, double> expected;
  for (const UserProfile& u : pop.users())
    expected[u.model] += u.obs_per_day * u.active_days();
  // Highest-volume model (GT-I9505, 2.35M) should far exceed the lowest
  // (SONY D2303, 0.59M).
  EXPECT_GT(expected["SAMSUNG GT-I9505"], expected["SONY D2303"] * 1.8);
}

}  // namespace
}  // namespace mps::crowd
