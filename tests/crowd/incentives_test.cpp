#include "crowd/incentives.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::crowd {
namespace {

// --- Stackelberg -------------------------------------------------------

TEST(Stackelberg, RejectsInvalidInput) {
  EXPECT_THROW(stackelberg_equilibrium({1.0, -1.0}, 10.0),
               std::invalid_argument);
  EXPECT_THROW(stackelberg_equilibrium({1.0, 2.0}, 0.0), std::invalid_argument);
}

TEST(Stackelberg, FewerThanTwoUsersNoParticipation) {
  StackelbergOutcome outcome = stackelberg_equilibrium({1.0}, 10.0);
  EXPECT_TRUE(outcome.participants.empty());
  EXPECT_DOUBLE_EQ(outcome.total_time, 0.0);
}

TEST(Stackelberg, SymmetricUsersSplitEqually) {
  StackelbergOutcome outcome = stackelberg_equilibrium({1.0, 1.0, 1.0, 1.0}, 12.0);
  EXPECT_EQ(outcome.participants.size(), 4u);
  for (double t : outcome.times) EXPECT_NEAR(t, outcome.times[0], 1e-12);
  EXPECT_GT(outcome.times[0], 0.0);
}

TEST(Stackelberg, ExpensiveUserExcluded) {
  // Costs 1,1,1 and one outlier at 100: the outlier's best response is 0.
  StackelbergOutcome outcome =
      stackelberg_equilibrium({1.0, 1.0, 1.0, 100.0}, 10.0);
  EXPECT_EQ(outcome.participants.size(), 3u);
  EXPECT_DOUBLE_EQ(outcome.times[3], 0.0);
}

TEST(Stackelberg, CheaperUsersContributeMore) {
  // Note: {1, 2, 3} would sit exactly on the participation boundary
  // (c_3 = (1+2+3)/2), which the strict rule excludes.
  StackelbergOutcome outcome = stackelberg_equilibrium({1.0, 2.0, 2.5}, 10.0);
  ASSERT_EQ(outcome.participants.size(), 3u);
  EXPECT_GT(outcome.times[0], outcome.times[1]);
  EXPECT_GT(outcome.times[1], outcome.times[2]);
}

TEST(Stackelberg, TimesScaleWithReward) {
  StackelbergOutcome small = stackelberg_equilibrium({1.0, 2.0}, 5.0);
  StackelbergOutcome large = stackelberg_equilibrium({1.0, 2.0}, 10.0);
  EXPECT_NEAR(large.total_time / small.total_time, 2.0, 1e-9);
}

// Property: no unilateral deviation improves a participant's utility
// (Nash equilibrium), on random instances.
class StackelbergNashTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackelbergNashTest, NoProfitableDeviation) {
  Rng rng(GetParam());
  std::vector<double> costs;
  auto n = rng.uniform_int(2, 8);
  for (int i = 0; i < n; ++i) costs.push_back(rng.uniform(0.5, 5.0));
  double reward = rng.uniform(1.0, 50.0);
  StackelbergOutcome outcome = stackelberg_equilibrium(costs, reward);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    double at_equilibrium = stackelberg_utility(costs, reward, outcome.times,
                                                i, outcome.times[i]);
    EXPECT_GE(at_equilibrium, -1e-9);  // individual rationality
    for (double factor : {0.0, 0.5, 0.9, 1.1, 2.0}) {
      double deviation = outcome.times[i] * factor + (outcome.times[i] == 0.0 ? factor : 0.0);
      double deviated =
          stackelberg_utility(costs, reward, outcome.times, i, deviation);
      EXPECT_LE(deviated, at_equilibrium + 1e-6)
          << "user " << i << " gains by playing " << deviation;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackelbergNashTest,
                         ::testing::Values(1, 2, 3, 4, 5, 10, 20));

// --- Reverse auction ----------------------------------------------------

std::vector<double> unit_items(std::size_t n, double value = 1.0) {
  return std::vector<double>(n, value);
}

TEST(ReverseAuction, EmptyInputs) {
  AuctionResult result = reverse_auction({}, unit_items(3));
  EXPECT_TRUE(result.winners.empty());
  EXPECT_DOUBLE_EQ(result.total_value, 0.0);
}

TEST(ReverseAuction, SelectsProfitableBidders) {
  std::vector<Bidder> bidders{
      {"cheap", 0.5, {0, 1}},     // marginal 2, surplus 1.5
      {"pricey", 5.0, {2}},       // marginal 1, surplus -4 -> out
  };
  AuctionResult result = reverse_auction(bidders, unit_items(3));
  ASSERT_EQ(result.winners.size(), 1u);
  EXPECT_EQ(result.winners[0], "cheap");
  EXPECT_DOUBLE_EQ(result.total_value, 2.0);
}

TEST(ReverseAuction, OverlappingCoverageCountedOnce) {
  std::vector<Bidder> bidders{
      {"a", 0.1, {0, 1}},
      {"b", 0.1, {1, 2}},  // item 1 already covered after a
  };
  AuctionResult result = reverse_auction(bidders, unit_items(3));
  EXPECT_EQ(result.winners.size(), 2u);
  EXPECT_DOUBLE_EQ(result.total_value, 3.0);
}

TEST(ReverseAuction, PaymentsAtLeastBids) {
  // Individual rationality for truthful bidders.
  Rng rng(3);
  std::vector<Bidder> bidders;
  for (int i = 0; i < 8; ++i) {
    Bidder b;
    b.id = "u" + std::to_string(i);
    b.bid = rng.uniform(0.1, 2.0);
    for (int k = 0; k < 4; ++k)
      b.items.push_back(static_cast<std::size_t>(rng.uniform_int(0, 11)));
    bidders.push_back(b);
  }
  AuctionResult result = reverse_auction(bidders, unit_items(12));
  for (const std::string& winner : result.winners) {
    double bid = 0.0;
    for (const Bidder& b : bidders)
      if (b.id == winner) bid = b.bid;
    EXPECT_GE(result.payments.at(winner), bid - 1e-9) << winner;
  }
}

TEST(ReverseAuction, DuplicateItemsWithinBidCountedOnce) {
  std::vector<Bidder> bidders{{"a", 0.1, {0, 0, 0}}};
  AuctionResult result = reverse_auction(bidders, unit_items(1));
  EXPECT_DOUBLE_EQ(result.total_value, 1.0);
}

TEST(ReverseAuction, OutOfRangeItemsIgnored) {
  std::vector<Bidder> bidders{{"a", 0.1, {0, 99}}};
  AuctionResult result = reverse_auction(bidders, unit_items(1));
  EXPECT_DOUBLE_EQ(result.total_value, 1.0);
}

// Property: truthfulness — misreporting the bid never increases utility
// (payment - true cost), spot-checked on random instances.
class AuctionTruthfulnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AuctionTruthfulnessTest, MisreportingDoesNotPay) {
  Rng rng(GetParam());
  std::vector<Bidder> bidders;
  auto n = rng.uniform_int(3, 7);
  for (int i = 0; i < n; ++i) {
    Bidder b;
    b.id = "u" + std::to_string(i);
    b.bid = rng.uniform(0.2, 2.5);  // true cost
    auto items = rng.uniform_int(1, 4);
    for (int k = 0; k < items; ++k)
      b.items.push_back(static_cast<std::size_t>(rng.uniform_int(0, 9)));
    bidders.push_back(b);
  }
  std::vector<double> values = unit_items(10, 1.5);

  auto utility = [&](std::size_t i, const AuctionResult& result) {
    auto it = result.payments.find(bidders[i].id);
    if (it == result.payments.end()) return 0.0;  // lost: zero utility
    return it->second - bidders[i].bid;            // payment - true cost
  };

  AuctionResult truthful = reverse_auction(bidders, values);
  for (std::size_t i = 0; i < bidders.size(); ++i) {
    double honest = utility(i, truthful);
    EXPECT_GE(honest, -1e-9);  // individual rationality
    for (double factor : {0.3, 0.7, 1.3, 2.0}) {
      std::vector<Bidder> lying = bidders;
      lying[i].bid = bidders[i].bid * factor;
      AuctionResult result = reverse_auction(lying, values);
      // Utility still measured against the true cost.
      double deviated = 0.0;
      auto it = result.payments.find(bidders[i].id);
      if (it != result.payments.end()) deviated = it->second - bidders[i].bid;
      EXPECT_LE(deviated, honest + 1e-6)
          << "bidder " << i << " gains by bidding x" << factor;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuctionTruthfulnessTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace mps::crowd
