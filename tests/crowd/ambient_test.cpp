#include "crowd/ambient.h"

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/stats.h"

namespace mps::crowd {
namespace {

TEST(AmbientModel, ActiveProbabilityDiurnal) {
  AmbientModel model;
  EXPECT_LT(model.p_active(hours(4)), model.p_active(hours(16)));
  EXPECT_NEAR(model.p_active(hours(4)), model.params().p_active_night, 0.02);
  EXPECT_NEAR(model.p_active(hours(16)), model.params().p_active_day, 0.02);
}

TEST(AmbientModel, ProbabilityBounded) {
  AmbientModel model;
  for (int h = 0; h < 24; ++h) {
    double p = model.p_active(hours(h));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(AmbientModel, BimodalDistribution) {
  // Daytime samples form the quiet peak plus the active bump of Fig 14.
  AmbientModel model;
  Rng rng(1);
  Histogram h(0.0, 100.0, 50);
  for (int i = 0; i < 50000; ++i) h.add(model.sample(hours(14), rng));
  // Quiet component around 24 dB dominates.
  std::size_t mode = h.mode_bin();
  EXPECT_NEAR(h.bin_mid(mode), 24.0, 6.0);
  // Active bump: meaningful mass in [55, 80].
  double active_mass = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i)
    if (h.bin_mid(i) >= 55.0 && h.bin_mid(i) <= 80.0) active_mass += h.share(i);
  EXPECT_GT(active_mass, 20.0);
  EXPECT_LT(active_mass, 45.0);
}

TEST(AmbientModel, NightQuieterThanDay) {
  AmbientModel model;
  Rng rng1(2), rng2(2);
  RunningStats night, day;
  for (int i = 0; i < 20000; ++i) {
    night.add(model.sample(hours(3), rng1));
    day.add(model.sample(hours(15), rng2));
  }
  EXPECT_LT(night.mean(), day.mean() - 5.0);
}

TEST(AmbientModel, CustomParams) {
  AmbientParams params;
  params.p_active_day = 0.0;
  params.p_active_night = 0.0;
  params.quiet_mean_db = 30.0;
  AmbientModel model(params);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 10000; ++i) stats.add(model.sample(hours(12), rng));
  EXPECT_NEAR(stats.mean(), 30.0, 0.3);
}

}  // namespace
}  // namespace mps::crowd
