// Shard redirects at the socket edge (ISSUE satellite: exactly-once
// across a redirect). The hard case: a publish is processed on shard A
// but the ack is lost, the client's slot is then rebalanced to shard B,
// and the client's retry of the SAME batch is redirected and re-sent to
// B. Because the dedup keys migrated with the slot, B recognises the
// batch id and the observation count stays exactly-once — one stored
// copy across the whole fleet, not zero and not two.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "core/goflow_server.h"
#include "docstore/database.h"
#include "ingest/obs_batch.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "sim/simulation.h"

namespace mps::net {
namespace {

/// One shard's serving stack: broker + docstore + GoFlow server behind a
/// socket front door. Registration runs the same deterministic sequence
/// on every shard, so tokens and exchange names agree fleet-wide.
struct Shard {
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server;
  NetServer net_server;
  std::string exchange;

  explicit Shard(sim::Simulation& sim)
      : server(sim, broker, db), net_server(sim, broker) {
    net_server.start().throw_if_error();
    auto reg = server.register_app("soundcity").value_or_throw();
    std::string token =
        server
            .register_account(reg.admin_token, "soundcity", "u1",
                              core::Role::kClient)
            .value_or_throw();
    exchange = server.login_client(token, "soundcity", "c1")
                   .value_or_throw()
                   .exchange;
  }

  std::size_t stored() {
    return db.has_collection("observations")
               ? db.collection("observations").size()
               : 0;
  }
};

struct Harness {
  sim::Simulation sim;
  Shard a{sim};
  Shard b{sim};
  std::unique_ptr<NetClient> client;
  ingest::BatchPool pool;

  Harness() {
    // Same registration sequence on both shards -> same exchange name;
    // the client's route can change shards without re-login.
    EXPECT_EQ(a.exchange, b.exchange);
    NetClientConfig cc;
    cc.port = a.net_server.port();
    cc.client_id = "c1";
    client = std::make_unique<NetClient>(sim, std::move(cc));
    // Co-simulation: the client pumps every front door it could ever be
    // redirected to.
    client->set_pump([this] {
      a.net_server.pump();
      b.net_server.pump();
    });
  }

  std::shared_ptr<const ingest::ObsBatch> make_batch(int counter) {
    std::vector<phone::Observation> observations;
    for (int i = 0; i < 4; ++i) {
      phone::Observation obs;
      obs.user = "u1";
      obs.model = "m1";
      obs.captured_at = minutes(counter * 10 + i);
      obs.spl_db = 48.0 + i;
      observations.push_back(obs);
    }
    return pool.make_batch("soundcity", "c1", "c1#" + std::to_string(counter),
                           minutes(counter * 10), observations);
  }

  Result<broker::PublishResult> publish(int counter, TimeMs now) {
    return client->publish_flat(a.exchange, "soundcity.obs.c1",
                                make_batch(counter), now);
  }

  /// The control plane's slot move, shrunk to one client: extract c1's
  /// state from A, adopt it on B, and point A's front door at B.
  void migrate_c1_to_b() {
    Value migration = a.server.extract_migration(
        [](std::string_view client) { return client == "c1"; });
    b.server.adopt_migration(migration);
    a.net_server.set_redirect_fn(
        [this](std::string_view client) -> std::optional<wire::RedirectMsg> {
          if (client != "c1") return std::nullopt;
          wire::RedirectMsg r;
          r.shard = 1;
          r.port = b.net_server.port();
          r.reason = "rebalanced";
          return r;
        });
  }
};

TEST(Redirect, LostAckThenRebalanceStaysExactlyOnce) {
  Harness h;

  // Two lost acks: the batch is processed (and stored) on A, but the
  // client never hears it — neither on the first send nor on its retry.
  h.a.net_server.fail_next_ack(2);
  EXPECT_FALSE(h.publish(1, minutes(11)).ok());
  EXPECT_TRUE(h.client->has_pending());
  EXPECT_FALSE(h.publish(1, minutes(12)).ok());
  EXPECT_TRUE(h.client->has_pending());
  EXPECT_EQ(h.a.stored(), 4u);
  EXPECT_EQ(h.a.server.duplicate_batches(), 1u);  // the retry deduped on A

  // The slot moves to B — documents AND dedup keys — and A's front door
  // starts redirecting c1.
  h.migrate_c1_to_b();
  EXPECT_EQ(h.a.stored(), 0u);
  EXPECT_EQ(h.b.stored(), 4u);

  // The client's next retry of the same batch: redirected, re-sent to B,
  // absorbed by the migrated batch id. Exactly one stored copy fleet-wide.
  auto result = h.publish(1, minutes(13));
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_FALSE(h.client->has_pending());
  EXPECT_EQ(h.client->stats().redirects, 1u);
  EXPECT_EQ(h.a.net_server.stats().redirects_issued, 1u);
  EXPECT_EQ(h.b.server.duplicate_batches(), 1u);
  EXPECT_EQ(h.a.stored() + h.b.stored(), 4u);

  // The client now talks to B directly: fresh batches land there with no
  // further redirect.
  ASSERT_TRUE(h.publish(2, minutes(21)).ok());
  EXPECT_EQ(h.client->config().port, h.b.net_server.port());
  EXPECT_EQ(h.client->stats().redirects, 1u);
  EXPECT_EQ(h.b.stored(), 8u);
  EXPECT_EQ(h.a.stored(), 0u);
}

TEST(Redirect, CleanRedirectDeliversToNewOwnerOnly) {
  Harness h;
  ASSERT_TRUE(h.publish(1, minutes(11)).ok());
  EXPECT_EQ(h.a.stored(), 4u);

  h.migrate_c1_to_b();
  ASSERT_TRUE(h.publish(2, minutes(21)).ok());
  EXPECT_EQ(h.client->stats().redirects, 1u);
  EXPECT_EQ(h.a.stored(), 0u);
  EXPECT_EQ(h.b.stored(), 8u);
  EXPECT_EQ(h.b.server.duplicate_batches(), 0u);
}

TEST(Redirect, OtherClientsAreNotRedirected) {
  Harness h;
  h.migrate_c1_to_b();
  // A publish whose batch carries a different client id sails through A.
  std::vector<phone::Observation> observations(1);
  observations[0].user = "u1";
  observations[0].captured_at = minutes(5);
  auto batch =
      h.pool.make_batch("soundcity", "c2", "c2#1", minutes(5), observations);
  ASSERT_TRUE(
      h.client->publish_flat(h.a.exchange, "soundcity.obs.c2", batch,
                             minutes(6))
          .ok());
  EXPECT_EQ(h.client->stats().redirects, 0u);
  EXPECT_EQ(h.a.stored(), 1u);
}

TEST(Redirect, CyclicRedirectsSurfaceAsErrorNotInfiniteChase) {
  Harness h;
  auto bounce = [](std::uint16_t port) {
    return [port](std::string_view) -> std::optional<wire::RedirectMsg> {
      wire::RedirectMsg r;
      r.shard = 0;
      r.port = port;
      r.reason = "thrash";
      return r;
    };
  };
  h.a.net_server.set_redirect_fn(bounce(h.b.net_server.port()));
  h.b.net_server.set_redirect_fn(bounce(h.a.net_server.port()));

  auto result = h.publish(1, minutes(11));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
  // Bounded chase: the hop budget, not the spin limit, ended it.
  EXPECT_EQ(h.client->stats().redirects, 3u);
  // The outbox survives — once the map settles the batch can still ship.
  EXPECT_TRUE(h.client->has_pending());
  h.a.net_server.set_redirect_fn({});
  h.b.net_server.set_redirect_fn({});
  ASSERT_TRUE(h.publish(1, minutes(12)).ok());
  EXPECT_EQ(h.a.stored() + h.b.stored(), 4u);
}

// Regression: kSeriesReply was missing from the client's is_response
// filter, so query_series() skipped its own answer and spun into a
// timeout. A server with no TimeSeries attached must answer an empty
// series, not an error.
TEST(Redirect, QuerySeriesRoundTripsInsteadOfTimingOut) {
  Harness h;
  auto series = h.client->query_series(0);
  ASSERT_TRUE(series.ok()) << series.error().message;
  EXPECT_EQ(series.value(), "");
  EXPECT_EQ(h.client->stats().timeouts, 0u);
}

}  // namespace
}  // namespace mps::net
