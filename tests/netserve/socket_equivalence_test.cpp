// Wire-vs-in-process equivalence (ISSUE satellite 2): a whole small
// fleet study closed over real loopback sockets must leave the
// middleware in byte-identical observable state to the in-process
// hand-off — stored documents, dedup sets, study report figures, span
// invariants — under chaos. Socket mode is co-simulated (a NetClient
// round trip completes synchronously inside one sim event, and server
// churn closes the socket listener in the same sim event that crashes
// the lifecycle), so every event-ordering tie-break is identical and
// the comparison can demand byte equality, not statistical similarity.
//
// Profiles swept: lossy-network (publish rejections, lost confirms,
// transient store faults racing the socket retry path) and server-kill
// (the middleware host dying and recovering mid-study, taking the
// socket listener down with it). 8 seeds per profile on the sweep
// executor. server-kill-lossy is deliberately NOT swept here: its
// kill placement is rate-driven per site-stream, which socket mode
// preserves, but the sweep budget belongs to the two profiles the
// ISSUE names.
//
// When MPS_FAULT_REPORT_DIR is set (CI chaos job), a per-seed JSONL
// report is written there for artifact upload.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/recovery.h"
#include "docstore/database.h"
#include "durable/storage.h"
#include "exec/executor.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "net/net_server.h"
#include "obs/flight_recorder.h"
#include "study/invariants.h"
#include "study/study.h"

namespace mps::study {
namespace {

constexpr std::uint64_t kSeeds = 8;

const std::vector<std::string>& chaos_profiles() {
  static const std::vector<std::string> profiles = {"lossy-network",
                                                    "server-kill"};
  return profiles;
}

std::string collection_json(docstore::Database& db) {
  Array docs;
  db.collection("observations")
      .for_each([&docs](const Value& doc) { docs.push_back(doc); });
  return Value(std::move(docs)).to_json();
}

std::string ordered_keys_json(const BoundedKeySet& set) {
  Array keys;
  for (const std::string& k : set.ordered()) keys.push_back(Value(k));
  return Value(std::move(keys)).to_json();
}

/// Everything downstream code can observe about a fleet run.
struct FleetOutcome {
  std::string docs_json;        ///< observations collection, insert order
  std::string dedup_keys_json;  ///< per-obs dedup set in eviction order
  std::string batch_ids_json;   ///< batch-id dedup set in eviction order
  StudyReport report;
  InvariantReport invariants;
  std::uint64_t net_publishes = 0;  ///< frames the socket server dispatched
  std::uint64_t net_accepted = 0;
};

/// One fleet study; `socket_mode` is the ONLY variable — same population,
/// same chaos plan, same seeds everywhere else.
FleetOutcome run_fleet(bool socket_mode, const std::string& profile,
                       std::uint64_t seed) {
  obs::FlightRecorder::instance().set_thread_scope(
      std::string(socket_mode ? "socket" : "inproc") + "/" + profile +
      "/seed=" + std::to_string(seed));
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server(sim, broker, db);
  obs::Registry registry;
  obs::SpanTracker tracer(&registry);
  server.set_metrics(&registry);
  server.set_tracer(&tracer);

  bool kills = profile == "server-kill";
  durable::MemStorageEnv env;
  std::optional<core::ServerLifecycle> lifecycle;
  if (kills)
    lifecycle.emplace(env, sim, broker, db, server, durable::JournalConfig{},
                      &registry);

  fault::FaultPlan plan = fault::FaultPlan::profile(profile, seed);

  crowd::PopulationConfig pc;
  pc.seed = seed;
  pc.device_scale = 0.004;  // a small fleet (min 1 device per model)
  pc.obs_scale = 0.03;
  pc.horizon = days(3);
  crowd::Population pop = crowd::Population::generate(pc);

  net::NetServer net_server(sim, broker);

  StudyConfig sc;
  sc.seed = seed;
  sc.duration_days = 1;
  sc.metrics = &registry;
  sc.tracer = &tracer;
  sc.faults = &plan;
  if (kills) {
    sc.lifecycle = &*lifecycle;
    sc.snapshot_period = hours(6);
  }
  sc.drain = hours(1);
  if (socket_mode) sc.net_server = &net_server;

  StudyRunner runner(pop, sc, sim, broker, server);
  FleetOutcome out;
  out.report = runner.run();
  out.invariants = check_invariants(tracer, server, runner.clients());
  std::string forensics = dump_forensics(
      out.invariants, std::string(socket_mode ? "socket_" : "inproc_") +
                          profile + "_seed" + std::to_string(seed));
  if (!forensics.empty())
    std::fprintf(stderr, "invariant violation: flight recorder dumped to %s\n",
                 forensics.c_str());
  out.docs_json = collection_json(db);
  out.dedup_keys_json = ordered_keys_json(server.seen_obs_keys());
  out.batch_ids_json = ordered_keys_json(server.seen_batch_ids());
  out.net_publishes = net_server.stats().publishes;
  out.net_accepted = net_server.stats().accepted;
  return out;
}

void expect_identical(const FleetOutcome& wire, const FleetOutcome& oracle) {
  // MPS_EQ_DUMP=<dir>: write both document dumps on divergence so a
  // failing profile/seed can be diffed offline instead of eyeballing a
  // megabyte of inline gtest output.
  if (const char* dir = std::getenv("MPS_EQ_DUMP");
      dir != nullptr && wire.docs_json != oracle.docs_json) {
    static std::atomic<int> n{0};
    int id = n.fetch_add(1);
    std::ofstream(std::string(dir) + "/wire_" + std::to_string(id) + ".json")
        << wire.docs_json;
    std::ofstream(std::string(dir) + "/oracle_" + std::to_string(id) + ".json")
        << oracle.docs_json;
  }
  EXPECT_EQ(wire.docs_json, oracle.docs_json);
  EXPECT_EQ(wire.dedup_keys_json, oracle.dedup_keys_json);
  EXPECT_EQ(wire.batch_ids_json, oracle.batch_ids_json);
  EXPECT_EQ(wire.report.observations_recorded,
            oracle.report.observations_recorded);
  EXPECT_EQ(wire.report.observations_stored, oracle.report.observations_stored);
  EXPECT_EQ(wire.report.uploads, oracle.report.uploads);
  EXPECT_EQ(wire.report.deferred_uploads, oracle.report.deferred_uploads);
  EXPECT_EQ(wire.report.buffered_unsent, oracle.report.buffered_unsent);
  EXPECT_EQ(wire.report.in_flight_unsent, oracle.report.in_flight_unsent);
  EXPECT_EQ(wire.report.publish_failures, oracle.report.publish_failures);
  EXPECT_EQ(wire.report.upload_retries, oracle.report.upload_retries);
  EXPECT_EQ(wire.report.retry_giveups, oracle.report.retry_giveups);
  EXPECT_EQ(wire.report.duplicate_observations,
            oracle.report.duplicate_observations);
  EXPECT_EQ(wire.report.faults_injected, oracle.report.faults_injected);
  EXPECT_EQ(wire.report.server_kills, oracle.report.server_kills);
  EXPECT_EQ(wire.report.server_recoveries, oracle.report.server_recoveries);
  EXPECT_DOUBLE_EQ(wire.report.mean_delay_ms, oracle.report.mean_delay_ms);
  // Span accounting must agree bucket for bucket, not just pass.
  EXPECT_EQ(wire.invariants.to_json(), oracle.invariants.to_json());
}

std::size_t sweep_threads() {
  return exec::resolve_threads("MPS_TEST_THREADS", /*cap=*/8);
}

TEST(SocketEquivalence, CleanFleetStudyClosesByteIdenticalOverLoopback) {
  auto run_clean = [](bool socket_mode) {
    sim::Simulation sim;
    broker::Broker broker;
    docstore::Database db;
    core::GoFlowServer server(sim, broker, db);
    obs::Registry registry;
    obs::SpanTracker tracer(&registry);
    server.set_metrics(&registry);
    server.set_tracer(&tracer);

    crowd::PopulationConfig pc;
    pc.seed = 9;
    pc.device_scale = 0.004;
    pc.obs_scale = 0.02;
    pc.horizon = days(2);
    crowd::Population pop = crowd::Population::generate(pc);

    net::NetServer net_server(sim, broker);
    StudyConfig sc;
    sc.seed = 9;
    sc.duration_days = 1;
    sc.metrics = &registry;
    sc.tracer = &tracer;
    if (socket_mode) sc.net_server = &net_server;
    StudyRunner runner(pop, sc, sim, broker, server);
    FleetOutcome out;
    out.report = runner.run();
    out.invariants = check_invariants(tracer, server, runner.clients());
    out.docs_json = collection_json(db);
    out.dedup_keys_json = ordered_keys_json(server.seen_obs_keys());
    out.batch_ids_json = ordered_keys_json(server.seen_batch_ids());
    out.net_publishes = net_server.stats().publishes;
    return out;
  };

  FleetOutcome wire = run_clean(true);
  FleetOutcome oracle = run_clean(false);
  ASSERT_GT(wire.report.observations_stored, 0u);
  // The wire run really went over sockets; the oracle never touched them.
  EXPECT_GT(wire.net_publishes, 0u);
  EXPECT_EQ(oracle.net_publishes, 0u);
  expect_identical(wire, oracle);
}

TEST(SocketEquivalence, ChaosProfilesStayIdenticalAcrossSeeds) {
  const char* report_dir = std::getenv("MPS_FAULT_REPORT_DIR");
  std::ofstream report_out;
  if (report_dir != nullptr) {
    report_out.open(std::string(report_dir) + "/socket_equivalence.jsonl");
    ASSERT_TRUE(report_out.is_open())
        << "cannot write to MPS_FAULT_REPORT_DIR=" << report_dir;
  }

  const std::vector<std::string>& profiles = chaos_profiles();
  struct Job {
    std::string profile;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const std::string& profile : profiles)
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
      jobs.push_back({profile, seed});

  struct Pair {
    FleetOutcome wire;
    FleetOutcome oracle;
  };
  std::vector<Pair> outcomes(jobs.size());
  exec::SweepExecutor sweep(sweep_threads());
  sweep.run(jobs.size(), [&](std::size_t i) {
    outcomes[i].wire = run_fleet(true, jobs[i].profile, jobs[i].seed);
    outcomes[i].oracle = run_fleet(false, jobs[i].profile, jobs[i].seed);
  });

  // Assert (and report) on the main thread, in deterministic job order.
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const std::string& profile = profiles[p];
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Pair& pair = outcomes[p * kSeeds + (seed - 1)];
      SCOPED_TRACE("profile=" + profile + " seed=" + std::to_string(seed));
      expect_identical(pair.wire, pair.oracle);
      // Both runs did real work, over the transport they claim.
      EXPECT_GT(pair.wire.report.observations_recorded, 0u);
      EXPECT_GT(pair.wire.net_publishes, 0u);
      EXPECT_EQ(pair.oracle.net_publishes, 0u);
      // The span invariants hold in socket mode on their own terms, not
      // just relative to the oracle.
      EXPECT_EQ(pair.wire.invariants.lost, 0u);
      EXPECT_EQ(pair.wire.invariants.duplicate_spans_stored, 0u);
      EXPECT_EQ(pair.wire.invariants.order_violations, 0u);
      EXPECT_TRUE(pair.wire.invariants.ok());
      if (profile == "server-kill") {
        EXPECT_GT(pair.wire.report.server_kills, 0u);
        EXPECT_EQ(pair.wire.report.server_recoveries,
                  pair.wire.report.server_kills);
      }
      if (report_out.is_open()) {
        report_out << "{\"profile\":\"" << profile << "\",\"seed\":" << seed
                   << ",\"docs_identical\":"
                   << (pair.wire.docs_json == pair.oracle.docs_json ? "true"
                                                                    : "false")
                   << ",\"net_publishes\":" << pair.wire.net_publishes
                   << ",\"net_accepted\":" << pair.wire.net_accepted
                   << ",\"server_kills\":" << pair.wire.report.server_kills
                   << ",\"publish_failures\":"
                   << pair.wire.report.publish_failures
                   << ",\"invariants\":" << pair.wire.invariants.to_json()
                   << "}\n";
      }
    }
  }
}

TEST(SocketEquivalence, SocketModeIsDeterministicPerSeed) {
  FleetOutcome a = run_fleet(true, "server-kill", 5);
  FleetOutcome b = run_fleet(true, "server-kill", 5);
  EXPECT_EQ(a.docs_json, b.docs_json);
  EXPECT_EQ(a.dedup_keys_json, b.dedup_keys_json);
  EXPECT_EQ(a.report.observations_stored, b.report.observations_stored);
  EXPECT_EQ(a.report.server_kills, b.report.server_kills);
  EXPECT_EQ(a.net_publishes, b.net_publishes);
  EXPECT_EQ(a.invariants.to_json(), b.invariants.to_json());
}

}  // namespace
}  // namespace mps::study
