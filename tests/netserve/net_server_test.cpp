// NetServer event-loop tests: partial-I/O torture (ISSUE satellite 3)
// plus the server-side protocol rules — reassembly across arbitrary
// chunk boundaries, mid-frame disconnects that must never corrupt server
// state, poisoned connections, idle sweeps, bounded accept, Hello
// enforcement, fault injection and crash/recover on the same port.
//
// The tests drive the server with a raw test socket (not NetClient), so
// every byte boundary is under test control: 1-byte trickles, randomized
// chunks, frames split across sends and coalesced into one.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/rng.h"
#include "ingest/obs_batch.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "sim/simulation.h"

namespace mps::net {
namespace {

/// A raw loopback socket under full byte-level test control.
class RawConn {
 public:
  ~RawConn() { close_now(); }

  bool connect_to(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    // Blocking connect: the kernel completes the handshake out of the
    // listener's backlog even before the server accepts.
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      close_now();
      return false;
    }
    int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    // Nagle would hold every small chunk after the first until the server
    // ACKs, and the server's delayed-ACK timer is wall-clock — under a
    // simulated clock that stall never resolves. The tests need each
    // chunk on the wire immediately.
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  /// Sends `bytes` in chunks of `chunk` bytes, pumping the server after
  /// every chunk — the reassembly torture.
  void send_chunked(NetServer& server, std::string_view bytes,
                    std::size_t chunk) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      std::size_t n = std::min(chunk, bytes.size() - off);
      ssize_t sent = ::send(fd_, bytes.data() + off, n, MSG_NOSIGNAL);
      if (sent > 0) off += static_cast<std::size_t>(sent);
      // EPIPE/reset: the server closed us (e.g. mid-stream poison) —
      // stop sending into the void.
      if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
          errno != EINTR) {
        server.pump();
        return;
      }
      server.pump();
    }
  }

  /// Pumps the server and reads until one whole frame decodes (or
  /// `spins` pumps pass without one).
  bool read_frame(NetServer& server, wire::Frame& frame, std::string& storage,
                  int spins = 256) {
    for (int i = 0; i < spins; ++i) {
      server.pump();
      char chunk[4096];
      for (;;) {
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        rbuf_.append(chunk, static_cast<std::size_t>(n));
      }
      storage = rbuf_.substr(rhead_);
      wire::Frame f;
      if (wire::decode_frame(storage, 0, f) == wire::DecodeResult::kOk) {
        rhead_ += f.end_offset;
        frame = f;
        frame.body = std::string_view(storage).substr(
            wire::kFrameHeaderBytes + wire::kFramePreludeBytes,
            f.body.size());
        return true;
      }
    }
    return false;
  }

  /// True when the server has closed its end (recv sees EOF/reset).
  bool closed_by_server(NetServer& server, int spins = 64) {
    for (int i = 0; i < spins; ++i) {
      server.pump();
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) return true;
      if (n > 0) rbuf_.append(chunk, static_cast<std::size_t>(n));
    }
    return false;
  }

  void close_now() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string rbuf_;
  std::size_t rhead_ = 0;
};

/// Minimal serving stack: topic exchange + one bound queue, like the
/// GoFlow server's ingest topology.
struct Stack {
  sim::Simulation sim;
  broker::Broker broker;
  NetServer server;

  explicit Stack(NetServerConfig config = {})
      : server(sim, broker, std::move(config)) {
    broker.declare_exchange("goflow", broker::ExchangeType::kTopic)
        .throw_if_error();
    broker.declare_queue("ingest").throw_if_error();
    broker.bind_queue("goflow", "ingest", "soundcity.obs.*").throw_if_error();
    server.start().throw_if_error();
  }
};

std::string hello_frame(std::uint64_t request_id) {
  wire::HelloMsg hello;
  hello.client_id = "raw-test";
  std::string body, frame;
  wire::encode_hello(hello, body);
  wire::encode_frame(wire::MsgType::kHello, request_id, body, frame);
  return frame;
}

std::string flat_publish_frame(std::uint64_t request_id,
                               const std::string& batch_id, int rows = 3) {
  std::vector<phone::Observation> observations;
  for (int i = 0; i < rows; ++i) {
    phone::Observation obs;
    obs.user = "u1";
    obs.model = "m1";
    obs.captured_at = minutes(i + 1);
    obs.spl_db = 50.0 + i;
    observations.push_back(obs);
  }
  ingest::BatchPool pool;
  auto batch =
      pool.make_batch("soundcity", "c1", batch_id, minutes(10), observations);
  std::string body, frame;
  wire::encode_publish_flat("goflow", "soundcity.obs.c1", minutes(11), *batch,
                            body);
  wire::encode_frame(wire::MsgType::kPublishFlat, request_id, body, frame);
  return frame;
}

/// Drains the ingest queue, returning the number of delivered messages.
std::size_t drain_queue(broker::Broker& broker) {
  std::size_t n = 0;
  while (broker.pop("ingest").has_value()) ++n;
  return n;
}

TEST(NetServerTorture, OneByteChunksReassembleWholeFrames) {
  Stack s;
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));

  conn.send_chunked(s.server, hello_frame(1), 1);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));
  EXPECT_EQ(f.type, wire::MsgType::kHelloOk);
  EXPECT_EQ(f.request_id, 1u);

  conn.send_chunked(s.server, flat_publish_frame(2, "c1#1"), 1);
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));
  EXPECT_EQ(f.type, wire::MsgType::kPublishOk);
  EXPECT_EQ(f.request_id, 2u);
  wire::PublishOkMsg ok;
  ASSERT_TRUE(wire::decode_publish_ok(f.body, ok));
  EXPECT_EQ(ok.queues_delivered, 1u);

  EXPECT_EQ(drain_queue(s.broker), 1u);
  EXPECT_EQ(s.server.stats().frames_in, 2u);
  EXPECT_EQ(s.server.stats().frame_rejects, 0u);
  EXPECT_EQ(s.server.stats().truncated_frames, 0u);
}

TEST(NetServerTorture, RandomizedChunkSizesAndCoalescedFramesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Stack s;
    RawConn conn;
    ASSERT_TRUE(conn.connect_to(s.server.port()));
    Rng rng(seed);

    // Hello plus several publishes, all concatenated into ONE byte
    // stream, delivered in random-size chunks: frames arrive split AND
    // coalesced across recv boundaries.
    std::string stream = hello_frame(1);
    const int kPublishes = 5;
    for (int i = 0; i < kPublishes; ++i)
      stream += flat_publish_frame(static_cast<std::uint64_t>(2 + i),
                                   "c1#" + std::to_string(i + 1));
    std::size_t off = 0;
    while (off < stream.size()) {
      std::size_t chunk = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(
                 std::min<std::size_t>(97, stream.size() - off))));
      conn.send_chunked(s.server, std::string_view(stream).substr(off, chunk),
                        chunk);
      off += chunk;
    }

    // All six responses arrive, in request order.
    wire::Frame f;
    std::string storage;
    for (std::uint64_t id = 1; id <= 1 + kPublishes; ++id) {
      ASSERT_TRUE(conn.read_frame(s.server, f, storage))
          << "seed " << seed << " id " << id;
      EXPECT_EQ(f.request_id, id);
    }
    EXPECT_EQ(drain_queue(s.broker), static_cast<std::size_t>(kPublishes));
    EXPECT_EQ(s.server.stats().frames_in, 1u + kPublishes);
    EXPECT_EQ(s.server.stats().frame_rejects, 0u);
  }
}

TEST(NetServerTorture, MidFrameDisconnectNeverCorruptsServerState) {
  Stack s;
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 8);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));

  // Send exactly half of a publish frame, then hard-close: the
  // kNetTruncateFrame shape. The server must count a truncated frame,
  // close the connection, and deliver NOTHING to the broker.
  std::string frame = flat_publish_frame(2, "c1#1");
  conn.send_chunked(s.server, std::string_view(frame).substr(0, frame.size() / 2),
                    7);
  conn.close_now();
  for (int i = 0; i < 16; ++i) s.server.pump();

  EXPECT_EQ(s.server.stats().truncated_frames, 1u);
  EXPECT_EQ(s.server.connection_count(), 0u);
  EXPECT_EQ(drain_queue(s.broker), 0u);
  EXPECT_EQ(s.server.stats().publishes, 0u);

  // A fresh connection replays the same batch successfully — the torn
  // bytes left no residue.
  RawConn conn2;
  ASSERT_TRUE(conn2.connect_to(s.server.port()));
  conn2.send_chunked(s.server, hello_frame(1), 16);
  ASSERT_TRUE(conn2.read_frame(s.server, f, storage));
  conn2.send_chunked(s.server, frame, 16);
  ASSERT_TRUE(conn2.read_frame(s.server, f, storage));
  EXPECT_EQ(f.type, wire::MsgType::kPublishOk);
  EXPECT_EQ(drain_queue(s.broker), 1u);
}

TEST(NetServerTorture, EveryTruncationPointLeavesABlankSlate) {
  // Harsher sweep: disconnect after every prefix length of a publish
  // frame (stepped) — no prefix may reach the broker or wedge the server.
  std::string frame = flat_publish_frame(2, "c1#1");
  for (std::size_t cut = 1; cut < frame.size(); cut += 13) {
    Stack s;
    RawConn conn;
    ASSERT_TRUE(conn.connect_to(s.server.port()));
    conn.send_chunked(s.server, hello_frame(1), 32);
    wire::Frame f;
    std::string storage;
    ASSERT_TRUE(conn.read_frame(s.server, f, storage)) << "cut " << cut;
    conn.send_chunked(s.server, std::string_view(frame).substr(0, cut), 32);
    conn.close_now();
    for (int i = 0; i < 8; ++i) s.server.pump();
    EXPECT_EQ(drain_queue(s.broker), 0u) << "cut " << cut;
    EXPECT_EQ(s.server.stats().publishes, 0u) << "cut " << cut;
    EXPECT_EQ(s.server.connection_count(), 0u) << "cut " << cut;
  }
}

TEST(NetServer, CorruptFramePoisonsTheConnection) {
  obs::FlightRecorder::instance().clear();
  Stack s;
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 16);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));

  std::string frame = flat_publish_frame(2, "c1#1");
  frame[frame.size() / 2] = static_cast<char>(frame[frame.size() / 2] ^ 0x40);
  conn.send_chunked(s.server, frame, 16);
  EXPECT_TRUE(conn.closed_by_server(s.server));
  EXPECT_EQ(s.server.stats().frame_rejects, 1u);
  EXPECT_EQ(drain_queue(s.broker), 0u);

  // The black box recorded connect, reject and disconnect.
  bool saw_connect = false, saw_reject = false, saw_disconnect = false;
  for (const obs::FrRecord& r :
       obs::FlightRecorder::instance().collect_current_thread()) {
    if (r.type == obs::FrEvent::kNetConnect) saw_connect = true;
    if (r.type == obs::FrEvent::kNetFrameReject) saw_reject = true;
    if (r.type == obs::FrEvent::kNetDisconnect) saw_disconnect = true;
  }
  EXPECT_TRUE(saw_connect);
  EXPECT_TRUE(saw_reject);
  EXPECT_TRUE(saw_disconnect);
}

TEST(NetServer, PublishBeforeHelloIsRejected) {
  Stack s;
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, flat_publish_frame(1, "c1#1"), 64);
  EXPECT_TRUE(conn.closed_by_server(s.server));
  EXPECT_EQ(s.server.stats().frame_rejects, 1u);
  EXPECT_EQ(drain_queue(s.broker), 0u);
}

TEST(NetServer, WrongProtocolVersionIsRejected) {
  Stack s;
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  wire::HelloMsg hello;
  hello.version = wire::kProtocolVersion + 1;
  hello.client_id = "future-client";
  std::string body, frame;
  wire::encode_hello(hello, body);
  wire::encode_frame(wire::MsgType::kHello, 1, body, frame);
  conn.send_chunked(s.server, frame, 64);
  EXPECT_TRUE(conn.closed_by_server(s.server));
  EXPECT_EQ(s.server.stats().frame_rejects, 1u);
}

TEST(NetServer, IdleTimeoutClosesQuietConnections) {
  NetServerConfig config;
  config.idle_timeout = minutes(5);
  Stack s(std::move(config));
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 64);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));
  ASSERT_EQ(s.server.connection_count(), 1u);

  // Virtual time passes with no traffic; the next pump sweeps the
  // connection.
  s.sim.run_until(minutes(6));
  s.server.pump();
  EXPECT_EQ(s.server.connection_count(), 0u);
  EXPECT_EQ(s.server.stats().idle_closes, 1u);
  EXPECT_TRUE(conn.closed_by_server(s.server));
}

TEST(NetServer, IdleSweepDiscardsAnUnreadFrameUnprocessed) {
  // A frame sitting in the kernel buffer of an idle-expired connection
  // must NOT be processed: the sweep runs before reads, so the close
  // discards it and the publish never happens — the exactly-once
  // accounting the equivalence suite depends on.
  NetServerConfig config;
  config.idle_timeout = minutes(5);
  Stack s(std::move(config));
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 64);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));

  s.sim.run_until(minutes(6));
  // Frame arrives at the kernel while the connection is already
  // idle-expired (no pump between expiry and arrival).
  std::string late = flat_publish_frame(2, "c1#9");
  ::send(conn.fd(), late.data(), late.size(), MSG_NOSIGNAL);
  s.server.pump();
  EXPECT_EQ(s.server.stats().idle_closes, 1u);
  EXPECT_EQ(s.server.stats().publishes, 0u);
  EXPECT_EQ(drain_queue(s.broker), 0u);
}

TEST(NetServer, BoundedAcceptShedsConnectionsOverTheCap) {
  NetServerConfig config;
  config.max_connections = 2;
  Stack s(std::move(config));

  RawConn a, b, c;
  ASSERT_TRUE(a.connect_to(s.server.port()));
  ASSERT_TRUE(b.connect_to(s.server.port()));
  s.server.pump();
  EXPECT_EQ(s.server.connection_count(), 2u);

  ASSERT_TRUE(c.connect_to(s.server.port()));
  s.server.pump();
  EXPECT_EQ(s.server.connection_count(), 2u);
  EXPECT_EQ(s.server.stats().accept_rejected, 1u);
  EXPECT_TRUE(c.closed_by_server(s.server));

  // Capacity freed -> new connections accepted again.
  a.close_now();
  for (int i = 0; i < 8; ++i) s.server.pump();
  RawConn d;
  ASSERT_TRUE(d.connect_to(s.server.port()));
  s.server.pump();
  EXPECT_EQ(s.server.connection_count(), 2u);
  EXPECT_EQ(s.server.stats().accept_rejected, 1u);
}

TEST(NetServer, MetricsQueryServesFilteredRegistryExport) {
  Stack s;
  obs::Registry registry;
  registry.counter("net.demo").inc(3);
  registry.counter("broker.published").inc(7);
  s.server.serve_registry(&registry);

  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 64);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));

  wire::MetricsQueryMsg q;
  q.prefix = "net.";
  std::string body, frame;
  wire::encode_metrics_query(q, body);
  wire::encode_frame(wire::MsgType::kMetricsQuery, 2, body, frame);
  conn.send_chunked(s.server, frame, 64);
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));
  ASSERT_EQ(f.type, wire::MsgType::kMetricsReply);
  wire::MetricsReplyMsg reply;
  ASSERT_TRUE(wire::decode_metrics_reply(f.body, reply));
  EXPECT_NE(reply.text.find("net.demo 3"), std::string::npos);
  EXPECT_EQ(reply.text.find("broker.published"), std::string::npos);
  EXPECT_EQ(s.server.stats().metrics_queries, 1u);
}

TEST(NetServer, SeriesQueryServesTimeSeriesJsonl) {
  Stack s;
  obs::Registry registry;
  obs::TimeSeriesConfig tsc;
  tsc.bucket_width = minutes(5);
  obs::TimeSeries series(registry, tsc);
  // Three closed windows with distinct counter activity.
  for (int w = 0; w < 3; ++w) {
    registry.counter("assim.steps").inc(static_cast<std::uint64_t>(w + 1));
    series.sample(minutes(5 * w));
  }
  series.sample(minutes(15));  // closes the third window
  ASSERT_EQ(series.window_count(), 3u);
  s.server.serve_timeseries(&series);

  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 64);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));

  auto query = [&](std::uint32_t last_windows, std::uint64_t req_id) {
    wire::SeriesQueryMsg q;
    q.last_windows = last_windows;
    std::string body, frame;
    wire::encode_series_query(q, body);
    wire::encode_frame(wire::MsgType::kSeriesQuery, req_id, body, frame);
    conn.send_chunked(s.server, frame, 64);
    EXPECT_TRUE(conn.read_frame(s.server, f, storage));
    EXPECT_EQ(f.type, wire::MsgType::kSeriesReply);
    wire::SeriesReplyMsg reply;
    EXPECT_TRUE(wire::decode_series_reply(f.body, reply));
    return reply.jsonl;
  };

  // The wire answer is exactly the TimeSeries' own JSONL export.
  std::string all = query(0, 2);
  EXPECT_EQ(all, series.to_jsonl());
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 2);  // 3 lines
  EXPECT_NE(all.find("assim.steps"), std::string::npos);

  std::string last_two = query(2, 3);
  EXPECT_EQ(last_two, series.to_jsonl(2));
  EXPECT_EQ(std::count(last_two.begin(), last_two.end(), '\n'), 1);

  // More windows than retained = everything; detached server = empty.
  EXPECT_EQ(query(1000, 4), series.to_jsonl());
  s.server.serve_timeseries(nullptr);
  EXPECT_EQ(query(0, 5), "");
  EXPECT_EQ(s.server.stats().series_queries, 4u);
}

TEST(NetServer, DropConnFaultClosesBeforeDispatch) {
  Stack s;
  fault::FaultPlan plan(7);
  plan.fail_next(fault::FaultSite::kNetDropConn, 1);
  s.server.arm_faults(&plan);

  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 64);
  // The injected drop consumes the Hello before dispatch: connection
  // gone, nothing processed.
  EXPECT_TRUE(conn.closed_by_server(s.server));
  EXPECT_EQ(s.server.stats().drop_conn_injected, 1u);
  EXPECT_EQ(s.server.stats().frame_rejects, 0u);

  // The next connection sails through (fail_next budget spent).
  RawConn conn2;
  ASSERT_TRUE(conn2.connect_to(s.server.port()));
  conn2.send_chunked(s.server, hello_frame(1), 64);
  wire::Frame f;
  std::string storage;
  EXPECT_TRUE(conn2.read_frame(s.server, f, storage));
}

TEST(NetServer, CrashClosesEverythingAndRecoverRebindsTheSamePort) {
  Stack s;
  std::uint16_t port = s.server.port();
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(port));
  conn.send_chunked(s.server, hello_frame(1), 64);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));

  s.server.crash();
  EXPECT_FALSE(s.server.listening());
  EXPECT_EQ(s.server.connection_count(), 0u);
  EXPECT_TRUE(conn.closed_by_server(s.server));
  RawConn refused;
  EXPECT_FALSE(refused.connect_to(port));

  s.server.recover().throw_if_error();
  EXPECT_TRUE(s.server.listening());
  EXPECT_EQ(s.server.port(), port);
  RawConn conn2;
  ASSERT_TRUE(conn2.connect_to(port));
  conn2.send_chunked(s.server, hello_frame(1), 64);
  ASSERT_TRUE(conn2.read_frame(s.server, f, storage));
  conn2.send_chunked(s.server, flat_publish_frame(2, "c1#1"), 64);
  ASSERT_TRUE(conn2.read_frame(s.server, f, storage));
  EXPECT_EQ(f.type, wire::MsgType::kPublishOk);
  EXPECT_EQ(drain_queue(s.broker), 1u);
}

TEST(NetServer, CountersMirrorIntoTheRegistry) {
  // The registry must outlive the server: ~NetServer closes connections,
  // which bumps the disconnect counter.
  obs::Registry registry;
  Stack s;
  s.server.set_metrics(&registry);
  RawConn conn;
  ASSERT_TRUE(conn.connect_to(s.server.port()));
  conn.send_chunked(s.server, hello_frame(1), 64);
  wire::Frame f;
  std::string storage;
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));
  conn.send_chunked(s.server, flat_publish_frame(2, "c1#1"), 64);
  ASSERT_TRUE(conn.read_frame(s.server, f, storage));

  EXPECT_EQ(registry.counter("net.accepted").value(), 1u);
  EXPECT_EQ(registry.counter("net.frames_in").value(), 2u);
  EXPECT_EQ(registry.counter("net.frames_out").value(), 2u);
  EXPECT_GT(registry.counter("net.bytes_in").value(), 0u);
  EXPECT_GT(registry.counter("net.bytes_out").value(), 0u);
  EXPECT_EQ(registry.counter("net.publishes").value(), 1u);
  EXPECT_EQ(registry.gauge("net.connections").value(), 1.0);
}

}  // namespace
}  // namespace mps::net
