// NetClient tests: the socket transport's failure semantics and, above
// all, the reconnect/outbox regression (ISSUE satellite 4): a NetClient
// whose publish was processed but never acked — or whose server died and
// restarted between attempts — re-sends the pending outbox frame,
// byte-identical (same request id), and server-side idempotent dedup
// absorbs the duplicate so the observation count stays exactly-once.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "core/goflow_server.h"
#include "docstore/database.h"
#include "fault/fault.h"
#include "ingest/obs_batch.h"
#include "net/net_client.h"
#include "net/net_server.h"
#include "obs/metrics.h"
#include "sim/simulation.h"

namespace mps::net {
namespace {

/// Full middleware stack behind a socket front door: GoFlow server (with
/// its synchronous ingest consumer on the "goflow.ingest" queue), a
/// NetServer on an ephemeral loopback port, and one NetClient pumping it.
struct WiredStack {
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server{sim, broker, db};
  NetServer net_server;
  std::unique_ptr<NetClient> client;
  ingest::BatchPool pool;
  std::string exchange;

  explicit WiredStack(NetServerConfig server_config = {})
      : net_server(sim, broker, std::move(server_config)) {
    net_server.start().throw_if_error();
    NetClientConfig cc;
    cc.port = net_server.port();
    cc.client_id = "c1";
    client = std::make_unique<NetClient>(sim, std::move(cc));
    client->set_pump([this] { net_server.pump(); });

    auto reg = server.register_app("soundcity").value_or_throw();
    std::string token =
        server
            .register_account(reg.admin_token, "soundcity", "u1",
                              core::Role::kClient)
            .value_or_throw();
    exchange = server.login_client(token, "soundcity", "c1")
                   .value_or_throw()
                   .exchange;
  }

  std::shared_ptr<const ingest::ObsBatch> make_batch(int counter,
                                                     int rows = 4) {
    std::vector<phone::Observation> observations;
    for (int i = 0; i < rows; ++i) {
      phone::Observation obs;
      obs.user = "u1";
      obs.model = "m1";
      obs.captured_at = minutes(counter * 10 + i);
      obs.spl_db = 48.0 + i;
      observations.push_back(obs);
    }
    return pool.make_batch("soundcity", "c1", "c1#" + std::to_string(counter),
                           minutes(counter * 10), observations);
  }

  Result<broker::PublishResult> publish(
      const std::shared_ptr<const ingest::ObsBatch>& batch, TimeMs now) {
    return client->publish_flat(exchange, "soundcity.obs.c1", batch, now);
  }
};

TEST(NetClient, PublishFlatRoundTripsThroughLoopback) {
  WiredStack s;
  auto batch = s.make_batch(1);
  auto result = s.publish(batch, minutes(11));
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(result.value().queues_delivered, 1u);
  EXPECT_FALSE(s.client->has_pending());
  EXPECT_EQ(s.client->stats().publishes, 1u);
  EXPECT_EQ(s.client->stats().connects, 1u);

  // The GoFlow server consumed the batch synchronously inside the pump.
  EXPECT_EQ(s.server.total_batches(), 1u);
  EXPECT_EQ(s.server.total_observations(), 4u);
  EXPECT_EQ(s.server.duplicate_batches(), 0u);
}

TEST(NetClient, DocumentPublishCarriesTheValuePayload) {
  WiredStack s;
  auto batch = s.make_batch(2);
  Value doc = batch->to_batch_document();
  auto result = s.client->publish(s.exchange, "soundcity.obs.c1", doc,
                                  minutes(21), "c1#2");
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(s.server.total_batches(), 1u);
  EXPECT_EQ(s.server.total_observations(), 4u);
}

// --- The satellite-4 regression ----------------------------------------

TEST(NetClient, ProcessedButUnackedPublishIsResentOnceAndDeduped) {
  WiredStack s;
  // The server will process the next request, then close the connection
  // before the ack leaves: the client cannot distinguish this from a
  // publish that never arrived. The connection is fresh (this publish
  // triggers the connect), so the loss is NOT transparently retried —
  // the failure surfaces to the caller, whose backoff owns the retry.
  s.net_server.fail_next_ack(1);

  auto batch = s.make_batch(1);
  auto first = s.publish(batch, minutes(11));
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, ErrorCode::kUnavailable);
  // The work happened server-side; the client retains the outbox.
  EXPECT_EQ(s.server.total_batches(), 1u);
  EXPECT_EQ(s.server.total_observations(), 4u);
  EXPECT_TRUE(s.client->has_pending());
  EXPECT_EQ(s.client->stats().publish_failures, 1u);
  EXPECT_EQ(s.client->stats().transparent_retries, 0u);

  // The caller's retry re-sends the retained frame exactly once; the
  // duplicate batch id is absorbed by the server's dedup, so the
  // observation count does not move.
  auto second = s.publish(batch, minutes(12));
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(s.client->stats().resends, 1u);
  EXPECT_EQ(s.client->stats().connects, 2u);
  EXPECT_FALSE(s.client->has_pending());
  EXPECT_EQ(s.server.duplicate_batches(), 1u);
  EXPECT_EQ(s.server.total_observations(), 4u);      // exactly once
  EXPECT_EQ(s.server.duplicate_observations(), 0u);  // whole batch deduped
}

TEST(NetClient, WarmConnectionAbsorbsLostAckTransparently) {
  WiredStack s;
  ASSERT_TRUE(s.publish(s.make_batch(1), minutes(11)).ok());

  // On an established connection a lost ack with zero response bytes is
  // indistinguishable from an idle-close race, so the client reconnects
  // and re-sends once transparently; the server's dedup absorbs the
  // duplicate and the caller never sees a failure.
  s.net_server.fail_next_ack(1);
  auto result = s.publish(s.make_batch(2), minutes(21));
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(s.client->stats().transparent_retries, 1u);
  EXPECT_EQ(s.client->stats().publish_failures, 0u);
  EXPECT_EQ(s.server.duplicate_batches(), 1u);
  EXPECT_EQ(s.server.total_observations(), 8u);  // both batches exactly once
}

TEST(NetClient, ServerRestartBetweenRetriesResendsPendingExactlyOnce) {
  WiredStack s;
  s.net_server.fail_next_ack(1);
  auto batch = s.make_batch(3);
  auto first = s.publish(batch, minutes(31));
  ASSERT_FALSE(first.ok());
  ASSERT_TRUE(s.client->has_pending());
  EXPECT_EQ(s.server.total_observations(), 4u);

  // The serving process restarts (same port) before the retry.
  s.net_server.crash();
  EXPECT_FALSE(s.net_server.listening());
  s.net_server.recover().throw_if_error();
  EXPECT_TRUE(s.net_server.listening());

  auto second = s.publish(batch, minutes(32));
  ASSERT_TRUE(second.ok()) << second.error().message;
  EXPECT_EQ(s.client->stats().resends, 1u);
  EXPECT_EQ(s.server.total_observations(), 4u);
  EXPECT_EQ(s.server.duplicate_batches(), 1u);
  // Reconnect happened exactly once more (initial + after restart).
  EXPECT_EQ(s.client->stats().connects, 2u);
}

TEST(NetClient, DowntimeSurfacesAsUnavailableAndOutboxSurvives) {
  WiredStack s;
  ASSERT_TRUE(s.publish(s.make_batch(4), minutes(41)).ok());

  s.net_server.crash();
  auto batch2 = s.make_batch(5);
  auto down = s.publish(batch2, minutes(51));
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.error().code, ErrorCode::kUnavailable);
  EXPECT_TRUE(s.client->has_pending());
  EXPECT_FALSE(s.client->connected());
  EXPECT_GE(s.client->stats().connect_failures, 1u);

  s.net_server.recover().throw_if_error();
  auto retry = s.publish(batch2, minutes(52));
  ASSERT_TRUE(retry.ok()) << retry.error().message;
  EXPECT_EQ(s.client->stats().resends, 1u);
  // The frame sent into the dead socket never reached the broker, so the
  // retry is a first delivery — no duplicate.
  EXPECT_EQ(s.server.total_observations(), 8u);
  EXPECT_EQ(s.server.duplicate_batches(), 0u);
}

TEST(NetClient, TransparentReconnectAfterIdleCloseIsInvisible) {
  NetServerConfig sc;
  sc.idle_timeout = minutes(5);
  WiredStack s(std::move(sc));
  ASSERT_TRUE(s.publish(s.make_batch(6), minutes(1)).ok());

  // A long quiet period: the server idle-closes the connection at its
  // next pump. The next publish finds the dead socket, reconnects and
  // re-sends transparently — no failure surfaces to the caller.
  s.sim.run_until(minutes(30));
  auto result = s.publish(s.make_batch(7), minutes(30));
  ASSERT_TRUE(result.ok()) << result.error().message;
  EXPECT_EQ(s.client->stats().transparent_retries, 1u);
  EXPECT_EQ(s.client->stats().publish_failures, 0u);
  EXPECT_EQ(s.server.total_observations(), 8u);
  EXPECT_EQ(s.server.duplicate_batches(), 0u);
  EXPECT_GE(s.net_server.stats().idle_closes, 1u);
}

TEST(NetClient, ErrorResponseIsIndistinguishableFromInProcessPublish) {
  WiredStack s;
  auto batch = s.make_batch(8);

  // Oracle: the exact Result the in-process path produces for a publish
  // to a nonexistent exchange.
  auto oracle = s.broker.publish_flat("no-such-exchange", "soundcity.obs.c1",
                                      batch, minutes(81));
  ASSERT_FALSE(oracle.ok());

  auto wire_result = s.client->publish_flat("no-such-exchange",
                                            "soundcity.obs.c1", batch,
                                            minutes(81));
  ASSERT_FALSE(wire_result.ok());
  EXPECT_EQ(wire_result.error().code, oracle.error().code);
  EXPECT_EQ(wire_result.error().message, oracle.error().message);
  // An error response is a *response*: the connection stays up, but the
  // outbox is retained for the caller's retry.
  EXPECT_TRUE(s.client->connected());
  EXPECT_TRUE(s.client->has_pending());
  s.client->abort_pending();
}

TEST(NetClient, AbortPendingPreventsAnyResend) {
  WiredStack s;
  s.net_server.fail_next_ack(1);
  ASSERT_FALSE(s.publish(s.make_batch(9), minutes(91)).ok());
  ASSERT_TRUE(s.client->has_pending());

  // Give-up path: the batch goes back to the device buffer and will be
  // re-packaged under a new id — the old frame must never ride again.
  s.client->abort_pending();
  EXPECT_FALSE(s.client->has_pending());

  ASSERT_TRUE(s.publish(s.make_batch(10), minutes(101)).ok());
  EXPECT_EQ(s.client->stats().resends, 0u);
}

TEST(NetClient, PingAndMetricsQueryRoundTrip) {
  WiredStack s;
  obs::Registry registry;
  registry.counter("net.something").inc(5);
  s.net_server.serve_registry(&registry);

  EXPECT_TRUE(s.client->ping().ok());
  auto filtered = s.client->query_metrics("net.");
  ASSERT_TRUE(filtered.ok()) << filtered.error().message;
  EXPECT_NE(filtered.value().find("net.something 5"), std::string::npos);

  auto all = s.client->query_metrics();
  ASSERT_TRUE(all.ok());
  EXPECT_NE(all.value().find("net.something 5"), std::string::npos);
}

TEST(NetClient, ConnectFailureWhenNothingListens) {
  sim::Simulation sim;
  NetClientConfig cc;
  cc.client_id = "lonely";
  cc.port = 1;  // nothing listens on port 1 for unprivileged processes
  NetClient client(sim, std::move(cc));
  Status status = client.ping();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kUnavailable);
  EXPECT_GE(client.stats().connect_failures, 1u);
}

TEST(NetClient, TruncateFaultInjectsMidFrameDisconnect) {
  WiredStack s;
  ASSERT_TRUE(s.client->ping().ok());  // connect before arming the fault

  fault::FaultPlan plan(5);
  plan.fail_next(fault::FaultSite::kNetTruncateFrame, 1);
  s.client->arm_faults(&plan);

  auto batch = s.make_batch(11);
  auto result = s.publish(batch, minutes(111));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kUnavailable);
  EXPECT_EQ(s.client->stats().truncate_injected, 1u);
  // The injected loss is never transparently retried — the caller's
  // backoff owns the retry, exactly like a broker shed.
  EXPECT_EQ(s.client->stats().transparent_retries, 0u);
  // Server side: the torn frame was discarded whole.
  for (int i = 0; i < 8; ++i) s.net_server.pump();
  EXPECT_EQ(s.server.total_batches(), 0u);
  EXPECT_EQ(s.net_server.stats().truncated_frames, 1u);

  // The retry (same batch id) goes through untouched.
  auto retry = s.publish(batch, minutes(112));
  ASSERT_TRUE(retry.ok()) << retry.error().message;
  EXPECT_EQ(s.client->stats().resends, 1u);
  EXPECT_EQ(s.server.total_observations(), 4u);
  EXPECT_EQ(s.server.duplicate_batches(), 0u);
  s.client->arm_faults(nullptr);
}

}  // namespace
}  // namespace mps::net
