// Frame/body codec fuzz and property tests (ISSUE satellite 1).
//
// The wire decoder sits on the hostile side of the trust boundary: every
// byte a server reads off a socket went through a peer it must not trust
// and a transport that can truncate or corrupt. These tests pin the
// contract from wire.h: a stream position either yields a whole valid
// frame, kNeedMore, or kCorrupt — never a crash, never an overread
// (ASan/UBSan enforce that part in CI), and never a bogus kOk.
//
// Three fuzz families: byte-flip (every single-byte corruption of a
// valid frame is rejected), truncate (every proper prefix is kNeedMore),
// splice (cut streams mid-frame and graft other frames on). Plus exact
// round-trips for every message type with randomized content, bit-exact
// double handling, depth caps and enum range checks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/value.h"
#include "ingest/obs_batch.h"
#include "net/wire.h"
#include "phone/observation.h"

namespace mps::net::wire {
namespace {

// --- Random content generators -----------------------------------------

std::string random_string(Rng& rng, std::size_t max_len) {
  std::size_t n = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(max_len)));
  std::string s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
  return s;
}

double random_double(Rng& rng) {
  switch (rng.uniform_int(0, 5)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::quiet_NaN();
    case 3: return std::numeric_limits<double>::infinity();
    case 4: return -std::numeric_limits<double>::max();
    default: return rng.normal(0.0, 1e9);
  }
}

Value random_value(Rng& rng, int depth) {
  int max_kind = depth > 0 ? 6 : 4;  // leaves only at the depth budget
  switch (rng.uniform_int(0, max_kind)) {
    case 0: return Value();
    case 1: return Value(rng.bernoulli(0.5));
    case 2: return Value(static_cast<std::int64_t>(rng.uniform_int(
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max())));
    case 3: return Value(random_double(rng));
    case 4: return Value(random_string(rng, 24));
    case 5: {
      Array a;
      int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i) a.push_back(random_value(rng, depth - 1));
      return Value(std::move(a));
    }
    default: {
      Object o;
      int n = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < n; ++i)
        o.set("k" + std::to_string(i), random_value(rng, depth - 1));
      return Value(std::move(o));
    }
  }
}

phone::Observation random_observation(Rng& rng) {
  phone::Observation obs;
  obs.user = "user-" + std::to_string(rng.uniform_int(0, 9));
  obs.model = "model-" + std::to_string(rng.uniform_int(0, 3));
  obs.captured_at = rng.uniform_int(0, days(300));
  obs.spl_db = random_double(rng);
  obs.mode = static_cast<phone::SensingMode>(rng.uniform_int(0, 2));
  obs.activity = static_cast<phone::Activity>(rng.uniform_int(0, 6));
  obs.span_id = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  if (rng.bernoulli(0.7)) {
    phone::LocationFix fix;
    fix.provider = static_cast<phone::LocationProvider>(rng.uniform_int(0, 2));
    fix.x_m = rng.normal(0.0, 5000.0);
    fix.y_m = rng.normal(0.0, 5000.0);
    fix.accuracy_m = rng.uniform(1.0, 500.0);
    obs.location = fix;
  }
  return obs;
}

/// Encodes one random message of each type as a framed byte string.
std::vector<std::string> random_frames(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> frames;
  std::string body;
  auto frame = [&](MsgType t) {
    std::string f;
    encode_frame(t, static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20)),
                 body, f);
    frames.push_back(std::move(f));
    body.clear();
  };

  HelloMsg hello;
  hello.client_id = random_string(rng, 16);
  encode_hello(hello, body);
  frame(MsgType::kHello);
  encode_hello(hello, body);
  frame(MsgType::kHelloOk);

  PublishMsg pub;
  pub.exchange = "goflow";
  pub.routing_key = "app.obs.c" + std::to_string(rng.uniform_int(0, 99));
  pub.published_at = rng.uniform_int(0, days(300));
  pub.payload = random_value(rng, 4);
  encode_publish(pub, body);
  frame(MsgType::kPublish);

  ingest::BatchPool pool;
  std::vector<phone::Observation> observations;
  int rows = static_cast<int>(rng.uniform_int(1, 12));
  for (int i = 0; i < rows; ++i) observations.push_back(random_observation(rng));
  auto batch = pool.make_batch("soundcity", "c1", "c1#7", minutes(5),
                               observations);
  encode_publish_flat("goflow", "soundcity.obs.c1", minutes(6), *batch, body);
  frame(MsgType::kPublishFlat);

  PublishOkMsg ok;
  ok.sequence = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  ok.queues_delivered = static_cast<std::uint32_t>(rng.uniform_int(0, 8));
  encode_publish_ok(ok, body);
  frame(MsgType::kPublishOk);

  PublishErrMsg e;
  e.code = ErrorCode::kUnavailable;
  e.message = random_string(rng, 40);
  encode_publish_err(e, body);
  frame(MsgType::kPublishErr);

  MetricsQueryMsg q;
  q.prefix = "net.";
  encode_metrics_query(q, body);
  frame(MsgType::kMetricsQuery);

  MetricsReplyMsg reply;
  reply.text = random_string(rng, 200);
  encode_metrics_reply(reply, body);
  frame(MsgType::kMetricsReply);

  SeriesQueryMsg sq;
  sq.last_windows = static_cast<std::uint32_t>(rng.uniform_int(0, 64));
  encode_series_query(sq, body);
  frame(MsgType::kSeriesQuery);

  SeriesReplyMsg sr;
  sr.jsonl = random_string(rng, 300);
  encode_series_reply(sr, body);
  frame(MsgType::kSeriesReply);

  WalShipMsg ship;
  ship.shard = static_cast<std::uint32_t>(rng.uniform_int(0, 15));
  int nrec = static_cast<int>(rng.uniform_int(0, 6));
  for (int i = 0; i < nrec; ++i) {
    WalRecord rec;
    rec.lsn = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
    rec.payload = random_string(rng, 48);
    ship.records.push_back(std::move(rec));
  }
  encode_wal_ship(ship, body);
  frame(MsgType::kWalShip);

  WalShipOkMsg ship_ok;
  ship_ok.shard = ship.shard;
  ship_ok.through_lsn = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));
  encode_wal_ship_ok(ship_ok, body);
  frame(MsgType::kWalShipOk);

  PromoteMsg promote;
  promote.shard = ship.shard;
  promote.through_lsn = ship_ok.through_lsn;
  encode_promote(promote, body);
  frame(MsgType::kPromote);

  RedirectMsg redirect;
  redirect.shard = static_cast<std::uint32_t>(rng.uniform_int(0, 15));
  redirect.port = static_cast<std::uint32_t>(rng.uniform_int(1, 65535));
  redirect.reason = "rebalanced";
  encode_redirect(redirect, body);
  frame(MsgType::kRedirect);

  frame(MsgType::kPing);
  frame(MsgType::kPong);
  return frames;
}

// --- Round trips --------------------------------------------------------

TEST(WireCodec, FrameRoundTripsEveryMessageType) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    for (const std::string& bytes : random_frames(seed)) {
      Frame f;
      ASSERT_EQ(decode_frame(bytes, 0, f), DecodeResult::kOk) << "seed " << seed;
      EXPECT_EQ(f.end_offset, bytes.size());
      EXPECT_TRUE(msg_type_valid(static_cast<std::uint8_t>(f.type)));
      // Re-encoding the decoded frame reproduces the input byte-for-byte.
      std::string re;
      encode_frame(f.type, f.request_id, f.body, re);
      EXPECT_EQ(re, bytes);
    }
  }
}

TEST(WireCodec, HelloRoundTrip) {
  HelloMsg in;
  in.version = kProtocolVersion;
  in.client_id = "paris-phone-042";
  std::string body;
  encode_hello(in, body);
  HelloMsg out;
  ASSERT_TRUE(decode_hello(body, out));
  EXPECT_EQ(out.version, in.version);
  EXPECT_EQ(out.client_id, in.client_id);
}

TEST(WireCodec, PublishRoundTripPreservesValueBitExactly) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    Rng rng(seed);
    PublishMsg in;
    in.exchange = "goflow";
    in.routing_key = "soundcity.obs.c1";
    in.published_at = rng.uniform_int(0, days(300));
    in.payload = random_value(rng, 5);
    std::string body;
    encode_publish(in, body);

    PublishMsg out;
    ASSERT_TRUE(decode_publish(body, out)) << "seed " << seed;
    EXPECT_EQ(out.exchange, in.exchange);
    EXPECT_EQ(out.routing_key, in.routing_key);
    EXPECT_EQ(out.published_at, in.published_at);
    // Bit-exactness (NaN payloads defeat ==): compare re-encodings.
    std::string a, b;
    encode_value(in.payload, a);
    encode_value(out.payload, b);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(WireCodec, ShardPlaneMessagesRoundTripAndRejectTruncation) {
  WalShipMsg ship;
  ship.shard = 3;
  ship.records.push_back({101, "db.insert {\"a\":1}"});
  ship.records.push_back({102, std::string("\x00\xff binary", 9)});
  std::string body;
  encode_wal_ship(ship, body);
  WalShipMsg ship2;
  ASSERT_TRUE(decode_wal_ship(body, ship2));
  EXPECT_EQ(ship2.shard, 3u);
  ASSERT_EQ(ship2.records.size(), 2u);
  EXPECT_EQ(ship2.records[0].lsn, 101u);
  EXPECT_EQ(ship2.records[0].payload, ship.records[0].payload);
  EXPECT_EQ(ship2.records[1].payload, ship.records[1].payload);
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    WalShipMsg out;
    EXPECT_FALSE(decode_wal_ship(body.substr(0, cut), out)) << cut;
  }

  WalShipOkMsg ok{7, 9001};
  body.clear();
  encode_wal_ship_ok(ok, body);
  WalShipOkMsg ok2;
  ASSERT_TRUE(decode_wal_ship_ok(body, ok2));
  EXPECT_EQ(ok2.shard, 7u);
  EXPECT_EQ(ok2.through_lsn, 9001u);
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    WalShipOkMsg out;
    EXPECT_FALSE(decode_wal_ship_ok(body.substr(0, cut), out)) << cut;
  }

  PromoteMsg promote{2, 512};
  body.clear();
  encode_promote(promote, body);
  PromoteMsg promote2;
  ASSERT_TRUE(decode_promote(body, promote2));
  EXPECT_EQ(promote2.shard, 2u);
  EXPECT_EQ(promote2.through_lsn, 512u);

  RedirectMsg redir;
  redir.shard = 1;
  redir.port = 19002;
  redir.reason = "rebalanced";
  body.clear();
  encode_redirect(redir, body);
  RedirectMsg redir2;
  ASSERT_TRUE(decode_redirect(body, redir2));
  EXPECT_EQ(redir2.shard, 1u);
  EXPECT_EQ(redir2.port, 19002u);
  EXPECT_EQ(redir2.reason, "rebalanced");
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    RedirectMsg out;
    EXPECT_FALSE(decode_redirect(body.substr(0, cut), out)) << cut;
  }

  // A redirect to port 0 or past the u16 range is malformed.
  RedirectMsg bad = redir;
  bad.port = 0;
  body.clear();
  encode_redirect(bad, body);
  EXPECT_FALSE(decode_redirect(body, redir2));
  bad.port = 70000;
  body.clear();
  encode_redirect(bad, body);
  EXPECT_FALSE(decode_redirect(body, redir2));

  // A ship frame claiming 2^30 records in a tiny body is rejected by the
  // count bound, not by an allocation attempt.
  body.clear();
  Writer w(body);
  w.u32(0);            // shard
  w.u32(1u << 30);     // record count
  WalShipMsg hostile;
  EXPECT_FALSE(decode_wal_ship(body, hostile));
}

TEST(WireCodec, PublishFlatRoundTripsEveryColumn) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    std::vector<phone::Observation> observations;
    int rows = static_cast<int>(rng.uniform_int(1, 20));
    for (int i = 0; i < rows; ++i)
      observations.push_back(random_observation(rng));
    ingest::BatchPool pool;
    auto batch = pool.make_batch("soundcity", "c9",
                                 "c9#" + std::to_string(seed), minutes(3),
                                 observations);
    std::string body;
    encode_publish_flat("goflow", "soundcity.obs.c9", minutes(4), *batch, body);

    PublishFlatMsg out;
    ASSERT_TRUE(decode_publish_flat(body, out)) << "seed " << seed;
    EXPECT_EQ(out.exchange, "goflow");
    EXPECT_EQ(out.routing_key, "soundcity.obs.c9");
    EXPECT_EQ(out.published_at, minutes(4));
    EXPECT_EQ(out.app, "soundcity");
    EXPECT_EQ(out.client, "c9");
    EXPECT_EQ(out.batch_id, "c9#" + std::to_string(seed));
    EXPECT_EQ(out.sent_at, minutes(3));
    ASSERT_EQ(out.observations.size(), observations.size());
    for (std::size_t i = 0; i < observations.size(); ++i) {
      const phone::Observation& a = observations[i];
      const phone::Observation& b = out.observations[i];
      EXPECT_EQ(b.user, a.user);
      EXPECT_EQ(b.model, a.model);
      EXPECT_EQ(b.captured_at, a.captured_at);
      // Bit-exact doubles (the generator emits NaN/Inf too).
      std::uint64_t abits, bbits;
      std::memcpy(&abits, &a.spl_db, 8);
      std::memcpy(&bbits, &b.spl_db, 8);
      EXPECT_EQ(bbits, abits);
      EXPECT_EQ(b.mode, a.mode);
      EXPECT_EQ(b.activity, a.activity);
      EXPECT_EQ(b.span_id, a.span_id);
      ASSERT_EQ(b.location.has_value(), a.location.has_value());
      if (a.location.has_value()) {
        EXPECT_EQ(b.location->provider, a.location->provider);
        EXPECT_EQ(b.location->x_m, a.location->x_m);
        EXPECT_EQ(b.location->y_m, a.location->y_m);
        EXPECT_EQ(b.location->accuracy_m, a.location->accuracy_m);
      }
    }

    // The decoded rows rebuild into a batch with identical columns — the
    // determinism the socket equivalence suite leans on.
    ingest::BatchPool pool2;
    auto rebuilt = pool2.make_batch(out.app, out.client, out.batch_id,
                                    out.sent_at, out.observations);
    ASSERT_EQ(rebuilt->size(), batch->size());
    for (std::size_t i = 0; i < batch->size(); ++i) {
      EXPECT_EQ(rebuilt->user(i), batch->user(i));
      EXPECT_EQ(rebuilt->model(i), batch->model(i));
      EXPECT_EQ(rebuilt->captured_at(i), batch->captured_at(i));
      EXPECT_EQ(rebuilt->span_id(i), batch->span_id(i));
    }
  }
}

TEST(WireCodec, PublishOkAndErrRoundTrip) {
  PublishOkMsg ok;
  ok.sequence = 0xDEADBEEFCAFEull;
  ok.queues_delivered = 3;
  std::string body;
  encode_publish_ok(ok, body);
  PublishOkMsg ok2;
  ASSERT_TRUE(decode_publish_ok(body, ok2));
  EXPECT_EQ(ok2.sequence, ok.sequence);
  EXPECT_EQ(ok2.queues_delivered, ok.queues_delivered);

  // Every ErrorCode survives the trip — the client-side Result must be
  // indistinguishable from the in-process publish's.
  for (ErrorCode code :
       {ErrorCode::kInvalidArgument, ErrorCode::kUnauthorized,
        ErrorCode::kForbidden, ErrorCode::kNotFound, ErrorCode::kConflict,
        ErrorCode::kUnavailable, ErrorCode::kInternal}) {
    PublishErrMsg e;
    e.code = code;
    e.message = "admission control: publish shed";
    body.clear();
    encode_publish_err(e, body);
    PublishErrMsg e2;
    ASSERT_TRUE(decode_publish_err(body, e2));
    EXPECT_EQ(e2.code, e.code);
    EXPECT_EQ(e2.message, e.message);
  }
}

TEST(WireCodec, SeriesQueryAndReplyRoundTrip) {
  SeriesQueryMsg q;
  q.last_windows = 17;
  std::string body;
  encode_series_query(q, body);
  SeriesQueryMsg q2;
  ASSERT_TRUE(decode_series_query(body, q2));
  EXPECT_EQ(q2.last_windows, 17u);

  SeriesReplyMsg r;
  r.jsonl = "{\"start_ms\":0}\n{\"start_ms\":300000}";
  body.clear();
  encode_series_reply(r, body);
  SeriesReplyMsg r2;
  ASSERT_TRUE(decode_series_reply(body, r2));
  EXPECT_EQ(r2.jsonl, r.jsonl);

  // Decode fuzz: every truncation of each valid body is rejected, and
  // trailing junk after a well-formed body is too (strict r.done()).
  std::string qbody, rbody;
  encode_series_query(q, qbody);
  encode_series_reply(r, rbody);
  for (std::size_t cut = 0; cut < qbody.size(); ++cut) {
    SeriesQueryMsg out;
    EXPECT_FALSE(decode_series_query(qbody.substr(0, cut), out)) << cut;
  }
  for (std::size_t cut = 0; cut < rbody.size(); ++cut) {
    SeriesReplyMsg out;
    EXPECT_FALSE(decode_series_reply(rbody.substr(0, cut), out)) << cut;
  }
  SeriesQueryMsg out_q;
  EXPECT_FALSE(decode_series_query(qbody + "x", out_q));
  SeriesReplyMsg out_r;
  EXPECT_FALSE(decode_series_reply(rbody + "x", out_r));
  // A reply whose length prefix overstates the remaining bytes must be
  // bounded, not believed.
  std::string hostile;
  Writer w(hostile);
  w.u32(0x7fffffffu);
  hostile += "short";
  SeriesReplyMsg out_h;
  EXPECT_FALSE(decode_series_reply(hostile, out_h));
}

TEST(WireCodec, ValueCodecRoundTripsRandomTreesBitExactly) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    Value v = random_value(rng, 6);
    std::string a;
    encode_value(v, a);
    Reader r(a);
    Value decoded;
    ASSERT_TRUE(decode_value(r, decoded)) << "seed " << seed;
    EXPECT_TRUE(r.done());
    std::string b;
    encode_value(decoded, b);
    EXPECT_EQ(b, a) << "seed " << seed;
  }
}

// --- Hostile input ------------------------------------------------------

TEST(WireCodec, ByteFlipNeverDecodesOk) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    for (const std::string& frame : random_frames(seed)) {
      Rng rng(seed * 977);
      // Exhaustive for short frames, sampled for long ones.
      std::vector<std::size_t> positions;
      if (frame.size() <= 256) {
        for (std::size_t i = 0; i < frame.size(); ++i) positions.push_back(i);
      } else {
        for (int i = 0; i < 256; ++i)
          positions.push_back(static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(frame.size() - 1))));
      }
      for (std::size_t pos : positions) {
        std::string mutated = frame;
        int bit = static_cast<int>(rng.uniform_int(0, 7));
        mutated[pos] = static_cast<char>(
            static_cast<unsigned char>(mutated[pos]) ^ (1u << bit));
        Frame f;
        DecodeResult r = decode_frame(mutated, 0, f);
        // A flipped length can ask for more bytes (kNeedMore); everything
        // else fails the CRC or the type check. kOk would mean the CRC
        // let a corruption through.
        EXPECT_NE(r, DecodeResult::kOk)
            << "seed " << seed << " flip at " << pos;
      }
    }
  }
}

TEST(WireCodec, EveryProperPrefixNeedsMore) {
  for (const std::string& frame : random_frames(21)) {
    for (std::size_t cut = 0; cut < frame.size(); ++cut) {
      Frame f;
      EXPECT_EQ(decode_frame(std::string_view(frame).substr(0, cut), 0, f),
                DecodeResult::kNeedMore)
          << "cut " << cut << "/" << frame.size();
    }
  }
}

TEST(WireCodec, SplicedStreamsDecodeSequentiallyAndRejectTornJoints) {
  std::vector<std::string> frames = random_frames(31);
  // Back-to-back frames decode in order via end_offset, like the server's
  // drain loop.
  std::string stream;
  for (const std::string& f : frames) stream += f;
  std::size_t offset = 0;
  std::size_t decoded = 0;
  for (;;) {
    Frame f;
    DecodeResult r = decode_frame(stream, offset, f);
    if (r != DecodeResult::kOk) break;
    offset = f.end_offset;
    ++decoded;
  }
  EXPECT_EQ(decoded, frames.size());
  EXPECT_EQ(offset, stream.size());

  // A stream cut mid-frame with another frame grafted on never yields a
  // valid frame at the joint: the length prefix of the torn frame pulls
  // the graft's bytes under its own CRC.
  Rng rng(33);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string& a = frames[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frames.size() - 1)))];
    const std::string& b = frames[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(frames.size() - 1)))];
    std::size_t cut = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(a.size() - 1)));
    std::string spliced = a.substr(0, cut) + b;
    Frame f;
    DecodeResult r = decode_frame(spliced, 0, f);
    EXPECT_NE(r, DecodeResult::kOk) << "trial " << trial << " cut " << cut;
  }
}

TEST(WireCodec, RandomGarbageNeverCrashesAnyDecoder) {
  Rng rng(41);
  for (int trial = 0; trial < 500; ++trial) {
    std::string garbage = random_string(
        rng, static_cast<std::size_t>(rng.uniform_int(0, 4096)));
    Frame f;
    DecodeResult r = decode_frame(garbage, 0, f);
    if (r == DecodeResult::kOk) {
      EXPECT_LE(f.end_offset, garbage.size());
    }

    // Every body decoder must also survive raw garbage (the frame CRC is
    // the integrity layer, but decoders still see adversarial bytes when
    // a peer sends a validly-framed lie).
    HelloMsg hello;
    decode_hello(garbage, hello);
    PublishMsg pub;
    decode_publish(garbage, pub);
    PublishFlatMsg flat;
    decode_publish_flat(garbage, flat);
    PublishOkMsg ok;
    decode_publish_ok(garbage, ok);
    PublishErrMsg e;
    decode_publish_err(garbage, e);
    MetricsQueryMsg q;
    decode_metrics_query(garbage, q);
    MetricsReplyMsg reply;
    decode_metrics_reply(garbage, reply);
    SeriesQueryMsg sq;
    decode_series_query(garbage, sq);
    SeriesReplyMsg sr;
    decode_series_reply(garbage, sr);
    WalShipMsg ship;
    decode_wal_ship(garbage, ship);
    WalShipOkMsg ship_ok;
    decode_wal_ship_ok(garbage, ship_ok);
    PromoteMsg promote;
    decode_promote(garbage, promote);
    RedirectMsg redirect;
    decode_redirect(garbage, redirect);
    Reader reader(garbage);
    Value v;
    decode_value(reader, v);
  }
}

TEST(WireCodec, OverDeepValueIsRejected) {
  // 100 nested arrays: over the 64-level cap. The encoder will happily
  // write it (trusted side); the decoder must refuse.
  std::string body;
  Writer w(body);
  for (int i = 0; i < 100; ++i) {
    w.u8(static_cast<std::uint8_t>(Value::Type::kArray));
    w.u32(1);
  }
  w.u8(static_cast<std::uint8_t>(Value::Type::kNull));
  Reader r(body);
  Value v;
  EXPECT_FALSE(decode_value(r, v));
}

TEST(WireCodec, HostileCountsAreBoundedBeforeAllocation) {
  // An array claiming 2^31 elements in a 10-byte body must be rejected
  // by the count-vs-remaining bound, not by an allocation attempt.
  std::string body;
  Writer w(body);
  w.u8(static_cast<std::uint8_t>(Value::Type::kArray));
  w.u32(0x7FFFFFFFu);
  w.u8(0);
  Reader r(body);
  Value v;
  EXPECT_FALSE(decode_value(r, v));

  // Same for a string length and for flat batch row counts.
  body.clear();
  w.u8(static_cast<std::uint8_t>(Value::Type::kString));
  w.u32(0x7FFFFFFFu);
  Reader r2(body);
  EXPECT_FALSE(decode_value(r2, v));
}

TEST(WireCodec, FlatPublishEnumRangesAreChecked) {
  // Build one valid flat body, then surgically corrupt each enum byte to
  // an out-of-range value and require rejection. The row layout after
  // the header strings is: span_id u64, user str, model str, captured i64,
  // spl f64, mode u8, activity u8, has_loc u8[, provider u8, ...].
  phone::Observation obs;
  obs.user = "u";
  obs.model = "m";
  obs.captured_at = 1;
  obs.spl_db = 55.0;
  obs.mode = phone::SensingMode::kManual;
  obs.activity = phone::Activity::kStill;
  phone::LocationFix fix;
  fix.provider = phone::LocationProvider::kGps;
  obs.location = fix;
  ingest::BatchPool pool;
  auto batch = pool.make_batch("a", "c", "c#1", 0, {obs});
  std::string body;
  encode_publish_flat("x", "k", 0, *batch, body);

  PublishFlatMsg out;
  ASSERT_TRUE(decode_publish_flat(body, out));

  // Find the three enum bytes by flipping each byte to 200 and counting
  // how many positions turn the decode from true to false with a range
  // error — mode, activity, has_location and provider must all reject.
  int rejected_positions = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    std::string mutated = body;
    mutated[i] = static_cast<char>(200);
    PublishFlatMsg m;
    if (!decode_publish_flat(mutated, m)) ++rejected_positions;
  }
  // At minimum the length-prefix bytes, count bytes and the four enum
  // bytes reject; the point is that SOME single-byte enum lies are
  // caught (exact count depends on layout).
  EXPECT_GE(rejected_positions, 4);

  // Directed: the decoded message re-encodes equal, and a mode byte of 3
  // (one past kJourney) specifically fails.
  bool found_mode_byte = false;
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (static_cast<unsigned char>(body[i]) !=
        static_cast<unsigned char>(phone::SensingMode::kManual))
      continue;
    std::string mutated = body;
    mutated[i] = 3;  // out of SensingMode range
    PublishFlatMsg m;
    if (!decode_publish_flat(mutated, m)) found_mode_byte = true;
  }
  EXPECT_TRUE(found_mode_byte);
}

TEST(WireCodec, OversizedLengthFieldIsCorruptNotAnAllocation) {
  // A length field beyond kMaxFramePayload must be kCorrupt immediately —
  // a garbage length must never make the reassembly buffer balloon.
  std::string bytes;
  Writer w(bytes);
  w.u32(kMaxFramePayload + 1);
  w.u32(0);  // crc (never reached)
  bytes += std::string(64, 'x');
  Frame f;
  EXPECT_EQ(decode_frame(bytes, 0, f), DecodeResult::kCorrupt);

  // And a length below the prelude (type + request id) is equally corrupt.
  bytes.clear();
  w.u32(static_cast<std::uint32_t>(kFramePreludeBytes - 1));
  w.u32(0);
  bytes += std::string(64, 'x');
  EXPECT_EQ(decode_frame(bytes, 0, f), DecodeResult::kCorrupt);
}

}  // namespace
}  // namespace mps::net::wire
