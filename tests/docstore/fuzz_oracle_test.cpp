// Model-based fuzz test: random CRUD sequences on a Collection (with
// indexes enabled) checked against a trivially correct reference oracle
// (std::map of documents, linear-scan query evaluation).
#include <map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "docstore/collection.h"

namespace mps::docstore {
namespace {

/// The oracle: naive storage and query evaluation.
class Oracle {
 public:
  void insert(const std::string& id, const Document& doc) { docs_[id] = doc; }
  bool remove(const std::string& id) { return docs_.erase(id) > 0; }
  bool replace(const std::string& id, Document doc) {
    auto it = docs_.find(id);
    if (it == docs_.end()) return false;
    doc.as_object().set("_id", Value(id));
    it->second = std::move(doc);
    return true;
  }
  std::size_t count(const Query& q) const {
    std::size_t n = 0;
    for (const auto& [_, doc] : docs_)
      if (q.matches(doc)) ++n;
    return n;
  }
  std::size_t size() const { return docs_.size(); }

 private:
  std::map<std::string, Document> docs_;
};

Document random_doc(Rng& rng) {
  Object o;
  o.set("k", Value(rng.uniform_int(0, 7)));
  o.set("x", Value(rng.uniform(0.0, 100.0)));
  if (rng.bernoulli(0.7))
    o.set("tag", Value("t" + std::to_string(rng.uniform_int(0, 3))));
  if (rng.bernoulli(0.5))
    o.set("nested", Value(Object{{"v", Value(rng.uniform_int(0, 20))}}));
  return Value(std::move(o));
}

Query random_query(Rng& rng) {
  switch (rng.uniform_int(0, 6)) {
    case 0: return Query::eq("k", Value(rng.uniform_int(0, 7)));
    case 1: return Query::lt("x", Value(rng.uniform(0.0, 100.0)));
    case 2: return Query::gte("x", Value(rng.uniform(0.0, 100.0)));
    case 3: return Query::exists("tag");
    case 4:
      return Query::and_({Query::eq("k", Value(rng.uniform_int(0, 7))),
                          Query::lt("x", Value(rng.uniform(0.0, 100.0)))});
    case 5:
      return Query::or_({Query::eq("tag", Value("t1")),
                         Query::gt("nested.v", Value(rng.uniform_int(0, 20)))});
    default:
      return Query::not_(Query::eq("k", Value(rng.uniform_int(0, 7))));
  }
}

class FuzzOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzOracleTest, RandomCrudSequencesAgree) {
  Rng rng(GetParam());
  Collection collection("fuzz");
  collection.create_index("k");
  collection.create_index("x");
  Oracle oracle;
  std::vector<std::string> ids;

  for (int step = 0; step < 600; ++step) {
    double action = rng.uniform();
    if (action < 0.5 || ids.empty()) {
      // Insert.
      Document doc = random_doc(rng);
      std::string id = collection.insert(doc);
      Document stored = *collection.get(id);
      oracle.insert(id, stored);
      ids.push_back(id);
    } else if (action < 0.65) {
      // Remove a random id (possibly already removed).
      const std::string& id =
          ids[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(ids.size()) - 1))];
      EXPECT_EQ(collection.remove(id), oracle.remove(id));
    } else if (action < 0.8) {
      // Replace.
      const std::string& id =
          ids[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(ids.size()) - 1))];
      Document doc = random_doc(rng);
      EXPECT_EQ(collection.replace(id, doc), oracle.replace(id, doc));
    } else {
      // Query: counts must agree.
      Query q = random_query(rng);
      EXPECT_EQ(collection.count(q), oracle.count(q)) << q.to_string();
    }
    if (step % 97 == 0) {
      EXPECT_EQ(collection.size(), oracle.size());
    }
  }
  EXPECT_EQ(collection.size(), oracle.size());
  // Final sweep of queries.
  for (int i = 0; i < 40; ++i) {
    Query q = random_query(rng);
    EXPECT_EQ(collection.count(q), oracle.count(q)) << q.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzOracleTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace mps::docstore
