// Planner tests: the query planner must (a) pick indexed access paths and
// say so through the stats counters, and (b) return byte-identical
// results to the full-scan reference execution, which stays reachable
// through set_planner_enabled(false).
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "docstore/collection.h"

namespace mps::docstore {
namespace {

Value doc(const std::string& user, int t, double spl) {
  return Value(Object{{"user", Value(user)},
                      {"captured_at", Value(t)},
                      {"spl", Value(spl)}});
}

/// A collection with indexes on user and captured_at: 300 docs across 10
/// users, shuffled insertion order so index order != insertion order.
Collection make_indexed_collection() {
  Collection c("obs");
  c.create_index("user");
  c.create_index("captured_at");
  std::vector<int> times;
  for (int i = 0; i < 300; ++i) times.push_back(i * 7 % 500);
  for (int i = 0; i < 300; ++i) {
    int t = times[static_cast<std::size_t>(i)];
    c.insert(doc("u" + std::to_string(i % 10), t, 30.0 + i % 60));
  }
  // A few documents without the indexed fields at all.
  c.insert(Value(Object{{"spl", Value(55.0)}}));
  c.insert(Value(Object{{"user", Value("u3")}}));
  return c;
}

/// Runs `find` twice — planner on and planner off — and asserts identical
/// results (order included) before returning them.
std::vector<Document> find_both_ways(Collection& c, const Query& q,
                                     const FindOptions& options = {}) {
  c.set_planner_enabled(true);
  auto fast = c.find(q, options);
  c.set_planner_enabled(false);
  auto reference = c.find(q, options);
  c.set_planner_enabled(true);
  EXPECT_EQ(fast.size(), reference.size()) << q.to_string();
  for (std::size_t i = 0; i < std::min(fast.size(), reference.size()); ++i)
    EXPECT_EQ(fast[i], reference[i]) << q.to_string() << " at " << i;
  return fast;
}

TEST(PlannerTest, IndexedEqBumpsIndexedCounter) {
  Collection c = make_indexed_collection();
  std::uint64_t before = c.stats().indexed_finds;
  auto results = c.find(Query::eq("user", Value("u3")));
  EXPECT_EQ(results.size(), 31u);  // 30 full docs + 1 user-only doc
  EXPECT_EQ(c.stats().indexed_finds, before + 1);
  EXPECT_GE(c.stats().plans_indexed, 1u);
}

TEST(PlannerTest, NonIndexedFieldFallsBackToScan) {
  Collection c = make_indexed_collection();
  std::uint64_t before = c.stats().scanned_finds;
  auto results = c.find(Query::gt("spl", Value(80.0)));
  EXPECT_FALSE(results.empty());
  EXPECT_EQ(c.stats().scanned_finds, before + 1);
  EXPECT_GE(c.stats().plans_scan, 1u);
}

TEST(PlannerTest, PlannerDisabledCountsAsScan) {
  Collection c = make_indexed_collection();
  c.set_planner_enabled(false);
  std::uint64_t before = c.stats().scanned_finds;
  c.find(Query::eq("user", Value("u3")));
  EXPECT_EQ(c.stats().scanned_finds, before + 1);
}

TEST(PlannerTest, IndexedExecutionEqualsScanExecution) {
  Collection c = make_indexed_collection();
  find_both_ways(c, Query::eq("user", Value("u7")));
  find_both_ways(c, Query::in("user", {Value("u1"), Value("u5"), Value("u5")}));
  find_both_ways(c, Query::range("captured_at", Value(100), Value(200)));
  find_both_ways(c, Query::lte("captured_at", Value(50)));
  find_both_ways(c, Query::gt("captured_at", Value(450)));
  find_both_ways(c, Query::exists("user"));
  find_both_ways(c, Query::ne("user", Value("u0")));
}

TEST(PlannerTest, AndIntersectionUsesMultipleIndexes) {
  Collection c = make_indexed_collection();
  Query q = Query::and_({Query::eq("user", Value("u2")),
                         Query::range("captured_at", Value(0), Value(400))});
  std::uint64_t before = c.stats().plans_intersect;
  auto fast = find_both_ways(c, q);
  EXPECT_GE(c.stats().plans_intersect, before + 1);
  for (const auto& d : fast) EXPECT_EQ(d.get_string("user"), "u2");
}

TEST(PlannerTest, SortByIndexedPathSkipsStableSort) {
  Collection c = make_indexed_collection();
  for (bool descending : {false, true}) {
    FindOptions options;
    options.sort_by = "captured_at";
    options.descending = descending;
    std::uint64_t before = c.stats().plans_sort_index;
    find_both_ways(c, Query::all(), options);
    EXPECT_EQ(c.stats().plans_sort_index, before + 1) << descending;
  }
}

TEST(PlannerTest, SortIndexHonorsSkipAndLimit) {
  Collection c = make_indexed_collection();
  for (bool descending : {false, true}) {
    FindOptions options;
    options.sort_by = "captured_at";
    options.descending = descending;
    options.skip = 13;
    options.limit = 20;
    options.projection = {"captured_at"};
    auto fast = find_both_ways(c, Query::all(), options);
    EXPECT_EQ(fast.size(), 20u);
  }
}

TEST(PlannerTest, SortIndexPlacesMissingFieldDocsLikeStableSort) {
  // The two docs lacking captured_at must land exactly where stable_sort
  // puts documents whose sort key is missing (the null group).
  Collection c = make_indexed_collection();
  FindOptions asc;
  asc.sort_by = "captured_at";
  auto fast = find_both_ways(c, Query::all(), asc);
  EXPECT_EQ(fast.size(), c.size());
  FindOptions desc = asc;
  desc.descending = true;
  find_both_ways(c, Query::all(), desc);
}

TEST(PlannerTest, SortByNonIndexedPathStillSorts) {
  Collection c = make_indexed_collection();
  FindOptions options;
  options.sort_by = "spl";
  auto fast = find_both_ways(c, Query::all(), options);
  for (std::size_t i = 1; i < fast.size(); ++i) {
    auto* a = fast[i - 1].find_path("spl");
    auto* b = fast[i].find_path("spl");
    if (a != nullptr && b != nullptr)
      EXPECT_LE(Value::compare(*a, *b), 0) << i;
  }
}

TEST(PlannerTest, CoveredCountMatchesScanCount) {
  Collection c = make_indexed_collection();
  std::vector<Query> queries = {
      Query::eq("user", Value("u4")),
      Query::in("user", {Value("u0"), Value("u9"), Value("nobody")}),
      Query::lt("captured_at", Value(250)),
      Query::lte("captured_at", Value(250)),
      Query::gt("captured_at", Value(250)),
      Query::gte("captured_at", Value(250)),
      Query::exists("captured_at"),
      Query::range("captured_at", Value(100), Value(101)),
  };
  for (const Query& q : queries) {
    c.set_planner_enabled(true);
    std::size_t fast = c.count(q);
    c.set_planner_enabled(false);
    std::size_t reference = c.count(q);
    c.set_planner_enabled(true);
    EXPECT_EQ(fast, reference) << q.to_string();
  }
  EXPECT_GE(c.stats().plans_covered, queries.size() - 1);
}

TEST(PlannerTest, CoveredCountDoesNotMissEqOnAbsentValue) {
  Collection c = make_indexed_collection();
  EXPECT_EQ(c.count(Query::eq("user", Value("stranger"))), 0u);
}

TEST(PlannerTest, CrossTypeNumericKeysStayExact) {
  // 1 (int) and 1.0 (double) are operator==-equal and compare-equal; the
  // covered paths must count both under either literal, like a scan does.
  Collection c("t");
  c.create_index("k");
  c.insert(Value(Object{{"k", Value(1)}}));
  c.insert(Value(Object{{"k", Value(1.0)}}));
  c.insert(Value(Object{{"k", Value(2)}}));
  for (const Query& q :
       {Query::eq("k", Value(1)), Query::eq("k", Value(1.0))}) {
    c.set_planner_enabled(true);
    std::size_t fast = c.count(q);
    c.set_planner_enabled(false);
    EXPECT_EQ(fast, c.count(q)) << q.to_string();
    c.set_planner_enabled(true);
    EXPECT_EQ(fast, 2u);
  }
}

TEST(PlannerTest, CoveredDistinctAndGroupCountMatchScan) {
  Collection c = make_indexed_collection();
  c.set_planner_enabled(true);
  std::uint64_t before = c.stats().plans_covered;
  auto fast_distinct = c.distinct("user");
  auto fast_groups = c.group_count("user");
  EXPECT_GT(c.stats().plans_covered, before);
  c.set_planner_enabled(false);
  auto ref_distinct = c.distinct("user");
  auto ref_groups = c.group_count("user");
  c.set_planner_enabled(true);
  EXPECT_EQ(fast_distinct, ref_distinct);
  ASSERT_EQ(fast_groups.size(), ref_groups.size());
  for (std::size_t i = 0; i < fast_groups.size(); ++i) {
    EXPECT_EQ(fast_groups[i].first, ref_groups[i].first) << i;
    EXPECT_EQ(fast_groups[i].second, ref_groups[i].second) << i;
  }
}

TEST(PlannerTest, DistinctWithFilterStillCorrect) {
  Collection c = make_indexed_collection();
  Query q = Query::lt("captured_at", Value(100));
  c.set_planner_enabled(true);
  auto fast = c.distinct("user", q);
  c.set_planner_enabled(false);
  auto reference = c.distinct("user", q);
  c.set_planner_enabled(true);
  EXPECT_EQ(fast, reference);
}

TEST(PlannerTest, UpdateManyKeepsIndexedExecutionExact) {
  // After update_many rewrites indexed fields, indexed and scan execution
  // must still agree (reindexing moves slots between multimap groups).
  Collection c = make_indexed_collection();
  c.update_many(Query::eq("user", Value("u1")), [](Document& d) {
    d.as_object().set("captured_at", Value(42));
  });
  find_both_ways(c, Query::eq("captured_at", Value(42)));
  FindOptions options;
  options.sort_by = "captured_at";
  find_both_ways(c, Query::all(), options);
}

TEST(PlannerTest, RandomizedQueriesAgreeWithReference) {
  Rng rng(2024);
  Collection c("f");
  c.create_index("a");
  c.create_index("b");
  for (int i = 0; i < 400; ++i) {
    Object o;
    if (!rng.bernoulli(0.1)) o.set("a", Value(rng.uniform_int(0, 20)));
    if (!rng.bernoulli(0.1))
      o.set("b", Value("s" + std::to_string(rng.uniform_int(0, 5))));
    o.set("c", Value(rng.uniform(0.0, 1.0)));
    c.insert(Value(std::move(o)));
  }
  for (int i = 0; i < 200; ++i) {
    Query q = Query::all();
    switch (rng.uniform_int(0, 4)) {
      case 0: q = Query::eq("a", Value(rng.uniform_int(0, 20))); break;
      case 1:
        q = Query::range("a", Value(rng.uniform_int(0, 10)),
                         Value(rng.uniform_int(10, 21)));
        break;
      case 2: q = Query::eq("b", Value("s" + std::to_string(rng.uniform_int(0, 5)))); break;
      case 3:
        q = Query::and_({Query::gte("a", Value(rng.uniform_int(0, 15))),
                         Query::eq("b", Value("s" + std::to_string(
                                                  rng.uniform_int(0, 5))))});
        break;
      case 4: q = Query::exists("a"); break;
    }
    FindOptions options;
    if (rng.bernoulli(0.5)) {
      options.sort_by = rng.bernoulli(0.5) ? "a" : "c";
      options.descending = rng.bernoulli(0.5);
      options.skip = static_cast<std::size_t>(rng.uniform_int(0, 5));
      options.limit = static_cast<std::size_t>(rng.uniform_int(0, 30));
    }
    find_both_ways(c, q, options);
    c.set_planner_enabled(true);
    std::size_t fast_count = c.count(q);
    c.set_planner_enabled(false);
    std::size_t ref_count = c.count(q);
    c.set_planner_enabled(true);
    EXPECT_EQ(fast_count, ref_count) << q.to_string();
  }
}

}  // namespace
}  // namespace mps::docstore
