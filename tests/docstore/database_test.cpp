#include "docstore/database.h"

#include <gtest/gtest.h>

namespace mps::docstore {
namespace {

TEST(Database, CreatesCollectionsOnDemand) {
  Database db;
  EXPECT_FALSE(db.has_collection("obs"));
  Collection& c = db.collection("obs");
  EXPECT_TRUE(db.has_collection("obs"));
  EXPECT_EQ(c.name(), "obs");
  // Same object on re-access.
  EXPECT_EQ(&db.collection("obs"), &c);
}

TEST(Database, FindCollection) {
  Database db;
  EXPECT_EQ(db.find_collection("x"), nullptr);
  db.collection("x");
  EXPECT_NE(db.find_collection("x"), nullptr);
}

TEST(Database, DropCollection) {
  Database db;
  db.collection("a").insert(Value(Object{{"v", Value(1)}}));
  EXPECT_TRUE(db.drop_collection("a"));
  EXPECT_FALSE(db.drop_collection("a"));
  EXPECT_FALSE(db.has_collection("a"));
}

TEST(Database, CollectionNamesSorted) {
  Database db;
  db.collection("zeta");
  db.collection("alpha");
  db.collection("mid");
  auto names = db.collection_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[2], "zeta");
}

TEST(Database, TotalDocuments) {
  Database db;
  db.collection("a").insert(Value(Object{{"v", Value(1)}}));
  db.collection("a").insert(Value(Object{{"v", Value(2)}}));
  db.collection("b").insert(Value(Object{{"v", Value(3)}}));
  EXPECT_EQ(db.total_documents(), 3u);
}

}  // namespace
}  // namespace mps::docstore
