#include "docstore/collection.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::docstore {
namespace {

Document obs(const char* user, double spl, std::int64_t time,
             const char* provider = "network", double accuracy = 30.0) {
  return Value(Object{{"user", Value(user)},
                      {"spl", Value(spl)},
                      {"time", Value(time)},
                      {"provider", Value(provider)},
                      {"accuracy", Value(accuracy)}});
}

TEST(Collection, InsertAssignsIds) {
  Collection c("obs");
  std::string id1 = c.insert(obs("u1", 50, 1));
  std::string id2 = c.insert(obs("u1", 51, 2));
  EXPECT_NE(id1, id2);
  EXPECT_EQ(c.size(), 2u);
  ASSERT_TRUE(c.get(id1).has_value());
  EXPECT_DOUBLE_EQ(c.get(id1)->get_double("spl"), 50.0);
}

TEST(Collection, InsertHonorsProvidedId) {
  Collection c("obs");
  Document d = obs("u1", 50, 1);
  d.as_object().set("_id", Value("my-id"));
  EXPECT_EQ(c.insert(std::move(d)), "my-id");
  EXPECT_TRUE(c.get("my-id").has_value());
}

TEST(Collection, DuplicateIdThrows) {
  Collection c("obs");
  Document d1 = obs("u1", 50, 1);
  d1.as_object().set("_id", Value("x"));
  c.insert(std::move(d1));
  Document d2 = obs("u2", 51, 2);
  d2.as_object().set("_id", Value("x"));
  EXPECT_THROW(c.insert(std::move(d2)), std::invalid_argument);
}

TEST(Collection, NonObjectInsertThrows) {
  Collection c("obs");
  EXPECT_THROW(c.insert(Value(5)), std::invalid_argument);
  EXPECT_THROW(c.insert(Value(Array{})), std::invalid_argument);
}

TEST(Collection, GetMissingReturnsNullopt) {
  Collection c("obs");
  EXPECT_FALSE(c.get("nope").has_value());
}

TEST(Collection, FindWithFilter) {
  Collection c("obs");
  c.insert(obs("u1", 50, 1, "gps"));
  c.insert(obs("u2", 60, 2, "network"));
  c.insert(obs("u1", 70, 3, "gps"));
  auto res = c.find(Query::eq("user", Value("u1")));
  EXPECT_EQ(res.size(), 2u);
  res = c.find(Query::eq("provider", Value("network")));
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0].get_string("user"), "u2");
}

TEST(Collection, FindSortSkipLimit) {
  Collection c("obs");
  for (int i = 0; i < 10; ++i)
    c.insert(obs("u", 50.0 + i, 100 - i * 10));
  FindOptions opt;
  opt.sort_by = "time";
  opt.skip = 2;
  opt.limit = 3;
  auto res = c.find(Query::all(), opt);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].get_int("time"), 30);
  EXPECT_EQ(res[1].get_int("time"), 40);
  EXPECT_EQ(res[2].get_int("time"), 50);
}

TEST(Collection, FindSortDescending) {
  Collection c("obs");
  c.insert(obs("a", 1, 5));
  c.insert(obs("b", 2, 15));
  c.insert(obs("c", 3, 10));
  FindOptions opt;
  opt.sort_by = "time";
  opt.descending = true;
  auto res = c.find(Query::all(), opt);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].get_int("time"), 15);
  EXPECT_EQ(res[2].get_int("time"), 5);
}

TEST(Collection, SkipBeyondEnd) {
  Collection c("obs");
  c.insert(obs("a", 1, 1));
  FindOptions opt;
  opt.skip = 10;
  EXPECT_TRUE(c.find(Query::all(), opt).empty());
}

TEST(Collection, Projection) {
  Collection c("obs");
  c.insert(obs("u1", 50, 1));
  FindOptions opt;
  opt.projection = {"spl"};
  auto res = c.find(Query::all(), opt);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_TRUE(res[0].find("spl") != nullptr);
  EXPECT_TRUE(res[0].find("_id") != nullptr);
  EXPECT_EQ(res[0].find("user"), nullptr);
}

TEST(Collection, CountMatchesFind) {
  Collection c("obs");
  for (int i = 0; i < 20; ++i)
    c.insert(obs(i % 2 == 0 ? "even" : "odd", i, i));
  Query q = Query::eq("user", Value("even"));
  EXPECT_EQ(c.count(q), c.find(q).size());
  EXPECT_EQ(c.count(Query::all()), 20u);
}

TEST(Collection, ReplaceKeepsId) {
  Collection c("obs");
  std::string id = c.insert(obs("u1", 50, 1));
  EXPECT_TRUE(c.replace(id, obs("u1", 99, 1)));
  EXPECT_DOUBLE_EQ(c.get(id)->get_double("spl"), 99.0);
  EXPECT_EQ(c.get(id)->get_string("_id"), id);
  EXPECT_FALSE(c.replace("missing", obs("x", 1, 1)));
}

TEST(Collection, UpdateManyMutatesMatches) {
  Collection c("obs");
  for (int i = 0; i < 6; ++i) c.insert(obs(i < 3 ? "a" : "b", 50, i));
  std::size_t n = c.update_many(Query::eq("user", Value("a")),
                                [](Document& d) {
                                  d.as_object().set("calibrated", Value(true));
                                });
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(c.count(Query::eq("calibrated", Value(true))), 3u);
}

TEST(Collection, UpdateManyCannotChangeId) {
  Collection c("obs");
  std::string id = c.insert(obs("a", 50, 1));
  c.update_many(Query::all(), [](Document& d) {
    d.as_object().set("_id", Value("hijacked"));
  });
  EXPECT_TRUE(c.get(id).has_value());
  EXPECT_FALSE(c.get("hijacked").has_value());
}

TEST(Collection, RemoveAndRemoveMany) {
  Collection c("obs");
  std::string id = c.insert(obs("a", 50, 1));
  c.insert(obs("b", 51, 2));
  c.insert(obs("b", 52, 3));
  EXPECT_TRUE(c.remove(id));
  EXPECT_FALSE(c.remove(id));
  EXPECT_EQ(c.remove_many(Query::eq("user", Value("b"))), 2u);
  EXPECT_TRUE(c.empty());
}

TEST(Collection, RemovedDocsExcludedFromFind) {
  Collection c("obs");
  std::string id = c.insert(obs("a", 50, 1));
  c.insert(obs("a", 51, 2));
  c.remove(id);
  EXPECT_EQ(c.find(Query::eq("user", Value("a"))).size(), 1u);
}

TEST(Collection, IndexedFindEqualsScan) {
  Collection indexed("i"), plain("p");
  indexed.create_index("user");
  Rng rng(99);
  for (int i = 0; i < 300; ++i) {
    const char* users[] = {"u1", "u2", "u3", "u4"};
    Document d = obs(users[rng.uniform_int(0, 3)],
                     rng.uniform(30, 90), rng.uniform_int(0, 1000));
    indexed.insert(d);
    plain.insert(d);
  }
  for (const char* u : {"u1", "u2", "u3", "u4", "u5"}) {
    Query q = Query::eq("user", Value(u));
    EXPECT_EQ(indexed.count(q), plain.count(q)) << u;
  }
  EXPECT_GT(indexed.stats().indexed_finds, 0u);
}

TEST(Collection, IndexedRangeQueries) {
  Collection c("obs");
  c.create_index("time");
  for (int i = 0; i < 100; ++i) c.insert(obs("u", 50, i));
  EXPECT_EQ(c.count(Query::range("time", Value(10), Value(20))), 10u);
  EXPECT_EQ(c.count(Query::lt("time", Value(5))), 5u);
  EXPECT_EQ(c.count(Query::gte("time", Value(95))), 5u);
  EXPECT_EQ(c.count(Query::lte("time", Value(0))), 1u);
  EXPECT_EQ(c.count(Query::gt("time", Value(99))), 0u);
}

TEST(Collection, IndexInsideAndClause) {
  Collection c("obs");
  c.create_index("user");
  for (int i = 0; i < 50; ++i)
    c.insert(obs(i % 2 ? "a" : "b", 50, i));
  Query q = Query::and_({Query::eq("user", Value("a")),
                         Query::lt("time", Value(10))});
  EXPECT_EQ(c.count(q), 5u);
  EXPECT_GT(c.stats().indexed_finds, 0u);
}

TEST(Collection, IndexCreatedAfterInsertsCoversExisting) {
  Collection c("obs");
  for (int i = 0; i < 20; ++i) c.insert(obs(i % 2 ? "a" : "b", 50, i));
  c.create_index("user");
  EXPECT_EQ(c.count(Query::eq("user", Value("a"))), 10u);
  EXPECT_TRUE(c.has_index("user"));
  EXPECT_FALSE(c.has_index("time"));
}

TEST(Collection, IndexMaintainedAcrossUpdateAndRemove) {
  Collection c("obs");
  c.create_index("user");
  std::string id = c.insert(obs("a", 50, 1));
  c.insert(obs("a", 51, 2));
  c.update_many(Query::eq("time", Value(1)), [](Document& d) {
    d.as_object().set("user", Value("z"));
  });
  EXPECT_EQ(c.count(Query::eq("user", Value("a"))), 1u);
  EXPECT_EQ(c.count(Query::eq("user", Value("z"))), 1u);
  c.remove(id);
  EXPECT_EQ(c.count(Query::eq("user", Value("z"))), 0u);
}

TEST(Collection, Distinct) {
  Collection c("obs");
  c.insert(obs("u1", 50, 1, "gps"));
  c.insert(obs("u2", 51, 2, "network"));
  c.insert(obs("u3", 52, 3, "gps"));
  auto vals = c.distinct("provider");
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_EQ(vals[0].as_string(), "gps");
  EXPECT_EQ(vals[1].as_string(), "network");
}

TEST(Collection, GroupCount) {
  Collection c("obs");
  c.insert(obs("u1", 50, 1, "gps"));
  c.insert(obs("u2", 51, 2, "network"));
  c.insert(obs("u3", 52, 3, "network"));
  auto groups = c.group_count("provider");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first.as_string(), "gps");
  EXPECT_EQ(groups[0].second, 1u);
  EXPECT_EQ(groups[1].first.as_string(), "network");
  EXPECT_EQ(groups[1].second, 2u);
}

TEST(Collection, GroupCountWithFilter) {
  Collection c("obs");
  c.insert(obs("u1", 50, 1, "gps"));
  c.insert(obs("u1", 51, 200, "gps"));
  c.insert(obs("u2", 51, 2, "network"));
  auto groups = c.group_count("provider", Query::lt("time", Value(100)));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].second, 1u);
}

TEST(Collection, GroupAggregate) {
  Collection c("obs");
  c.insert(obs("u1", 50, 1, "gps"));
  c.insert(obs("u1", 60, 2, "gps"));
  c.insert(obs("u2", 80, 3, "network"));
  auto groups = c.group_aggregate("provider", "spl");
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].key.as_string(), "gps");
  EXPECT_EQ(groups[0].count, 2u);
  EXPECT_DOUBLE_EQ(groups[0].sum, 110.0);
  EXPECT_DOUBLE_EQ(groups[0].mean, 55.0);
  EXPECT_DOUBLE_EQ(groups[0].min, 50.0);
  EXPECT_DOUBLE_EQ(groups[0].max, 60.0);
  EXPECT_EQ(groups[1].key.as_string(), "network");
  EXPECT_DOUBLE_EQ(groups[1].mean, 80.0);
}

TEST(Collection, GroupAggregateWithFilterAndMissingFields) {
  Collection c("obs");
  c.insert(obs("u1", 50, 1));
  c.insert(obs("u1", 70, 200));
  c.insert(Value(Object{{"user", Value("u1")}}));  // no spl: skipped
  auto groups = c.group_aggregate("user", "spl", Query::lt("time", Value(100)));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].count, 1u);
  EXPECT_DOUBLE_EQ(groups[0].mean, 50.0);
}

TEST(Collection, GroupAggregateEmptyCollection) {
  Collection c("obs");
  EXPECT_TRUE(c.group_aggregate("user", "spl").empty());
}

TEST(Collection, ForEachVisitsAllLive) {
  Collection c("obs");
  std::string id = c.insert(obs("a", 1, 1));
  c.insert(obs("b", 2, 2));
  c.remove(id);
  int n = 0;
  c.for_each([&](const Document&) { ++n; });
  EXPECT_EQ(n, 1);
}

TEST(Collection, StatsTracking) {
  Collection c("obs");
  c.insert(obs("a", 1, 1));
  std::string id = c.insert(obs("b", 2, 2));
  c.remove(id);
  EXPECT_EQ(c.stats().total_inserts, 2u);
  EXPECT_EQ(c.stats().total_removes, 1u);
  EXPECT_EQ(c.stats().document_count, 1u);
  c.find(Query::eq("user", Value("a")));
  EXPECT_EQ(c.stats().scanned_finds, 1u);
}

// Property test: indexed and unindexed execution agree on random queries.
class IndexEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IndexEquivalenceTest, RandomQueriesAgree) {
  Rng rng(GetParam());
  Collection indexed("i"), plain("p");
  indexed.create_index("k");
  indexed.create_index("n");
  for (int i = 0; i < 200; ++i) {
    Document d = Value(Object{
        {"k", Value(rng.uniform_int(0, 9))},
        {"n", Value(rng.uniform(0.0, 100.0))},
    });
    indexed.insert(d);
    plain.insert(d);
  }
  for (int trial = 0; trial < 50; ++trial) {
    double lo = rng.uniform(0, 100), hi = rng.uniform(0, 100);
    if (lo > hi) std::swap(lo, hi);
    Query q = Query::and_({Query::eq("k", Value(rng.uniform_int(0, 9))),
                           Query::range("n", Value(lo), Value(hi))});
    EXPECT_EQ(indexed.count(q), plain.count(q)) << q.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexEquivalenceTest,
                         ::testing::Values(1, 22, 333, 4444));

}  // namespace
}  // namespace mps::docstore
