// Mutation under an open iteration: update_many's callback is allowed to
// reentrantly remove documents (including the one being updated) and
// insert new ones mid-pass. The two-pass execution must neither crash,
// nor resurrect removed documents, nor visit documents inserted by the
// callback itself — and the planner must not change any of it.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "docstore/collection.h"

namespace mps::docstore {
namespace {

Value doc(int k, const std::string& tag) {
  return Value(Object{{"k", Value(k)}, {"tag", Value(tag)}});
}

TEST(MutationDuringIteration, CallbackRemovingCurrentDocDropsTheUpdate) {
  Collection c("t");
  c.create_index("k");
  std::string id0 = c.insert(doc(1, "a"));
  c.insert(doc(1, "b"));
  c.insert(doc(2, "c"));

  std::size_t updated =
      c.update_many(Query::eq("k", Value(1)), [&](Value& d) {
        if (d.get_string("tag") == "a") c.remove(d.get_string("_id"));
        d.as_object().set("tag", Value("updated"));
      });
  // The removed document is gone — not resurrected with the new tag.
  EXPECT_EQ(updated, 1u);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_FALSE(c.get(id0).has_value());
  auto matches = c.find(Query::eq("tag", Value("updated")));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].get_string("tag"), "updated");
  // The index never points at the dead slot.
  EXPECT_EQ(c.find(Query::eq("k", Value(1))).size(), 1u);
}

TEST(MutationDuringIteration, CallbackRemovingLaterMatchSkipsIt) {
  Collection c("t");
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(c.insert(doc(7, "v" + std::to_string(i))));

  bool first = true;
  std::size_t updated = c.update_many(Query::eq("k", Value(7)), [&](Value& d) {
    if (first) {
      first = false;
      c.remove(ids[2]);  // a match the pass has not reached yet
    }
    d.as_object().set("tag", Value(d.get_string("tag") + "+"));
  });
  EXPECT_EQ(updated, 3u);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.get(ids[2]).has_value());
  for (const std::string& id : {ids[0], ids[1], ids[3]}) {
    auto d = c.get(id);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->get_string("tag").back(), '+');
  }
}

TEST(MutationDuringIteration, CallbackInsertsAreNotVisitedThisPass) {
  Collection c("t");
  c.create_index("k");
  for (int i = 0; i < 3; ++i) c.insert(doc(5, "orig"));

  // Each visited document spawns another match; a scan-while-mutating
  // implementation would either loop forever or crash on reallocation.
  std::size_t updated = c.update_many(Query::eq("k", Value(5)), [&](Value& d) {
    c.insert(doc(5, "spawned"));
    d.as_object().set("tag", Value("seen"));
  });
  EXPECT_EQ(updated, 3u);
  EXPECT_EQ(c.size(), 6u);
  EXPECT_EQ(c.find(Query::eq("tag", Value("seen"))).size(), 3u);
  EXPECT_EQ(c.find(Query::eq("tag", Value("spawned"))).size(), 3u);
  // All six (originals and spawned) are reachable through the index.
  EXPECT_EQ(c.find(Query::eq("k", Value(5))).size(), 6u);
}

TEST(MutationDuringIteration, IndexedFieldMutationKeepsIndexConsistent) {
  Collection c("t");
  c.create_index("k");
  for (int i = 0; i < 10; ++i) c.insert(doc(i % 2, "t" + std::to_string(i)));

  // Move every k==0 document to k==9 while removing half of them.
  int visit = 0;
  c.update_many(Query::eq("k", Value(0)), [&](Value& d) {
    if (++visit % 2 == 0) c.remove(d.get_string("_id"));
    d.as_object().set("k", Value(9));
  });
  // Indexed lookups agree with the full-scan oracle afterwards.
  for (int k : {0, 1, 9}) {
    auto indexed = c.find(Query::eq("k", Value(k)));
    c.set_planner_enabled(false);
    auto scanned = c.find(Query::eq("k", Value(k)));
    c.set_planner_enabled(true);
    EXPECT_EQ(indexed.size(), scanned.size()) << "k=" << k;
  }
  EXPECT_EQ(c.find(Query::eq("k", Value(0))).size(), 0u);
}

// Property: a randomized mix of reentrant removes and inserts under
// update_many leaves planner-on (indexed) and planner-off (reference
// scan) collections in identical states, across seeds.
TEST(MutationDuringIteration, PlannerOnAndOffConvergeAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Collection indexed("indexed");
    indexed.create_index("k");
    Collection reference("reference");
    reference.set_planner_enabled(false);

    auto drive = [&](Collection& c) {
      Rng rng(seed);  // same stream for both collections
      for (int i = 0; i < 60; ++i)
        c.insert(Value(Object{{"_id", Value("d" + std::to_string(i))},
                              {"k", Value(static_cast<std::int64_t>(
                                        rng.uniform(0, 5)))},
                              {"n", Value(i)}}));
      for (int round = 0; round < 4; ++round) {
        auto target = static_cast<std::int64_t>(rng.uniform(0, 5));
        int spawned = 0;
        c.update_many(Query::eq("k", Value(target)), [&](Value& d) {
          double dice = rng.uniform();
          if (dice < 0.3) {
            c.remove(d.get_string("_id"));
          } else if (dice < 0.5) {
            c.insert(Value(Object{
                {"_id", Value("r" + std::to_string(round) + "-" +
                              std::to_string(spawned++))},
                {"k", Value(static_cast<std::int64_t>(rng.uniform(0, 5)))},
                {"n", Value(-1)}}));
          }
          d.as_object().set("k", Value((d.get_int("k") + 1) % 5));
        });
      }
    };
    drive(indexed);
    drive(reference);

    // Identical final states, by value.
    ASSERT_EQ(indexed.size(), reference.size());
    std::set<std::string> left, right;
    indexed.for_each([&](const Value& d) { left.insert(d.to_json()); });
    reference.for_each([&](const Value& d) { right.insert(d.to_json()); });
    EXPECT_EQ(left, right);
    // And identical query answers, indexed vs scanned.
    for (std::int64_t k = 0; k < 5; ++k)
      EXPECT_EQ(indexed.count(Query::eq("k", Value(k))),
                reference.count(Query::eq("k", Value(k))))
          << "k=" << k;
  }
}

}  // namespace
}  // namespace mps::docstore
