#include "docstore/query.h"

#include <gtest/gtest.h>

namespace mps::docstore {
namespace {

Document make_obs(double spl, double accuracy, const char* provider,
                  std::int64_t time) {
  return Value(Object{
      {"spl", Value(spl)},
      {"time", Value(time)},
      {"location",
       Value(Object{{"accuracy", Value(accuracy)}, {"provider", Value(provider)}})}});
}

TEST(Query, AllMatchesEverything) {
  EXPECT_TRUE(Query::all().matches(make_obs(50, 20, "gps", 0)));
  EXPECT_TRUE(Query::all().matches(Value(Object{})));
}

TEST(Query, EqOnTopLevel) {
  Document d = make_obs(55.0, 10.0, "gps", 100);
  EXPECT_TRUE(Query::eq("spl", Value(55.0)).matches(d));
  EXPECT_FALSE(Query::eq("spl", Value(56.0)).matches(d));
}

TEST(Query, EqMissingFieldNeverMatches) {
  Document d = make_obs(55.0, 10.0, "gps", 100);
  EXPECT_FALSE(Query::eq("nope", Value(55.0)).matches(d));
}

TEST(Query, EqNestedPath) {
  Document d = make_obs(55.0, 10.0, "network", 100);
  EXPECT_TRUE(Query::eq("location.provider", Value("network")).matches(d));
  EXPECT_FALSE(Query::eq("location.provider", Value("gps")).matches(d));
}

TEST(Query, NeRequiresFieldPresence) {
  Document d = make_obs(55.0, 10.0, "gps", 100);
  EXPECT_TRUE(Query::ne("spl", Value(1.0)).matches(d));
  EXPECT_FALSE(Query::ne("spl", Value(55.0)).matches(d));
  // Missing field: ne does not match (Mongo semantics differ; ours is strict).
  EXPECT_FALSE(Query::ne("missing", Value(1.0)).matches(d));
}

TEST(Query, OrderingOperators) {
  Document d = make_obs(55.0, 30.0, "network", 100);
  EXPECT_TRUE(Query::lt("location.accuracy", Value(50.0)).matches(d));
  EXPECT_FALSE(Query::lt("location.accuracy", Value(30.0)).matches(d));
  EXPECT_TRUE(Query::lte("location.accuracy", Value(30.0)).matches(d));
  EXPECT_TRUE(Query::gt("spl", Value(54.9)).matches(d));
  EXPECT_FALSE(Query::gt("spl", Value(55.0)).matches(d));
  EXPECT_TRUE(Query::gte("spl", Value(55.0)).matches(d));
}

TEST(Query, MixedIntDoubleComparison) {
  Document d = Value(Object{{"n", Value(5)}});
  EXPECT_TRUE(Query::lt("n", Value(5.5)).matches(d));
  EXPECT_TRUE(Query::eq("n", Value(5.0)).matches(d));
}

TEST(Query, InOperator) {
  Document d = make_obs(55.0, 30.0, "fused", 100);
  EXPECT_TRUE(Query::in("location.provider",
                        {Value("gps"), Value("fused")}).matches(d));
  EXPECT_FALSE(Query::in("location.provider",
                         {Value("gps"), Value("network")}).matches(d));
  EXPECT_FALSE(Query::in("location.provider", {}).matches(d));
}

TEST(Query, Exists) {
  Document d = make_obs(55.0, 30.0, "gps", 100);
  EXPECT_TRUE(Query::exists("location.accuracy").matches(d));
  EXPECT_FALSE(Query::exists("location.altitude").matches(d));
  Document with_null = Value(Object{{"x", Value()}});
  EXPECT_TRUE(Query::exists("x").matches(with_null));
}

TEST(Query, RangeClosedOpen) {
  Query q = Query::range("time", Value(100), Value(200));
  EXPECT_TRUE(q.matches(make_obs(0, 0, "gps", 100)));
  EXPECT_TRUE(q.matches(make_obs(0, 0, "gps", 199)));
  EXPECT_FALSE(q.matches(make_obs(0, 0, "gps", 200)));
  EXPECT_FALSE(q.matches(make_obs(0, 0, "gps", 99)));
}

TEST(Query, AndOrNot) {
  Document d = make_obs(55.0, 30.0, "network", 100);
  Query good = Query::and_({Query::eq("location.provider", Value("network")),
                            Query::lt("location.accuracy", Value(50.0))});
  EXPECT_TRUE(good.matches(d));
  Query bad = Query::and_({Query::eq("location.provider", Value("network")),
                           Query::lt("location.accuracy", Value(10.0))});
  EXPECT_FALSE(bad.matches(d));
  Query either = Query::or_({bad, good});
  EXPECT_TRUE(either.matches(d));
  EXPECT_FALSE(Query::not_(either).matches(d));
  EXPECT_TRUE(Query::and_({}).matches(d));   // vacuous AND
  EXPECT_FALSE(Query::or_({}).matches(d));   // vacuous OR
}

TEST(Query, ToStringReadable) {
  Query q = Query::and_({Query::eq("app", Value("soundcity")),
                         Query::gte("time", Value(0))});
  std::string s = q.to_string();
  EXPECT_NE(s.find("and("), std::string::npos);
  EXPECT_NE(s.find("eq(app"), std::string::npos);
  EXPECT_NE(s.find("gte(time"), std::string::npos);
}

}  // namespace
}  // namespace mps::docstore
