#include "net/radio.h"

#include <gtest/gtest.h>

namespace mps::net {
namespace {

TEST(Radio, TechnologyNames) {
  EXPECT_STREQ(technology_name(Technology::kWifi), "wifi");
  EXPECT_STREQ(technology_name(Technology::kCell3G), "3g");
}

TEST(Radio, DefaultParamsOrdering) {
  // 3G must be strictly more expensive than WiFi in ramp/tail — that is
  // the physical basis of the paper's +50% 3G depletion finding.
  RadioParams wifi = RadioParams::wifi();
  RadioParams cell = RadioParams::cell3g();
  EXPECT_GT(cell.ramp_mj, wifi.ramp_mj);
  EXPECT_GT(cell.tail_mj, wifi.tail_mj);
  EXPECT_GT(cell.tail_duration, wifi.tail_duration);
  EXPECT_GT(cell.latency_base, wifi.latency_base);
}

TEST(Radio, ColdTransferPaysRampAndTail) {
  Radio r(Technology::kWifi);
  Transfer t = r.send(0, 1024);
  RadioParams p = RadioParams::wifi();
  EXPECT_NEAR(t.energy_mj, p.ramp_mj + p.per_message_mj + p.per_kb_mj + p.tail_mj,
              1e-9);
  EXPECT_EQ(r.cold_starts(), 1u);
}

TEST(Radio, WarmTransferSkipsRamp) {
  Radio r(Technology::kCell3G);
  Transfer first = r.send(0, 512);
  // Second transfer just after the first completes, inside the 5 s tail.
  Transfer second = r.send(first.completed_at + 100, 512);
  EXPECT_LT(second.energy_mj, first.energy_mj);
  RadioParams p = RadioParams::cell3g();
  EXPECT_NEAR(second.energy_mj, p.per_message_mj + p.per_kb_mj * 0.5, 1e-9);
  EXPECT_EQ(r.cold_starts(), 1u);
  EXPECT_EQ(r.transfer_count(), 2u);
}

TEST(Radio, TransferAfterTailIsColdAgain) {
  Radio r(Technology::kWifi);
  Transfer first = r.send(0, 100);
  RadioParams p = RadioParams::wifi();
  Transfer later = r.send(first.completed_at + p.tail_duration + 1, 100);
  EXPECT_DOUBLE_EQ(later.energy_mj, first.energy_mj);
  EXPECT_EQ(r.cold_starts(), 2u);
}

TEST(Radio, LatencyGrowsWithSize) {
  Radio r(Technology::kCell3G);
  Transfer small = r.send(0, 100);
  Radio r2(Technology::kCell3G);
  Transfer large = r2.send(0, 100 * 1024);
  EXPECT_GT(large.latency, small.latency);
  EXPECT_EQ(small.completed_at, small.latency);
}

TEST(Radio, EnergyAccumulates) {
  Radio r(Technology::kWifi);
  double total = 0.0;
  TimeMs now = 0;
  for (int i = 0; i < 5; ++i) {
    Transfer t = r.send(now, 1000);
    total += t.energy_mj;
    now = t.completed_at + hours(1);  // always cold
  }
  EXPECT_NEAR(r.total_energy_mj(), total, 1e-9);
  EXPECT_EQ(r.transfer_count(), 5u);
  EXPECT_EQ(r.cold_starts(), 5u);
}

TEST(Radio, BatchingSavesEnergyVersusSingles) {
  // The Figure 16 mechanism: sending 10 observations in one batch is far
  // cheaper than 10 spaced single-observation transfers on 3G.
  Radio batched(Technology::kCell3G);
  Transfer batch = batched.send(0, estimate_message_bytes(10));

  Radio singles(Technology::kCell3G);
  double singles_energy = 0.0;
  TimeMs now = 0;
  for (int i = 0; i < 10; ++i) {
    Transfer t = singles.send(now, estimate_message_bytes(1));
    singles_energy += t.energy_mj;
    now += minutes(5);  // spaced beyond the tail -> each is cold
  }
  EXPECT_LT(batch.energy_mj, singles_energy / 3.0);
}

TEST(Radio, MessageBytesEstimate) {
  EXPECT_GT(estimate_message_bytes(1), 200u);
  EXPECT_GT(estimate_message_bytes(10), estimate_message_bytes(1));
  // Batch overhead is amortized: 10 obs < 10x the bytes of 1 obs.
  EXPECT_LT(estimate_message_bytes(10), 10 * estimate_message_bytes(1));
}

}  // namespace
}  // namespace mps::net
