#include "net/foreground.h"

#include <gtest/gtest.h>

#include "net/radio.h"

namespace mps::net {
namespace {

TEST(ForegroundTraffic, NoneNeverActive) {
  ForegroundTraffic t = ForegroundTraffic::none(hours(10));
  EXPECT_FALSE(t.active_at(0));
  EXPECT_FALSE(t.active_at(hours(5)));
  EXPECT_DOUBLE_EQ(t.active_fraction(), 0.0);
}

TEST(ForegroundTraffic, ZeroRateGeneratesNothing) {
  ForegroundTrafficParams params;
  params.sessions_per_hour = 0.0;
  ForegroundTraffic t(params, days(1), Rng(1));
  EXPECT_TRUE(t.intervals().empty());
}

TEST(ForegroundTraffic, FromIntervals) {
  auto t = ForegroundTraffic::from_intervals({{100, 200}, {300, 400}}, 500);
  EXPECT_FALSE(t.active_at(50));
  EXPECT_TRUE(t.active_at(150));
  EXPECT_FALSE(t.active_at(200));  // end exclusive
  EXPECT_TRUE(t.active_at(399));
  EXPECT_FALSE(t.active_at(450));
}

TEST(ForegroundTraffic, FromIntervalsValidation) {
  EXPECT_THROW(ForegroundTraffic::from_intervals({{200, 100}}, 500),
               std::invalid_argument);
  EXPECT_THROW(ForegroundTraffic::from_intervals({{0, 100}, {50, 150}}, 500),
               std::invalid_argument);
}

TEST(ForegroundTraffic, Deterministic) {
  ForegroundTrafficParams params;
  ForegroundTraffic a(params, days(1), Rng(7));
  ForegroundTraffic b(params, days(1), Rng(7));
  EXPECT_EQ(a.intervals(), b.intervals());
}

TEST(ForegroundTraffic, ActiveFractionTracksParams) {
  // 4 sessions/h of mean 45 s => ~180 s/h active => fraction ~0.05.
  ForegroundTrafficParams params;
  double total = 0.0;
  const int kRuns = 30;
  for (int i = 0; i < kRuns; ++i) {
    ForegroundTraffic t(params, days(10), Rng(100 + i));
    total += t.active_fraction();
  }
  EXPECT_NEAR(total / kRuns, 0.05, 0.015);
}

TEST(ForegroundTraffic, RespectsHorizon) {
  ForegroundTrafficParams params;
  params.sessions_per_hour = 60;
  ForegroundTraffic t(params, hours(2), Rng(3));
  for (const auto& [start, end] : t.intervals()) {
    EXPECT_GE(start, 0);
    EXPECT_LE(end, hours(2));
    EXPECT_LT(start, end);
  }
  EXPECT_THROW(ForegroundTraffic(params, 0, Rng(1)), std::invalid_argument);
}

TEST(Radio, MarkActiveSkipsRamp) {
  Radio radio(Technology::kCell3G);
  EXPECT_FALSE(radio.warm_at(minutes(5)));
  radio.mark_active(minutes(5) + seconds(2));
  EXPECT_TRUE(radio.warm_at(minutes(5)));
  Transfer t = radio.send(minutes(5), 512);
  RadioParams p = RadioParams::cell3g();
  EXPECT_NEAR(t.energy_mj, p.per_message_mj + p.per_kb_mj * 0.5, 1e-9);
  EXPECT_EQ(radio.cold_starts(), 0u);
}

TEST(Radio, MarkActiveDoesNotShrinkWindow) {
  Radio radio(Technology::kWifi);
  radio.mark_active(seconds(100));
  radio.mark_active(seconds(50));  // earlier: must not shrink
  EXPECT_TRUE(radio.warm_at(seconds(100)));
}

}  // namespace
}  // namespace mps::net
