#include "net/connectivity.h"

#include <gtest/gtest.h>

namespace mps::net {
namespace {

TEST(ConnectivityTrace, AlwaysConnected) {
  ConnectivityTrace t = ConnectivityTrace::always_connected(hours(10));
  EXPECT_TRUE(t.connected_at(0));
  EXPECT_TRUE(t.connected_at(hours(5)));
  EXPECT_DOUBLE_EQ(t.uptime_fraction(), 1.0);
  EXPECT_EQ(t.next_connection_at(hours(3)), hours(3));
}

TEST(ConnectivityTrace, FromIntervals) {
  auto t = ConnectivityTrace::from_intervals(
      {{0, 100}, {200, 300}}, 400);
  EXPECT_TRUE(t.connected_at(0));
  EXPECT_TRUE(t.connected_at(99));
  EXPECT_FALSE(t.connected_at(100));  // end exclusive
  EXPECT_FALSE(t.connected_at(150));
  EXPECT_TRUE(t.connected_at(250));
  EXPECT_FALSE(t.connected_at(350));
}

TEST(ConnectivityTrace, FromIntervalsValidation) {
  EXPECT_THROW(ConnectivityTrace::from_intervals({{100, 50}}, 200),
               std::invalid_argument);
  EXPECT_THROW(ConnectivityTrace::from_intervals({{0, 100}, {50, 200}}, 300),
               std::invalid_argument);
  EXPECT_THROW(ConnectivityTrace::from_intervals({{100, 200}, {0, 50}}, 300),
               std::invalid_argument);
}

TEST(ConnectivityTrace, NextConnectionAt) {
  auto t = ConnectivityTrace::from_intervals({{100, 200}, {400, 500}}, 600);
  EXPECT_EQ(t.next_connection_at(0), 100);
  EXPECT_EQ(t.next_connection_at(150), 150);  // already connected
  EXPECT_EQ(t.next_connection_at(200), 400);  // just dropped
  EXPECT_EQ(t.next_connection_at(450), 450);
  EXPECT_EQ(t.next_connection_at(500), -1);   // never reconnects
}

TEST(ConnectivityTrace, UptimeFraction) {
  auto t = ConnectivityTrace::from_intervals({{0, 250}, {500, 750}}, 1000);
  EXPECT_DOUBLE_EQ(t.uptime_fraction(), 0.5);
}

TEST(ConnectivityTrace, GeneratedTraceDeterministic) {
  ConnectivityParams params;
  ConnectivityTrace a(params, days(7), Rng(5));
  ConnectivityTrace b(params, days(7), Rng(5));
  EXPECT_EQ(a.intervals(), b.intervals());
}

TEST(ConnectivityTrace, GeneratedTraceRespectsHorizon) {
  ConnectivityParams params;
  ConnectivityTrace t(params, days(3), Rng(9));
  for (const auto& [start, end] : t.intervals()) {
    EXPECT_GE(start, 0);
    EXPECT_LE(end, days(3));
    EXPECT_LT(start, end);
  }
  EXPECT_EQ(t.horizon(), days(3));
}

TEST(ConnectivityTrace, IntervalsSortedDisjoint) {
  ConnectivityParams params;
  params.mean_up = minutes(30);
  params.mean_down_short = minutes(5);
  ConnectivityTrace t(params, days(2), Rng(13));
  TimeMs prev_end = -1;
  for (const auto& [start, end] : t.intervals()) {
    EXPECT_GT(start, prev_end);
    prev_end = end;
  }
  EXPECT_GT(t.intervals().size(), 5u);  // plenty of churn at these params
}

TEST(ConnectivityTrace, UptimeMatchesParamsRoughly) {
  // mean_up 2h vs mean short-down 10min / long-down 5h (25%):
  // expected downtime mean = 0.75*10min + 0.25*5h = 82.5 min.
  // uptime ~ 120 / (120 + 82.5) = 0.59.
  ConnectivityParams params;
  double total = 0.0;
  const int kRuns = 40;
  for (int i = 0; i < kRuns; ++i) {
    ConnectivityTrace t(params, days(30), Rng(100 + i));
    total += t.uptime_fraction();
  }
  EXPECT_NEAR(total / kRuns, 0.59, 0.08);
}

TEST(ConnectivityTrace, AlwaysConnectedParams) {
  ConnectivityParams params = ConnectivityParams::always_connected();
  ConnectivityTrace t(params, days(30), Rng(3));
  EXPECT_GT(t.uptime_fraction(), 0.999);
}

TEST(ConnectivityTrace, InvalidHorizonThrows) {
  ConnectivityParams params;
  EXPECT_THROW(ConnectivityTrace(params, 0, Rng(1)), std::invalid_argument);
}

TEST(ConnectivityTrace, DisconnectExactlyAtHorizon) {
  // An interval that closes exactly at the horizon: connected up to (not
  // including) the boundary, and next_connection_at never points past it.
  auto t = ConnectivityTrace::from_intervals({{0, 1000}}, 1000);
  EXPECT_TRUE(t.connected_at(999));
  EXPECT_FALSE(t.connected_at(1000));
  EXPECT_FALSE(t.connected_at(5000));
  EXPECT_EQ(t.next_connection_at(1000), -1);
  EXPECT_DOUBLE_EQ(t.uptime_fraction(), 1.0);
}

TEST(ConnectivityTrace, ReconnectAtHorizonBoundaryNeverHappens) {
  // Down window ends exactly at the horizon: the device never comes back.
  auto t = ConnectivityTrace::from_intervals({{0, 500}}, 1000);
  EXPECT_EQ(t.next_connection_at(500), -1);
  EXPECT_EQ(t.next_connection_at(999), -1);
  EXPECT_DOUBLE_EQ(t.uptime_fraction(), 0.5);
}

TEST(ConnectivityTrace, BackToBackFlapsKeepInvariants) {
  // Rapid alternation (1ms up, 1ms down) must stay sorted/disjoint and
  // keep connected_at consistent with the interval set.
  std::vector<std::pair<TimeMs, TimeMs>> intervals;
  for (TimeMs t = 0; t < 100; t += 2) intervals.push_back({t, t + 1});
  auto trace = ConnectivityTrace::from_intervals(intervals, 100);
  for (TimeMs t = 0; t < 100; ++t)
    EXPECT_EQ(trace.connected_at(t), t % 2 == 0) << "t=" << t;
  EXPECT_DOUBLE_EQ(trace.uptime_fraction(), 0.5);
  EXPECT_EQ(trace.next_connection_at(1), 2);
}

TEST(ConnectivityTrace, WithoutWindowsPunchesHoles) {
  auto t = ConnectivityTrace::always_connected(1000);
  auto punched = t.without_windows({{200, 300}, {600, 700}});
  EXPECT_EQ(punched.horizon(), 1000);
  EXPECT_TRUE(punched.connected_at(100));
  EXPECT_FALSE(punched.connected_at(250));
  EXPECT_TRUE(punched.connected_at(300));  // window end exclusive
  EXPECT_FALSE(punched.connected_at(650));
  EXPECT_TRUE(punched.connected_at(900));
  EXPECT_EQ(punched.next_connection_at(250), 300);
  EXPECT_DOUBLE_EQ(punched.uptime_fraction(), 0.8);
}

TEST(ConnectivityTrace, WithoutWindowsMergesOverlapsAndIgnoresDegenerate) {
  auto t = ConnectivityTrace::always_connected(1000);
  // Unsorted, overlapping, zero-length and inverted windows.
  auto punched = t.without_windows(
      {{500, 600}, {550, 650}, {100, 100}, {400, 300}, {640, 660}});
  EXPECT_TRUE(punched.connected_at(100));  // zero-length window ignored
  EXPECT_TRUE(punched.connected_at(350));  // inverted window ignored
  EXPECT_FALSE(punched.connected_at(500));
  EXPECT_FALSE(punched.connected_at(625));
  EXPECT_FALSE(punched.connected_at(655));
  EXPECT_TRUE(punched.connected_at(660));
  // Intervals remain sorted and disjoint after the merge.
  TimeMs prev_end = -1;
  for (const auto& [start, end] : punched.intervals()) {
    EXPECT_GT(start, prev_end);
    EXPECT_LT(start, end);
    prev_end = end;
  }
}

TEST(ConnectivityTrace, WithoutWindowsEmptyIsIdentity) {
  ConnectivityParams params;
  ConnectivityTrace t(params, days(2), Rng(21));
  ConnectivityTrace same = t.without_windows({});
  EXPECT_EQ(same.intervals(), t.intervals());
  EXPECT_EQ(same.horizon(), t.horizon());
}

TEST(ConnectivityTrace, WithoutWindowsSwallowingEverything) {
  auto t = ConnectivityTrace::from_intervals({{100, 200}, {300, 400}}, 500);
  auto punched = t.without_windows({{0, 500}});
  EXPECT_TRUE(punched.intervals().empty());
  EXPECT_DOUBLE_EQ(punched.uptime_fraction(), 0.0);
  EXPECT_EQ(punched.next_connection_at(0), -1);
  EXPECT_EQ(punched.horizon(), 500);
}

TEST(ConnectivityTrace, ConnectedAtMatchesNextConnectionInvariant) {
  ConnectivityParams params;
  params.mean_up = hours(1);
  ConnectivityTrace t(params, days(5), Rng(77));
  for (TimeMs probe = 0; probe < days(5); probe += minutes(17)) {
    TimeMs next = t.next_connection_at(probe);
    if (t.connected_at(probe)) {
      EXPECT_EQ(next, probe);
    } else if (next >= 0) {
      EXPECT_GT(next, probe);
      EXPECT_TRUE(t.connected_at(next));
    }
  }
}

}  // namespace
}  // namespace mps::net
