#include "net/connectivity.h"

#include <gtest/gtest.h>

namespace mps::net {
namespace {

TEST(ConnectivityTrace, AlwaysConnected) {
  ConnectivityTrace t = ConnectivityTrace::always_connected(hours(10));
  EXPECT_TRUE(t.connected_at(0));
  EXPECT_TRUE(t.connected_at(hours(5)));
  EXPECT_DOUBLE_EQ(t.uptime_fraction(), 1.0);
  EXPECT_EQ(t.next_connection_at(hours(3)), hours(3));
}

TEST(ConnectivityTrace, FromIntervals) {
  auto t = ConnectivityTrace::from_intervals(
      {{0, 100}, {200, 300}}, 400);
  EXPECT_TRUE(t.connected_at(0));
  EXPECT_TRUE(t.connected_at(99));
  EXPECT_FALSE(t.connected_at(100));  // end exclusive
  EXPECT_FALSE(t.connected_at(150));
  EXPECT_TRUE(t.connected_at(250));
  EXPECT_FALSE(t.connected_at(350));
}

TEST(ConnectivityTrace, FromIntervalsValidation) {
  EXPECT_THROW(ConnectivityTrace::from_intervals({{100, 50}}, 200),
               std::invalid_argument);
  EXPECT_THROW(ConnectivityTrace::from_intervals({{0, 100}, {50, 200}}, 300),
               std::invalid_argument);
  EXPECT_THROW(ConnectivityTrace::from_intervals({{100, 200}, {0, 50}}, 300),
               std::invalid_argument);
}

TEST(ConnectivityTrace, NextConnectionAt) {
  auto t = ConnectivityTrace::from_intervals({{100, 200}, {400, 500}}, 600);
  EXPECT_EQ(t.next_connection_at(0), 100);
  EXPECT_EQ(t.next_connection_at(150), 150);  // already connected
  EXPECT_EQ(t.next_connection_at(200), 400);  // just dropped
  EXPECT_EQ(t.next_connection_at(450), 450);
  EXPECT_EQ(t.next_connection_at(500), -1);   // never reconnects
}

TEST(ConnectivityTrace, UptimeFraction) {
  auto t = ConnectivityTrace::from_intervals({{0, 250}, {500, 750}}, 1000);
  EXPECT_DOUBLE_EQ(t.uptime_fraction(), 0.5);
}

TEST(ConnectivityTrace, GeneratedTraceDeterministic) {
  ConnectivityParams params;
  ConnectivityTrace a(params, days(7), Rng(5));
  ConnectivityTrace b(params, days(7), Rng(5));
  EXPECT_EQ(a.intervals(), b.intervals());
}

TEST(ConnectivityTrace, GeneratedTraceRespectsHorizon) {
  ConnectivityParams params;
  ConnectivityTrace t(params, days(3), Rng(9));
  for (const auto& [start, end] : t.intervals()) {
    EXPECT_GE(start, 0);
    EXPECT_LE(end, days(3));
    EXPECT_LT(start, end);
  }
  EXPECT_EQ(t.horizon(), days(3));
}

TEST(ConnectivityTrace, IntervalsSortedDisjoint) {
  ConnectivityParams params;
  params.mean_up = minutes(30);
  params.mean_down_short = minutes(5);
  ConnectivityTrace t(params, days(2), Rng(13));
  TimeMs prev_end = -1;
  for (const auto& [start, end] : t.intervals()) {
    EXPECT_GT(start, prev_end);
    prev_end = end;
  }
  EXPECT_GT(t.intervals().size(), 5u);  // plenty of churn at these params
}

TEST(ConnectivityTrace, UptimeMatchesParamsRoughly) {
  // mean_up 2h vs mean short-down 10min / long-down 5h (25%):
  // expected downtime mean = 0.75*10min + 0.25*5h = 82.5 min.
  // uptime ~ 120 / (120 + 82.5) = 0.59.
  ConnectivityParams params;
  double total = 0.0;
  const int kRuns = 40;
  for (int i = 0; i < kRuns; ++i) {
    ConnectivityTrace t(params, days(30), Rng(100 + i));
    total += t.uptime_fraction();
  }
  EXPECT_NEAR(total / kRuns, 0.59, 0.08);
}

TEST(ConnectivityTrace, AlwaysConnectedParams) {
  ConnectivityParams params = ConnectivityParams::always_connected();
  ConnectivityTrace t(params, days(30), Rng(3));
  EXPECT_GT(t.uptime_fraction(), 0.999);
}

TEST(ConnectivityTrace, InvalidHorizonThrows) {
  ConnectivityParams params;
  EXPECT_THROW(ConnectivityTrace(params, 0, Rng(1)), std::invalid_argument);
}

TEST(ConnectivityTrace, ConnectedAtMatchesNextConnectionInvariant) {
  ConnectivityParams params;
  params.mean_up = hours(1);
  ConnectivityTrace t(params, days(5), Rng(77));
  for (TimeMs probe = 0; probe < days(5); probe += minutes(17)) {
    TimeMs next = t.next_connection_at(probe);
    if (t.connected_at(probe)) {
      EXPECT_EQ(next, probe);
    } else if (next >= 0) {
      EXPECT_GT(next, probe);
      EXPECT_TRUE(t.connected_at(next));
    }
  }
}

}  // namespace
}  // namespace mps::net
