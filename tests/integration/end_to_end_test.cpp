// Full-stack integration: simulated phones -> GoFlow client (buffering,
// store-and-forward) -> broker (Figure 3 topology) -> GoFlow server
// (ingest, storage) -> data API -> calibration -> BLUE assimilation.
#include <gtest/gtest.h>

#include <memory>

#include "assim/assimilator.h"
#include "assim/city_noise_model.h"
#include "calib/calibration.h"
#include "client/goflow_client.h"
#include "core/goflow_server.h"
#include "crowd/ambient.h"

namespace mps {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  EndToEndTest() : server(sim, broker, db) {
    auto reg = server.register_app("soundcity").value_or_throw();
    admin_token = reg.admin_token;
    client_token =
        server
            .register_account(admin_token, "soundcity", "field", core::Role::kClient)
            .value_or_throw();
  }

  struct Device {
    std::unique_ptr<phone::Phone> phone;
    std::unique_ptr<client::GoFlowClient> goflow;
  };

  Device make_device(const std::string& id, const phone::DeviceModelSpec& model,
                     std::uint64_t seed, std::size_t buffer_size,
                     double x, double y) {
    auto channels =
        server.login_client(client_token, "soundcity", id).value_or_throw();
    phone::PhoneConfig pc;
    pc.model = model;
    pc.user = id;
    pc.seed = seed;
    pc.connectivity = net::ConnectivityParams::always_connected();
    pc.horizon = days(3);
    Device d;
    d.phone = std::make_unique<phone::Phone>(pc);
    client::ClientConfig cc =
        client::ClientConfig::v1_3(id, channels.exchange, buffer_size);
    d.goflow = std::make_unique<client::GoFlowClient>(
        sim, broker, *d.phone, cc, [](TimeMs) { return 62.0; },
        [x, y](TimeMs) { return std::pair<double, double>{x, y}; });
    return d;
  }

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server;
  std::string admin_token;
  std::string client_token;
};

TEST_F(EndToEndTest, ObservationsFlowFromPhoneToStore) {
  Device d = make_device("mob1", phone::top20_catalog().front(), 1, 10,
                         5000, 5000);
  d.goflow->start();
  sim.run_until(hours(6));
  // 6h at 5-min period = 72 observations, 7 full batches of 10 uploaded.
  EXPECT_EQ(d.goflow->stats().observations_recorded, 72u);
  EXPECT_EQ(d.goflow->stats().uploads, 7u);
  EXPECT_EQ(server.total_observations(), 70u);

  core::ObservationFilter filter;
  filter.app = "soundcity";
  EXPECT_EQ(server.count_observations(admin_token, filter).value_or_throw(),
            70u);
  // Stored docs carry ingest enrichment.
  auto docs = server.query_observations(admin_token, filter).value_or_throw();
  EXPECT_EQ(docs[0].get_string("client"), "mob1");
  EXPECT_GE(docs[0].get_int("delay_ms"), 0);
}

TEST_F(EndToEndTest, MultipleDevicesIsolatedPerUserQueries) {
  Device a = make_device("mobA", phone::top20_catalog()[0], 1, 1, 1000, 1000);
  Device b = make_device("mobB", phone::top20_catalog()[5], 2, 1, 2000, 2000);
  a.goflow->start();
  b.goflow->start();
  sim.run_until(hours(2) + seconds(5));  // include the final transfer
  core::ObservationFilter fa;
  fa.app = "soundcity";
  fa.user = "mobA";
  core::ObservationFilter fb;
  fb.app = "soundcity";
  fb.user = "mobB";
  std::size_t na = server.count_observations(admin_token, fa).value_or_throw();
  std::size_t nb = server.count_observations(admin_token, fb).value_or_throw();
  EXPECT_EQ(na, 24u);
  EXPECT_EQ(nb, 24u);
  core::AppAnalytics analytics = server.analytics("soundcity").value_or_throw();
  EXPECT_EQ(analytics.observations_stored, 48u);
  EXPECT_EQ(analytics.clients_logged_in, 2u);
}

TEST_F(EndToEndTest, DelayMeasuredThroughStack) {
  // Buffered client: first observation of each batch waits ~45 min.
  Device d = make_device("mob1", phone::top20_catalog().front(), 3, 10,
                         5000, 5000);
  d.goflow->start();
  sim.run_until(hours(1));
  core::AppAnalytics analytics = server.analytics("soundcity").value_or_throw();
  ASSERT_GT(analytics.delay_stats.count(), 0u);
  EXPECT_NEAR(analytics.delay_stats.max(), static_cast<double>(minutes(45)),
              static_cast<double>(minutes(1)));
}

TEST_F(EndToEndTest, QueryFeedsAssimilation) {
  // Several devices at distinct positions; retrieve their localized
  // observations from the server and assimilate against a flat background.
  std::vector<Device> devices;
  for (int i = 0; i < 6; ++i) {
    devices.push_back(make_device("mob" + std::to_string(i),
                                  phone::top20_catalog()[i], 10 + i, 5,
                                  2000.0 + i * 2500.0, 8000.0));
    devices.back().goflow->start();
  }
  sim.run_until(hours(8));

  core::ObservationFilter filter;
  filter.app = "soundcity";
  filter.localized_only = true;
  filter.max_accuracy_m = 100.0;
  auto docs = server.query_observations(admin_token, filter).value_or_throw();
  ASSERT_GT(docs.size(), 20u);

  std::vector<phone::Observation> observations;
  for (const Value& doc : docs)
    observations.push_back(phone::Observation::from_document(doc));

  assim::Grid background(32, 32, 20'000, 20'000, 45.0);
  assim::ConversionStats stats;
  assim::BlueResult result = assim::assimilate(
      background, observations, assim::BlueParams{},
      assim::ObservationPolicy{}, assim::identity_calibration(), &stats);
  EXPECT_EQ(stats.accepted, docs.size());
  // Ambient is 62 dB at the devices; the analysis must move that way.
  EXPECT_GT(result.analysis.sample(5000, 8000), 47.0);
  EXPECT_LT(result.residual_rms, result.innovation_rms);
}

TEST_F(EndToEndTest, CalibrationIntegratesWithServerData) {
  // Two models with very different biases sense the same 62 dB ambient;
  // after per-model calibration their stored readings align.
  const phone::DeviceModelSpec* low = phone::find_model("SAMSUNG GT-I9305");
  const phone::DeviceModelSpec* high = phone::find_model("SONY D2303");
  ASSERT_NE(low, nullptr);
  ASSERT_NE(high, nullptr);
  Device a = make_device("mobL", *low, 21, 1, 3000, 3000);
  Device b = make_device("mobH", *high, 22, 1, 3000, 3000);
  a.goflow->start();
  b.goflow->start();
  sim.run_until(hours(10));

  // Calibration database built from reference sessions.
  calib::CalibrationDatabase cal;
  Rng rng(5);
  for (const auto* spec : {low, high}) {
    phone::Microphone mic(*spec);
    std::vector<std::pair<double, double>> pairs;
    for (int i = 0; i < 200; ++i) {
      double ref = rng.uniform(55, 85);
      pairs.emplace_back(mic.measure(ref, rng), ref);
    }
    cal.add_session(spec->id, pairs);
  }

  auto mean_spl = [&](const std::string& user, bool corrected) {
    core::ObservationFilter f;
    f.app = "soundcity";
    f.user = user;
    auto docs = server.query_observations(admin_token, f).value_or_throw();
    RunningStats stats;
    for (const Value& doc : docs) {
      double spl = doc.get_double("spl");
      if (corrected) spl = cal.correct(doc.get_string("model"), spl);
      stats.add(spl);
    }
    return stats.mean();
  };
  double raw_gap = std::abs(mean_spl("mobL", false) - mean_spl("mobH", false));
  double corrected_gap =
      std::abs(mean_spl("mobL", true) - mean_spl("mobH", true));
  EXPECT_GT(raw_gap, 8.0);        // -8 vs +8 dB biases
  EXPECT_LT(corrected_gap, 2.0);  // tamed per-model
}

TEST_F(EndToEndTest, BackgroundJobComputesModelStatistics) {
  Device d = make_device("mob1", phone::top20_catalog().front(), 31, 1,
                         4000, 4000);
  d.goflow->start();
  sim.run_until(hours(2));
  core::JobId job =
      server
          .submit_job(admin_token, "soundcity", "per-model-count",
                      [](docstore::Database& database) {
                        auto groups =
                            database.collection("observations")
                                .group_count("model");
                        Object out;
                        for (const auto& [model, n] : groups)
                          out.set(model.as_string(),
                                  Value(static_cast<std::int64_t>(n)));
                        return Value(std::move(out));
                      },
                      minutes(1))
          .value_or_throw();
  sim.run_until(hours(2) + minutes(2));
  Value info = server.job_info(job).value_or_throw();
  EXPECT_EQ(info.get_string("status"), "done");
  EXPECT_EQ(info.at("result").get_int("SAMSUNG GT-I9505"), 24);
}

}  // namespace
}  // namespace mps
