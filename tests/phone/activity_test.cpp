#include "phone/activity.h"

#include <map>

#include <gtest/gtest.h>

namespace mps::phone {
namespace {

std::map<Activity, int> sample_distribution(const ActivityModel& model,
                                            TimeMs t, int n, Rng& rng) {
  std::map<Activity, int> counts;
  for (int i = 0; i < n; ++i) ++counts[model.sample(t, rng).recognized];
  return counts;
}

TEST(ActivityModel, StillDominatesAtSeventyPercent) {
  ActivityModel model;
  Rng rng(1);
  // Sample across the whole day to average out commute effects.
  std::map<Activity, int> counts;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    TimeMs t = hours(i % 24);
    ++counts[model.sample(t, rng).recognized];
  }
  EXPECT_NEAR(counts[Activity::kStill] / static_cast<double>(n), 0.68, 0.04);
}

TEST(ActivityModel, UnqualifiedAroundTwentyPercent) {
  ActivityModel model;
  Rng rng(2);
  const int n = 40000;
  int unqualified = 0;
  for (int i = 0; i < n; ++i) {
    Activity a = model.sample(hours(i % 24), rng).recognized;
    if (a == Activity::kUnknown || a == Activity::kUndefined) ++unqualified;
  }
  EXPECT_NEAR(unqualified / static_cast<double>(n), 0.18, 0.03);
}

TEST(ActivityModel, MovingUnderTenPercent) {
  ActivityModel model;
  Rng rng(3);
  const int n = 40000;
  int moving = 0;
  for (int i = 0; i < n; ++i) {
    Activity a = model.sample(hours(i % 24), rng).recognized;
    if (a == Activity::kFoot || a == Activity::kBicycle ||
        a == Activity::kVehicle)
      ++moving;
  }
  EXPECT_LT(moving / static_cast<double>(n), 0.12);
  EXPECT_GT(moving / static_cast<double>(n), 0.04);
}

TEST(ActivityModel, CommuteHoursMoreMobile) {
  ActivityModel model;
  Rng rng1(4), rng2(4);
  auto moving_share = [&](TimeMs t, Rng& rng) {
    int moving = 0;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
      Activity a = model.sample(t, rng).recognized;
      if (a == Activity::kFoot || a == Activity::kBicycle ||
          a == Activity::kVehicle)
        ++moving;
    }
    return moving / static_cast<double>(n);
  };
  double commute = moving_share(hours(8), rng1);   // 8 AM
  double midnight = moving_share(hours(2), rng2);  // 2 AM
  EXPECT_GT(commute, midnight + 0.03);
}

TEST(ActivityModel, QualifiedReadingsHaveHighConfidence) {
  ActivityModel model;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    ActivityReading r = model.sample(hours(12), rng);
    if (r.recognized != Activity::kUnknown &&
        r.recognized != Activity::kUndefined) {
      EXPECT_GE(r.confidence, 0.8);
    } else if (r.recognized == Activity::kUnknown) {
      EXPECT_LT(r.confidence, 0.8);
      EXPECT_GE(r.confidence, 0.3);
    } else {
      EXPECT_DOUBLE_EQ(r.confidence, 0.0);
    }
  }
}

TEST(ActivityModel, AllSevenClassesAppear) {
  ActivityModel model;
  Rng rng(6);
  std::map<Activity, int> counts;
  for (int i = 0; i < 100000; ++i)
    ++counts[model.sample(hours(i % 24), rng).recognized];
  EXPECT_EQ(counts.size(), 7u);
}

TEST(ActivityModel, TrueActivityAlwaysConcrete) {
  ActivityModel model;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    ActivityReading r = model.sample(hours(i % 24), rng);
    EXPECT_NE(r.true_activity, Activity::kUnknown);
    EXPECT_NE(r.true_activity, Activity::kUndefined);
  }
}

TEST(ActivityModel, CustomParams) {
  ActivityModelParams params;
  params.p_still = 0.95;
  params.p_foot = 0.01;
  params.p_bicycle = 0.005;
  params.p_vehicle = 0.005;
  params.p_tilting = 0.01;
  ActivityModel model(params);
  Rng rng(8);
  auto counts = sample_distribution(model, hours(12), 20000, rng);
  EXPECT_GT(counts[Activity::kStill], 17000);
}

}  // namespace
}  // namespace mps::phone
