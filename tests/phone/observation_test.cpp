#include "phone/observation.h"

#include <gtest/gtest.h>

namespace mps::phone {
namespace {

Observation sample_obs() {
  Observation obs;
  obs.user = "u-1";
  obs.model = "SAMSUNG GT-I9505";
  obs.captured_at = 123456;
  obs.spl_db = 58.25;
  obs.mode = SensingMode::kManual;
  obs.activity = Activity::kFoot;
  LocationFix fix;
  fix.provider = LocationProvider::kGps;
  fix.x_m = 1200.5;
  fix.y_m = 880.0;
  fix.accuracy_m = 12.0;
  obs.location = fix;
  return obs;
}

TEST(Observation, DocumentRoundTripWithLocation) {
  Observation obs = sample_obs();
  Observation back = Observation::from_document(obs.to_document());
  EXPECT_EQ(back.user, obs.user);
  EXPECT_EQ(back.model, obs.model);
  EXPECT_EQ(back.captured_at, obs.captured_at);
  EXPECT_DOUBLE_EQ(back.spl_db, obs.spl_db);
  EXPECT_EQ(back.mode, obs.mode);
  EXPECT_EQ(back.activity, obs.activity);
  ASSERT_TRUE(back.location.has_value());
  EXPECT_EQ(back.location->provider, LocationProvider::kGps);
  EXPECT_DOUBLE_EQ(back.location->x_m, 1200.5);
  EXPECT_DOUBLE_EQ(back.location->accuracy_m, 12.0);
}

TEST(Observation, DocumentRoundTripWithoutLocation) {
  Observation obs = sample_obs();
  obs.location.reset();
  Value doc = obs.to_document();
  EXPECT_EQ(doc.find("location"), nullptr);
  Observation back = Observation::from_document(doc);
  EXPECT_FALSE(back.location.has_value());
}

TEST(Observation, DocumentSurvivesJsonSerialization) {
  Observation obs = sample_obs();
  Value doc = Value::parse_json(obs.to_document().to_json());
  Observation back = Observation::from_document(doc);
  EXPECT_EQ(back.user, obs.user);
  EXPECT_DOUBLE_EQ(back.spl_db, obs.spl_db);
  ASSERT_TRUE(back.location.has_value());
  EXPECT_DOUBLE_EQ(back.location->y_m, 880.0);
}

TEST(Observation, FromDocumentRejectsNonObject) {
  EXPECT_THROW(Observation::from_document(Value(1)), std::runtime_error);
}

TEST(Observation, NameRoundTrips) {
  for (SensingMode m : {SensingMode::kOpportunistic, SensingMode::kManual,
                        SensingMode::kJourney})
    EXPECT_EQ(sensing_mode_from_name(sensing_mode_name(m)), m);
  for (LocationProvider p :
       {LocationProvider::kGps, LocationProvider::kNetwork,
        LocationProvider::kFused})
    EXPECT_EQ(location_provider_from_name(location_provider_name(p)), p);
  for (Activity a : {Activity::kUndefined, Activity::kUnknown,
                     Activity::kTilting, Activity::kStill, Activity::kFoot,
                     Activity::kBicycle, Activity::kVehicle})
    EXPECT_EQ(activity_from_name(activity_name(a)), a);
}

TEST(Observation, UnknownNamesThrow) {
  EXPECT_THROW(sensing_mode_from_name("bogus"), std::invalid_argument);
  EXPECT_THROW(location_provider_from_name("bogus"), std::invalid_argument);
  EXPECT_THROW(activity_from_name("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace mps::phone
