#include "phone/battery.h"

#include <gtest/gtest.h>

namespace mps::phone {
namespace {

TEST(Battery, StartsAtConfiguredFraction) {
  Battery b(1'000'000, 0.8, 100);
  EXPECT_DOUBLE_EQ(b.level_fraction(), 0.8);
  EXPECT_DOUBLE_EQ(b.level_percent(), 80.0);
  EXPECT_FALSE(b.depleted());
}

TEST(Battery, BaselineDrainIntegratesOverTime) {
  // 100 mW for 1000 s = 100 J = 100,000 mJ.
  Battery b(1'000'000, 1.0, 100);
  b.advance_to(seconds(1000));
  EXPECT_NEAR(b.total_drained_mj(), 100'000, 1e-6);
  EXPECT_NEAR(b.level_fraction(), 0.9, 1e-9);
}

TEST(Battery, DiscreteDrain) {
  Battery b(1'000'000, 1.0, 0);
  b.drain(250'000);
  EXPECT_NEAR(b.level_fraction(), 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(b.discrete_drained_mj(), 250'000);
}

TEST(Battery, NegativeDrainIgnored) {
  Battery b(1'000'000, 1.0, 0);
  b.drain(-5);
  EXPECT_DOUBLE_EQ(b.level_fraction(), 1.0);
}

TEST(Battery, AdvanceBackwardsIsNoop) {
  Battery b(1'000'000, 1.0, 100);
  b.advance_to(seconds(10));
  double level = b.level_fraction();
  b.advance_to(seconds(5));
  EXPECT_DOUBLE_EQ(b.level_fraction(), level);
}

TEST(Battery, LevelClampsAtZero) {
  Battery b(1000, 1.0, 0);
  b.drain(5000);
  EXPECT_DOUBLE_EQ(b.level_fraction(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(Battery, MonotoneNonIncreasing) {
  Battery b(10'000'000, 0.8, 150);
  double prev = b.level_fraction();
  for (int i = 1; i <= 100; ++i) {
    b.advance_to(minutes(i));
    if (i % 7 == 0) b.drain(500);
    EXPECT_LE(b.level_fraction(), prev);
    prev = b.level_fraction();
  }
}

TEST(Battery, CombinedAccounting) {
  Battery b(1'000'000, 1.0, 200);
  b.advance_to(seconds(100));  // 20,000 mJ baseline
  b.drain(30'000);
  EXPECT_NEAR(b.total_drained_mj(), 50'000, 1e-6);
  EXPECT_NEAR(b.discrete_drained_mj(), 30'000, 1e-6);
}

}  // namespace
}  // namespace mps::phone
