#include "phone/phone.h"

#include <gtest/gtest.h>

namespace mps::phone {
namespace {

PhoneConfig test_config(std::uint64_t seed = 42) {
  PhoneConfig c;
  c.model = top20_catalog().front();
  c.user = "tester";
  c.seed = seed;
  c.connectivity = net::ConnectivityParams::always_connected();
  c.horizon = days(2);
  return c;
}

TEST(Phone, SenseProducesPopulatedObservation) {
  Phone phone(test_config());
  Observation obs = phone.sense(minutes(10), SensingMode::kOpportunistic,
                                55.0, 100.0, 200.0);
  EXPECT_EQ(obs.user, "tester");
  EXPECT_EQ(obs.model, "SAMSUNG GT-I9505");
  EXPECT_EQ(obs.captured_at, minutes(10));
  EXPECT_GT(obs.spl_db, 20.0);
  EXPECT_LT(obs.spl_db, 110.0);
  EXPECT_EQ(obs.mode, SensingMode::kOpportunistic);
  EXPECT_EQ(phone.observation_count(), 1u);
}

TEST(Phone, DeterministicGivenSeed) {
  Phone a(test_config(7)), b(test_config(7));
  for (int i = 0; i < 50; ++i) {
    Observation oa = a.sense(minutes(i), SensingMode::kOpportunistic, 50, 0, 0);
    Observation ob = b.sense(minutes(i), SensingMode::kOpportunistic, 50, 0, 0);
    EXPECT_DOUBLE_EQ(oa.spl_db, ob.spl_db);
    EXPECT_EQ(oa.location.has_value(), ob.location.has_value());
    EXPECT_EQ(oa.activity, ob.activity);
  }
}

TEST(Phone, DifferentSeedsDiverge) {
  Phone a(test_config(1)), b(test_config(2));
  int identical = 0;
  for (int i = 0; i < 50; ++i) {
    Observation oa = a.sense(minutes(i), SensingMode::kOpportunistic, 50, 0, 0);
    Observation ob = b.sense(minutes(i), SensingMode::kOpportunistic, 50, 0, 0);
    if (oa.spl_db == ob.spl_db) ++identical;
  }
  EXPECT_LT(identical, 5);
}

TEST(Phone, SensingDrainsBattery) {
  Phone phone(test_config());
  double before = phone.battery().level_fraction();
  for (int i = 0; i < 100; ++i)
    phone.sense(seconds(i), SensingMode::kOpportunistic, 50, 0, 0);
  EXPECT_LT(phone.battery().level_fraction(), before);
}

TEST(Phone, GpsFixCostsMoreEnergy) {
  // Journey mode takes many GPS fixes; compare net discrete drain.
  PhoneConfig config = test_config(3);
  Phone journey_phone(config);
  Phone opp_phone(test_config(3));
  for (int i = 0; i < 500; ++i) {
    journey_phone.sense(seconds(i), SensingMode::kJourney, 50, 0, 0);
    opp_phone.sense(seconds(i), SensingMode::kOpportunistic, 50, 0, 0);
  }
  EXPECT_GT(journey_phone.battery().discrete_drained_mj(),
            opp_phone.battery().discrete_drained_mj());
}

TEST(Phone, TransmitDrainsBatteryAndCountsTransfers) {
  Phone phone(test_config());
  double before = phone.battery().discrete_drained_mj();
  net::Transfer t = phone.transmit(minutes(1), 2048);
  EXPECT_GT(t.energy_mj, 0.0);
  EXPECT_GT(phone.battery().discrete_drained_mj(), before);
  EXPECT_EQ(phone.radio().transfer_count(), 1u);
}

TEST(Phone, IdleAdvancesBaselineDrain) {
  Phone phone(test_config());
  phone.idle_to(hours(3));
  // 200 mW * 3 h = 2160 J = 2,160,000 mJ.
  EXPECT_NEAR(phone.battery().total_drained_mj(), 2'160'000, 10'000);
}

TEST(Phone, ConnectivityTraceExposed) {
  Phone phone(test_config());
  EXPECT_TRUE(phone.connectivity().connected_at(minutes(30)));
}

TEST(Phone, ForegroundTrafficMakesTransmitWarm) {
  PhoneConfig config = test_config();
  config.foreground.sessions_per_hour = 30.0;  // frequent other-app radio use
  config.foreground.mean_session = minutes(1);
  Phone phone(config);
  // Find a foreground-active moment and a quiet one.
  TimeMs warm_time = -1, cold_time = -1;
  for (TimeMs t = 0; t < hours(12); t += seconds(30)) {
    if (phone.foreground_active_at(t) && warm_time < 0) warm_time = t;
    if (!phone.foreground_active_at(t) && cold_time < 0) cold_time = t;
    if (warm_time >= 0 && cold_time >= 0) break;
  }
  ASSERT_GE(warm_time, 0);
  ASSERT_GE(cold_time, 0);
  // Two identical phones: one transmits during foreground activity.
  Phone warm_phone(config), cold_phone(config);
  net::Transfer warm = warm_phone.transmit(warm_time, 1024);
  net::Transfer cold = cold_phone.transmit(cold_time, 1024);
  EXPECT_LT(warm.energy_mj, cold.energy_mj);  // ramp + tail skipped
  EXPECT_EQ(warm_phone.radio().cold_starts(), 0u);
  EXPECT_EQ(cold_phone.radio().cold_starts(), 1u);
}

TEST(Phone, ForegroundDisabledByDefault) {
  Phone phone(test_config());
  for (TimeMs t = 0; t < hours(24); t += minutes(10))
    EXPECT_FALSE(phone.foreground_active_at(t));
}

TEST(Phone, SameModelPhonesShareResponseShape) {
  // Two devices of one model: raw SPL distributions nearly coincide
  // (paper Figure 15). Different models shift (Figure 14).
  PhoneConfig c1 = test_config(10), c2 = test_config(20);
  Phone a(c1), b(c2);
  double sum_a = 0, sum_b = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    sum_a += a.sense(seconds(i), SensingMode::kOpportunistic, 60, 0, 0).spl_db;
    sum_b += b.sense(seconds(i), SensingMode::kOpportunistic, 60, 0, 0).spl_db;
  }
  EXPECT_NEAR(sum_a / n, sum_b / n, 2.0);  // unit spread only

  PhoneConfig c3 = test_config(30);
  c3.model = top20_catalog()[18];  // SONY D2303, +8 dB bias vs -2 dB
  Phone c(c3);
  double sum_c = 0;
  for (int i = 0; i < n; ++i)
    sum_c += c.sense(seconds(i), SensingMode::kOpportunistic, 60, 0, 0).spl_db;
  EXPECT_GT(sum_c / n - sum_a / n, 5.0);
}

}  // namespace
}  // namespace mps::phone
