#include "phone/microphone.h"

#include <gtest/gtest.h>

#include "common/stats.h"

namespace mps::phone {
namespace {

DeviceModelSpec spec_with(double bias, double floor, double sigma) {
  DeviceModelSpec s;
  s.id = "TEST";
  s.mic_bias_db = bias;
  s.mic_noise_floor_db = floor;
  s.mic_sigma_db = sigma;
  return s;
}

TEST(Microphone, AppliesModelBias) {
  Microphone mic(spec_with(5.0, 30.0, 0.5));
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(mic.measure(65.0, rng));
  EXPECT_NEAR(stats.mean(), 70.0, 0.3);
}

TEST(Microphone, ClipsAtNoiseFloor) {
  Microphone mic(spec_with(0.0, 35.0, 1.0));
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    double raw = mic.measure(10.0, rng);  // far below floor
    EXPECT_GE(raw, 35.0);
    EXPECT_LT(raw, 42.0);  // floor plus small jitter
  }
}

TEST(Microphone, QuietEnvironmentPeaksAtFloor) {
  // The Figure 14 low-level peak: quiet ambient maps to a narrow bump at
  // the model's noise floor.
  Microphone mic(spec_with(0.0, 33.0, 1.5));
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) stats.add(mic.measure(20.0, rng));
  EXPECT_NEAR(stats.mean(), 33.6, 0.5);
  EXPECT_LT(stats.stddev(), 1.5);
}

TEST(Microphone, DifferentModelsDifferentPeaks) {
  Microphone low(spec_with(-7.5, 28.0, 1.0));
  Microphone high(spec_with(8.0, 44.0, 1.0));
  Rng rng1(4), rng2(4);
  RunningStats a, b;
  for (int i = 0; i < 3000; ++i) {
    a.add(low.measure(20.0, rng1));
    b.add(high.measure(20.0, rng2));
  }
  EXPECT_GT(b.mean() - a.mean(), 10.0);
}

TEST(Microphone, UnitOffsetShiftsResponse) {
  DeviceModelSpec spec = spec_with(0.0, 30.0, 0.1);
  Microphone base(spec, 0.0);
  Microphone offset(spec, 2.0);
  Rng rng1(5), rng2(5);
  RunningStats a, b;
  for (int i = 0; i < 3000; ++i) {
    a.add(base.measure(60.0, rng1));
    b.add(offset.measure(60.0, rng2));
  }
  EXPECT_NEAR(b.mean() - a.mean(), 2.0, 0.1);
}

TEST(Microphone, ClipsAtUpperBound) {
  Microphone mic(spec_with(10.0, 30.0, 5.0));
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(mic.measure(108.0, rng), 110.0);
}

TEST(Microphone, MeasurementNoiseMatchesSigma) {
  Microphone mic(spec_with(0.0, 10.0, 2.5));
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 10000; ++i) stats.add(mic.measure(70.0, rng));
  EXPECT_NEAR(stats.stddev(), 2.5, 0.15);
}

}  // namespace
}  // namespace mps::phone
