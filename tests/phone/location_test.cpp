#include "phone/location.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace mps::phone {
namespace {

DeviceModelSpec spec_with_fused(bool fused, double localized_fraction = 0.41) {
  DeviceModelSpec s;
  s.id = "TEST";
  s.supports_fused = fused;
  s.paper_measurements = 1'000'000;
  s.paper_localized =
      static_cast<std::int64_t>(1'000'000 * localized_fraction);
  return s;
}

std::map<LocationProvider, int> provider_counts(const LocationSimulator& sim,
                                                SensingMode mode, int n,
                                                Rng& rng) {
  std::map<LocationProvider, int> counts;
  int localized = 0;
  for (int i = 0; i < n; ++i) {
    auto fix = sim.sample(mode, 0.0, 0.0, rng);
    if (fix.has_value()) {
      ++counts[fix->provider];
      ++localized;
    }
  }
  counts[LocationProvider::kGps] += 0;  // ensure keys exist
  counts[LocationProvider::kNetwork] += 0;
  counts[LocationProvider::kFused] += 0;
  return counts;
}

TEST(LocationSimulator, OpportunisticLocalizedFractionMatchesModel) {
  LocationSimulator sim(spec_with_fused(true, 0.41));
  Rng rng(1);
  int localized = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (sim.sample(SensingMode::kOpportunistic, 0, 0, rng).has_value())
      ++localized;
  EXPECT_NEAR(localized / static_cast<double>(n), 0.41, 0.02);
}

TEST(LocationSimulator, OpportunisticProviderMixMatchesPaper) {
  // Paper: GPS 7%, network 86%, fused 7% of localized observations.
  LocationSimulator sim(spec_with_fused(true));
  Rng rng(2);
  auto counts = provider_counts(sim, SensingMode::kOpportunistic, 40000, rng);
  double total = counts[LocationProvider::kGps] +
                 counts[LocationProvider::kNetwork] +
                 counts[LocationProvider::kFused];
  EXPECT_NEAR(counts[LocationProvider::kGps] / total, 0.07, 0.02);
  EXPECT_NEAR(counts[LocationProvider::kNetwork] / total, 0.86, 0.03);
  EXPECT_NEAR(counts[LocationProvider::kFused] / total, 0.07, 0.02);
}

TEST(LocationSimulator, NoFusedWhenUnsupported) {
  LocationSimulator sim(spec_with_fused(false));
  Rng rng(3);
  auto counts = provider_counts(sim, SensingMode::kOpportunistic, 20000, rng);
  EXPECT_EQ(counts[LocationProvider::kFused], 0);
}

TEST(LocationSimulator, ManualBoostsGpsByTwentyPoints) {
  LocationSimulator sim(spec_with_fused(true));
  Rng rng(4);
  auto opp = provider_counts(sim, SensingMode::kOpportunistic, 40000, rng);
  auto manual = provider_counts(sim, SensingMode::kManual, 40000, rng);
  auto share = [](std::map<LocationProvider, int>& c, LocationProvider p) {
    double total = c[LocationProvider::kGps] + c[LocationProvider::kNetwork] +
                   c[LocationProvider::kFused];
    return c[p] / total;
  };
  double boost = share(manual, LocationProvider::kGps) -
                 share(opp, LocationProvider::kGps);
  EXPECT_NEAR(boost, 0.20, 0.03);
}

TEST(LocationSimulator, JourneyBoostsGpsByFortyPoints) {
  LocationSimulator sim(spec_with_fused(true));
  Rng rng(5);
  auto opp = provider_counts(sim, SensingMode::kOpportunistic, 40000, rng);
  auto journey = provider_counts(sim, SensingMode::kJourney, 40000, rng);
  auto share = [](std::map<LocationProvider, int>& c, LocationProvider p) {
    double total = c[LocationProvider::kGps] + c[LocationProvider::kNetwork] +
                   c[LocationProvider::kFused];
    return c[p] / total;
  };
  double boost = share(journey, LocationProvider::kGps) -
                 share(opp, LocationProvider::kGps);
  EXPECT_NEAR(boost, 0.40, 0.03);
}

TEST(LocationSimulator, ParticipatoryModesLocalizeMore) {
  LocationSimulator sim(spec_with_fused(true, 0.41));
  EXPECT_GT(sim.p_localized(SensingMode::kManual),
            sim.p_localized(SensingMode::kOpportunistic));
  EXPECT_GT(sim.p_localized(SensingMode::kJourney),
            sim.p_localized(SensingMode::kManual));
}

TEST(LocationSimulator, GpsAccuracyMostlySixToTwenty) {
  Rng rng(6);
  int in_band = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double acc = LocationSimulator::sample_accuracy(LocationProvider::kGps, rng);
    if (acc >= 6.0 && acc < 20.0) ++in_band;
  }
  EXPECT_GT(in_band / static_cast<double>(n), 0.60);
}

TEST(LocationSimulator, NetworkAccuracyMostlyTwentyToFifty) {
  Rng rng(7);
  int in_band = 0, below_100 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double acc =
        LocationSimulator::sample_accuracy(LocationProvider::kNetwork, rng);
    if (acc >= 20.0 && acc < 50.0) ++in_band;
    if (acc < 100.0) ++below_100;
  }
  EXPECT_GT(in_band / static_cast<double>(n), 0.45);
  EXPECT_GT(below_100 / static_cast<double>(n), 0.85);
}

TEST(LocationSimulator, ProvidersOrderedByAccuracy) {
  // GPS must deliver the best median accuracy; fused the worst (Fig 13).
  Rng rng(8);
  auto median = [&](LocationProvider p) {
    std::vector<double> xs;
    for (int i = 0; i < 5001; ++i)
      xs.push_back(LocationSimulator::sample_accuracy(p, rng));
    std::nth_element(xs.begin(), xs.begin() + 2500, xs.end());
    return xs[2500];
  };
  double gps = median(LocationProvider::kGps);
  double network = median(LocationProvider::kNetwork);
  double fused = median(LocationProvider::kFused);
  EXPECT_LT(gps, network);
  EXPECT_LT(network, fused);
}

TEST(LocationSimulator, ReportedPositionErrorScalesWithAccuracy) {
  LocationSimulator sim(spec_with_fused(true, 1.0));
  Rng rng(9);
  double err_sum = 0.0, acc_sum = 0.0;
  int n = 0;
  for (int i = 0; i < 20000; ++i) {
    auto fix = sim.sample(SensingMode::kJourney, 500.0, 500.0, rng);
    if (!fix.has_value()) continue;
    double err = std::hypot(fix->x_m - 500.0, fix->y_m - 500.0);
    err_sum += err;
    acc_sum += fix->accuracy_m;
    ++n;
  }
  ASSERT_GT(n, 0);
  // Mean radial error of a 2-D Gaussian with per-axis sigma acc/1.515 is
  // sigma * sqrt(pi/2) ~= 0.83 * acc.
  EXPECT_NEAR(err_sum / acc_sum, 0.83, 0.08);
}

// Property sweep: for every mode, the localized share among samples equals
// p_localized within tolerance.
class LocalizedShareTest : public ::testing::TestWithParam<SensingMode> {};

TEST_P(LocalizedShareTest, MatchesProbability) {
  LocationSimulator sim(spec_with_fused(true, 0.35));
  Rng rng(10);
  int localized = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (sim.sample(GetParam(), 0, 0, rng).has_value()) ++localized;
  EXPECT_NEAR(localized / static_cast<double>(n), sim.p_localized(GetParam()),
              0.02);
}

INSTANTIATE_TEST_SUITE_P(Modes, LocalizedShareTest,
                         ::testing::Values(SensingMode::kOpportunistic,
                                           SensingMode::kManual,
                                           SensingMode::kJourney));

}  // namespace
}  // namespace mps::phone
