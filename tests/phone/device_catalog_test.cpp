#include "phone/device_catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace mps::phone {
namespace {

TEST(DeviceCatalog, Has20Models) {
  EXPECT_EQ(top20_catalog().size(), 20u);
}

TEST(DeviceCatalog, TotalsMatchPaperFigure9) {
  EXPECT_EQ(catalog_total_devices(), 2091);
  EXPECT_EQ(catalog_total_measurements(), 23'108'136);
  EXPECT_EQ(catalog_total_localized(), 9'556'174);
}

TEST(DeviceCatalog, TopModelMatchesPaper) {
  const DeviceModelSpec& top = top20_catalog().front();
  EXPECT_EQ(top.id, "SAMSUNG GT-I9505");
  EXPECT_EQ(top.paper_devices, 253);
  EXPECT_EQ(top.paper_measurements, 2'346'755);
  EXPECT_EQ(top.paper_localized, 1'014'261);
}

TEST(DeviceCatalog, MostlyOrderedByLocalized) {
  // Figure 9 is roughly ordered by the localized-measurements column
  // (the paper's own table has a few out-of-order rows, which we keep
  // verbatim); at minimum the first entry is the global maximum and the
  // first ten rows are strictly ordered.
  const auto& catalog = top20_catalog();
  for (const auto& spec : catalog)
    EXPECT_GE(catalog.front().paper_localized, spec.paper_localized);
  for (std::size_t i = 1; i < 10; ++i)
    EXPECT_GE(catalog[i - 1].paper_localized, catalog[i].paper_localized);
}

TEST(DeviceCatalog, UniqueIds) {
  std::set<std::string> ids;
  for (const auto& spec : top20_catalog()) ids.insert(spec.id);
  EXPECT_EQ(ids.size(), 20u);
}

TEST(DeviceCatalog, LocalizedFractionAround40Percent) {
  // Paper: "about 40% of the observations ... are localized".
  double total_fraction =
      static_cast<double>(catalog_total_localized()) /
      static_cast<double>(catalog_total_measurements());
  EXPECT_NEAR(total_fraction, 0.41, 0.02);
  for (const auto& spec : top20_catalog()) {
    EXPECT_GT(spec.localized_fraction(), 0.1);
    EXPECT_LT(spec.localized_fraction(), 0.8);
  }
}

TEST(DeviceCatalog, MicBiasesSpreadAcrossModels) {
  // Figure 14: peak position varies significantly across models.
  double lo = 1e9, hi = -1e9;
  for (const auto& spec : top20_catalog()) {
    lo = std::min(lo, spec.mic_bias_db);
    hi = std::max(hi, spec.mic_bias_db);
  }
  EXPECT_LT(lo, -5.0);
  EXPECT_GT(hi, 5.0);
}

TEST(DeviceCatalog, NoiseFloorsWithinPhysicalRange) {
  for (const auto& spec : top20_catalog()) {
    EXPECT_GE(spec.mic_noise_floor_db, 25.0);
    EXPECT_LE(spec.mic_noise_floor_db, 48.0);
    EXPECT_GT(spec.mic_sigma_db, 0.0);
  }
}

TEST(DeviceCatalog, SomeButNotAllSupportFused) {
  // Figure 13: "few models provide fused data".
  int fused = 0;
  for (const auto& spec : top20_catalog())
    if (spec.supports_fused) ++fused;
  EXPECT_GT(fused, 2);
  EXPECT_LT(fused, 12);
}

TEST(DeviceCatalog, FindModel) {
  const DeviceModelSpec* spec = find_model("LGE NEXUS 5");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->paper_devices, 129);
  EXPECT_EQ(find_model("IPHONE 6"), nullptr);
}

TEST(DeviceCatalog, EnergyParamsSane) {
  for (const auto& spec : top20_catalog()) {
    EXPECT_GT(spec.battery_capacity_mj, 1e6);
    EXPECT_GT(spec.baseline_power_mw, 0.0);
    EXPECT_GT(spec.sense_energy_mj, 0.0);
    EXPECT_GT(spec.gps_fix_energy_mj, spec.sense_energy_mj);
  }
}

}  // namespace
}  // namespace mps::phone
