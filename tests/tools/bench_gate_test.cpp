// The bench-regression gate: both report formats parse, classification
// follows the documented name rules, tolerance comparisons fail exactly
// when they should, and the end-to-end gate passes the repo's own
// baselines against themselves while catching a synthetically regressed
// copy — the CI self-check, in miniature.
#include "bench_gate/gate.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <string>

namespace mps::tools {
namespace {

constexpr const char* kMpsReport = R"({
  "bench": "study",
  "schema": "mps-bench-v1",
  "wall_seconds": 12.5,
  "metrics": {
    "run_seconds": 2.0,
    "observations_recorded_per_sec": 5000.0,
    "rows_match": 1.0,
    "seed": 42.0
  }
})";

constexpr const char* kGoogleBenchReport = R"({
  "context": {"host_name": "ci"},
  "benchmarks": [
    {"name": "BM_TopicMatch", "run_type": "iteration", "real_time": 355.0,
     "time_unit": "ns"},
    {"name": "BM_TopicMatch_mean", "run_type": "aggregate", "real_time": 360.0,
     "time_unit": "ns"}
  ]
})";

TEST(BenchGateParse, MpsBenchV1) {
  std::map<std::string, double> metrics;
  std::string error;
  ASSERT_TRUE(parse_report(kMpsReport, metrics, &error)) << error;
  EXPECT_DOUBLE_EQ(metrics.at("run_seconds"), 2.0);
  EXPECT_DOUBLE_EQ(metrics.at("observations_recorded_per_sec"), 5000.0);
  EXPECT_DOUBLE_EQ(metrics.at("wall_seconds"), 12.5);
}

TEST(BenchGateParse, GoogleBenchmarkIterationsOnly) {
  std::map<std::string, double> metrics;
  std::string error;
  ASSERT_TRUE(parse_report(kGoogleBenchReport, metrics, &error)) << error;
  // Iteration rows contribute <name>.real_time; aggregates are skipped
  // (they would double-count the same measurement).
  EXPECT_DOUBLE_EQ(metrics.at("BM_TopicMatch.real_time"), 355.0);
  EXPECT_EQ(metrics.count("BM_TopicMatch_mean.real_time"), 0u);
}

TEST(BenchGateParse, GoogleBenchmarkUserCounters) {
  constexpr const char* kCounterReport = R"({
    "benchmarks": [
      {"name": "BM_IngestBatchFlat", "run_type": "iteration",
       "family_index": 0, "per_family_instance_index": 0,
       "repetitions": 1, "repetition_index": 0, "threads": 1,
       "iterations": 2000, "real_time": 200000.0, "cpu_time": 199000.0,
       "time_unit": "ns", "obs_per_sec": 320000.0, "stored_exact": 128000.0,
       "flat_speedup": 4.1}
    ]
  })";
  std::map<std::string, double> metrics;
  std::string error;
  ASSERT_TRUE(parse_report(kCounterReport, metrics, &error)) << error;
  // User counters surface as <name>.<counter> so the suffix rules gate
  // them; google-benchmark's bookkeeping fields must not leak through.
  EXPECT_DOUBLE_EQ(metrics.at("BM_IngestBatchFlat.real_time"), 200000.0);
  EXPECT_DOUBLE_EQ(metrics.at("BM_IngestBatchFlat.obs_per_sec"), 320000.0);
  EXPECT_DOUBLE_EQ(metrics.at("BM_IngestBatchFlat.stored_exact"), 128000.0);
  EXPECT_DOUBLE_EQ(metrics.at("BM_IngestBatchFlat.flat_speedup"), 4.1);
  EXPECT_EQ(metrics.count("BM_IngestBatchFlat.iterations"), 0u);
  EXPECT_EQ(metrics.count("BM_IngestBatchFlat.cpu_time"), 0u);
  EXPECT_EQ(metrics.count("BM_IngestBatchFlat.threads"), 0u);
  EXPECT_EQ(classify_metric("BM_IngestBatchFlat.obs_per_sec"),
            MetricKind::kHigherBetter);
  EXPECT_EQ(classify_metric("BM_IngestBatchFlat.stored_exact"),
            MetricKind::kExact);
  EXPECT_EQ(classify_metric("BM_IngestBatchFlat.flat_speedup"),
            MetricKind::kHigherBetter);
}

TEST(BenchGateParse, MalformedInputFailsWithError) {
  std::map<std::string, double> metrics;
  std::string error;
  EXPECT_FALSE(parse_report("not json", metrics, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_report("{\"neither\": \"format\"}", metrics, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchGateClassify, NameSuffixRules) {
  EXPECT_EQ(classify_metric("run_seconds"), MetricKind::kLowerBetter);
  EXPECT_EQ(classify_metric("mean_delay_ms"), MetricKind::kLowerBetter);
  EXPECT_EQ(classify_metric("alloc_bytes"), MetricKind::kLowerBetter);
  EXPECT_EQ(classify_metric("BM_TopicMatch.real_time"),
            MetricKind::kLowerBetter);
  EXPECT_EQ(classify_metric("assim_localized_equiv_rmse"),
            MetricKind::kLowerBetter);
  EXPECT_EQ(classify_metric("ingest_per_sec"), MetricKind::kHigherBetter);
  EXPECT_EQ(classify_metric("parallel_speedup"), MetricKind::kHigherBetter);
  EXPECT_EQ(classify_metric("assim_speedup"), MetricKind::kHigherBetter);
  EXPECT_EQ(classify_metric("assim_localized_speedup"),
            MetricKind::kHigherBetter);
  EXPECT_EQ(classify_metric("rows_match"), MetricKind::kExact);
  EXPECT_EQ(classify_metric("replay_exact"), MetricKind::kExact);
  EXPECT_EQ(classify_metric("invariants_ok"), MetricKind::kExact);
  EXPECT_EQ(classify_metric("assim_localized_bit_exact"), MetricKind::kExact);
  EXPECT_EQ(classify_metric("seed"), MetricKind::kInfo);
  EXPECT_EQ(classify_metric("devices"), MetricKind::kInfo);
}

TEST(BenchGateCompare, TolerancesDrawTheLine) {
  GateConfig config;
  config.time_tolerance = 2.0;
  config.rate_tolerance = 0.5;
  std::map<std::string, double> baseline = {
      {"run_seconds", 1.0}, {"ingest_per_sec", 1000.0}, {"rows_match", 1.0}};

  {  // Within tolerance on every axis: no regressions.
    GateResult result;
    std::map<std::string, double> current = {{"run_seconds", 1.9},
                                             {"ingest_per_sec", 600.0},
                                             {"rows_match", 1.0}};
    compare_report("BENCH_x", baseline, current, config, result);
    EXPECT_EQ(result.regressions(), 0u);
    EXPECT_TRUE(result.ok());
  }
  {  // Slower than 2x: lower-is-better regression.
    GateResult result;
    std::map<std::string, double> current = {{"run_seconds", 2.1},
                                             {"ingest_per_sec", 1000.0},
                                             {"rows_match", 1.0}};
    compare_report("BENCH_x", baseline, current, config, result);
    EXPECT_EQ(result.regressions(), 1u);
    EXPECT_FALSE(result.ok());
  }
  {  // Throughput below half the baseline: higher-is-better regression.
    GateResult result;
    std::map<std::string, double> current = {{"run_seconds", 1.0},
                                             {"ingest_per_sec", 499.0},
                                             {"rows_match", 1.0}};
    compare_report("BENCH_x", baseline, current, config, result);
    EXPECT_EQ(result.regressions(), 1u);
  }
  {  // An exact metric differing at all is a failure, however small.
    GateResult result;
    std::map<std::string, double> current = {{"run_seconds", 1.0},
                                             {"ingest_per_sec", 1000.0},
                                             {"rows_match", 0.0}};
    compare_report("BENCH_x", baseline, current, config, result);
    EXPECT_EQ(result.regressions(), 1u);
  }
}

TEST(BenchGateCompare, MissingGatedMetricIsARegression) {
  GateConfig config;
  std::map<std::string, double> baseline = {{"run_seconds", 1.0},
                                            {"seed", 42.0}};
  std::map<std::string, double> current;  // both missing
  GateResult result;
  compare_report("BENCH_x", baseline, current, config, result);
  // run_seconds (gated) missing -> fail; seed (info) missing -> fine.
  EXPECT_EQ(result.regressions(), 1u);
}

TEST(BenchGateCompare, InfoMetricsNeverFail) {
  GateConfig config;
  std::map<std::string, double> baseline = {{"devices", 100.0}};
  std::map<std::string, double> current = {{"devices", 9999.0}};
  GateResult result;
  compare_report("BENCH_x", baseline, current, config, result);
  EXPECT_EQ(result.regressions(), 0u);
}

TEST(BenchGateFormat, ChecksRenderWithVerdict) {
  MetricCheck check;
  check.report = "BENCH_x";
  check.metric = "run_seconds";
  check.kind = MetricKind::kLowerBetter;
  check.baseline = 1.0;
  check.current = 5.0;
  check.ok = false;
  check.detail = "5.000 > 1.000 * 3.0";
  std::string line = format_check(check);
  EXPECT_NE(line.find("[FAIL]"), std::string::npos);
  EXPECT_NE(line.find("BENCH_x"), std::string::npos);
  EXPECT_NE(line.find("run_seconds"), std::string::npos);
}

// --- end-to-end over directories: the CI job in miniature ---

class BenchGateDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest schedules cases of this fixture as
    // separate processes that may run concurrently.
    const std::string tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    base_ = ::testing::TempDir() + "gate_base_" + tag;
    cur_ = ::testing::TempDir() + "gate_cur_" + tag;
    ASSERT_EQ(std::system(("rm -rf " + base_ + " " + cur_).c_str()), 0);
    ASSERT_EQ(std::system(("mkdir -p " + base_ + " " + cur_).c_str()), 0);
  }
  void TearDown() override {
    std::system(("rm -rf " + base_ + " " + cur_).c_str());
  }
  void write(const std::string& dir, const std::string& name,
             const std::string& text) {
    std::ofstream out(dir + "/" + name);
    out << text;
  }
  std::string base_, cur_;
};

TEST_F(BenchGateDirTest, IdenticalReportsPass) {
  write(base_, "BENCH_a.json", kMpsReport);
  write(cur_, "BENCH_a.json", kMpsReport);
  GateResult result = run_gate(base_, cur_, GateConfig{});
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.checks.size(), 0u);
}

TEST_F(BenchGateDirTest, SyntheticRegressionFails) {
  write(base_, "BENCH_a.json", kMpsReport);
  // 10x slower run and collapsed throughput: both gated axes trip.
  write(cur_, "BENCH_a.json", R"({
    "bench": "study", "schema": "mps-bench-v1", "wall_seconds": 125.0,
    "metrics": {"run_seconds": 20.0,
                "observations_recorded_per_sec": 500.0,
                "rows_match": 1.0, "seed": 42.0}})");
  GateResult result = run_gate(base_, cur_, GateConfig{});
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.regressions(), 2u);
}

TEST_F(BenchGateDirTest, MissingCurrentReportIsAnError) {
  write(base_, "BENCH_a.json", kMpsReport);
  GateResult result = run_gate(base_, cur_, GateConfig{});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.errors.empty());
}

TEST_F(BenchGateDirTest, EmptyBaselineDirIsAnError) {
  GateResult result = run_gate(base_, cur_, GateConfig{});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.errors.empty());
}

// The repo's own checked-in baselines must pass against themselves —
// the same invariant CI's self-check asserts before trusting the gate.
TEST(BenchGateRepo, CheckedInBaselinesPassAgainstThemselves) {
#ifdef MPS_SOURCE_DIR
  std::string baselines = std::string(MPS_SOURCE_DIR) + "/bench/baselines";
#else
  std::string baselines = "bench/baselines";
#endif
  std::ifstream probe(baselines + "/BENCH_assim.json");
  if (!probe.is_open())
    GTEST_SKIP() << "bench/baselines not reachable from test cwd";
  GateResult result = run_gate(baselines, baselines, GateConfig{});
  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.checks.size(), 0u);
  for (const std::string& error : result.errors) ADD_FAILURE() << error;
}

}  // namespace
}  // namespace mps::tools
