// Property sweep (the chaos gate): the city deployment at small scale,
// run under every fault profile across many seeds, must keep the
// pipeline's no-loss / no-duplication / ordered-upload invariants. A
// failing seed here is a deterministic bug report: re-run the same
// (profile, seed) pair and the exact fault schedule replays.
//
// The runs are independent (each owns its sim, broker, docstore,
// registry and fault plan), so the sweep executes them concurrently on
// an exec::SweepExecutor. MPS_TEST_THREADS bounds the concurrency
// (default: hardware concurrency, capped at 8 — CI machines and laptops
// both finish fast without oversubscription); every outcome is a pure
// function of (profile, seed), so the sweep's results are identical for
// any thread count — which ThreadCountInvariance asserts explicitly.
// All EXPECTs run on the main thread, after the sweep collected the
// outcomes.
//
// When MPS_FAULT_REPORT_DIR is set (CI does), a per-seed JSON report is
// written there for artifact upload, in deterministic (profile, seed)
// order regardless of completion order.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "obs/flight_recorder.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "study/invariants.h"
#include "study/study.h"

namespace mps::study {
namespace {

constexpr std::uint64_t kSeeds = 21;  // >= 20 per profile, as the gate demands

struct ChaosOutcome {
  StudyReport study;
  InvariantReport invariants;
  std::uint64_t faults_injected = 0;
};

ChaosOutcome run_chaos(const std::string& profile, std::uint64_t seed) {
  // Label this worker's flight-recorder ring so a forensic dump can be
  // attributed to its (profile, seed) run.
  obs::FlightRecorder::instance().set_thread_scope(
      profile + "/seed=" + std::to_string(seed));
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server(sim, broker, db);
  obs::Registry registry;
  obs::SpanTracker tracer(&registry);
  server.set_metrics(&registry);
  server.set_tracer(&tracer);

  fault::FaultPlan plan = fault::FaultPlan::profile(profile, seed);

  crowd::PopulationConfig pc;
  pc.seed = seed;
  pc.device_scale = 0.005;  // ~20 devices (min 1 per model)
  pc.obs_scale = 0.05;
  pc.horizon = days(4);
  crowd::Population pop = crowd::Population::generate(pc);

  StudyConfig sc;
  sc.seed = seed;
  sc.duration_days = 2;
  sc.metrics = &registry;
  sc.tracer = &tracer;
  sc.faults = &plan;
  // Give backoff retries room to settle after the horizon (client
  // retry_max is 16 min; server ingest backoff caps at 5 min).
  sc.drain = hours(1);

  StudyRunner runner(pop, sc, sim, broker, server);
  ChaosOutcome out;
  out.study = runner.run();
  out.invariants = check_invariants(tracer, server, runner.clients());
  // Red seed -> black box: the last 4096 events of this run (faults,
  // crashes, broker rejects) land next to the reports.
  std::string forensics = dump_forensics(
      out.invariants, profile + "_seed" + std::to_string(seed));
  if (!forensics.empty())
    std::fprintf(stderr, "invariant violation: flight recorder dumped to %s\n",
                 forensics.c_str());
  out.faults_injected = plan.total_injected();
  return out;
}

std::size_t sweep_threads() {
  return exec::resolve_threads("MPS_TEST_THREADS", /*cap=*/8);
}

TEST(InvariantSweep, NoLossNoDupOrderedAcrossSeedsAndProfiles) {
  const char* report_dir = std::getenv("MPS_FAULT_REPORT_DIR");
  std::ofstream report_out;
  if (report_dir != nullptr) {
    report_out.open(std::string(report_dir) + "/fault_invariants.jsonl");
    ASSERT_TRUE(report_out.is_open())
        << "cannot write to MPS_FAULT_REPORT_DIR=" << report_dir;
  }

  // Flatten the (profile, seed) grid into one job list and run it
  // concurrently; each job writes only its own outcome slot.
  const std::vector<std::string> profiles = fault::FaultPlan::profile_names();
  struct Job {
    std::string profile;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const std::string& profile : profiles)
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
      jobs.push_back({profile, seed});

  std::vector<ChaosOutcome> outcomes(jobs.size());
  exec::SweepExecutor sweep(sweep_threads());
  sweep.run(jobs.size(), [&](std::size_t i) {
    outcomes[i] = run_chaos(jobs[i].profile, jobs[i].seed);
  });

  // Assert (and report) on the main thread, in deterministic job order.
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const std::string& profile = profiles[p];
    std::uint64_t injected_across_seeds = 0;
    std::uint64_t crashes_across_seeds = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const ChaosOutcome& out = outcomes[p * kSeeds + (seed - 1)];
      injected_across_seeds += out.faults_injected;
      crashes_across_seeds += out.study.crashes;

      SCOPED_TRACE("profile=" + profile + " seed=" + std::to_string(seed));
      // The three invariants, per run.
      EXPECT_EQ(out.invariants.lost, 0u);
      EXPECT_EQ(out.invariants.duplicate_spans_stored, 0u);
      EXPECT_EQ(out.invariants.order_violations, 0u);
      EXPECT_TRUE(out.invariants.ok());
      // The accounting is complete: every span landed in exactly one
      // bucket.
      EXPECT_EQ(out.invariants.spans_total,
                out.invariants.persisted + out.invariants.on_device +
                    out.invariants.in_server +
                    out.invariants.dropped_attributed +
                    out.invariants.never_shared + out.invariants.lost);
      // The run did real work.
      EXPECT_GT(out.study.observations_recorded, 0u);
      EXPECT_GT(out.invariants.persisted, 0u);

      if (profile == "none") {
        // The baseline profile is armed but inert.
        EXPECT_EQ(out.faults_injected, 0u);
        EXPECT_EQ(out.study.crashes, 0u);
        EXPECT_EQ(out.study.publish_failures, 0u);
        EXPECT_EQ(out.study.duplicate_observations, 0u);
      }

      if (report_out.is_open()) {
        report_out << "{\"profile\":\"" << profile << "\",\"seed\":" << seed
                   << ",\"faults_injected\":" << out.faults_injected
                   << ",\"crashes\":" << out.study.crashes
                   << ",\"publish_failures\":" << out.study.publish_failures
                   << ",\"upload_retries\":" << out.study.upload_retries
                   << ",\"invariants\":" << out.invariants.to_json() << "}\n";
      }
    }
    // The hostile profiles must actually have been hostile — a sweep
    // that injected nothing proves nothing.
    if (profile == "lossy-network") {
      EXPECT_GT(injected_across_seeds, 0u);
    }
    if (profile == "crashy-client") {
      EXPECT_GT(crashes_across_seeds, 0u);
    }
  }
}

TEST(InvariantSweep, ChaosRunsAreDeterministicPerSeed) {
  ChaosOutcome a = run_chaos("lossy-network", 7);
  ChaosOutcome b = run_chaos("lossy-network", 7);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.study.observations_recorded, b.study.observations_recorded);
  EXPECT_EQ(a.study.observations_stored, b.study.observations_stored);
  EXPECT_EQ(a.study.publish_failures, b.study.publish_failures);
  EXPECT_EQ(a.invariants.to_json(), b.invariants.to_json());
}

// The acceptance gate for the parallel sweep: per-seed outcomes are
// identical whether the runs execute inline (1 thread) or concurrently
// (2 or 8 threads) — concurrency only changes wall-clock, never results.
TEST(InvariantSweep, OutcomesIdenticalAcrossSweepThreadCounts) {
  constexpr std::uint64_t kCheckSeeds = 4;
  const std::string profile = "crashy-client";

  std::vector<std::vector<std::string>> per_thread_outcomes;
  for (std::size_t threads : {1u, 2u, 8u}) {
    exec::SweepExecutor sweep(threads);
    std::vector<std::string> outcomes(kCheckSeeds);
    sweep.run(kCheckSeeds, [&](std::size_t i) {
      ChaosOutcome out = run_chaos(profile, i + 1);
      outcomes[i] = out.invariants.to_json() + "|injected=" +
                    std::to_string(out.faults_injected) + "|stored=" +
                    std::to_string(out.study.observations_stored);
    });
    per_thread_outcomes.push_back(std::move(outcomes));
  }
  for (std::size_t t = 1; t < per_thread_outcomes.size(); ++t)
    for (std::uint64_t s = 0; s < kCheckSeeds; ++s) {
      SCOPED_TRACE("threads-case=" + std::to_string(t) + " seed=" +
                   std::to_string(s + 1));
      EXPECT_EQ(per_thread_outcomes[0][s], per_thread_outcomes[t][s]);
    }
}

}  // namespace
}  // namespace mps::study
