#include "fault/fault.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace mps::fault {
namespace {

std::vector<bool> draw(FaultPlan& plan, FaultSite site, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(plan.should_fail(site));
  return out;
}

TEST(FaultPlan, DisarmedPlanNeverFails) {
  FaultPlan plan(7);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(plan.should_fail(FaultSite::kBrokerPublish));
  EXPECT_EQ(plan.total_injected(), 0u);
  EXPECT_EQ(plan.checked(FaultSite::kBrokerPublish), 100u);
}

TEST(FaultPlan, ProbabilityDecisionsAreSeedDeterministic) {
  FaultPlan a(42), b(42), c(43);
  a.set_probability(FaultSite::kBrokerPublish, 0.3);
  b.set_probability(FaultSite::kBrokerPublish, 0.3);
  c.set_probability(FaultSite::kBrokerPublish, 0.3);
  auto da = draw(a, FaultSite::kBrokerPublish, 200);
  auto db = draw(b, FaultSite::kBrokerPublish, 200);
  auto dc = draw(c, FaultSite::kBrokerPublish, 200);
  EXPECT_EQ(da, db);
  EXPECT_NE(da, dc);
  // ~30% of 200 decisions should fire, loosely.
  EXPECT_GT(a.injected(FaultSite::kBrokerPublish), 30u);
  EXPECT_LT(a.injected(FaultSite::kBrokerPublish), 100u);
}

TEST(FaultPlan, SiteStreamsAreIndependent) {
  // Consulting one site must not shift another site's decisions.
  FaultPlan a(9), b(9);
  a.set_probability(FaultSite::kDocstoreInsert, 0.5);
  b.set_probability(FaultSite::kDocstoreInsert, 0.5);
  b.set_probability(FaultSite::kBrokerConsume, 0.5);
  for (int i = 0; i < 50; ++i) b.should_fail(FaultSite::kBrokerConsume);
  EXPECT_EQ(draw(a, FaultSite::kDocstoreInsert, 100),
            draw(b, FaultSite::kDocstoreInsert, 100));
}

TEST(FaultPlan, FailNextScriptsExactFailures) {
  FaultPlan plan(1);
  plan.fail_next(FaultSite::kDocstoreInsert, 3);
  EXPECT_TRUE(plan.should_fail(FaultSite::kDocstoreInsert));
  EXPECT_TRUE(plan.should_fail(FaultSite::kDocstoreInsert));
  EXPECT_TRUE(plan.should_fail(FaultSite::kDocstoreInsert));
  EXPECT_FALSE(plan.should_fail(FaultSite::kDocstoreInsert));
  EXPECT_EQ(plan.injected(FaultSite::kDocstoreInsert), 3u);
}

TEST(FaultPlan, WindowsFailWithExplicitTime) {
  FaultPlan plan(1);
  plan.add_window(FaultSite::kBrokerPublish, minutes(10), minutes(20));
  EXPECT_FALSE(plan.should_fail(FaultSite::kBrokerPublish, minutes(5)));
  EXPECT_TRUE(plan.should_fail(FaultSite::kBrokerPublish, minutes(10)));
  EXPECT_TRUE(plan.should_fail(FaultSite::kBrokerPublish, minutes(19)));
  EXPECT_FALSE(plan.should_fail(FaultSite::kBrokerPublish, minutes(20)));
}

TEST(FaultPlan, WindowsUseAttachedClock) {
  FaultPlan plan(1);
  plan.add_window(FaultSite::kDocstoreInsert, 100, 200);
  TimeMs now = 0;
  plan.set_clock([&now] { return now; });
  now = 50;
  EXPECT_FALSE(plan.should_fail(FaultSite::kDocstoreInsert));
  now = 150;
  EXPECT_TRUE(plan.should_fail(FaultSite::kDocstoreInsert));
}

TEST(FaultPlan, CrashScheduleIsDeterministicPerDevice) {
  FaultPlan plan(11);
  plan.crash_rate_per_day = 3.0;
  auto a1 = plan.crash_schedule("mob1", days(10));
  auto a2 = plan.crash_schedule("mob1", days(10));
  auto b = plan.crash_schedule("mob2", days(10));
  ASSERT_EQ(a1.size(), a2.size());
  for (std::size_t i = 0; i < a1.size(); ++i) {
    EXPECT_EQ(a1[i].at, a2[i].at);
    EXPECT_EQ(a1[i].down_for, a2[i].down_for);
  }
  EXPECT_GT(a1.size(), 10u);  // ~30 expected over 10 days
  bool differs = a1.size() != b.size();
  for (std::size_t i = 0; !differs && i < a1.size(); ++i)
    differs = a1[i].at != b[i].at;
  EXPECT_TRUE(differs);
  TimeMs prev = -1;
  for (const auto& ev : a1) {
    EXPECT_GT(ev.at, prev);
    EXPECT_GT(ev.down_for, 0);
    EXPECT_LT(ev.at, days(10));
    prev = ev.at + ev.down_for;  // restart precedes the next crash
  }
}

TEST(FaultPlan, FlapWindowsSortedDisjointWithinHorizon) {
  FaultPlan plan(5);
  plan.flap_rate_per_day = 6.0;
  plan.flap_duration_mean = minutes(40);
  auto windows = plan.flap_windows("mob1", days(7));
  EXPECT_GT(windows.size(), 10u);
  TimeMs prev_end = -1;
  for (const auto& [from, until] : windows) {
    EXPECT_GT(from, prev_end);
    EXPECT_LT(from, until);
    EXPECT_LE(until, days(7));
    prev_end = until;
  }
}

TEST(FaultPlan, ZeroRatesYieldEmptySchedules) {
  FaultPlan plan(5);
  EXPECT_TRUE(plan.crash_schedule("mob1", days(30)).empty());
  EXPECT_TRUE(plan.flap_windows("mob1", days(30)).empty());
}

TEST(FaultPlan, ProfilesByName) {
  for (const std::string& name : FaultPlan::profile_names()) {
    FaultPlan plan = FaultPlan::profile(name, 3);
    EXPECT_EQ(plan.profile_name(), name);
    EXPECT_EQ(plan.seed(), 3u);
  }
  EXPECT_THROW(FaultPlan::profile("no-such-profile", 1), std::invalid_argument);
  EXPECT_EQ(FaultPlan::none().total_injected(), 0u);
  EXPECT_GT(FaultPlan::lossy_network(1).probability(FaultSite::kBrokerPublish),
            0.0);
  EXPECT_GT(FaultPlan::crashy_client(1).crash_rate_per_day, 0.0);
}

TEST(FaultPlan, MetricsMirrorInjections) {
  obs::Registry registry;
  FaultPlan plan(2);
  plan.set_metrics(&registry);
  plan.fail_next(FaultSite::kBrokerPublish, 2);
  plan.should_fail(FaultSite::kBrokerPublish);
  plan.should_fail(FaultSite::kBrokerPublish);
  plan.should_fail(FaultSite::kBrokerPublish);
  EXPECT_EQ(registry.counter("fault.injected.broker_publish").value(), 2u);
  EXPECT_EQ(registry.counter("fault.checked.broker_publish").value(), 3u);
}

TEST(FaultPoint, DisarmedIsNoOp) {
  FaultPoint point;
  EXPECT_FALSE(point.armed());
  EXPECT_FALSE(point.should_fail());
  EXPECT_FALSE(point.should_fail(minutes(5)));
}

TEST(FaultPoint, ArmedConsultsPlan) {
  FaultPlan plan(1);
  plan.fail_next(FaultSite::kBrokerConsume, 1);
  FaultPoint point(&plan, FaultSite::kBrokerConsume);
  EXPECT_TRUE(point.armed());
  EXPECT_TRUE(point.should_fail());
  EXPECT_FALSE(point.should_fail());
}

TEST(Backoff, DoublesAndCaps) {
  Rng rng(1);
  // No jitter: exact doubling until the cap.
  EXPECT_EQ(backoff_delay(1, seconds(30), minutes(16), 0.0, rng), seconds(30));
  EXPECT_EQ(backoff_delay(2, seconds(30), minutes(16), 0.0, rng), minutes(1));
  EXPECT_EQ(backoff_delay(3, seconds(30), minutes(16), 0.0, rng), minutes(2));
  EXPECT_EQ(backoff_delay(7, seconds(30), minutes(16), 0.0, rng), minutes(16));
  EXPECT_EQ(backoff_delay(50, seconds(30), minutes(16), 0.0, rng),
            minutes(16));
}

TEST(Backoff, JitterStaysBounded) {
  Rng rng(3);
  for (int attempt = 1; attempt <= 10; ++attempt) {
    DurationMs d = backoff_delay(attempt, seconds(10), minutes(30), 0.2, rng);
    DurationMs nominal =
        std::min(seconds(10) * (DurationMs(1) << (attempt - 1)), minutes(30));
    EXPECT_GE(d, static_cast<DurationMs>(0.79 * nominal));
    EXPECT_LE(d, static_cast<DurationMs>(1.21 * nominal));
  }
}

TEST(Backoff, NeverBelowOneMs) {
  Rng rng(4);
  EXPECT_GE(backoff_delay(1, 0, 0, 0.5, rng), 1);
}

TEST(TransientErrorTest, CarriesSite) {
  TransientError e(FaultSite::kDocstoreUpdate, "boom");
  EXPECT_EQ(e.site(), FaultSite::kDocstoreUpdate);
  EXPECT_STREQ(e.what(), "boom");
}

TEST(FaultSiteNames, AllDistinct) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i)
    for (std::size_t j = i + 1; j < kFaultSiteCount; ++j)
      EXPECT_STRNE(fault_site_name(static_cast<FaultSite>(i)),
                   fault_site_name(static_cast<FaultSite>(j)));
}

}  // namespace
}  // namespace mps::fault
