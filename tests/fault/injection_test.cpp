// Component-level fault injection: each injection point fires where the
// plan says, the component recovers, and nothing is lost or double-stored.
#include <gtest/gtest.h>

#include <memory>

#include "assim/cycle.h"
#include "client/goflow_client.h"
#include "core/goflow_server.h"
#include "crowd/dataset.h"
#include "crowd/population.h"
#include "fault/fault.h"

namespace mps {
namespace {

// --- Broker ---------------------------------------------------------------

class BrokerFaultTest : public ::testing::Test {
 protected:
  BrokerFaultTest() {
    broker.declare_exchange("E", broker::ExchangeType::kTopic).throw_if_error();
    broker.declare_queue("q").throw_if_error();
    broker.bind_queue("E", "q", "#").throw_if_error();
    broker.arm_faults(&plan);
  }

  broker::Broker broker;
  fault::FaultPlan plan{1};
};

TEST_F(BrokerFaultTest, PublishFaultRejectsWithoutRouting) {
  plan.fail_next(fault::FaultSite::kBrokerPublish, 1);
  auto r1 = broker.publish("E", "k", Value(1), 0);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.error().code, ErrorCode::kUnavailable);
  EXPECT_FALSE(broker.pop("q").has_value());  // nothing was routed
  auto r2 = broker.publish("E", "k", Value(2), 0);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(broker.pop("q").has_value());
}

TEST_F(BrokerFaultTest, AckLostFaultRoutesButReportsFailure) {
  plan.fail_next(fault::FaultSite::kBrokerAckLost, 1);
  auto r = broker.publish("E", "k", Value(1), 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kUnavailable);
  // The message went through — exactly the dup pressure at-least-once
  // delivery has to survive.
  EXPECT_TRUE(broker.pop("q").has_value());
}

TEST_F(BrokerFaultTest, ConsumeFaultStallsOnePop) {
  broker.publish("E", "k", Value(1), 0).value_or_throw();
  plan.fail_next(fault::FaultSite::kBrokerConsume, 1);
  EXPECT_FALSE(broker.pop("q").has_value());  // stalled, not consumed
  EXPECT_TRUE(broker.pop("q").has_value());   // still there afterwards
}

// --- Docstore -------------------------------------------------------------

TEST(DocstoreFaultTest, InsertFaultThrowsTransientAndLeavesNoPartialState) {
  docstore::Database db;
  fault::FaultPlan plan(1);
  db.arm_faults(&plan);
  auto& col = db.collection("c");
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 1);
  Value doc = Value::parse_json(R"({"x": 1})");
  EXPECT_THROW(col.insert(doc), fault::TransientError);
  EXPECT_EQ(col.size(), 0u);
  col.insert(doc);  // the retry lands
  EXPECT_EQ(col.size(), 1u);
}

TEST(DocstoreFaultTest, UpdateFaultThrowsTransient) {
  docstore::Database db;
  fault::FaultPlan plan(1);
  db.arm_faults(&plan);
  auto& col = db.collection("c");
  col.insert(Value::parse_json(R"({"x": 1})"));
  plan.fail_next(fault::FaultSite::kDocstoreUpdate, 1);
  EXPECT_THROW(col.update_many(docstore::Query::all(),
                               [](docstore::Document& d) {
                                 d.as_object().set("x", Value(2));
                               }),
               fault::TransientError);
}

TEST(DocstoreFaultTest, ArmPropagatesToFutureCollections) {
  docstore::Database db;
  fault::FaultPlan plan(1);
  db.arm_faults(&plan);
  auto& later = db.collection("created-after-arming");
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 1);
  Value doc = Value::parse_json(R"({"x": 1})");
  EXPECT_THROW(later.insert(doc), fault::TransientError);
}

// --- Client retry / crash-restart ------------------------------------------

class ClientFaultTest : public ::testing::Test {
 protected:
  ClientFaultTest() {
    broker.declare_exchange("E1", broker::ExchangeType::kTopic)
        .throw_if_error();
    broker.declare_queue("sink").throw_if_error();
    broker.bind_queue("E1", "sink", "#").throw_if_error();
    broker.arm_faults(&plan);
  }

  phone::Phone make_phone(std::uint64_t seed = 1) {
    phone::PhoneConfig c;
    c.model = phone::top20_catalog().front();
    c.user = "u1";
    c.seed = seed;
    c.connectivity = net::ConnectivityParams::always_connected();
    c.horizon = days(2);
    return phone::Phone(c);
  }

  client::GoFlowClient make_client(phone::Phone& phone,
                                   client::ClientConfig config) {
    config.exchange = "E1";
    return client::GoFlowClient(
        sim, broker, phone, std::move(config), [](TimeMs) { return 55.0; },
        [](TimeMs) { return std::pair<double, double>{100.0, 100.0}; });
  }

  std::size_t drain_sink() {
    std::size_t n = 0;
    while (broker.pop("sink")) ++n;
    return n;
  }

  sim::Simulation sim;
  broker::Broker broker;
  fault::FaultPlan plan{1};
};

TEST_F(ClientFaultTest, RetriesFailedPublishWithBackoff) {
  phone::Phone phone = make_phone();
  client::GoFlowClient client =
      make_client(phone, client::ClientConfig::v1_2_9("c1", ""));
  plan.fail_next(fault::FaultSite::kBrokerPublish, 2);
  client.start();
  sim.run_until(hours(1));  // first two delivery attempts fail, third lands
  EXPECT_EQ(client.stats().publish_failures, 2u);
  EXPECT_EQ(client.stats().upload_retries, 2u);
  EXPECT_EQ(client.stats().retry_giveups, 0u);
  EXPECT_GE(drain_sink(), 1u);
}

TEST_F(ClientFaultTest, GivesUpAfterMaxAttemptsAndRequeues) {
  phone::Phone phone = make_phone();
  client::ClientConfig cc = client::ClientConfig::v1_2_9("c1", "");
  cc.max_publish_attempts = 2;
  cc.retry_base = seconds(10);
  client::GoFlowClient client = make_client(phone, cc);
  plan.set_probability(fault::FaultSite::kBrokerPublish, 1.0);  // always fail
  client.sense_now(phone::SensingMode::kManual);
  sim.run_until(hours(1));
  EXPECT_EQ(client.stats().retry_giveups, 1u);
  EXPECT_EQ(client.in_flight_count(), 0u);
  EXPECT_EQ(client.buffered(), 1u);  // requeued, never lost
  EXPECT_EQ(drain_sink(), 0u);
}

TEST_F(ClientFaultTest, CrashRequeuesInFlightAndRestartRedelivers) {
  phone::Phone phone = make_phone();
  client::GoFlowClient client =
      make_client(phone, client::ClientConfig::v1_3("c1", "", 3));
  for (int i = 0; i < 3; ++i) client.sense_now(phone::SensingMode::kManual);
  // The batch is in flight (transfer under way, not yet delivered).
  EXPECT_EQ(client.in_flight_count(), 3u);
  client.crash();
  EXPECT_TRUE(client.down());
  EXPECT_EQ(client.in_flight_count(), 0u);
  EXPECT_EQ(client.buffered(), 3u);  // back on flash, order intact
  sim.run_until(minutes(5));
  EXPECT_EQ(drain_sink(), 0u);  // the aborted transfer never arrived
  client.restart();
  sim.run_until(minutes(10));
  EXPECT_EQ(client.stats().uploads, 2u);  // original attempt + redelivery
  EXPECT_EQ(client.buffered(), 0u);
  EXPECT_EQ(drain_sink(), 1u);
}

TEST_F(ClientFaultTest, SensingWhileDownIsMissedNotLost) {
  phone::Phone phone = make_phone();
  client::GoFlowClient client =
      make_client(phone, client::ClientConfig::v1_3("c1", "", 10));
  client.crash();
  client.sense_now(phone::SensingMode::kManual);
  EXPECT_EQ(client.stats().observations_recorded, 0u);
  EXPECT_EQ(client.stats().missed_while_down, 1u);
  client.restart();
  client.sense_now(phone::SensingMode::kManual);
  EXPECT_EQ(client.stats().observations_recorded, 1u);
}

TEST_F(ClientFaultTest, RestartOnlyResumesSensingIfItWasRunning) {
  phone::Phone phone = make_phone();
  client::GoFlowClient idle =
      make_client(phone, client::ClientConfig::v1_2_9("c1", ""));
  idle.crash();
  idle.restart();
  sim.run_until(hours(1));
  EXPECT_FALSE(idle.running());
  EXPECT_EQ(idle.stats().observations_recorded, 0u);

  phone::Phone phone2 = make_phone(2);
  client::GoFlowClient active =
      make_client(phone2, client::ClientConfig::v1_2_9("c2", ""));
  active.start();
  active.crash();
  EXPECT_FALSE(active.running());
  active.restart();
  EXPECT_TRUE(active.running());
}

// --- Server ingest retry + dedup -------------------------------------------

class ServerFaultTest : public ::testing::Test {
 protected:
  ServerFaultTest() : server(sim, broker, db) {
    auto reg = server.register_app("soundcity").value_or_throw();
    auto token = server
                     .register_account(reg.admin_token, "soundcity", "field",
                                       core::Role::kClient)
                     .value_or_throw();
    channels = server.login_client(token, "soundcity", "mob1").value_or_throw();
    broker.arm_faults(&plan);
    db.arm_faults(&plan);
    plan.set_clock([this] { return sim.now(); });

    phone::PhoneConfig pc;
    pc.model = phone::top20_catalog().front();
    pc.user = "mob1";
    pc.seed = 1;
    pc.connectivity = net::ConnectivityParams::always_connected();
    pc.horizon = days(2);
    phone = std::make_unique<phone::Phone>(pc);
    client::ClientConfig cc =
        client::ClientConfig::v1_3("mob1", channels.exchange, 5);
    cc.retry_base = seconds(10);
    goflow = std::make_unique<client::GoFlowClient>(
        sim, broker, *phone, cc, [](TimeMs) { return 60.0; },
        [](TimeMs) { return std::pair<double, double>{500.0, 500.0}; });
  }

  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server;
  fault::FaultPlan plan{1};
  core::ClientChannels channels;
  std::unique_ptr<phone::Phone> phone;
  std::unique_ptr<client::GoFlowClient> goflow;
};

TEST_F(ServerFaultTest, IngestRetriesTransientInsertUntilStored) {
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 2);
  for (int i = 0; i < 5; ++i) goflow->sense_now(phone::SensingMode::kManual);
  sim.run_until(hours(1));  // transfer + ingest backoff retries
  EXPECT_GE(server.ingest_retries(), 2u);
  EXPECT_EQ(server.pending_ingest_batches(), 0u);
  EXPECT_EQ(server.total_observations(), 5u);
  EXPECT_EQ(db.collection("observations").size(), 5u);
}

TEST_F(ServerFaultTest, AckLostRedeliveryIsDeduplicatedByBatchId) {
  plan.fail_next(fault::FaultSite::kBrokerAckLost, 1);
  for (int i = 0; i < 5; ++i) goflow->sense_now(phone::SensingMode::kManual);
  sim.run_until(hours(1));
  // First copy was routed and stored; the client, seeing an error,
  // re-published the same batch_id — the server must drop it.
  EXPECT_EQ(goflow->stats().publish_failures, 1u);
  EXPECT_GE(goflow->stats().upload_retries, 1u);
  EXPECT_EQ(server.duplicate_batches(), 1u);
  EXPECT_EQ(server.total_observations(), 5u);
  EXPECT_EQ(db.collection("observations").size(), 5u);
}

TEST_F(ServerFaultTest, CrashAfterAckLossIsDeduplicatedPerObservation) {
  obs::SpanTracker tracer;
  goflow->set_tracer(&tracer);
  server.set_tracer(&tracer);
  plan.fail_next(fault::FaultSite::kBrokerAckLost, 1);
  for (int i = 0; i < 5; ++i) goflow->sense_now(phone::SensingMode::kManual);
  // Let the first delivery happen (routed, stored, confirm lost), then
  // crash before the backoff retry fires: the re-upload gets a NEW
  // batch_id, so batch dedup cannot catch it — only per-observation
  // dedup can.
  for (int t = 1; t <= 60 && goflow->stats().publish_failures == 0; ++t)
    sim.run_until(seconds(t));
  ASSERT_EQ(goflow->stats().publish_failures, 1u);
  goflow->crash();
  goflow->restart();
  sim.run_until(hours(1));
  EXPECT_EQ(server.duplicate_observations(), 5u);
  EXPECT_EQ(server.total_observations(), 5u);
  EXPECT_EQ(db.collection("observations").size(), 5u);
}

// --- Crowd sensor faults ----------------------------------------------------

TEST(CrowdFaultTest, SensorFailureSuppressesObservations) {
  crowd::PopulationConfig pc;
  pc.seed = 1;
  pc.device_scale = 0.005;
  pc.obs_scale = 0.02;
  pc.horizon = days(5);
  crowd::Population pop = crowd::Population::generate(pc);

  crowd::DatasetGenerator clean(pop);
  std::uint64_t baseline = clean.generate([](const phone::Observation&) {});
  ASSERT_GT(baseline, 0u);

  fault::FaultPlan all_fail(1);
  all_fail.set_probability(fault::FaultSite::kSensorFail, 1.0);
  crowd::DatasetGenerator broken(pop);
  broken.arm_faults(&all_fail);
  EXPECT_EQ(broken.generate([](const phone::Observation&) {}), 0u);

  fault::FaultPlan half(2);
  half.set_probability(fault::FaultSite::kSensorFail, 0.5);
  crowd::DatasetGenerator flaky(pop);
  flaky.arm_faults(&half);
  std::uint64_t degraded = flaky.generate([](const phone::Observation&) {});
  EXPECT_GT(degraded, 0u);
  EXPECT_LT(degraded, baseline);
}

// --- Assimilation stalls ----------------------------------------------------

TEST(AssimFaultTest, StallSkipsAssimilationButAdvancesTime) {
  auto model = [](TimeMs) { return assim::Grid(8, 8, 800, 800, 50.0); };
  assim::AssimilationCycle cycle(model, 0);
  fault::FaultPlan plan(1);
  plan.fail_next(fault::FaultSite::kAssimStall, 1);
  cycle.arm_faults(&plan);

  phone::Observation obs;
  obs.user = "u";
  obs.model = "M";
  obs.captured_at = minutes(30);
  obs.spl_db = 80.0;
  phone::LocationFix fix;
  fix.x_m = 400;
  fix.y_m = 400;
  fix.accuracy_m = 10.0;
  obs.location = fix;

  assim::CycleStep s1 = cycle.advance({obs});
  EXPECT_TRUE(s1.stalled);
  EXPECT_EQ(s1.observations_used, 0u);
  EXPECT_EQ(cycle.time(), hours(1));  // time still moved
  EXPECT_EQ(cycle.steps(), 1u);

  obs.captured_at = minutes(90);
  assim::CycleStep s2 = cycle.advance({obs});
  EXPECT_FALSE(s2.stalled);
  EXPECT_EQ(s2.observations_used, 1u);
}

}  // namespace
}  // namespace mps
