#include "assim/blue.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::assim {
namespace {

Grid flat_grid(double value = 50.0) { return Grid(16, 16, 1600, 1600, value); }

TEST(Blue, NoObservationsReturnsBackground) {
  Grid bg = flat_grid();
  BlueResult r = blue_analysis(bg, {}, BlueParams{});
  EXPECT_DOUBLE_EQ(r.analysis.rmse(bg), 0.0);
  EXPECT_EQ(r.observations_used, 0u);
}

TEST(Blue, SingleObservationPullsFieldTowardIt) {
  Grid bg = flat_grid(50.0);
  AssimObservation obs{800, 800, 60.0, 2.0};
  BlueParams params;
  params.sigma_b = 4.0;
  params.corr_length_m = 400.0;
  BlueResult r = blue_analysis(bg, {obs}, params);
  double at_obs = r.analysis.sample(800, 800);
  EXPECT_GT(at_obs, 50.0);
  EXPECT_LT(at_obs, 60.0);
  // Weight = sigma_b^2 / (sigma_b^2 + sigma_r^2) = 16/20 = 0.8, i.e. 58 dB
  // in continuous space; the discrete H (bilinear between cell centers)
  // lowers it slightly.
  EXPECT_NEAR(at_obs, 58.0, 1.5);
}

TEST(Blue, CorrectionDecaysWithDistance) {
  Grid bg = flat_grid(50.0);
  BlueParams params;
  params.corr_length_m = 300.0;
  BlueResult r = blue_analysis(bg, {{800, 800, 60.0, 1.0}}, params);
  double near = r.analysis.sample(850, 800) - 50.0;
  double mid = r.analysis.sample(1200, 800) - 50.0;
  double far = r.analysis.sample(1550, 1550) - 50.0;
  EXPECT_GT(near, mid);
  EXPECT_GT(mid, far);
  EXPECT_GT(far, -1e-9);
}

TEST(Blue, TrustReflectsObservationError) {
  Grid bg = flat_grid(50.0);
  BlueParams params;
  BlueResult precise = blue_analysis(bg, {{800, 800, 60.0, 0.5}}, params);
  BlueResult vague = blue_analysis(bg, {{800, 800, 60.0, 10.0}}, params);
  EXPECT_GT(precise.analysis.sample(800, 800),
            vague.analysis.sample(800, 800) + 2.0);
}

TEST(Blue, ResidualSmallerThanInnovation) {
  Grid bg = flat_grid(50.0);
  std::vector<AssimObservation> obs;
  Rng rng(3);
  for (int i = 0; i < 30; ++i)
    obs.push_back({rng.uniform(0, 1600), rng.uniform(0, 1600),
                   rng.uniform(55, 65), 2.0});
  BlueResult r = blue_analysis(bg, obs, BlueParams{});
  EXPECT_GT(r.innovation_rms, 0.0);
  EXPECT_LT(r.residual_rms, r.innovation_rms);
  EXPECT_EQ(r.observations_used, 30u);
}

TEST(Blue, RecoversTrueFieldWithDenseObservations) {
  // Truth is a smooth gradient; background is flat and wrong; dense
  // accurate observations should reconstruct most of the truth.
  Grid truth(16, 16, 1600, 1600);
  for (std::size_t iy = 0; iy < 16; ++iy)
    for (std::size_t ix = 0; ix < 16; ++ix)
      truth.at(ix, iy) = 45.0 + 0.01 * truth.cell_x(ix);
  Grid bg = flat_grid(50.0);
  std::vector<AssimObservation> obs;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    double x = rng.uniform(0, 1600), y = rng.uniform(0, 1600);
    obs.push_back({x, y, truth.sample(x, y), 0.5});
  }
  BlueParams params;
  params.sigma_b = 5.0;
  params.corr_length_m = 250.0;
  BlueResult r = blue_analysis(bg, obs, params);
  EXPECT_LT(r.analysis.rmse(truth), bg.rmse(truth) * 0.35);
}

TEST(Blue, MoreObservationsMoreCorrection) {
  // The paper's §7 claim: the number of contributed measures must be high
  // enough; map error decreases with observation count.
  Grid truth(16, 16, 1600, 1600);
  for (std::size_t iy = 0; iy < 16; ++iy)
    for (std::size_t ix = 0; ix < 16; ++ix)
      truth.at(ix, iy) =
          55.0 + 5.0 * std::sin(truth.cell_x(ix) / 400.0) *
                     std::cos(truth.cell_y(iy) / 400.0);
  Grid bg = flat_grid(55.0);
  Rng rng(7);
  std::vector<AssimObservation> all;
  for (int i = 0; i < 160; ++i) {
    double x = rng.uniform(0, 1600), y = rng.uniform(0, 1600);
    all.push_back({x, y, truth.sample(x, y), 1.0});
  }
  BlueParams params;
  params.corr_length_m = 300.0;
  double prev_rmse = bg.rmse(truth);
  for (std::size_t n : {10u, 40u, 160u}) {
    std::vector<AssimObservation> subset(all.begin(), all.begin() + n);
    BlueResult r = blue_analysis(bg, subset, params);
    double rmse = r.analysis.rmse(truth);
    EXPECT_LT(rmse, prev_rmse);
    prev_rmse = rmse;
  }
}

TEST(Blue, ObservationMatchingBackgroundChangesNothing) {
  Grid bg = flat_grid(50.0);
  BlueResult r = blue_analysis(bg, {{800, 800, 50.0, 1.0}}, BlueParams{});
  EXPECT_NEAR(r.analysis.rmse(bg), 0.0, 1e-9);
  EXPECT_NEAR(r.innovation_rms, 0.0, 1e-12);
}

TEST(BlueSpread, NoObservationsKeepsSigmaB) {
  Grid like = flat_grid();
  BlueParams params;
  params.sigma_b = 4.0;
  Grid spread = analysis_spread(like, {}, params);
  EXPECT_DOUBLE_EQ(spread.min(), 4.0);
  EXPECT_DOUBLE_EQ(spread.max(), 4.0);
}

TEST(BlueSpread, ShrinksNearObservations) {
  Grid like = flat_grid();
  BlueParams params;
  params.sigma_b = 4.0;
  params.corr_length_m = 300.0;
  // Observation placed exactly at a cell center (750, 750) so the
  // point-wise BLUE spread sqrt(sb^2 - sb^4/(sb^2+sr^2)) ~= 0.5 applies
  // without interpolation blur.
  Grid spread = analysis_spread(like, {{750, 750, 0.0, 0.5}}, params);
  double near = spread.sample(750, 750);
  double far = spread.sample(50, 1550);
  EXPECT_LT(near, 1.0);
  EXPECT_GT(far, 3.8);
  // Spread is bounded by [0, sigma_b].
  EXPECT_GE(spread.min(), 0.0);
  EXPECT_LE(spread.max(), 4.0 + 1e-9);
}

TEST(BlueSpread, MoreAccurateObservationShrinksMore) {
  Grid like = flat_grid();
  BlueParams params;
  Grid precise = analysis_spread(like, {{800, 800, 0, 0.5}}, params);
  Grid vague = analysis_spread(like, {{800, 800, 0, 8.0}}, params);
  EXPECT_LT(precise.sample(800, 800), vague.sample(800, 800));
}

TEST(BlueSpread, MonotoneInObservationCount) {
  Grid like = flat_grid();
  BlueParams params;
  Rng rng(11);
  std::vector<AssimObservation> obs;
  double prev_mean = params.sigma_b;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i)
      obs.push_back({rng.uniform(0, 1600), rng.uniform(0, 1600), 0.0, 1.0});
    double mean = analysis_spread(like, obs, params).mean();
    EXPECT_LT(mean, prev_mean);
    prev_mean = mean;
  }
}

TEST(Blue, DuplicateObservationsDoNotExplode) {
  // Two identical observations make H B Ht singular up to R; R > 0 keeps
  // the solve well-posed.
  Grid bg = flat_grid(50.0);
  std::vector<AssimObservation> obs{{800, 800, 60, 1.0}, {800, 800, 60, 1.0}};
  BlueResult r = blue_analysis(bg, obs, BlueParams{});
  EXPECT_LT(r.analysis.max(), 61.0);
  EXPECT_GT(r.analysis.sample(800, 800), 55.0);
}

}  // namespace
}  // namespace mps::assim
