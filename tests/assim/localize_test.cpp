#include "assim/localize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "assim/cycle.h"
#include "assim/obs_index.h"
#include "common/rng.h"

namespace mps::assim {
namespace {

std::vector<AssimObservation> random_obs(std::size_t n, double extent,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AssimObservation> obs(n);
  for (AssimObservation& o : obs) {
    o.x_m = rng.uniform(0, extent);
    o.y_m = rng.uniform(0, extent);
    o.value = rng.uniform(40, 80);
    o.sigma_r = rng.uniform(1.0, 4.0);
  }
  return obs;
}

// --- Taper --------------------------------------------------------------

TEST(Taper, GaspariCohnShape) {
  const double c = 1000.0;
  EXPECT_DOUBLE_EQ(taper_value(CovTaper::kGaspariCohn, 0.0, c), 1.0);
  EXPECT_EQ(taper_value(CovTaper::kGaspariCohn, c, c), 0.0);
  EXPECT_EQ(taper_value(CovTaper::kGaspariCohn, 2 * c, c), 0.0);
  // Monotone non-increasing over the support and continuous at the
  // half-width branch point.
  double prev = 1.0;
  for (int i = 1; i <= 100; ++i) {
    double v = taper_value(CovTaper::kGaspariCohn, c * i / 100.0, c);
    EXPECT_LE(v, prev + 1e-12);
    EXPECT_GE(v, 0.0);
    prev = v;
  }
  double at_half_lo = taper_value(CovTaper::kGaspariCohn, c * 0.5 - 1e-9, c);
  double at_half_hi = taper_value(CovTaper::kGaspariCohn, c * 0.5 + 1e-9, c);
  EXPECT_NEAR(at_half_lo, at_half_hi, 1e-6);
}

TEST(Taper, ExponentialCutoffIsHard) {
  EXPECT_DOUBLE_EQ(taper_value(CovTaper::kExponentialCutoff, 999.999, 1000),
                   1.0);
  EXPECT_EQ(taper_value(CovTaper::kExponentialCutoff, 1000.0, 1000), 0.0);
}

TEST(Taper, CovarianceZeroBeyondCutoff) {
  // The property localization rests on: exactly zero, not merely small.
  EXPECT_EQ(tapered_covariance(3000, 4000, 16.0, 1500, CovTaper::kGaspariCohn,
                               5000),
            0.0);
  EXPECT_GT(tapered_covariance(3000, 3999, 16.0, 1500, CovTaper::kGaspariCohn,
                               5001),
            0.0);
}

// --- ObsIndex -----------------------------------------------------------

TEST(ObsIndex, EmptyAndDegenerate) {
  std::vector<AssimObservation> none;
  ObsIndex empty(none, 100.0);
  std::vector<std::uint32_t> out{7};
  empty.query_box(0, 0, 1e9, 1e9, out);
  EXPECT_TRUE(out.empty());

  // All observations at one point; non-positive cell size is clamped.
  std::vector<AssimObservation> same(5, AssimObservation{10, 10, 50, 1});
  ObsIndex idx(same, -3.0);
  idx.query_box(10, 10, 10, 10, out);
  EXPECT_EQ(out.size(), 5u);
}

TEST(ObsIndex, InclusiveBoxEdges) {
  std::vector<AssimObservation> obs{{0, 0, 0, 1}, {100, 100, 0, 1}};
  ObsIndex idx(obs, 30.0);
  std::vector<std::uint32_t> out;
  idx.query_box(0, 0, 100, 100, out);
  EXPECT_EQ(out.size(), 2u);
  idx.query_box(0, 0, 99.999, 100, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(ObsIndex, MatchesBruteForceAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto obs = random_obs(300, 5000, seed);
    ObsIndex idx(obs, 400.0);
    Rng rng(seed * 77 + 1);
    std::vector<std::uint32_t> got;
    for (int q = 0; q < 50; ++q) {
      double x0 = rng.uniform(-500, 5500), y0 = rng.uniform(-500, 5500);
      double x1 = x0 + rng.uniform(0, 2500), y1 = y0 + rng.uniform(0, 2500);
      idx.query_box(x0, y0, x1, y1, got);
      std::vector<std::uint32_t> want;
      for (std::uint32_t i = 0; i < obs.size(); ++i)
        if (obs[i].x_m >= x0 && obs[i].x_m <= x1 && obs[i].y_m >= y0 &&
            obs[i].y_m <= y1)
          want.push_back(i);
      EXPECT_EQ(got, want);  // equality implies the ascending contract
    }
  }
}

TEST(ObsIndex, BucketCountCappedForTinyCells) {
  auto obs = random_obs(50, 1e7, 9);
  ObsIndex idx(obs, 1.0);  // naively 1e14 buckets
  EXPECT_LE(idx.bucket_count(), std::size_t{1} << 18);
  std::vector<std::uint32_t> out;
  idx.query_box(0, 0, 1e7, 1e7, out);
  EXPECT_EQ(out.size(), obs.size());
}

// --- Localized analysis -------------------------------------------------

BlueParams localized_params(double corr = 600, double cutoff = 0,
                            std::size_t tile = 8,
                            CovTaper taper = CovTaper::kGaspariCohn) {
  BlueParams p;
  p.sigma_b = 4.0;
  p.corr_length_m = corr;
  p.localization.enabled = true;
  p.localization.cutoff_radius_m = cutoff;
  p.localization.tile_cells = tile;
  p.localization.taper = taper;
  return p;
}

TEST(Localized, CutoffDefaultResolves) {
  BlueParams p;
  p.corr_length_m = 1000;
  EXPECT_DOUBLE_EQ(p.cutoff_radius_m(), 2500.0);
  p.localization.cutoff_radius_m = 123.0;
  EXPECT_DOUBLE_EQ(p.cutoff_radius_m(), 123.0);
}

TEST(Localized, NoObservationsIsBackgroundAndFlatSpread) {
  Grid background(16, 16, 1600, 1600, 55.0);
  auto a = localized_analyze(background, {}, localized_params(), true);
  EXPECT_EQ(a.result.analysis.values(), background.values());
  EXPECT_EQ(a.result.observations_used, 0u);
  ASSERT_TRUE(a.spread.has_value());
  EXPECT_DOUBLE_EQ(a.spread->min(), 4.0);
  EXPECT_DOUBLE_EQ(a.spread->max(), 4.0);
}

TEST(Localized, MatchesDenseWhenCutoffCoversDomain) {
  // r_loc beyond the domain diameter with the hard taper: every tile
  // gathers every observation in ascending order and the tapered
  // covariance is the plain exponential, so each tile solves exactly the
  // dense system — the analyses agree to rounding.
  for (std::uint64_t seed : {11u, 12u, 13u, 14u, 15u}) {
    Grid background(24, 24, 4000, 4000, 50.0 + static_cast<double>(seed));
    auto obs = random_obs(80, 4000, seed);
    BlueParams dense;
    dense.sigma_b = 4.0;
    dense.corr_length_m = 900;
    BlueParams local = dense;
    local.localization.enabled = true;
    local.localization.cutoff_radius_m = 1e9;
    local.localization.tile_cells = 7;  // uneven tiling on purpose
    local.localization.taper = CovTaper::kExponentialCutoff;

    BlueResult want = blue_analysis(background, obs, dense);
    auto got = localized_analyze(background, obs, local, true);
    EXPECT_NEAR(got.result.innovation_rms, want.innovation_rms, 1e-9);
    EXPECT_NEAR(got.result.residual_rms, want.residual_rms, 1e-9);
    ASSERT_EQ(got.result.analysis.size(), want.analysis.size());
    for (std::size_t i = 0; i < want.analysis.size(); ++i)
      EXPECT_NEAR(got.result.analysis[i], want.analysis[i], 1e-8);
    EXPECT_LT(got.result.analysis.rmse(want.analysis), 1e-9);

    Grid want_spread = analysis_spread(background, obs, dense);
    EXPECT_LT(got.spread->rmse(want_spread), 1e-9);
    EXPECT_EQ(got.stats.max_local_obs, obs.size());
    EXPECT_EQ(got.stats.empty_tiles, 0u);
  }
}

TEST(Localized, GaspariCohnConvergesToDenseAsCutoffGrows) {
  Grid background(20, 20, 4000, 4000, 52.0);
  auto obs = random_obs(60, 4000, 21);
  BlueParams dense;
  dense.corr_length_m = 800;
  BlueResult want = blue_analysis(background, obs, dense);

  double prev_err = 1e30;
  for (double cutoff : {4000.0, 16000.0, 1e8}) {
    BlueParams local = dense;
    local.localization.enabled = true;
    local.localization.cutoff_radius_m = cutoff;
    BlueResult got = blue_analysis(background, obs, local);
    double e = got.analysis.rmse(want.analysis);
    EXPECT_LT(e, prev_err + 1e-15);
    prev_err = e;
  }
  EXPECT_LT(prev_err, 1e-6);  // the acceptance gate's r_loc → ∞ bound
}

TEST(Localized, BitIdenticalAcrossThreadCounts) {
  Grid background(32, 32, 6400, 6400, 48.0);
  auto obs = random_obs(150, 6400, 31);
  BlueParams params = localized_params(600, 1500, 8);
  auto seq = localized_analyze(background, obs, params, true, nullptr);
  for (std::size_t threads : {2u, 8u}) {
    exec::ThreadPool pool(threads);
    auto par = localized_analyze(background, obs, params, true, &pool);
    EXPECT_EQ(par.result.analysis.values(), seq.result.analysis.values())
        << "threads=" << threads;
    EXPECT_EQ(par.spread->values(), seq.spread->values());
    EXPECT_EQ(par.result.innovation_rms, seq.result.innovation_rms);
    EXPECT_EQ(par.result.residual_rms, seq.result.residual_rms);
    EXPECT_EQ(par.stats.max_local_obs, seq.stats.max_local_obs);
    EXPECT_EQ(par.stats.local_obs_total, seq.stats.local_obs_total);
  }
}

TEST(Localized, ZeroObsTilesKeepBackgroundAndFullSpread) {
  // All observations cluster in the south-west corner with a small
  // cutoff: far tiles must be untouched — exactly, not approximately.
  Grid background(32, 32, 6400, 6400, 50.0);
  Rng rng(5);
  std::vector<AssimObservation> obs;
  for (int i = 0; i < 40; ++i)
    obs.push_back({rng.uniform(0, 800), rng.uniform(0, 800), 60.0, 2.0});
  BlueParams params = localized_params(300, 900, 8);
  auto a = localized_analyze(background, obs, params, true);
  EXPECT_GT(a.stats.empty_tiles, 0u);
  // North-east corner cell: > cutoff from every observation.
  EXPECT_EQ(a.result.analysis.at(31, 31), 50.0);
  EXPECT_EQ(a.spread->at(31, 31), params.sigma_b);
  // The cluster itself was corrected toward the observed 60 dB.
  EXPECT_GT(a.result.analysis.at(2, 2), 52.0);
  EXPECT_LT(a.spread->at(2, 2), params.sigma_b);
}

TEST(Localized, AllObsInOneTileStillCorrectsNeighbours) {
  // Everything lands in tile (0,0) but the cutoff reaches into the
  // neighbouring tiles: their analyses must see the observations too
  // (the halo), even though the obs "belong" to another tile.
  Grid background(16, 16, 3200, 3200, 50.0);
  std::vector<AssimObservation> obs;
  for (int i = 0; i < 10; ++i)
    obs.push_back({700.0 + i, 700.0 + i, 58.0, 1.0});
  BlueParams params = localized_params(500, 1500, 8);
  auto a = localized_analyze(background, obs, params, false);
  // Cell (8,8) is at 1700m — inside the second tile, ~1400m from the
  // cluster, within the cutoff.
  EXPECT_GT(a.result.analysis.at(8, 8), 50.0 + 1e-6);
  EXPECT_EQ(a.stats.tiles, 4u);
}

TEST(Localized, ObsOnTileAndHaloBoundary) {
  // An observation exactly on the boundary between two tiles, and a
  // second exactly r_loc away from a cell center (taper == 0 there):
  // both are assigned deterministically and the run is well-behaved.
  Grid background(16, 16, 1600, 1600, 50.0);
  // Cell centers at 50, 150, ..., tile edge (8 cells) at x = 800.
  std::vector<AssimObservation> obs{
      {800.0, 800.0, 56.0, 1.0},          // exact tile boundary
      {50.0 + 400.0, 50.0, 56.0, 1.0},    // exactly cutoff from cell (0,0)
  };
  BlueParams params = localized_params(200, 400, 8);
  auto a = localized_analyze(background, obs, params, true);
  // The boundary obs corrects cells on BOTH sides of the tile edge.
  EXPECT_GT(a.result.analysis.at(7, 7), 50.0);
  EXPECT_GT(a.result.analysis.at(8, 8), 50.0);
  // Cell (0,0) is exactly at the cutoff from obs #2 → zero covariance;
  // obs #1 is far beyond the cutoff. Untouched.
  EXPECT_EQ(a.result.analysis.at(0, 0), 50.0);
  EXPECT_EQ(a.spread->at(0, 0), params.sigma_b);
}

TEST(Localized, CutoffSmallerThanGridSpacing) {
  // Cells are 100 m apart; a 30 m cutoff means an observation can only
  // ever touch the one cell it sits in.
  Grid background(8, 8, 800, 800, 50.0);
  std::vector<AssimObservation> obs{{250.0, 250.0, 60.0, 0.5}};
  BlueParams params = localized_params(600, 30, 4);
  auto a = localized_analyze(background, obs, params, true);
  for (std::size_t iy = 0; iy < 8; ++iy)
    for (std::size_t ix = 0; ix < 8; ++ix) {
      if (ix == 2 && iy == 2) {
        EXPECT_GT(a.result.analysis.at(ix, iy), 50.0);
        EXPECT_LT(a.spread->at(ix, iy), params.sigma_b);
      } else {
        EXPECT_EQ(a.result.analysis.at(ix, iy), 50.0) << ix << "," << iy;
        EXPECT_EQ(a.spread->at(ix, iy), params.sigma_b);
      }
    }
}

TEST(Localized, DispatchThroughPublicEntryPoints) {
  // blue_analysis / analysis_spread route to the tiled engine when
  // localization is enabled.
  Grid background(16, 16, 3200, 3200, 50.0);
  auto obs = random_obs(40, 3200, 41);
  BlueParams params = localized_params(500, 1200, 8);
  BlueResult via_blue = blue_analysis(background, obs, params);
  auto direct = localized_analyze(background, obs, params, true);
  EXPECT_EQ(via_blue.analysis.values(), direct.result.analysis.values());
  Grid via_spread = analysis_spread(background, obs, params);
  EXPECT_EQ(via_spread.values(), direct.spread->values());
}

// --- Shared factorization (the double-solve fix) ------------------------

TEST(Factorization, SharedFactorMatchesStandalonePaths) {
  Grid background(20, 20, 2000, 2000, 50.0);
  auto obs = random_obs(60, 2000, 51);
  BlueParams params;
  params.corr_length_m = 700;
  ObsFactorization f(obs, params);
  BlueResult shared = blue_analysis(background, obs, f, params);
  BlueResult standalone = blue_analysis(background, obs, params);
  EXPECT_EQ(shared.analysis.values(), standalone.analysis.values());
  EXPECT_EQ(shared.residual_rms, standalone.residual_rms);
  Grid shared_spread = analysis_spread(background, obs, f, params);
  Grid standalone_spread = analysis_spread(background, obs, params);
  EXPECT_EQ(shared_spread.values(), standalone_spread.values());
}

phone::Observation phone_obs(double x, double y, double value) {
  phone::Observation obs;
  obs.user = "u";
  obs.model = "M";
  obs.spl_db = value;
  phone::LocationFix fix;
  fix.x_m = x;
  fix.y_m = y;
  fix.accuracy_m = 15.0;
  obs.location = fix;
  return obs;
}

TEST(Factorization, CycleSpreadMatchesStandaloneAnalysisSpread) {
  // First advance: the increment is zero, so the step's background is
  // exactly model(step). The cycle's shared-factorization spread must be
  // bit-identical to a standalone analysis_spread over the same window.
  auto model = [](TimeMs) { return Grid(16, 16, 1600, 1600, 50.0); };
  for (bool localize : {false, true}) {
    CycleConfig config;
    config.compute_spread = true;
    config.blue.corr_length_m = 400;
    config.blue.localization.enabled = localize;
    config.blue.localization.tile_cells = 8;
    AssimilationCycle cycle(model, 0, config);
    EXPECT_DOUBLE_EQ(cycle.spread().mean(), config.blue.sigma_b);

    Rng rng(61);
    std::vector<phone::Observation> window;
    for (int i = 0; i < 30; ++i)
      window.push_back(
          phone_obs(rng.uniform(0, 1600), rng.uniform(0, 1600), 57.0));
    cycle.advance(window);

    std::vector<AssimObservation> converted =
        convert_observations(window, config.policy, identity_calibration());
    Grid want = analysis_spread(model(0), converted, config.blue);
    EXPECT_EQ(cycle.spread().values(), want.values()) << "localize=" << localize;
  }
}

TEST(Factorization, CycleSpreadOffLeavesSigmaB) {
  auto model = [](TimeMs) { return Grid(8, 8, 800, 800, 50.0); };
  AssimilationCycle cycle(model, 0);
  cycle.advance({phone_obs(400, 400, 58)});
  EXPECT_DOUBLE_EQ(cycle.spread().mean(), cycle.config().blue.sigma_b);
}

}  // namespace
}  // namespace mps::assim
