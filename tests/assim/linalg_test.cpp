#include "assim/linalg.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::assim {
namespace {

TEST(Linalg, CholeskyKnownFactor) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  cholesky(a);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_NEAR(a(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);  // upper triangle zeroed
}

TEST(Linalg, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), std::runtime_error);
}

TEST(Linalg, CholeskyRejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(cholesky(a), std::invalid_argument);
}

TEST(Linalg, SolveIdentity) {
  Matrix a(3, 3);
  for (int i = 0; i < 3; ++i) a(i, i) = 1.0;
  std::vector<double> b{1.0, 2.0, 3.0};
  std::vector<double> x = solve_spd(a, b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x[i], b[i], 1e-12);
}

TEST(Linalg, SolveKnownSystem) {
  // [[4,2],[2,3]] x = [10, 9] -> x = [1.5, 2].
  Matrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 3;
  std::vector<double> x = solve_spd(a, {10.0, 9.0});
  EXPECT_NEAR(x[0], 1.5, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Linalg, SolveSizeMismatchThrows) {
  Matrix a(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  cholesky(a);
  EXPECT_THROW(cholesky_solve(a, {1.0, 2.0, 3.0}), std::invalid_argument);
}

// Property: random SPD systems (A = M Mᵀ + n*I) solve to machine accuracy.
class RandomSpdTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSpdTest, ResidualSmall) {
  int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7 + 1);
  Matrix m(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.uniform(-1, 1);
  Matrix a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double s = 0;
      for (int k = 0; k < n; ++k) s += m(i, k) * m(j, k);
      a(i, j) = s + (i == j ? n : 0.0);
    }
  std::vector<double> b(n);
  for (double& v : b) v = rng.uniform(-5, 5);
  Matrix a_copy = a;
  std::vector<double> x = solve_spd(a, b);
  // Residual ||A x - b||_inf.
  for (int i = 0; i < n; ++i) {
    double r = -b[i];
    for (int j = 0; j < n; ++j) r += a_copy(i, j) * x[j];
    EXPECT_NEAR(r, 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSpdTest, ::testing::Values(1, 2, 5, 20, 80));

}  // namespace
}  // namespace mps::assim
