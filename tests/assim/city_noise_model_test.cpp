#include "assim/city_noise_model.h"

#include <gtest/gtest.h>

namespace mps::assim {
namespace {

CityModelParams small_params() {
  CityModelParams p;
  p.extent_m = 5000;
  p.grid_nx = 16;
  p.grid_ny = 16;
  p.road_count = 10;
  p.poi_count = 20;
  return p;
}

TEST(CityNoiseModel, Deterministic) {
  CityNoiseModel a(small_params(), 5), b(small_params(), 5);
  Grid ga = a.truth(hours(12)), gb = b.truth(hours(12));
  EXPECT_DOUBLE_EQ(ga.rmse(gb), 0.0);
}

TEST(CityNoiseModel, DifferentSeedsDifferentCities) {
  CityNoiseModel a(small_params(), 1), b(small_params(), 2);
  EXPECT_GT(a.truth(hours(12)).rmse(b.truth(hours(12))), 1.0);
}

TEST(CityNoiseModel, LevelsPhysicallyPlausible) {
  CityNoiseModel model(small_params(), 3);
  Grid g = model.truth(hours(12));
  EXPECT_GT(g.min(), 25.0);   // above background
  EXPECT_LT(g.max(), 100.0);  // below pain threshold
  EXPECT_GT(g.max() - g.min(), 5.0);  // spatial structure exists
}

TEST(CityNoiseModel, NightQuieterThanDay) {
  CityNoiseModel model(small_params(), 3);
  EXPECT_GT(model.truth(hours(14)).mean(), model.truth(hours(4)).mean() + 2.0);
}

TEST(CityNoiseModel, DiurnalOffsetShape) {
  EXPECT_NEAR(CityNoiseModel::diurnal_offset_db(hours(4)), -6.0, 0.2);
  EXPECT_NEAR(CityNoiseModel::diurnal_offset_db(hours(16)), 0.0, 0.2);
  for (int h = 0; h < 24; ++h) {
    double off = CityNoiseModel::diurnal_offset_db(hours(h));
    EXPECT_GE(off, -6.01);
    EXPECT_LE(off, 0.01);
  }
}

TEST(CityNoiseModel, ModelDiffersFromTruth) {
  // The model field carries deliberate error (perturbed + missing
  // sources) — that is what assimilation will correct.
  CityNoiseModel model(small_params(), 7);
  double rmse = model.model(hours(12)).rmse(model.truth(hours(12)));
  EXPECT_GT(rmse, 0.5);
  EXPECT_LT(rmse, 15.0);
}

TEST(CityNoiseModel, ModelMissingSources) {
  CityNoiseModel model(small_params(), 9);
  EXPECT_LT(model.params().model_missing_fraction, 1.0);
  // Construction dropped roughly model_missing_fraction of sources.
  EXPECT_LT(model.roads().size() + model.pois().size(),
            static_cast<std::size_t>(small_params().road_count +
                                     small_params().poi_count) +
                1);
}

TEST(CityNoiseModel, TruthAtMatchesGridSample) {
  CityNoiseModel model(small_params(), 11);
  Grid g = model.truth(hours(10));
  // Grid value at a cell center equals the point evaluation there.
  double x = g.cell_x(5), y = g.cell_y(7);
  EXPECT_NEAR(g.at(5, 7), model.truth_at(x, y, hours(10)), 1e-9);
}

TEST(CityNoiseModel, NearRoadLouderThanFarField) {
  CityModelParams p = small_params();
  p.road_count = 1;
  p.poi_count = 0;
  CityNoiseModel model(p, 13);
  ASSERT_EQ(model.roads().size(), 1u);
  const Road& r = model.roads()[0];
  double mid_x = (r.x1 + r.x2) / 2, mid_y = (r.y1 + r.y2) / 2;
  double near = model.truth_at(mid_x, mid_y, hours(12));
  // A point far away from the single road.
  double fx = mid_x > p.extent_m / 2 ? 100.0 : p.extent_m - 100.0;
  double fy = mid_y > p.extent_m / 2 ? 100.0 : p.extent_m - 100.0;
  double far = model.truth_at(fx, fy, hours(12));
  EXPECT_GT(near, far + 6.0);
}

}  // namespace
}  // namespace mps::assim
