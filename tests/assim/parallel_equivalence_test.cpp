// Sequential-vs-parallel equivalence: the parallel compute plane must be
// invisible in the results. Every field below is compared bit for bit
// (EXPECT_EQ on doubles / whole value vectors, no tolerances) between the
// sequential oracle (executor == nullptr) and pools of several sizes —
// the determinism contract of DESIGN.md §10.
#include <gtest/gtest.h>

#include <vector>

#include "assim/assimilator.h"
#include "assim/blue.h"
#include "assim/city_noise_model.h"
#include "assim/cycle.h"
#include "assim/grid.h"
#include "common/rng.h"
#include "exec/executor.h"

namespace mps::assim {
namespace {

std::vector<AssimObservation> random_observations(std::size_t n,
                                                  double extent_m,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AssimObservation> out(n);
  for (AssimObservation& obs : out) {
    obs.x_m = rng.uniform(0, extent_m);
    obs.y_m = rng.uniform(0, extent_m);
    obs.value = rng.uniform(40.0, 80.0);
    obs.sigma_r = rng.uniform(1.0, 5.0);
  }
  return out;
}

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kThreadCounts[3] = {1, 2, 8};
};

TEST_F(ParallelEquivalenceTest, BlueAnalysisFieldBitExact) {
  CityModelParams params;
  params.grid_nx = 37;  // deliberately not a power of two
  params.grid_ny = 29;
  CityNoiseModel city(params, 11);
  Grid background = city.model(hours(9));
  auto observations = random_observations(150, params.extent_m, 3);
  BlueParams blue;

  BlueResult sequential = blue_analysis(background, observations, blue);
  for (std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    BlueResult parallel = blue_analysis(background, observations, blue, &pool);
    EXPECT_EQ(sequential.analysis.values(), parallel.analysis.values())
        << "threads=" << threads;
    EXPECT_EQ(sequential.innovation_rms, parallel.innovation_rms);
    EXPECT_EQ(sequential.residual_rms, parallel.residual_rms);
    EXPECT_EQ(sequential.observations_used, parallel.observations_used);
  }
}

TEST_F(ParallelEquivalenceTest, BlueAnalysisNoObservationsParallel) {
  Grid background(8, 8, 800, 800, 55.0);
  exec::ThreadPool pool(4);
  BlueResult r = blue_analysis(background, {}, BlueParams{}, &pool);
  EXPECT_EQ(r.analysis.values(), background.values());
  EXPECT_EQ(r.observations_used, 0u);
}

TEST_F(ParallelEquivalenceTest, AnalysisSpreadBitExact) {
  Grid like(31, 23, 5'000, 4'000);
  auto observations = random_observations(60, 5'000, 17);
  BlueParams blue;

  Grid sequential = analysis_spread(like, observations, blue);
  for (std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    Grid parallel = analysis_spread(like, observations, blue, &pool);
    EXPECT_EQ(sequential.values(), parallel.values()) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, CityFieldsBitExact) {
  CityModelParams params;
  params.grid_nx = 53;
  params.grid_ny = 41;
  CityNoiseModel city(params, 23);
  Grid truth_seq = city.truth(hours(15));
  Grid model_seq = city.model(hours(15));
  for (std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    EXPECT_EQ(truth_seq.values(), city.truth(hours(15), &pool).values())
        << "threads=" << threads;
    EXPECT_EQ(model_seq.values(), city.model(hours(15), &pool).values())
        << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, GridReductionsBitExact) {
  Rng rng(5);
  Grid a(97, 61, 9'700, 6'100);
  Grid b(97, 61, 9'700, 6'100);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform(-100.0, 100.0);
    b[i] = rng.uniform(-100.0, 100.0);
  }
  double rmse_seq = a.rmse(b);
  double min_seq = a.min();
  double max_seq = a.max();
  double mean_seq = a.mean();
  for (std::size_t threads : kThreadCounts) {
    exec::ThreadPool pool(threads);
    EXPECT_EQ(rmse_seq, a.rmse(b, &pool)) << "threads=" << threads;
    EXPECT_EQ(min_seq, a.min(&pool)) << "threads=" << threads;
    EXPECT_EQ(max_seq, a.max(&pool)) << "threads=" << threads;
    EXPECT_EQ(mean_seq, a.mean(&pool)) << "threads=" << threads;
  }
}

TEST_F(ParallelEquivalenceTest, AssimilatePipelinePassesExecutorThrough) {
  CityModelParams params;
  params.grid_nx = 24;
  params.grid_ny = 24;
  CityNoiseModel city(params, 31);
  Grid background = city.model(hours(12));

  // Phone observations with locations, through the full filter path.
  Rng rng(41);
  std::vector<phone::Observation> observations(80);
  for (phone::Observation& obs : observations) {
    obs.spl_db = rng.uniform(45.0, 75.0);
    phone::LocationFix fix;
    fix.x_m = rng.uniform(0, params.extent_m);
    fix.y_m = rng.uniform(0, params.extent_m);
    fix.accuracy_m = rng.uniform(5.0, 150.0);
    obs.location = fix;
  }

  ConversionStats stats_seq, stats_par;
  BlueResult sequential =
      assimilate(background, observations, BlueParams{}, ObservationPolicy{},
                 identity_calibration(), &stats_seq);
  exec::ThreadPool pool(4);
  BlueResult parallel =
      assimilate(background, observations, BlueParams{}, ObservationPolicy{},
                 identity_calibration(), &stats_par, &pool);
  EXPECT_EQ(sequential.analysis.values(), parallel.analysis.values());
  EXPECT_EQ(stats_seq.accepted, stats_par.accepted);
  EXPECT_EQ(stats_seq.rejected_accuracy, stats_par.rejected_accuracy);
}

TEST_F(ParallelEquivalenceTest, CycledAssimilationBitExact) {
  CityModelParams params;
  params.grid_nx = 20;
  params.grid_ny = 20;
  CityNoiseModel city(params, 47);

  auto run_cycle = [&](exec::Executor* executor) {
    CycleConfig config;
    config.executor = executor;
    AssimilationCycle cycle([&](TimeMs t) { return city.model(t, executor); },
                            hours(0), config);
    Rng rng(53);
    for (int step = 0; step < 5; ++step) {
      std::vector<phone::Observation> window(30);
      for (phone::Observation& obs : window) {
        obs.spl_db = rng.uniform(45.0, 75.0);
        phone::LocationFix fix;
        fix.x_m = rng.uniform(0, params.extent_m);
        fix.y_m = rng.uniform(0, params.extent_m);
        fix.accuracy_m = rng.uniform(5.0, 80.0);
        obs.location = fix;
      }
      cycle.advance(window);
    }
    return cycle.analysis();
  };

  Grid sequential = run_cycle(nullptr);
  exec::ThreadPool pool(4);
  Grid parallel = run_cycle(&pool);
  EXPECT_EQ(sequential.values(), parallel.values());
}

}  // namespace
}  // namespace mps::assim
