#include "assim/complaints.h"

#include <gtest/gtest.h>

#include "assim/city_noise_model.h"

namespace mps::assim {
namespace {

TEST(Complaints, NoneWhenSilentAndNoBaseRate) {
  Grid quiet(8, 8, 800, 800, 30.0);
  ComplaintParams params;
  params.base_rate_per_cell = 0.0;
  Rng rng(1);
  EXPECT_TRUE(generate_complaints(quiet, params, rng).empty());
}

TEST(Complaints, LoudCellsComplainMore) {
  Grid noise(2, 1, 200, 100, 40.0);
  noise.at(1, 0) = 80.0;  // one very loud cell
  ComplaintParams params;
  params.base_rate_per_cell = 0.0;
  params.rate_per_db = 0.5;
  Rng rng(2);
  auto complaints = generate_complaints(noise, params, rng);
  ASSERT_FALSE(complaints.empty());
  for (const Complaint& c : complaints) EXPECT_GT(c.x_m, 100.0);
}

TEST(Complaints, PositionsInsideCity) {
  Grid noise(8, 8, 800, 800, 70.0);
  ComplaintParams params;
  Rng rng(3);
  for (const Complaint& c : generate_complaints(noise, params, rng)) {
    EXPECT_GE(c.x_m, -50.0);
    EXPECT_LE(c.x_m, 850.0);
    EXPECT_GE(c.y_m, -50.0);
    EXPECT_LE(c.y_m, 850.0);
  }
}

TEST(Complaints, CorrelationStrongOnRealCity) {
  // The Figure 4 claim: complaints correlate with the noise map.
  CityModelParams city_params;
  city_params.extent_m = 8000;
  city_params.grid_nx = 32;
  city_params.grid_ny = 32;
  CityNoiseModel city(city_params, 4);
  Grid noise = city.truth(hours(20));  // evening
  ComplaintParams params;
  Rng rng(5);
  auto complaints = generate_complaints(noise, params, rng);
  ASSERT_GT(complaints.size(), 50u);
  ComplaintCorrelation corr = correlate_complaints(noise, complaints);
  EXPECT_GT(corr.pearson, 0.4);
  EXPECT_GT(corr.spearman, 0.3);
  EXPECT_EQ(corr.complaint_count, complaints.size());
}

TEST(Complaints, UncorrelatedComplaintsScoreLow) {
  Grid noise(16, 16, 1600, 1600, 40.0);
  for (std::size_t iy = 0; iy < 16; ++iy)
    for (std::size_t ix = 0; ix < 16; ++ix)
      noise.at(ix, iy) = 40.0 + (ix % 2) * 20.0;
  // Complaints scattered uniformly — no relation to the field.
  Rng rng(6);
  std::vector<Complaint> complaints;
  for (int i = 0; i < 300; ++i)
    complaints.push_back({rng.uniform(0, 1600), rng.uniform(0, 1600)});
  ComplaintCorrelation corr = correlate_complaints(noise, complaints);
  EXPECT_LT(std::abs(corr.pearson), 0.2);
}

}  // namespace
}  // namespace mps::assim
