#include "assim/assimilator.h"

#include <gtest/gtest.h>

namespace mps::assim {
namespace {

phone::Observation make_obs(double spl, std::optional<double> accuracy,
                            double x = 800, double y = 800,
                            const char* model = "M1") {
  phone::Observation obs;
  obs.user = "u";
  obs.model = model;
  obs.spl_db = spl;
  if (accuracy.has_value()) {
    phone::LocationFix fix;
    fix.x_m = x;
    fix.y_m = y;
    fix.accuracy_m = *accuracy;
    obs.location = fix;
  }
  return obs;
}

TEST(Assimilator, FiltersUnlocalized) {
  ObservationPolicy policy;
  ConversionStats stats;
  auto out = convert_observations(
      {make_obs(50, std::nullopt), make_obs(55, 30.0)}, policy,
      identity_calibration(), &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected_no_location, 1u);
}

TEST(Assimilator, FiltersBadAccuracy) {
  ObservationPolicy policy;
  policy.max_accuracy_m = 100.0;
  ConversionStats stats;
  auto out = convert_observations(
      {make_obs(50, 30.0), make_obs(55, 250.0)}, policy,
      identity_calibration(), &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.rejected_accuracy, 1u);
}

TEST(Assimilator, AllowUnlocalizedWhenPolicyPermits) {
  ObservationPolicy policy;
  policy.require_location = false;
  auto out = convert_observations({make_obs(50, std::nullopt)}, policy,
                                  identity_calibration(), nullptr);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].sigma_r, policy.base_sigma_r_db);
}

TEST(Assimilator, SigmaGrowsWithInaccuracy) {
  ObservationPolicy policy;
  auto out = convert_observations(
      {make_obs(50, 10.0), make_obs(50, 90.0)}, policy,
      identity_calibration(), nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_LT(out[0].sigma_r, out[1].sigma_r);
  EXPECT_NEAR(out[1].sigma_r - out[0].sigma_r,
              80.0 * policy.sigma_per_accuracy_m, 1e-9);
}

TEST(Assimilator, CalibrationApplied) {
  ObservationPolicy policy;
  Calibration calib = [](const DeviceModelId& model, double raw) {
    return model == "M1" ? raw - 5.0 : raw;
  };
  auto out = convert_observations(
      {make_obs(60, 20.0, 800, 800, "M1"), make_obs(60, 20.0, 800, 800, "M2")},
      policy, calib, nullptr);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].value, 55.0);
  EXPECT_DOUBLE_EQ(out[1].value, 60.0);
}

TEST(Assimilator, PositionsCopiedFromFix) {
  ObservationPolicy policy;
  auto out = convert_observations({make_obs(50, 20.0, 123, 456)}, policy,
                                  identity_calibration(), nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].x_m, 123.0);
  EXPECT_DOUBLE_EQ(out[0].y_m, 456.0);
}

TEST(Assimilator, EndToEndPipelineCorrectsMap) {
  Grid bg(8, 8, 1600, 1600, 50.0);
  std::vector<phone::Observation> observations;
  for (int i = 0; i < 20; ++i)
    observations.push_back(make_obs(58.0, 15.0, 800, 800));
  ConversionStats stats;
  BlueResult r = assimilate(bg, observations, BlueParams{},
                            ObservationPolicy{}, identity_calibration(),
                            &stats);
  EXPECT_EQ(stats.accepted, 20u);
  EXPECT_GT(r.analysis.sample(800, 800), 55.0);
}

TEST(Assimilator, CalibratedBeatsUncalibrated) {
  // Devices with a +6 dB bias observe a true field of 55 dB; background
  // is 50. Calibrated assimilation lands closer to truth.
  Grid bg(8, 8, 1600, 1600, 50.0);
  Grid truth(8, 8, 1600, 1600, 55.0);
  std::vector<phone::Observation> observations;
  for (int i = 0; i < 40; ++i) {
    double x = 100.0 + (i % 8) * 200.0, y = 100.0 + (i / 8) * 300.0;
    observations.push_back(make_obs(55.0 + 6.0, 15.0, x, y));
  }
  Calibration calibrated = [](const DeviceModelId&, double raw) {
    return raw - 6.0;
  };
  BlueResult with = assimilate(bg, observations, BlueParams{},
                               ObservationPolicy{}, calibrated);
  BlueResult without = assimilate(bg, observations, BlueParams{},
                                  ObservationPolicy{});
  EXPECT_LT(with.analysis.rmse(truth), without.analysis.rmse(truth));
}

}  // namespace
}  // namespace mps::assim
