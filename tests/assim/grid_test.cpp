#include "assim/grid.h"

#include <gtest/gtest.h>

namespace mps::assim {
namespace {

TEST(GridTest, ConstructionAndFill) {
  Grid g(4, 3, 400, 300, 7.0);
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 3u);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(g.at(3, 2), 7.0);
  EXPECT_DOUBLE_EQ(g.mean(), 7.0);
}

TEST(GridTest, InvalidConstruction) {
  EXPECT_THROW(Grid(0, 3, 100, 100), std::invalid_argument);
  EXPECT_THROW(Grid(3, 3, 0, 100), std::invalid_argument);
}

TEST(GridTest, CellCenters) {
  Grid g(4, 2, 400, 200);
  EXPECT_DOUBLE_EQ(g.cell_x(0), 50.0);
  EXPECT_DOUBLE_EQ(g.cell_x(3), 350.0);
  EXPECT_DOUBLE_EQ(g.cell_y(0), 50.0);
  EXPECT_DOUBLE_EQ(g.cell_y(1), 150.0);
}

TEST(GridTest, CellOfAndClamping) {
  Grid g(4, 4, 400, 400);
  EXPECT_EQ(g.cell_of(50, 50), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(g.cell_of(399, 399), (std::pair<std::size_t, std::size_t>{3, 3}));
  EXPECT_EQ(g.cell_of(-10, 500), (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(g.cell_of(400, 0).first, 3u);  // boundary clamps inside
}

TEST(GridTest, FlatIndexConsistent) {
  Grid g(5, 4, 500, 400);
  auto [ix, iy] = g.cell_of(333, 222);
  EXPECT_EQ(g.flat_index_of(333, 222), iy * 5 + ix);
}

TEST(GridTest, FlatAccessMatchesAt) {
  Grid g(3, 3, 300, 300);
  g.at(1, 2) = 42.0;
  EXPECT_DOUBLE_EQ(g[2 * 3 + 1], 42.0);
}

TEST(GridTest, SampleInterpolatesLinearly) {
  Grid g(2, 1, 200, 100);
  g.at(0, 0) = 10.0;
  g.at(1, 0) = 20.0;
  // Cell centers at x=50 and x=150.
  EXPECT_DOUBLE_EQ(g.sample(50, 50), 10.0);
  EXPECT_DOUBLE_EQ(g.sample(150, 50), 20.0);
  EXPECT_DOUBLE_EQ(g.sample(100, 50), 15.0);
  // Outside the center span: clamped.
  EXPECT_DOUBLE_EQ(g.sample(0, 50), 10.0);
  EXPECT_DOUBLE_EQ(g.sample(200, 50), 20.0);
}

TEST(GridTest, SampleBilinear) {
  Grid g(2, 2, 200, 200);
  g.at(0, 0) = 0.0;
  g.at(1, 0) = 10.0;
  g.at(0, 1) = 20.0;
  g.at(1, 1) = 30.0;
  EXPECT_DOUBLE_EQ(g.sample(100, 100), 15.0);  // center of the four
}

TEST(GridTest, RmseAndErrors) {
  Grid a(2, 2, 100, 100, 1.0), b(2, 2, 100, 100, 4.0);
  EXPECT_DOUBLE_EQ(a.rmse(b), 3.0);
  Grid c(3, 2, 100, 100);
  EXPECT_THROW(a.rmse(c), std::invalid_argument);
}

TEST(GridTest, MinMaxMean) {
  Grid g(2, 1, 100, 100);
  g.at(0, 0) = -5.0;
  g.at(1, 0) = 15.0;
  EXPECT_DOUBLE_EQ(g.min(), -5.0);
  EXPECT_DOUBLE_EQ(g.max(), 15.0);
  EXPECT_DOUBLE_EQ(g.mean(), 5.0);
}

}  // namespace
}  // namespace mps::assim
