#include "assim/grid.h"

#include <gtest/gtest.h>

namespace mps::assim {
namespace {

TEST(GridTest, ConstructionAndFill) {
  Grid g(4, 3, 400, 300, 7.0);
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 3u);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(g.at(3, 2), 7.0);
  EXPECT_DOUBLE_EQ(g.mean(), 7.0);
}

TEST(GridTest, InvalidConstruction) {
  EXPECT_THROW(Grid(0, 3, 100, 100), std::invalid_argument);
  EXPECT_THROW(Grid(3, 3, 0, 100), std::invalid_argument);
}

TEST(GridTest, CellCenters) {
  Grid g(4, 2, 400, 200);
  EXPECT_DOUBLE_EQ(g.cell_x(0), 50.0);
  EXPECT_DOUBLE_EQ(g.cell_x(3), 350.0);
  EXPECT_DOUBLE_EQ(g.cell_y(0), 50.0);
  EXPECT_DOUBLE_EQ(g.cell_y(1), 150.0);
}

TEST(GridTest, CellOfAndClamping) {
  Grid g(4, 4, 400, 400);
  EXPECT_EQ(g.cell_of(50, 50), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(g.cell_of(399, 399), (std::pair<std::size_t, std::size_t>{3, 3}));
  EXPECT_EQ(g.cell_of(-10, 500), (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(g.cell_of(400, 0).first, 3u);  // boundary clamps inside
}

TEST(GridTest, FlatIndexConsistent) {
  Grid g(5, 4, 500, 400);
  auto [ix, iy] = g.cell_of(333, 222);
  EXPECT_EQ(g.flat_index_of(333, 222), iy * 5 + ix);
}

TEST(GridTest, FlatAccessMatchesAt) {
  Grid g(3, 3, 300, 300);
  g.at(1, 2) = 42.0;
  EXPECT_DOUBLE_EQ(g[2 * 3 + 1], 42.0);
}

TEST(GridTest, SampleInterpolatesLinearly) {
  Grid g(2, 1, 200, 100);
  g.at(0, 0) = 10.0;
  g.at(1, 0) = 20.0;
  // Cell centers at x=50 and x=150.
  EXPECT_DOUBLE_EQ(g.sample(50, 50), 10.0);
  EXPECT_DOUBLE_EQ(g.sample(150, 50), 20.0);
  EXPECT_DOUBLE_EQ(g.sample(100, 50), 15.0);
  // Outside the center span: clamped.
  EXPECT_DOUBLE_EQ(g.sample(0, 50), 10.0);
  EXPECT_DOUBLE_EQ(g.sample(200, 50), 20.0);
}

TEST(GridTest, SampleBilinear) {
  Grid g(2, 2, 200, 200);
  g.at(0, 0) = 0.0;
  g.at(1, 0) = 10.0;
  g.at(0, 1) = 20.0;
  g.at(1, 1) = 30.0;
  EXPECT_DOUBLE_EQ(g.sample(100, 100), 15.0);  // center of the four
}

TEST(GridTest, RmseAndErrors) {
  Grid a(2, 2, 100, 100, 1.0), b(2, 2, 100, 100, 4.0);
  EXPECT_DOUBLE_EQ(a.rmse(b), 3.0);
  Grid c(3, 2, 100, 100);
  EXPECT_THROW(a.rmse(c), std::invalid_argument);
}

TEST(GridTest, MinMaxMean) {
  Grid g(2, 1, 100, 100);
  g.at(0, 0) = -5.0;
  g.at(1, 0) = 15.0;
  EXPECT_DOUBLE_EQ(g.min(), -5.0);
  EXPECT_DOUBLE_EQ(g.max(), 15.0);
  EXPECT_DOUBLE_EQ(g.mean(), 5.0);
}

TEST(GridTest, OneByOneGridIsDegenerate) {
  Grid g(1, 1, 100, 100, 42.0);
  EXPECT_EQ(g.size(), 1u);
  EXPECT_DOUBLE_EQ(g.cell_x(0), 50.0);
  EXPECT_DOUBLE_EQ(g.cell_y(0), 50.0);
  // Every position maps to the single cell, and sampling is constant.
  EXPECT_EQ(g.cell_of(0, 0), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(g.cell_of(100, 100), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(g.flat_index_of(99.9, 0.1), 0u);
  EXPECT_DOUBLE_EQ(g.sample(0, 0), 42.0);
  EXPECT_DOUBLE_EQ(g.sample(50, 50), 42.0);
  EXPECT_DOUBLE_EQ(g.sample(100, 100), 42.0);
  EXPECT_DOUBLE_EQ(g.min(), 42.0);
  EXPECT_DOUBLE_EQ(g.max(), 42.0);
  EXPECT_DOUBLE_EQ(g.mean(), 42.0);
  EXPECT_DOUBLE_EQ(g.rmse(g), 0.0);
}

TEST(GridTest, SampleAtExactBorders) {
  Grid g(3, 3, 300, 300);
  for (std::size_t iy = 0; iy < 3; ++iy)
    for (std::size_t ix = 0; ix < 3; ++ix)
      g.at(ix, iy) = static_cast<double>(iy * 3 + ix);
  // Exact corners clamp to the corner cells.
  EXPECT_DOUBLE_EQ(g.sample(0, 0), g.at(0, 0));
  EXPECT_DOUBLE_EQ(g.sample(300, 0), g.at(2, 0));
  EXPECT_DOUBLE_EQ(g.sample(0, 300), g.at(0, 2));
  EXPECT_DOUBLE_EQ(g.sample(300, 300), g.at(2, 2));
  // Exact cell centers hit the cell value with no interpolation.
  EXPECT_DOUBLE_EQ(g.sample(g.cell_x(1), g.cell_y(1)), g.at(1, 1));
  // On the border, interpolation happens only along the edge.
  EXPECT_DOUBLE_EQ(g.sample(100, 0), (g.at(0, 0) + g.at(1, 0)) / 2.0);
}

TEST(GridTest, RmseShapeMismatchVariants) {
  Grid a(3, 2, 300, 200);
  // Same size, different shape: still a mismatch.
  Grid transposed(2, 3, 300, 200);
  EXPECT_THROW(a.rmse(transposed), std::invalid_argument);
  Grid wider(4, 2, 300, 200);
  EXPECT_THROW(a.rmse(wider), std::invalid_argument);
  Grid taller(3, 3, 300, 200);
  EXPECT_THROW(a.rmse(taller), std::invalid_argument);
  // Same shape, different physical extent: values line up, compare fine.
  Grid rescaled(3, 2, 600, 400, 0.0);
  EXPECT_NO_THROW(a.rmse(rescaled));
  // The shape check fires on the parallel path too, before any chunking.
  exec::ThreadPool pool(2);
  EXPECT_THROW(a.rmse(transposed, &pool), std::invalid_argument);
}

}  // namespace
}  // namespace mps::assim
