#include "assim/cycle.h"

#include <gtest/gtest.h>

#include "assim/city_noise_model.h"
#include "common/rng.h"

namespace mps::assim {
namespace {

phone::Observation obs_at(double x, double y, double value, TimeMs t) {
  phone::Observation obs;
  obs.user = "u";
  obs.model = "M";
  obs.captured_at = t;
  obs.spl_db = value;
  phone::LocationFix fix;
  fix.x_m = x;
  fix.y_m = y;
  fix.accuracy_m = 15.0;
  obs.location = fix;
  return obs;
}

TEST(Cycle, StartsFromModel) {
  auto model = [](TimeMs) { return Grid(8, 8, 800, 800, 50.0); };
  AssimilationCycle cycle(model, hours(6));
  EXPECT_EQ(cycle.time(), hours(6));
  EXPECT_DOUBLE_EQ(cycle.analysis().mean(), 50.0);
  EXPECT_EQ(cycle.steps(), 0u);
}

TEST(Cycle, InvalidConfigThrows) {
  auto model = [](TimeMs) { return Grid(4, 4, 400, 400, 50.0); };
  CycleConfig bad_step;
  bad_step.step = 0;
  EXPECT_THROW(AssimilationCycle(model, 0, bad_step), std::invalid_argument);
  CycleConfig bad_weight;
  bad_weight.persistence_weight = 1.5;
  EXPECT_THROW(AssimilationCycle(model, 0, bad_weight), std::invalid_argument);
}

TEST(Cycle, AdvanceMovesClockAndCountsSteps) {
  auto model = [](TimeMs) { return Grid(8, 8, 800, 800, 50.0); };
  CycleConfig config;
  config.step = hours(2);
  AssimilationCycle cycle(model, 0, config);
  CycleStep step = cycle.advance({});
  EXPECT_EQ(step.at, hours(2));
  EXPECT_EQ(cycle.time(), hours(2));
  EXPECT_EQ(cycle.steps(), 1u);
  EXPECT_EQ(step.observations_used, 0u);
}

TEST(Cycle, NoObservationsNoPersistenceEqualsModel) {
  // With w arbitrary but no observations ever, increments stay zero and
  // the analysis tracks the model exactly.
  auto model = [](TimeMs t) {
    return Grid(8, 8, 800, 800, 50.0 + static_cast<double>(t) / 3.6e6);
  };
  AssimilationCycle cycle(model, 0);
  for (int i = 0; i < 5; ++i) cycle.advance({});
  EXPECT_NEAR(cycle.analysis().mean(), model(cycle.time()).mean(), 1e-9);
}

TEST(Cycle, PersistenceCarriesCorrectionForward) {
  // Model is flat 50; truth is flat 56 (static model bias). One round of
  // observations corrects the field; later steps WITHOUT observations
  // keep most of the correction when w is high, none when w = 0.
  auto model = [](TimeMs) { return Grid(8, 8, 1600, 1600, 50.0); };
  std::vector<phone::Observation> window;
  Rng rng(3);
  for (int i = 0; i < 40; ++i)
    window.push_back(obs_at(rng.uniform(0, 1600), rng.uniform(0, 1600), 56.0,
                            minutes(30)));

  CycleConfig persistent;
  persistent.persistence_weight = 0.9;
  AssimilationCycle with(model, 0, persistent);
  with.advance(window);
  double corrected = with.analysis().mean();
  EXPECT_GT(corrected, 53.0);
  for (int i = 0; i < 3; ++i) with.advance({});
  EXPECT_GT(with.analysis().mean(), 50.0 + (corrected - 50.0) * 0.6);

  CycleConfig memoryless;
  memoryless.persistence_weight = 0.0;
  AssimilationCycle without(model, 0, memoryless);
  without.advance(window);
  without.advance({});
  EXPECT_NEAR(without.analysis().mean(), 50.0, 1e-9);
}

TEST(Cycle, TracksRealCityBetterThanModelAlone) {
  CityModelParams params;
  params.extent_m = 8000;
  params.grid_nx = 24;
  params.grid_ny = 24;
  CityNoiseModel city(params, 11);
  auto model = [&](TimeMs t) { return city.model(t); };

  // Well-specified error statistics: sigma_b matches the model's actual
  // error, observations are accurate and assigned a matching small error.
  CycleConfig config;
  config.blue.corr_length_m = 700.0;
  config.blue.sigma_b = city.model(hours(9)).rmse(city.truth(hours(9)));
  config.policy.base_sigma_r_db = 0.8;
  config.policy.sigma_per_accuracy_m = 0.0;
  AssimilationCycle cycle(model, hours(8), config);

  Rng rng(13);
  double model_rmse_sum = 0.0, cycle_rmse_sum = 0.0;
  for (int step = 0; step < 6; ++step) {
    TimeMs t = hours(9 + step);
    Grid truth = city.truth(t);
    std::vector<phone::Observation> window;
    for (int i = 0; i < 150; ++i) {
      double x = rng.uniform(0, 8000), y = rng.uniform(0, 8000);
      // Grid-representative measurements (a minute-long Leq averages the
      // neighbourhood): point samples next to a source would carry a
      // representativeness error the 333 m grid cannot absorb.
      window.push_back(obs_at(x, y, truth.sample(x, y) + rng.normal(0, 0.5), t));
    }
    cycle.advance(window);
    model_rmse_sum += city.model(t).rmse(truth);
    cycle_rmse_sum += cycle.analysis().rmse(truth);
  }
  EXPECT_LT(cycle_rmse_sum, model_rmse_sum * 0.85);
}

TEST(Cycle, DiagnosticsReported) {
  auto model = [](TimeMs) { return Grid(8, 8, 800, 800, 50.0); };
  AssimilationCycle cycle(model, 0);
  std::vector<phone::Observation> window{obs_at(400, 400, 58.0, minutes(30))};
  CycleStep step = cycle.advance(window);
  EXPECT_EQ(step.observations_used, 1u);
  EXPECT_GT(step.innovation_rms, 0.0);
  EXPECT_LT(step.residual_rms, step.innovation_rms);
}

}  // namespace
}  // namespace mps::assim
