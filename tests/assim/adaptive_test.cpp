#include "assim/adaptive.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mps::assim {
namespace {

Grid like_grid() { return Grid(16, 16, 1600, 1600, 0.0); }

TEST(AdaptivePlanner, EmptyPlan) {
  BlueParams params;
  EXPECT_TRUE(plan_sensing_locations(like_grid(), {}, params, 0, 1.0).empty());
}

TEST(AdaptivePlanner, PlansRequestedCount) {
  BlueParams params;
  auto plan = plan_sensing_locations(like_grid(), {}, params, 5, 1.0);
  EXPECT_EQ(plan.size(), 5u);
  for (const SensingTarget& t : plan) {
    EXPECT_GE(t.x_m, 0.0);
    EXPECT_LE(t.x_m, 1600.0);
    EXPECT_GE(t.y_m, 0.0);
    EXPECT_LE(t.y_m, 1600.0);
  }
}

TEST(AdaptivePlanner, SpreadsTargetsApart) {
  // Greedy uncertainty maximization never puts two targets in the same
  // spot: each planned measurement collapses the variance around it.
  BlueParams params;
  params.corr_length_m = 400.0;
  auto plan = plan_sensing_locations(like_grid(), {}, params, 6, 0.5);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.size(); ++j) {
      double d = std::hypot(plan[i].x_m - plan[j].x_m,
                            plan[i].y_m - plan[j].y_m);
      EXPECT_GT(d, 300.0) << "targets " << i << "," << j;
    }
  }
}

TEST(AdaptivePlanner, SpreadBeforeDecreases) {
  BlueParams params;
  auto plan = plan_sensing_locations(like_grid(), {}, params, 8, 0.5);
  for (std::size_t i = 1; i < plan.size(); ++i)
    EXPECT_LE(plan[i].spread_before, plan[i - 1].spread_before + 1e-9);
}

TEST(AdaptivePlanner, AvoidsAlreadyObservedRegions) {
  BlueParams params;
  params.corr_length_m = 500.0;
  // Dense existing observations in the left half.
  std::vector<AssimObservation> existing;
  Rng rng(3);
  for (int i = 0; i < 30; ++i)
    existing.push_back({rng.uniform(0, 700), rng.uniform(0, 1600), 0.0, 0.5});
  auto plan = plan_sensing_locations(like_grid(), existing, params, 4, 0.5);
  for (const SensingTarget& t : plan)
    EXPECT_GT(t.x_m, 700.0) << "should target the unobserved right half";
}

TEST(AdaptivePlanner, AdaptiveBeatsRandomForMapError) {
  // The §8 claim: choosing sensing locations by information content gives
  // a better map for the same number of (energy-costly) measurements.
  Grid truth(16, 16, 1600, 1600);
  for (std::size_t iy = 0; iy < 16; ++iy)
    for (std::size_t ix = 0; ix < 16; ++ix)
      truth.at(ix, iy) = 60.0 + 6.0 * std::sin(truth.cell_x(ix) / 350.0) +
                         4.0 * std::cos(truth.cell_y(iy) / 250.0);
  Grid background(16, 16, 1600, 1600, 60.0);
  BlueParams params;
  params.sigma_b = 5.0;
  params.corr_length_m = 350.0;
  const std::size_t kBudget = 12;

  auto measure_at = [&](double x, double y) {
    return AssimObservation{x, y, truth.sample(x, y), 0.5};
  };

  // Adaptive plan.
  auto plan = plan_sensing_locations(background, {}, params, kBudget, 0.5);
  std::vector<AssimObservation> adaptive_obs;
  for (const SensingTarget& t : plan) adaptive_obs.push_back(measure_at(t.x_m, t.y_m));
  double adaptive_rmse =
      blue_analysis(background, adaptive_obs, params).analysis.rmse(truth);

  // Random plans (mean over several draws).
  Rng rng(17);
  double random_rmse_sum = 0.0;
  const int kDraws = 10;
  for (int d = 0; d < kDraws; ++d) {
    std::vector<AssimObservation> random_obs;
    for (std::size_t i = 0; i < kBudget; ++i)
      random_obs.push_back(
          measure_at(rng.uniform(0, 1600), rng.uniform(0, 1600)));
    random_rmse_sum +=
        blue_analysis(background, random_obs, params).analysis.rmse(truth);
  }
  EXPECT_LT(adaptive_rmse, random_rmse_sum / kDraws);
}

}  // namespace
}  // namespace mps::assim
