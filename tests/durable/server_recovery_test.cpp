// ServerLifecycle end to end: the whole middleware host (broker +
// docstore + GoFlow server) crashing and recovering in place. Covers the
// server's durable snapshot/replay contract, the bounded ingest-dedup
// regression, pending-batch resumption across a crash, drop attribution
// when there is nothing to recover with, and the recovery-equivalence
// property: a killed-and-recovered run ends with exactly the documents
// an uninterrupted run stores.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/goflow_server.h"
#include "core/recovery.h"
#include "durable/storage.h"
#include "fault/fault.h"
#include "obs/span.h"

namespace mps::core {
namespace {

using mps::durable::MemStorageEnv;

struct Stack {
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  obs::Registry registry;
  obs::SpanTracker tracer{&registry};
  std::unique_ptr<GoFlowServer> server;
  std::string admin_token;

  explicit Stack(ServerConfig config = {}) {
    server = std::make_unique<GoFlowServer>(sim, broker, db, config);
    server->set_metrics(&registry);
    server->set_tracer(&tracer);
    admin_token = server->register_app("app1").value_or_throw().admin_token;
  }
};

/// An observation batch as the client publishes it. Each observation
/// carries a unique (client, seq) identity and, when `spans` is given, a
/// live span id from the tracker.
Value make_batch(const std::string& batch_id, const std::string& client,
                 int first_seq, int count, TimeMs captured_at,
                 obs::SpanTracker* tracer = nullptr,
                 std::vector<std::uint64_t>* spans = nullptr) {
  Array observations;
  for (int i = 0; i < count; ++i) {
    Object obs{{"seq", Value(first_seq + i)},
               {"captured_at", Value(captured_at)},
               {"spl", Value(55.0 + i)}};
    if (tracer != nullptr) {
      std::uint64_t span = tracer->begin(captured_at);
      obs.set("span", Value(static_cast<std::int64_t>(span)));
      if (spans != nullptr) spans->push_back(span);
    }
    observations.push_back(Value(std::move(obs)));
  }
  return Value(Object{{"batch_id", Value(batch_id)},
                      {"app", Value("app1")},
                      {"client", Value(client)},
                      {"observations", Value(std::move(observations))}});
}

std::multiset<std::string> stored_keys(docstore::Database& db) {
  std::multiset<std::string> keys;
  if (!db.has_collection("observations")) return keys;
  db.collection("observations").for_each([&](const Value& doc) {
    keys.insert(doc.get_string("client") + "#" +
                std::to_string(doc.get_int("seq", -1)));
  });
  return keys;
}

TEST(ServerRecovery, StateSurvivesCrashAndRecovery) {
  Stack s;
  MemStorageEnv env;
  ServerLifecycle lc(env, s.sim, s.broker, s.db, *s.server);

  std::string manager =
      s.server->register_account(s.admin_token, "app1", "ops", Role::kManager)
          .value_or_throw();
  s.broker.publish("goflow", "b", make_batch("b1", "dev1", 0, 3, 100), 200)
      .value_or_throw();
  ASSERT_EQ(s.server->total_observations(), 3u);

  lc.crash();
  EXPECT_TRUE(lc.down());
  EXPECT_TRUE(s.server->down());
  // A dead host: tokens gone, exchanges gone, queries see nothing.
  EXPECT_FALSE(s.server->token_role(s.admin_token).has_value());
  EXPECT_FALSE(
      s.broker.publish("goflow", "b", make_batch("b2", "dev1", 3, 1, 300), 310)
          .ok());
  EXPECT_EQ(s.db.collection("observations").size(), 0u);

  lc.recover();
  EXPECT_FALSE(lc.down());
  EXPECT_EQ(lc.recoveries(), 1u);
  EXPECT_TRUE(lc.last_recovery().snapshot_loaded);

  // Tokens, analytics, counters and documents are all back.
  EXPECT_EQ(s.server->token_role(s.admin_token), Role::kAdmin);
  EXPECT_EQ(s.server->token_role(manager), Role::kManager);
  EXPECT_EQ(s.server->total_observations(), 3u);
  EXPECT_EQ(s.db.collection("observations").size(), 3u);
  auto analytics = s.server->analytics("app1").value_or_throw();
  EXPECT_EQ(analytics.observations_stored, 3u);
  EXPECT_EQ(analytics.batches_ingested, 1u);

  // The recovered server ingests new traffic (topology rebuilt,
  // re-subscribed) and still dedups the pre-crash batch id.
  s.broker.publish("goflow", "b", make_batch("b2", "dev1", 3, 2, 400), 500)
      .value_or_throw();
  EXPECT_EQ(s.server->total_observations(), 5u);
  s.broker.publish("goflow", "b", make_batch("b1", "dev1", 0, 3, 100), 600)
      .value_or_throw();
  EXPECT_EQ(s.server->total_observations(), 5u);
  EXPECT_EQ(s.server->duplicate_batches(), 1u);

  // New registrations issue tokens that don't collide with replayed ones
  // (token counter catch-up).
  std::string fresh =
      s.server->register_account(s.admin_token, "app1", "ops2", Role::kClient)
          .value_or_throw();
  EXPECT_NE(fresh, manager);
  EXPECT_NE(fresh, s.admin_token);
}

TEST(ServerRecovery, PendingBatchResumesAfterCrash) {
  Stack s;
  MemStorageEnv env;
  ServerLifecycle lc(env, s.sim, s.broker, s.db, *s.server);

  fault::FaultPlan plan(7);
  plan.set_clock([&] { return s.sim.now(); });
  s.db.arm_faults(&plan);
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 3);

  std::vector<std::uint64_t> spans;
  s.broker.publish("goflow", "b",
                   make_batch("b1", "dev1", 0, 2, 100, &s.tracer, &spans), 200)
      .value_or_throw();
  // First insert failed; the batch is parked awaiting a backoff retry.
  ASSERT_EQ(s.server->pending_ingest_batches(), 1u);
  ASSERT_EQ(s.server->total_observations(), 0u);
  EXPECT_EQ(s.server->pending_ingest_span_ids().size(), 2u);

  lc.crash();
  // With a journal the pending batch is recoverable: nothing attributed.
  for (std::uint64_t span : spans) {
    const obs::SpanRecord* rec = s.tracer.find(span);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->dropped, obs::DropStage::kNone);
  }

  lc.recover();
  // Recovery rebuilt the pending batch from its srv.batch record and
  // resumed store_batch; the remaining scripted faults burn off through
  // the epoch-guarded retry timers.
  s.sim.run_until(s.sim.now() + hours(1));
  EXPECT_EQ(s.server->pending_ingest_batches(), 0u);
  EXPECT_EQ(s.server->total_observations(), 2u);
  EXPECT_EQ(s.server->duplicate_observations(), 0u);
  EXPECT_EQ(stored_keys(s.db), (std::multiset<std::string>{"dev1#0", "dev1#1"}));
  for (std::uint64_t span : spans) {
    const obs::SpanRecord* rec = s.tracer.find(span);
    EXPECT_TRUE(rec->stamped(obs::Hop::kPersisted));
  }
  s.db.arm_faults(nullptr);
}

TEST(ServerRecovery, CrashWithoutJournalAttributesPendingAsLost) {
  Stack s;
  fault::FaultPlan plan(7);
  s.db.arm_faults(&plan);
  plan.fail_next(fault::FaultSite::kDocstoreInsert, 1000);

  std::vector<std::uint64_t> spans;
  s.broker.publish("goflow", "b",
                   make_batch("b1", "dev1", 0, 3, 100, &s.tracer, &spans), 200)
      .value_or_throw();
  ASSERT_EQ(s.server->pending_ingest_batches(), 1u);

  s.server->crash();  // no journal: the pending work is unrecoverable
  for (std::uint64_t span : spans) {
    const obs::SpanRecord* rec = s.tracer.find(span);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->dropped, obs::DropStage::kLostInServerCrash);
  }
  EXPECT_EQ(s.server->pending_ingest_batches(), 0u);
  s.db.arm_faults(nullptr);
}

TEST(ServerRecovery, ShutdownWithPendingBatchesAttributesEverySpan) {
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  obs::Registry registry;
  obs::SpanTracker tracer(&registry);
  fault::FaultPlan plan(7);
  db.arm_faults(&plan);

  std::vector<std::uint64_t> spans;
  {
    GoFlowServer server(sim, broker, db);
    server.set_tracer(&tracer);
    server.register_app("app1").value_or_throw();
    // Armed only now: registration itself inserts into the docstore.
    plan.fail_next(fault::FaultSite::kDocstoreInsert, 1000);
    broker.publish("goflow", "b",
                   make_batch("b1", "dev1", 0, 4, 100, &tracer, &spans), 200)
        .value_or_throw();
    ASSERT_EQ(server.pending_ingest_batches(), 1u);
  }  // destructor: final shutdown with work in flight

  ASSERT_EQ(spans.size(), 4u);
  for (std::uint64_t span : spans) {
    const obs::SpanRecord* rec = tracer.find(span);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->dropped, obs::DropStage::kLostInServerShutdown);
  }
  std::uint64_t shutdown_drops = 0;
  for (auto& [stage, n] : tracer.drop_counts())
    if (stage == obs::DropStage::kLostInServerShutdown) shutdown_drops = n;
  EXPECT_EQ(shutdown_drops, 4u);
  db.arm_faults(nullptr);
}

TEST(ServerRecovery, DedupSetsStayBoundedAndCountEvictions) {
  ServerConfig config;
  config.batch_dedup_capacity = 8;
  config.obs_dedup_capacity = 16;
  Stack s(config);

  // Observations carry spans: the obs-dedup identity is (client, span).
  for (int b = 0; b < 30; ++b)
    s.broker
        .publish("goflow", "b",
                 make_batch("batch-" + std::to_string(b), "dev1", b * 2, 2,
                            100 + b, &s.tracer),
                 200 + b)
        .value_or_throw();

  // Memory stays bounded however long the deployment runs.
  EXPECT_EQ(s.server->seen_batch_ids().size(), 8u);
  EXPECT_EQ(s.server->seen_obs_keys().size(), 16u);
  EXPECT_EQ(s.server->seen_batch_ids().capacity(), 8u);
  EXPECT_EQ(s.server->total_observations(), 60u);

  // Eviction accounting: both sets overflowed, the introspection sum and
  // the registry counter agree.
  std::uint64_t evictions = s.server->dedup_evictions();
  EXPECT_EQ(evictions, (30u - 8u) + (60u - 16u));
  EXPECT_EQ(s.registry.counter("server.dedup_evictions").value(), evictions);

  // Recent batch ids are still deduped...
  s.broker.publish("goflow", "b", make_batch("batch-29", "dev1", 58, 2, 129),
                   300)
      .value_or_throw();
  EXPECT_EQ(s.server->duplicate_batches(), 1u);
  EXPECT_EQ(s.server->total_observations(), 60u);
  // ...while an evicted id is accepted again (the documented tradeoff:
  // only *recent* redelivery is protected).
  s.broker.publish("goflow", "b", make_batch("batch-0", "dev1", 1000, 1, 400),
                   500)
      .value_or_throw();
  EXPECT_EQ(s.server->duplicate_batches(), 1u);
  EXPECT_EQ(s.server->total_observations(), 61u);
}

TEST(ServerRecovery, BoundedDedupSurvivesRecoveryInFifoOrder) {
  ServerConfig config;
  config.batch_dedup_capacity = 4;
  Stack s(config);
  MemStorageEnv env;
  ServerLifecycle lc(env, s.sim, s.broker, s.db, *s.server);

  for (int b = 0; b < 6; ++b)
    s.broker
        .publish("goflow", "b",
                 make_batch("batch-" + std::to_string(b), "dev1", b, 1,
                            100 + b),
                 200 + b)
        .value_or_throw();
  std::vector<std::string> before(s.server->seen_batch_ids().ordered().begin(),
                                  s.server->seen_batch_ids().ordered().end());

  lc.crash();
  lc.recover();

  std::vector<std::string> after(s.server->seen_batch_ids().ordered().begin(),
                                 s.server->seen_batch_ids().ordered().end());
  EXPECT_EQ(after, before);
  EXPECT_EQ(after.size(), 4u);  // capacity survived the round trip

  // Dedup behaviour is indistinguishable from an uninterrupted server:
  // recent ids rejected, the next eviction hits the oldest survivor.
  s.broker.publish("goflow", "b", make_batch("batch-5", "dev1", 50, 1, 150),
                   300)
      .value_or_throw();
  EXPECT_EQ(s.server->duplicate_batches(), 1u);
  s.broker.publish("goflow", "b", make_batch("batch-new", "dev1", 60, 1, 160),
                   310)
      .value_or_throw();
  EXPECT_FALSE(s.server->seen_batch_ids().contains("batch-2"));
  EXPECT_TRUE(s.server->seen_batch_ids().contains("batch-new"));
}

// The recovery-equivalence property (the PR's acceptance bar): the same
// workload driven against (a) an uninterrupted server and (b) a server
// killed and recovered at several points — with the client retrying
// publishes that failed into the dead host — must end with identical
// stored document sets and identical ingest accounting.
TEST(ServerRecovery, KilledRunStoresExactlyWhatUninterruptedRunStores) {
  constexpr int kBatches = 12;
  auto drive = [](Stack& s, ServerLifecycle* lc,
                  const std::set<int>& kill_before) {
    std::vector<Value> retry;
    for (int b = 0; b < kBatches; ++b) {
      if (lc != nullptr && kill_before.count(b) > 0) {
        lc->crash();
        // Store-and-forward: everything that bounced off the dead host
        // is retried once the host is back.
        lc->recover();
        std::vector<Value> queued = std::move(retry);
        retry.clear();
        for (Value& payload : queued)
          if (!s.broker.publish("goflow", "b", payload, 1000 + b).ok())
            retry.push_back(std::move(payload));
        if (lc->recoveries() == 2) lc->snapshot();  // exercise mid-run snapshot
      }
      Value payload = make_batch("batch-" + std::to_string(b),
                                 "dev" + std::to_string(b % 3), b * 10, 3,
                                 100 + b);
      if (!s.broker.publish("goflow", "b", payload, 1000 + b).ok())
        retry.push_back(std::move(payload));
    }
    for (Value& payload : retry)
      s.broker.publish("goflow", "b", payload, 5000).value_or_throw();
  };

  Stack uninterrupted;
  drive(uninterrupted, nullptr, {});

  Stack killed;
  MemStorageEnv env;
  ServerLifecycle lc(env, killed.sim, killed.broker, killed.db,
                     *killed.server);
  // Crash-before-publish points: the publishes at these indices hit a
  // dead host and go through the retry path.
  drive(killed, &lc, {3, 6, 9});
  EXPECT_EQ(lc.crashes(), 3u);
  EXPECT_EQ(lc.recoveries(), 3u);

  EXPECT_EQ(stored_keys(killed.db), stored_keys(uninterrupted.db));
  EXPECT_EQ(killed.server->total_observations(),
            uninterrupted.server->total_observations());
  EXPECT_EQ(killed.server->total_batches(),
            uninterrupted.server->total_batches());
  EXPECT_EQ(killed.server->duplicate_observations(), 0u);
  auto killed_analytics = killed.server->analytics("app1").value_or_throw();
  auto clean_analytics =
      uninterrupted.server->analytics("app1").value_or_throw();
  EXPECT_EQ(killed_analytics.observations_stored,
            clean_analytics.observations_stored);
  EXPECT_EQ(killed_analytics.batches_ingested,
            clean_analytics.batches_ingested);
}

TEST(ServerRecovery, DurableMetricsAreExported) {
  Stack s;
  MemStorageEnv env;
  durable::JournalConfig cfg;
  ServerLifecycle lc(env, s.sim, s.broker, s.db, *s.server, cfg, &s.registry);

  s.broker.publish("goflow", "b", make_batch("b1", "dev1", 0, 2, 100), 200)
      .value_or_throw();
  lc.crash();
  lc.recover();

  EXPECT_GT(s.registry.counter("durable.wal_appends").value(), 0u);
  EXPECT_GT(s.registry.counter("durable.fsync_batches").value(), 0u);
  EXPECT_GT(s.registry.counter("durable.snapshots").value(), 0u);
  EXPECT_EQ(s.registry.counter("durable.recoveries").value(), 1u);
  EXPECT_GT(s.registry.counter("durable.replayed_records").value(), 0u);
}

}  // namespace
}  // namespace mps::core
