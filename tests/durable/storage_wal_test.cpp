// The byte layer of the durability story: MemStorageEnv's explicit
// durable-vs-pending bookkeeping (what a crash keeps and what it loses),
// the WAL's record framing, and the recovery-time tail repair that turns
// a torn or bit-rotted log back into a consistent prefix.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "durable/storage.h"
#include "durable/wal.h"

namespace mps::durable {
namespace {

// --- MemStorageEnv -----------------------------------------------------------

TEST(MemStorageEnv, AppendIsPendingUntilSync) {
  MemStorageEnv env;
  env.append("f", "hello");
  EXPECT_TRUE(env.exists("f"));
  EXPECT_EQ(env.read("f"), "hello");  // a live process reads its own writes
  EXPECT_EQ(env.pending_bytes("f"), 5u);
  EXPECT_EQ(env.durable_bytes("f"), 0u);

  env.sync("f");
  EXPECT_EQ(env.pending_bytes("f"), 0u);
  EXPECT_EQ(env.durable_bytes("f"), 5u);
}

TEST(MemStorageEnv, CrashDropsPendingKeepsDurable) {
  MemStorageEnv env;
  env.append("f", "durable");
  env.sync("f");
  env.append("f", "+tail");
  env.crash();
  EXPECT_EQ(env.read("f"), "durable");
}

TEST(MemStorageEnv, FileThatWasNeverSyncedVanishesOnCrash) {
  MemStorageEnv env;
  env.append("ghost", "never synced");
  env.crash();
  EXPECT_FALSE(env.exists("ghost"));
}

TEST(MemStorageEnv, WriteAtomicIsDurableImmediately) {
  MemStorageEnv env;
  env.write_atomic("f", "v1");
  env.crash();
  EXPECT_EQ(env.read("f"), "v1");
  // Replacement also survives: rename-into-place semantics.
  env.write_atomic("f", "v2-longer");
  env.crash();
  EXPECT_EQ(env.read("f"), "v2-longer");
}

TEST(MemStorageEnv, ListIsSortedAndRemoveWorks) {
  MemStorageEnv env;
  env.write_atomic("b", "");
  env.write_atomic("a", "");
  env.write_atomic("c", "");
  EXPECT_EQ(env.list(), (std::vector<std::string>{"a", "b", "c"}));
  env.remove("b");
  EXPECT_EQ(env.list(), (std::vector<std::string>{"a", "c"}));
  env.remove("nope");  // no-op
  EXPECT_THROW(env.read("missing"), std::runtime_error);
}

// --- Record framing ----------------------------------------------------------

TEST(WalFraming, EncodeDecodeRoundTrip) {
  std::string buf;
  encode_record(7, "payload-seven", buf);
  encode_record(8, "", buf);  // empty payloads are legal records

  auto first = decode_record(buf, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->lsn, 7u);
  EXPECT_EQ(first->payload, "payload-seven");

  auto second = decode_record(buf, first->end_offset);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->lsn, 8u);
  EXPECT_EQ(second->payload, "");
  EXPECT_EQ(second->end_offset, buf.size());
}

TEST(WalFraming, DecodeRejectsTruncationAndCorruption) {
  std::string buf;
  encode_record(1, "some payload bytes", buf);

  // Every strict prefix is a truncation — never a valid record.
  for (std::size_t cut = 0; cut < buf.size(); ++cut)
    EXPECT_FALSE(decode_record(std::string_view(buf).substr(0, cut), 0)
                     .has_value())
        << "prefix of " << cut << " bytes decoded";

  // Any single flipped byte breaks either the frame or the CRC.
  for (std::size_t i = 0; i < buf.size(); ++i) {
    std::string bad = buf;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    auto decoded = decode_record(bad, 0);
    if (decoded.has_value()) {
      // A flip in the length field may still frame a "record" — but the
      // CRC must catch it; reaching here with intact payload is the bug.
      EXPECT_NE(decoded->payload, "some payload bytes")
          << "flip at byte " << i << " went undetected";
    }
  }
}

TEST(WalFraming, Crc32KnownProperties) {
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
  // Seed chaining: crc of a concatenation equals chained partial crcs.
  EXPECT_EQ(crc32("hello world"), crc32(" world", crc32("hello")));
}

// --- The log -----------------------------------------------------------------

TEST(Wal, AppendAssignsDenseLsnsAndReplays) {
  MemStorageEnv env;
  Wal wal(env);
  EXPECT_EQ(wal.append("r1"), 1u);
  EXPECT_EQ(wal.append("r2"), 2u);
  EXPECT_EQ(wal.append("r3"), 3u);
  EXPECT_EQ(wal.last_lsn(), 3u);

  std::vector<std::pair<std::uint64_t, std::string>> seen;
  std::uint64_t n = wal.replay(0, [&](std::uint64_t lsn, std::string_view p) {
    seen.emplace_back(lsn, std::string(p));
  });
  EXPECT_EQ(n, 3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::uint64_t, std::string>{1, "r1"}));
  EXPECT_EQ(seen[2], (std::pair<std::uint64_t, std::string>{3, "r3"}));

  // after_lsn skips the prefix.
  seen.clear();
  wal.replay(2, [&](std::uint64_t lsn, std::string_view p) {
    seen.emplace_back(lsn, std::string(p));
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].first, 3u);
}

TEST(Wal, ReopenResumesLsnAssignment) {
  MemStorageEnv env;
  {
    Wal wal(env);
    wal.append("a");
    wal.append("b");
  }
  Wal reopened(env);
  EXPECT_EQ(reopened.next_lsn(), 3u);
  EXPECT_EQ(reopened.append("c"), 3u);
  std::uint64_t n = reopened.replay(0, [](std::uint64_t, std::string_view) {});
  EXPECT_EQ(n, 3u);
}

TEST(Wal, SegmentsRotateAndSortByName) {
  MemStorageEnv env;
  WalConfig cfg;
  cfg.segment_bytes = 64;  // tiny: force rotation every few records
  Wal wal(env, cfg);
  for (int i = 0; i < 20; ++i) wal.append("payload-" + std::to_string(i));
  EXPECT_GT(wal.segment_count(), 1u);
  // Lexicographic file order is LSN order (zero-padded names).
  std::vector<std::string> files = env.list();
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));

  // A fresh Wal over the same env sees every record despite rotation.
  Wal reopened(env, cfg);
  std::uint64_t n = reopened.replay(0, [](std::uint64_t, std::string_view) {});
  EXPECT_EQ(n, 20u);
}

TEST(Wal, SyncEveryOneSurvivesCrashCompletely) {
  MemStorageEnv env;
  {
    Wal wal(env);  // sync_every defaults to 1
    for (int i = 0; i < 5; ++i) wal.append("r" + std::to_string(i));
  }
  env.crash();
  Wal reopened(env);
  EXPECT_EQ(reopened.replay(0, [](std::uint64_t, std::string_view) {}), 5u);
  EXPECT_EQ(reopened.stats().discarded_tail_records, 0u);
}

TEST(Wal, TornTailIsTruncatedToLastSyncedRecord) {
  MemStorageEnv env;
  WalConfig cfg;
  cfg.sync_every = 100;  // group commit: nothing syncs on its own
  {
    Wal wal(env, cfg);
    wal.append("synced-1");
    wal.append("synced-2");
    wal.sync();
    wal.append("lost-3");
    wal.append("lost-4");
  }
  env.crash();  // the two unsynced records vanish mid-file

  Wal reopened(env, cfg);
  std::vector<std::uint64_t> lsns;
  reopened.replay(0, [&](std::uint64_t lsn, std::string_view) {
    lsns.push_back(lsn);
  });
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{1, 2}));
  // The log continues exactly after the surviving prefix.
  EXPECT_EQ(reopened.append("new-3"), 3u);
}

TEST(Wal, PartialRecordTornTailIsRepaired) {
  MemStorageEnv env;
  {
    Wal wal(env);
    wal.append("keep-me");
  }
  // Simulate a torn write: half a record's bytes land after the valid one.
  std::string name = env.list().front();
  std::string frame;
  encode_record(2, "half-written record", frame);
  env.append(name, std::string_view(frame).substr(0, frame.size() / 2));
  env.sync(name);

  Wal reopened(env);
  std::vector<std::uint64_t> lsns;
  reopened.replay(0, [&](std::uint64_t lsn, std::string_view) {
    lsns.push_back(lsn);
  });
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{1}));
  EXPECT_GT(reopened.stats().discarded_tail_bytes, 0u);
  // The repaired log accepts appends at the next LSN.
  EXPECT_EQ(reopened.append("after-repair"), 2u);
}

TEST(Wal, CorruptRecordEndsLogAtLastValidPrefix) {
  MemStorageEnv env;
  {
    Wal wal(env);
    wal.append("aaaa");
    wal.append("bbbb");
    wal.append("cccc");
  }
  // Bit-rot the middle record's payload in place.
  std::string name = env.list().front();
  std::string bytes = env.read(name);
  std::string first_frame;
  encode_record(1, "aaaa", first_frame);
  std::size_t mid = first_frame.size() + 18;  // inside record 2's frame
  ASSERT_LT(mid, bytes.size());
  bytes[mid] = static_cast<char>(bytes[mid] ^ 0xFF);
  env.write_atomic(name, bytes);

  Wal reopened(env);
  std::vector<std::uint64_t> lsns;
  reopened.replay(0, [&](std::uint64_t lsn, std::string_view) {
    lsns.push_back(lsn);
  });
  // Conservative: the log ends before the corruption; record 3 is gone
  // too (no resynchronization past a bad frame).
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{1}));
}

TEST(Wal, EmptySegmentFileIsHarmless) {
  MemStorageEnv env;
  {
    Wal wal(env);
    wal.append("only");
  }
  env.write_atomic("wal-9999999999999999", "");  // stray empty segment
  Wal reopened(env);
  EXPECT_EQ(reopened.replay(0, [](std::uint64_t, std::string_view) {}), 1u);
}

TEST(Wal, TruncateThroughDropsCoveredSegmentsKeepsActive) {
  MemStorageEnv env;
  WalConfig cfg;
  cfg.segment_bytes = 64;
  Wal wal(env, cfg);
  for (int i = 0; i < 30; ++i) wal.append("record-" + std::to_string(i));
  std::size_t before = wal.segment_count();
  ASSERT_GT(before, 2u);

  wal.truncate_through(wal.last_lsn());
  // Everything but the active segment is covered and removed.
  EXPECT_EQ(wal.segment_count(), 1u);
  EXPECT_LT(env.list().size(), before + 1);

  // Records after the truncation point still replay; LSNs keep counting.
  std::uint64_t next = wal.append("after-truncate");
  EXPECT_EQ(next, 31u);
  std::vector<std::uint64_t> lsns;
  wal.replay(30, [&](std::uint64_t lsn, std::string_view) {
    lsns.push_back(lsn);
  });
  EXPECT_EQ(lsns, (std::vector<std::uint64_t>{31}));
}

TEST(Wal, TruncateThroughZeroIsNoOp) {
  MemStorageEnv env;
  Wal wal(env);
  wal.append("x");
  std::size_t before = wal.segment_count();
  wal.truncate_through(0);
  EXPECT_EQ(wal.segment_count(), before);
}

}  // namespace
}  // namespace mps::durable
