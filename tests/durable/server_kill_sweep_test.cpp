// The server-kill chaos gate: the city deployment at small scale with
// the middleware host itself dying and recovering mid-study (WAL +
// snapshot recovery on the real study path), across two kill profiles
// and many seeds. The pipeline invariants must hold through every crash:
// nothing acknowledged is lost, nothing is stored twice, per-device
// upload order survives. A failing (profile, seed) pair replays
// bit-for-bit.
//
// When MPS_FAULT_REPORT_DIR is set (CI does), a per-seed JSONL report is
// written there for artifact upload, in deterministic (profile, seed)
// order regardless of completion order.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/recovery.h"
#include "obs/flight_recorder.h"
#include "durable/storage.h"
#include "exec/executor.h"
#include "exec/sweep.h"
#include "fault/fault.h"
#include "study/invariants.h"
#include "study/study.h"

namespace mps::study {
namespace {

constexpr std::uint64_t kSeeds = 16;  // >= 15 per profile, per the gate

const std::vector<std::string>& kill_profiles() {
  static const std::vector<std::string> profiles = {"server-kill",
                                                    "server-kill-lossy"};
  return profiles;
}

struct KillOutcome {
  StudyReport study;
  InvariantReport invariants;
  std::uint64_t faults_injected = 0;
  std::uint64_t replayed_records = 0;  ///< WAL records re-applied, all kills
  std::uint64_t snapshots = 0;
};

KillOutcome run_kill_chaos(const std::string& profile, std::uint64_t seed) {
  // Label this worker's flight-recorder ring so a forensic dump can be
  // attributed to its (profile, seed) run.
  obs::FlightRecorder::instance().set_thread_scope(
      profile + "/seed=" + std::to_string(seed));
  sim::Simulation sim;
  broker::Broker broker;
  docstore::Database db;
  core::GoFlowServer server(sim, broker, db);
  obs::Registry registry;
  obs::SpanTracker tracer(&registry);
  server.set_metrics(&registry);
  server.set_tracer(&tracer);

  // The durability substrate: the registry models the operator's external
  // monitoring, so it also receives the durable.* metrics.
  durable::MemStorageEnv env;
  core::ServerLifecycle lifecycle(env, sim, broker, db, server, {}, &registry);

  fault::FaultPlan plan = fault::FaultPlan::profile(profile, seed);

  crowd::PopulationConfig pc;
  pc.seed = seed;
  pc.device_scale = 0.005;  // ~20 devices (min 1 per model)
  pc.obs_scale = 0.05;
  pc.horizon = days(4);
  crowd::Population pop = crowd::Population::generate(pc);

  StudyConfig sc;
  sc.seed = seed;
  sc.duration_days = 2;
  sc.metrics = &registry;
  sc.tracer = &tracer;
  sc.faults = &plan;
  sc.lifecycle = &lifecycle;
  sc.snapshot_period = hours(6);  // bounds replay length between kills
  // Give backoff retries room to settle after the horizon (client
  // retry_max is 16 min; server ingest backoff caps at 5 min).
  sc.drain = hours(1);

  StudyRunner runner(pop, sc, sim, broker, server);
  KillOutcome out;
  out.study = runner.run();
  out.invariants = check_invariants(tracer, server, runner.clients());
  // Red seed -> black box: the last 4096 events of this run (faults,
  // WAL appends/fsyncs, kills, recoveries) land next to the reports.
  std::string forensics = dump_forensics(
      out.invariants, profile + "_seed" + std::to_string(seed));
  if (!forensics.empty())
    std::fprintf(stderr, "invariant violation: flight recorder dumped to %s\n",
                 forensics.c_str());
  out.faults_injected = plan.total_injected();
  out.replayed_records = registry.counter("durable.replayed_records").value();
  out.snapshots = registry.counter("durable.snapshots").value();
  return out;
}

std::size_t sweep_threads() {
  return exec::resolve_threads("MPS_TEST_THREADS", /*cap=*/8);
}

TEST(ServerKillSweep, NoLossNoDupAcrossKillsSeedsAndProfiles) {
  const char* report_dir = std::getenv("MPS_FAULT_REPORT_DIR");
  std::ofstream report_out;
  if (report_dir != nullptr) {
    report_out.open(std::string(report_dir) + "/server_kill_invariants.jsonl");
    ASSERT_TRUE(report_out.is_open())
        << "cannot write to MPS_FAULT_REPORT_DIR=" << report_dir;
  }

  const std::vector<std::string>& profiles = kill_profiles();
  struct Job {
    std::string profile;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  for (const std::string& profile : profiles)
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed)
      jobs.push_back({profile, seed});

  std::vector<KillOutcome> outcomes(jobs.size());
  exec::SweepExecutor sweep(sweep_threads());
  sweep.run(jobs.size(), [&](std::size_t i) {
    outcomes[i] = run_kill_chaos(jobs[i].profile, jobs[i].seed);
  });

  // Assert (and report) on the main thread, in deterministic job order.
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const std::string& profile = profiles[p];
    std::uint64_t kills_across_seeds = 0;
    std::uint64_t injected_across_seeds = 0;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const KillOutcome& out = outcomes[p * kSeeds + (seed - 1)];
      kills_across_seeds += out.study.server_kills;
      injected_across_seeds += out.faults_injected;

      SCOPED_TRACE("profile=" + profile + " seed=" + std::to_string(seed));
      // The durability invariants, per run: no acknowledged observation
      // lost, no duplicate stored, order preserved — through every crash.
      EXPECT_EQ(out.invariants.lost, 0u);
      EXPECT_EQ(out.invariants.duplicate_spans_stored, 0u);
      EXPECT_EQ(out.invariants.order_violations, 0u);
      EXPECT_TRUE(out.invariants.ok());
      // Every span landed in exactly one bucket.
      EXPECT_EQ(out.invariants.spans_total,
                out.invariants.persisted + out.invariants.on_device +
                    out.invariants.in_server +
                    out.invariants.dropped_attributed +
                    out.invariants.never_shared + out.invariants.lost);
      // The run did real work and the chaos was real: the host died and
      // came back (recovery count includes the forced end-of-run recover).
      EXPECT_GT(out.study.observations_recorded, 0u);
      EXPECT_GT(out.invariants.persisted, 0u);
      EXPECT_GT(out.study.server_kills, 0u);
      EXPECT_EQ(out.study.server_recoveries, out.study.server_kills);
      EXPECT_GT(out.snapshots, 0u);

      if (report_out.is_open()) {
        report_out << "{\"profile\":\"" << profile << "\",\"seed\":" << seed
                   << ",\"server_kills\":" << out.study.server_kills
                   << ",\"server_recoveries\":" << out.study.server_recoveries
                   << ",\"replayed_records\":" << out.replayed_records
                   << ",\"snapshots\":" << out.snapshots
                   << ",\"faults_injected\":" << out.faults_injected
                   << ",\"publish_failures\":" << out.study.publish_failures
                   << ",\"upload_retries\":" << out.study.upload_retries
                   << ",\"invariants\":" << out.invariants.to_json() << "}\n";
      }
    }
    EXPECT_GT(kills_across_seeds, 0u);
    // The lossy variant must combine kills with network hostility —
    // recovery racing retries and duplicates is the point of the profile.
    if (profile == "server-kill-lossy") {
      EXPECT_GT(injected_across_seeds, 0u);
    }
  }
}

TEST(ServerKillSweep, KillChaosIsDeterministicPerSeed) {
  KillOutcome a = run_kill_chaos("server-kill", 5);
  KillOutcome b = run_kill_chaos("server-kill", 5);
  EXPECT_EQ(a.study.server_kills, b.study.server_kills);
  EXPECT_EQ(a.study.observations_recorded, b.study.observations_recorded);
  EXPECT_EQ(a.study.observations_stored, b.study.observations_stored);
  EXPECT_EQ(a.replayed_records, b.replayed_records);
  EXPECT_EQ(a.invariants.to_json(), b.invariants.to_json());
}

// Scripted kills (exact placement, what the recovery-equivalence tests
// use) come back verbatim on a rate-less plan, and any merged schedule
// keeps downtimes disjoint and inside the horizon.
TEST(ServerKillSweep, ScriptedKillScheduleIsExactAndMergeIsDisjoint) {
  fault::FaultPlan scripted(3);  // no kill rate: only the scripts fire
  scripted.kill_server_at(hours(5), minutes(7));
  scripted.kill_server_at(hours(1), minutes(3));
  scripted.kill_server_at(-1, minutes(1));     // invalid: ignored
  scripted.kill_server_at(hours(2), 0);        // invalid: ignored
  std::vector<fault::FaultPlan::CrashEvent> exact =
      scripted.server_kill_schedule(days(2));
  ASSERT_EQ(exact.size(), 2u);  // sorted by time
  EXPECT_EQ(exact[0].at, hours(1));
  EXPECT_EQ(exact[0].down_for, minutes(3));
  EXPECT_EQ(exact[1].at, hours(5));
  EXPECT_EQ(exact[1].down_for, minutes(7));

  // Scripted + rate-driven: the merge keeps downtimes non-overlapping
  // and within the horizon, and is a pure function of the plan.
  fault::FaultPlan merged = fault::FaultPlan::profile("server-kill", 3);
  merged.kill_server_at(hours(5), minutes(7));
  std::vector<fault::FaultPlan::CrashEvent> schedule =
      merged.server_kill_schedule(days(2));
  ASSERT_FALSE(schedule.empty());
  EXPECT_GT(schedule.size(), exact.size());  // the rate contributed kills
  TimeMs up_at = 0;
  for (const auto& ev : schedule) {
    EXPECT_GE(ev.at, up_at) << "downtimes overlap";
    EXPECT_LT(ev.at, days(2));
    EXPECT_GT(ev.down_for, 0);
    up_at = ev.at + ev.down_for;
  }
  std::vector<fault::FaultPlan::CrashEvent> again =
      merged.server_kill_schedule(days(2));
  ASSERT_EQ(schedule.size(), again.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(schedule[i].at, again[i].at);
    EXPECT_EQ(schedule[i].down_for, again[i].down_for);
  }
}

}  // namespace
}  // namespace mps::study
