// The Value-record layer: one shared Journal carrying "db." and "brk."
// records, snapshot + tail replay, and the recovery contracts of the
// docstore (exact state round-trip, _id generator catch-up) and the
// broker (topology rebuild, durable-queue messages back with the
// redelivered flag, non-durable queues drained).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/strings.h"
#include "docstore/database.h"
#include "durable/journal.h"
#include "durable/storage.h"

namespace mps::durable {
namespace {

using mps::broker::Broker;
using mps::broker::ExchangeType;
using mps::broker::Message;
using mps::broker::QueueOptions;
using mps::docstore::Database;
using mps::docstore::Query;

// Mirrors ServerLifecycle's dispatch for a db+broker pair (no server):
// restore each component's snapshot section, then fan tail records out
// by their "op" prefix.
RecoveryStats recover_pair(Journal& journal, Database& db, Broker& broker) {
  return journal.recover(
      [&](const Value& state) {
        const Value* db_state = state.find("db");
        if (db_state != nullptr) db.restore_snapshot(*db_state);
        const Value* brk_state = state.find("brk");
        if (brk_state != nullptr) broker.restore_snapshot(*brk_state);
      },
      [&](const Value& record) {
        const std::string op = record.get_string("op");
        if (starts_with(op, "db.")) db.apply_journal_record(record);
        if (starts_with(op, "brk.")) broker.apply_journal_record(record);
      });
}

std::multiset<std::string> doc_keys(Database& db, const std::string& coll) {
  std::multiset<std::string> keys;
  if (!db.has_collection(coll)) return keys;
  db.collection(coll).for_each([&](const Value& doc) {
    keys.insert(doc.get_string("k") + "#" + doc.get_string("_id"));
  });
  return keys;
}

TEST(JournalRecovery, DocstoreReplaysTailWithoutSnapshot) {
  MemStorageEnv env;
  Database db;
  {
    Journal journal(env);
    db.attach_journal(&journal);
    auto& c = db.collection("obs");
    c.create_index("k");
    c.insert(Value(Object{{"k", Value("a")}}));
    std::string id = c.insert(Value(Object{{"k", Value("b")}}));
    c.insert(Value(Object{{"k", Value("c")}}));
    c.remove(id);
    c.update_many(Query::eq("k", Value("c")),
                  [](Value& doc) { doc.as_object().set("k", Value("c2")); });
    db.attach_journal(nullptr);
  }
  auto before = doc_keys(db, "obs");
  db.crash();
  ASSERT_EQ(db.collection("obs").size(), 0u);

  Journal reopened(env);
  Broker unused;
  RecoveryStats stats = recover_pair(reopened, db, unused);
  EXPECT_FALSE(stats.snapshot_loaded);
  EXPECT_GT(stats.replayed, 0u);
  EXPECT_EQ(stats.skipped_bad, 0u);
  EXPECT_EQ(doc_keys(db, "obs"), before);
  EXPECT_TRUE(db.collection("obs").has_index("k"));
}

TEST(JournalRecovery, SnapshotPlusTailReplay) {
  MemStorageEnv env;
  Database db;
  Broker broker;
  Journal journal(env);
  db.attach_journal(&journal);
  auto& c = db.collection("obs");
  for (int i = 0; i < 5; ++i)
    c.insert(Value(Object{{"k", Value("pre-" + std::to_string(i))}}));

  // Snapshot covers the first five inserts; the tail carries three more.
  journal.write_snapshot(Value(Object{{"db", db.durable_snapshot()},
                                      {"brk", broker.durable_snapshot()}}));
  for (int i = 0; i < 3; ++i)
    c.insert(Value(Object{{"k", Value("post-" + std::to_string(i))}}));
  db.attach_journal(nullptr);

  auto before = doc_keys(db, "obs");
  db.crash();
  broker.crash();

  Journal reopened(env);
  RecoveryStats stats = recover_pair(reopened, db, broker);
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.replayed, 3u);  // only the post-snapshot tail replays
  EXPECT_EQ(doc_keys(db, "obs"), before);
}

TEST(JournalRecovery, IdGeneratorNeverCollidesAfterRecovery) {
  MemStorageEnv env;
  Database db;
  std::set<std::string> ids;
  {
    Journal journal(env);
    db.attach_journal(&journal);
    auto& c = db.collection("obs");
    for (int i = 0; i < 10; ++i)
      ids.insert(c.insert(Value(Object{{"k", Value(i)}})));
    db.attach_journal(nullptr);
  }
  db.crash();
  Journal reopened(env);
  Broker unused;
  recover_pair(reopened, db, unused);

  // Fresh inserts after recovery must not reuse any replayed _id.
  auto& c = db.collection("obs");
  db.attach_journal(&reopened);
  for (int i = 0; i < 10; ++i) {
    std::string id = c.insert(Value(Object{{"k", Value(100 + i)}}));
    EXPECT_TRUE(ids.insert(id).second) << "generated duplicate _id " << id;
  }
  EXPECT_EQ(c.size(), 20u);
  db.attach_journal(nullptr);
}

TEST(JournalRecovery, DurableQueueMessagesSurviveFlaggedRedelivered) {
  MemStorageEnv env;
  Broker broker;
  Database unused_db;
  Journal journal(env);
  broker.attach_journal(&journal);

  broker.declare_exchange("ex", ExchangeType::kTopic).throw_if_error();
  QueueOptions durable_q;
  durable_q.durable = true;
  broker.declare_queue("q.durable", durable_q).throw_if_error();
  broker.declare_queue("q.volatile").throw_if_error();
  broker.bind_queue("ex", "q.durable", "keep.#").throw_if_error();
  broker.bind_queue("ex", "q.volatile", "lose.#").throw_if_error();

  broker.publish("ex", "keep.1", Value(Object{{"n", Value(1)}}), 10)
      .value_or_throw();
  broker.publish("ex", "keep.2", Value(Object{{"n", Value(2)}}), 20)
      .value_or_throw();
  broker.publish("ex", "lose.1", Value(Object{{"n", Value(3)}}), 30)
      .value_or_throw();
  ASSERT_EQ(broker.queue_depth("q.durable"), 2u);
  ASSERT_EQ(broker.queue_depth("q.volatile"), 1u);

  broker.attach_journal(nullptr);
  env.crash();  // sync_every=1: everything acknowledged is durable
  broker.crash();
  EXPECT_EQ(broker.queue_depth("q.durable"), 0u);

  Journal reopened(env);
  recover_pair(reopened, unused_db, broker);
  broker.finish_recovery();

  // Topology is back (a publish routes), durable messages are back in
  // order and flagged redelivered, the volatile queue came back empty.
  EXPECT_EQ(broker.queue_depth("q.durable"), 2u);
  EXPECT_EQ(broker.queue_depth("q.volatile"), 0u);
  std::optional<Message> m1 = broker.pop("q.durable");
  std::optional<Message> m2 = broker.pop("q.durable");
  ASSERT_TRUE(m1.has_value());
  ASSERT_TRUE(m2.has_value());
  EXPECT_EQ(m1->payload.get_int("n"), 1);
  EXPECT_EQ(m2->payload.get_int("n"), 2);
  EXPECT_TRUE(m1->redelivered);
  EXPECT_TRUE(m2->redelivered);
  EXPECT_EQ(m1->published_at, 10);

  broker.publish("ex", "keep.3", Value(Object{{"n", Value(4)}}), 40)
      .value_or_throw();
  std::optional<Message> m3 = broker.pop("q.durable");
  ASSERT_TRUE(m3.has_value());
  EXPECT_FALSE(m3->redelivered);  // new traffic is not tainted
}

TEST(JournalRecovery, ConsumedDurableMessagesStayConsumed) {
  MemStorageEnv env;
  Broker broker;
  Database unused_db;
  Journal journal(env);
  broker.attach_journal(&journal);

  QueueOptions durable_q;
  durable_q.durable = true;
  broker.declare_exchange("ex", ExchangeType::kDirect).throw_if_error();
  broker.declare_queue("q", durable_q).throw_if_error();
  broker.bind_queue("ex", "q", "k").throw_if_error();
  broker.publish("ex", "k", Value(Object{{"n", Value(1)}}), 1).value_or_throw();
  broker.publish("ex", "k", Value(Object{{"n", Value(2)}}), 2).value_or_throw();
  ASSERT_TRUE(broker.pop("q").has_value());  // auto-ack: deq logged now

  broker.attach_journal(nullptr);
  env.crash();
  broker.crash();
  Journal reopened(env);
  recover_pair(reopened, unused_db, broker);
  broker.finish_recovery();

  // Only the unconsumed message returns — no resurrection of acked work.
  EXPECT_EQ(broker.queue_depth("q"), 1u);
  std::optional<Message> m = broker.pop("q");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload.get_int("n"), 2);
}

TEST(JournalRecovery, GroupCommitCrashRecoversConsistentPrefix) {
  MemStorageEnv env;
  JournalConfig cfg;
  cfg.wal.sync_every = 1000;  // group commit: records pend until sync()
  Database db;
  constexpr int kSynced = 6;
  {
    Journal journal(env, cfg);
    db.attach_journal(&journal);
    auto& c = db.collection("obs");
    for (int i = 0; i < kSynced; ++i)
      c.insert(Value(Object{{"k", Value(i)}}));
    journal.sync();
    for (int i = kSynced; i < kSynced + 7; ++i)
      c.insert(Value(Object{{"k", Value(i)}}));  // never synced
    db.attach_journal(nullptr);
  }
  env.crash();
  db.crash();

  Journal reopened(env, cfg);
  Broker unused;
  RecoveryStats stats = recover_pair(reopened, db, unused);
  // The unsynced suffix is gone, but what survives is an exact prefix of
  // the insert order — never a hole, never a half-applied record.
  EXPECT_EQ(stats.replayed, static_cast<std::uint64_t>(kSynced));
  auto& c = db.collection("obs");
  EXPECT_EQ(c.size(), static_cast<std::size_t>(kSynced));
  std::vector<std::int64_t> ks;
  c.for_each([&](const Value& doc) { ks.push_back(doc.get_int("k")); });
  for (int i = 0; i < kSynced; ++i) EXPECT_EQ(ks[static_cast<std::size_t>(i)], i);
}

TEST(JournalRecovery, MalformedTailRecordIsSkippedNotFatal) {
  MemStorageEnv env;
  Database db;
  {
    Journal journal(env);
    db.attach_journal(&journal);
    db.collection("obs").insert(Value(Object{{"k", Value("good")}}));
    journal.append(Value("not an object record"));  // garbage op-less record
    db.collection("obs").insert(Value(Object{{"k", Value("good2")}}));
    db.attach_journal(nullptr);
  }
  db.crash();
  Journal reopened(env);
  Broker unused;
  RecoveryStats stats = recover_pair(reopened, db, unused);
  EXPECT_EQ(db.collection("obs").size(), 2u);
  EXPECT_EQ(stats.replayed + stats.skipped_bad, 3u);
}

TEST(JournalRecovery, SecondCrashReplaysFromNewestSnapshot) {
  MemStorageEnv env;
  Database db;
  Broker broker;
  // First incarnation + snapshot + crash + recovery.
  {
    Journal journal(env);
    db.attach_journal(&journal);
    db.collection("obs").insert(Value(Object{{"k", Value("one")}}));
    journal.write_snapshot(Value(Object{{"db", db.durable_snapshot()},
                                        {"brk", broker.durable_snapshot()}}));
    db.attach_journal(nullptr);
  }
  db.crash();
  {
    Journal journal(env);
    recover_pair(journal, db, broker);
    db.attach_journal(&journal);
    db.collection("obs").insert(Value(Object{{"k", Value("two")}}));
    journal.write_snapshot(Value(Object{{"db", db.durable_snapshot()},
                                        {"brk", broker.durable_snapshot()}}));
    db.collection("obs").insert(Value(Object{{"k", Value("three")}}));
    db.attach_journal(nullptr);
  }
  db.crash();
  // Second recovery: newest snapshot (two docs) + one-record tail.
  Journal journal(env);
  RecoveryStats stats = recover_pair(journal, db, broker);
  EXPECT_TRUE(stats.snapshot_loaded);
  EXPECT_EQ(stats.replayed, 1u);
  EXPECT_EQ(db.collection("obs").size(), 3u);
}

}  // namespace
}  // namespace mps::durable
