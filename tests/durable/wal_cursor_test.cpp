// Shipping cursors: the WAL's replication read path (DESIGN.md §16).
//
// A WalShipper streams the log to a follower through a cursor; these
// tests pin the cursor contract — exactly-once in-order delivery across
// segment rotation, incremental tail reads, and (the regression this
// file exists for) truncate_through refusing to drop a segment an open
// cursor has not finished shipping. Before the clamp, a snapshot racing
// an in-flight shipping pass would compact records out from under the
// cursor and the follower's history would silently skip them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "durable/storage.h"
#include "durable/wal.h"

namespace mps::durable {
namespace {

WalConfig small_segments() {
  WalConfig cfg;
  cfg.segment_bytes = 64;  // a couple of records per segment
  return cfg;
}

std::vector<std::pair<std::uint64_t, std::string>> drain(Wal& wal,
                                                         std::uint64_t cursor,
                                                         std::uint64_t max) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  wal.cursor_read(cursor, max,
                  [&](std::uint64_t lsn, std::string_view payload) {
                    out.emplace_back(lsn, std::string(payload));
                  });
  return out;
}

TEST(WalCursor, DeliversEveryRecordInOrderAcrossRotation) {
  MemStorageEnv env;
  Wal wal(env, small_segments());
  for (int i = 0; i < 20; ++i) wal.append("record-" + std::to_string(i));
  ASSERT_GT(wal.segment_count(), 2u);

  std::uint64_t cursor = wal.open_cursor(0);
  // Read in small chunks so chunk boundaries cross segment boundaries.
  std::vector<std::pair<std::uint64_t, std::string>> got;
  while (true) {
    auto chunk = drain(wal, cursor, 3);
    if (chunk.empty()) break;
    got.insert(got.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(got.size(), 20u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, i + 1);
    EXPECT_EQ(got[i].second, "record-" + std::to_string(i));
  }
  EXPECT_EQ(wal.cursor_position(cursor), 20u);
  wal.close_cursor(cursor);
  EXPECT_EQ(wal.open_cursor_count(), 0u);
}

TEST(WalCursor, TailReadsPickUpNewAppendsIncrementally) {
  MemStorageEnv env;
  Wal wal(env, small_segments());
  std::uint64_t cursor = wal.open_cursor(0);
  EXPECT_TRUE(drain(wal, cursor, 100).empty());  // empty log: caught up

  wal.append("a");
  wal.append("b");
  auto first = drain(wal, cursor, 100);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[1].second, "b");

  wal.append("c");
  auto second = drain(wal, cursor, 100);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].first, 3u);
  EXPECT_EQ(second[0].second, "c");
  EXPECT_EQ(wal.stats().cursor_records, 3u);
}

// The ship-while-snapshotting race: a snapshot covering the whole log
// must not compact segments the shipping cursor is still mid-way
// through. truncate_through re-anchors to the cursor, the cursor ships
// the rest without a gap, and the *next* truncation reclaims the space.
TEST(WalCursor, TruncateReanchorsToOpenShippingCursor) {
  MemStorageEnv env;
  Wal wal(env, small_segments());
  for (int i = 0; i < 20; ++i) wal.append("r" + std::to_string(i));
  std::size_t before = wal.segment_count();
  ASSERT_GT(before, 2u);

  std::uint64_t cursor = wal.open_cursor(0);
  auto shipped = drain(wal, cursor, 2);  // mid-segment, far behind the tip
  ASSERT_EQ(shipped.size(), 2u);

  // Snapshot at the log tip: without the clamp this drops every sealed
  // segment, including the one the cursor sits in.
  wal.truncate_through(wal.last_lsn());
  EXPECT_EQ(wal.segment_count(), before);
  EXPECT_EQ(wal.stats().truncate_clamped, 1u);
  EXPECT_EQ(wal.stats().truncated_segments, 0u);

  // The cursor still ships a complete, gapless history.
  auto rest = drain(wal, cursor, 1000);
  ASSERT_EQ(rest.size(), 18u);
  EXPECT_EQ(rest.front().first, 3u);
  EXPECT_EQ(rest.back().first, 20u);

  // Caught up: the same truncation now reclaims the sealed segments.
  wal.truncate_through(wal.last_lsn());
  EXPECT_EQ(wal.segment_count(), 1u);
  EXPECT_GT(wal.stats().truncated_segments, 0u);
  wal.close_cursor(cursor);
}

TEST(WalCursor, SlowestOfSeveralCursorsAnchorsTruncation) {
  MemStorageEnv env;
  Wal wal(env, small_segments());
  for (int i = 0; i < 12; ++i) wal.append("x" + std::to_string(i));
  std::uint64_t fast = wal.open_cursor(0);
  std::uint64_t slow = wal.open_cursor(0);
  drain(wal, fast, 1000);  // fast cursor fully caught up
  drain(wal, slow, 1);     // slow cursor at lsn 1

  std::size_t before = wal.segment_count();
  wal.truncate_through(wal.last_lsn());
  EXPECT_EQ(wal.segment_count(), before);  // slow cursor pins everything

  wal.close_cursor(slow);
  wal.truncate_through(wal.last_lsn());
  EXPECT_EQ(wal.segment_count(), 1u);  // fast cursor pins nothing
  wal.close_cursor(fast);
}

TEST(WalCursor, CursorOpenedBelowCompactedPrefixSkipsForward) {
  MemStorageEnv env;
  Wal wal(env, small_segments());
  for (int i = 0; i < 20; ++i) wal.append("y" + std::to_string(i));
  wal.truncate_through(10);  // no cursors: compacts freely
  ASSERT_LT(wal.segment_count(), 5u);
  std::uint64_t first_retained = 0;
  wal.replay(0, [&](std::uint64_t lsn, std::string_view) {
    if (first_retained == 0) first_retained = lsn;
  });
  ASSERT_GT(first_retained, 1u);

  std::uint64_t cursor = wal.open_cursor(0);
  auto got = drain(wal, cursor, 1000);
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.front().first, first_retained);
  EXPECT_EQ(got.back().first, 20u);
  wal.close_cursor(cursor);
}

TEST(WalCursor, UnknownCursorThrowsAndCloseIsIdempotent) {
  MemStorageEnv env;
  Wal wal(env);
  EXPECT_THROW(wal.cursor_position(42), std::invalid_argument);
  EXPECT_THROW(wal.cursor_read(42, 1, [](std::uint64_t, std::string_view) {}),
               std::invalid_argument);
  wal.close_cursor(42);  // no-op
}

TEST(MemStorageEnvSuffix, ReadSuffixSpansDurableAndPendingBytes) {
  MemStorageEnv env;
  env.append("f", "abcdef");
  env.sync("f");
  env.append("f", "ghij");  // pending tail
  EXPECT_EQ(env.read_suffix("f", 0), "abcdefghij");
  EXPECT_EQ(env.read_suffix("f", 3), "defghij");
  EXPECT_EQ(env.read_suffix("f", 6), "ghij");
  EXPECT_EQ(env.read_suffix("f", 8), "ij");
  EXPECT_EQ(env.read_suffix("f", 10), "");
  EXPECT_EQ(env.read_suffix("f", 99), "");
  EXPECT_THROW(env.read_suffix("missing", 0), std::runtime_error);
}

}  // namespace
}  // namespace mps::durable
