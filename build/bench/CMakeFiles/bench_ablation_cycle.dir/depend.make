# Empty dependencies file for bench_ablation_cycle.
# This may be replaced when dependencies are built.
