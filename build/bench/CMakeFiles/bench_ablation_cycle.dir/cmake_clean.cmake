file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cycle.dir/bench_ablation_cycle.cpp.o"
  "CMakeFiles/bench_ablation_cycle.dir/bench_ablation_cycle.cpp.o.d"
  "bench_ablation_cycle"
  "bench_ablation_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
