# Empty compiler generated dependencies file for bench_fig17_delay_cdf.
# This may be replaced when dependencies are built.
