file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_delay_cdf.dir/bench_fig17_delay_cdf.cpp.o"
  "CMakeFiles/bench_fig17_delay_cdf.dir/bench_fig17_delay_cdf.cpp.o.d"
  "bench_fig17_delay_cdf"
  "bench_fig17_delay_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_delay_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
