# Empty compiler generated dependencies file for bench_ablation_retention.
# This may be replaced when dependencies are built.
