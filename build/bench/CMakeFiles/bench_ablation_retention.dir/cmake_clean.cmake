file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_retention.dir/bench_ablation_retention.cpp.o"
  "CMakeFiles/bench_ablation_retention.dir/bench_ablation_retention.cpp.o.d"
  "bench_ablation_retention"
  "bench_ablation_retention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
