file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_activities.dir/bench_fig21_activities.cpp.o"
  "CMakeFiles/bench_fig21_activities.dir/bench_fig21_activities.cpp.o.d"
  "bench_fig21_activities"
  "bench_fig21_activities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_activities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
