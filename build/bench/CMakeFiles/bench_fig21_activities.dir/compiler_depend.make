# Empty compiler generated dependencies file for bench_fig21_activities.
# This may be replaced when dependencies are built.
