file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_top20_table.dir/bench_fig09_top20_table.cpp.o"
  "CMakeFiles/bench_fig09_top20_table.dir/bench_fig09_top20_table.cpp.o.d"
  "bench_fig09_top20_table"
  "bench_fig09_top20_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_top20_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
