# Empty dependencies file for bench_fig09_top20_table.
# This may be replaced when dependencies are built.
