file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_truth_discovery.dir/bench_ablation_truth_discovery.cpp.o"
  "CMakeFiles/bench_ablation_truth_discovery.dir/bench_ablation_truth_discovery.cpp.o.d"
  "bench_ablation_truth_discovery"
  "bench_ablation_truth_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_truth_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
