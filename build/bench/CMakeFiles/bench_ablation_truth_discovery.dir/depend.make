# Empty dependencies file for bench_ablation_truth_discovery.
# This may be replaced when dependencies are built.
