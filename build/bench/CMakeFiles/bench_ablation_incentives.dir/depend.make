# Empty dependencies file for bench_ablation_incentives.
# This may be replaced when dependencies are built.
