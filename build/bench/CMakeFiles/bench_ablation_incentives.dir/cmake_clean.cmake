file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_incentives.dir/bench_ablation_incentives.cpp.o"
  "CMakeFiles/bench_ablation_incentives.dir/bench_ablation_incentives.cpp.o.d"
  "bench_ablation_incentives"
  "bench_ablation_incentives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_incentives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
