file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_accuracy_gps.dir/bench_fig11_accuracy_gps.cpp.o"
  "CMakeFiles/bench_fig11_accuracy_gps.dir/bench_fig11_accuracy_gps.cpp.o.d"
  "bench_fig11_accuracy_gps"
  "bench_fig11_accuracy_gps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_accuracy_gps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
