# Empty dependencies file for bench_fig11_accuracy_gps.
# This may be replaced when dependencies are built.
