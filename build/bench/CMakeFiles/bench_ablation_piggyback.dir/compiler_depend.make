# Empty compiler generated dependencies file for bench_ablation_piggyback.
# This may be replaced when dependencies are built.
