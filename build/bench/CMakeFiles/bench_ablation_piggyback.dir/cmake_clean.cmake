file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_piggyback.dir/bench_ablation_piggyback.cpp.o"
  "CMakeFiles/bench_ablation_piggyback.dir/bench_ablation_piggyback.cpp.o.d"
  "bench_ablation_piggyback"
  "bench_ablation_piggyback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_piggyback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
