# Empty compiler generated dependencies file for bench_study_end_to_end.
# This may be replaced when dependencies are built.
