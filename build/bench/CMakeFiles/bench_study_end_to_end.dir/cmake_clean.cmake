file(REMOVE_RECURSE
  "CMakeFiles/bench_study_end_to_end.dir/bench_study_end_to_end.cpp.o"
  "CMakeFiles/bench_study_end_to_end.dir/bench_study_end_to_end.cpp.o.d"
  "bench_study_end_to_end"
  "bench_study_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_study_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
