
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_middleware.cpp" "bench/CMakeFiles/bench_micro_middleware.dir/bench_micro_middleware.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_middleware.dir/bench_micro_middleware.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/mps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/docstore/CMakeFiles/mps_docstore.dir/DependInfo.cmake"
  "/root/repo/build/src/assim/CMakeFiles/mps_assim.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
