# Empty dependencies file for bench_micro_middleware.
# This may be replaced when dependencies are built.
