file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_middleware.dir/bench_micro_middleware.cpp.o"
  "CMakeFiles/bench_micro_middleware.dir/bench_micro_middleware.cpp.o.d"
  "bench_micro_middleware"
  "bench_micro_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
