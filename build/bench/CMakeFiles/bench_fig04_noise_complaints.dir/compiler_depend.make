# Empty compiler generated dependencies file for bench_fig04_noise_complaints.
# This may be replaced when dependencies are built.
