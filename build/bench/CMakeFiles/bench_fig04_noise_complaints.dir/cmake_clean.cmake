file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_noise_complaints.dir/bench_fig04_noise_complaints.cpp.o"
  "CMakeFiles/bench_fig04_noise_complaints.dir/bench_fig04_noise_complaints.cpp.o.d"
  "bench_fig04_noise_complaints"
  "bench_fig04_noise_complaints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_noise_complaints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
