file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_contributions.dir/bench_fig08_contributions.cpp.o"
  "CMakeFiles/bench_fig08_contributions.dir/bench_fig08_contributions.cpp.o.d"
  "bench_fig08_contributions"
  "bench_fig08_contributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_contributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
