# Empty dependencies file for bench_fig19_user_diversity.
# This may be replaced when dependencies are built.
