file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_user_diversity.dir/bench_fig19_user_diversity.cpp.o"
  "CMakeFiles/bench_fig19_user_diversity.dir/bench_fig19_user_diversity.cpp.o.d"
  "bench_fig19_user_diversity"
  "bench_fig19_user_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_user_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
