# Empty compiler generated dependencies file for bench_fig15_spl_users.
# This may be replaced when dependencies are built.
