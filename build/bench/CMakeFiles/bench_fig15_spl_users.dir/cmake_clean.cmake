file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_spl_users.dir/bench_fig15_spl_users.cpp.o"
  "CMakeFiles/bench_fig15_spl_users.dir/bench_fig15_spl_users.cpp.o.d"
  "bench_fig15_spl_users"
  "bench_fig15_spl_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_spl_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
