file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_accuracy_all.dir/bench_fig10_accuracy_all.cpp.o"
  "CMakeFiles/bench_fig10_accuracy_all.dir/bench_fig10_accuracy_all.cpp.o.d"
  "bench_fig10_accuracy_all"
  "bench_fig10_accuracy_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_accuracy_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
