# Empty dependencies file for bench_fig10_accuracy_all.
# This may be replaced when dependencies are built.
