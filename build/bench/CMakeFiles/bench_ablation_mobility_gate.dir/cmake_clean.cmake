file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mobility_gate.dir/bench_ablation_mobility_gate.cpp.o"
  "CMakeFiles/bench_ablation_mobility_gate.dir/bench_ablation_mobility_gate.cpp.o.d"
  "bench_ablation_mobility_gate"
  "bench_ablation_mobility_gate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mobility_gate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
