# Empty compiler generated dependencies file for bench_ablation_mobility_gate.
# This may be replaced when dependencies are built.
