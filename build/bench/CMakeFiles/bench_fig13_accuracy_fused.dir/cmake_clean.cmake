file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_accuracy_fused.dir/bench_fig13_accuracy_fused.cpp.o"
  "CMakeFiles/bench_fig13_accuracy_fused.dir/bench_fig13_accuracy_fused.cpp.o.d"
  "bench_fig13_accuracy_fused"
  "bench_fig13_accuracy_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_accuracy_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
