# Empty dependencies file for bench_fig13_accuracy_fused.
# This may be replaced when dependencies are built.
