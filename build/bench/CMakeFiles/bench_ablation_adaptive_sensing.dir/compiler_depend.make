# Empty compiler generated dependencies file for bench_ablation_adaptive_sensing.
# This may be replaced when dependencies are built.
