file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_adaptive_sensing.dir/bench_ablation_adaptive_sensing.cpp.o"
  "CMakeFiles/bench_ablation_adaptive_sensing.dir/bench_ablation_adaptive_sensing.cpp.o.d"
  "bench_ablation_adaptive_sensing"
  "bench_ablation_adaptive_sensing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_adaptive_sensing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
