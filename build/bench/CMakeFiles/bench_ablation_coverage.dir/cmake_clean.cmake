file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coverage.dir/bench_ablation_coverage.cpp.o"
  "CMakeFiles/bench_ablation_coverage.dir/bench_ablation_coverage.cpp.o.d"
  "bench_ablation_coverage"
  "bench_ablation_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
