# Empty dependencies file for bench_ablation_coverage.
# This may be replaced when dependencies are built.
