file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_calibration.dir/bench_ablation_calibration.cpp.o"
  "CMakeFiles/bench_ablation_calibration.dir/bench_ablation_calibration.cpp.o.d"
  "bench_ablation_calibration"
  "bench_ablation_calibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
