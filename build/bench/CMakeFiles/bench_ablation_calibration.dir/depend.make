# Empty dependencies file for bench_ablation_calibration.
# This may be replaced when dependencies are built.
