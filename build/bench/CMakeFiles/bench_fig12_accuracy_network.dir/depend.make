# Empty dependencies file for bench_fig12_accuracy_network.
# This may be replaced when dependencies are built.
