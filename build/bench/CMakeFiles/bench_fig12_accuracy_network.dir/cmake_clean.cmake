file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_accuracy_network.dir/bench_fig12_accuracy_network.cpp.o"
  "CMakeFiles/bench_fig12_accuracy_network.dir/bench_fig12_accuracy_network.cpp.o.d"
  "bench_fig12_accuracy_network"
  "bench_fig12_accuracy_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_accuracy_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
