file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_daily.dir/bench_fig18_daily.cpp.o"
  "CMakeFiles/bench_fig18_daily.dir/bench_fig18_daily.cpp.o.d"
  "bench_fig18_daily"
  "bench_fig18_daily.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_daily.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
