# Empty dependencies file for bench_fig18_daily.
# This may be replaced when dependencies are built.
