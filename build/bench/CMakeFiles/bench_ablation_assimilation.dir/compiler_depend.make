# Empty compiler generated dependencies file for bench_ablation_assimilation.
# This may be replaced when dependencies are built.
