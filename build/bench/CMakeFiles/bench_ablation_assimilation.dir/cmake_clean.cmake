file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_assimilation.dir/bench_ablation_assimilation.cpp.o"
  "CMakeFiles/bench_ablation_assimilation.dir/bench_ablation_assimilation.cpp.o.d"
  "bench_ablation_assimilation"
  "bench_ablation_assimilation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_assimilation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
