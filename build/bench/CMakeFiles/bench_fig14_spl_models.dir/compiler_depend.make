# Empty compiler generated dependencies file for bench_fig14_spl_models.
# This may be replaced when dependencies are built.
