file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_buffering.dir/bench_ablation_buffering.cpp.o"
  "CMakeFiles/bench_ablation_buffering.dir/bench_ablation_buffering.cpp.o.d"
  "bench_ablation_buffering"
  "bench_ablation_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
