# Empty compiler generated dependencies file for bench_ablation_buffering.
# This may be replaced when dependencies are built.
