file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_battery.dir/bench_fig16_battery.cpp.o"
  "CMakeFiles/bench_fig16_battery.dir/bench_fig16_battery.cpp.o.d"
  "bench_fig16_battery"
  "bench_fig16_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
