# Empty dependencies file for bench_fig16_battery.
# This may be replaced when dependencies are built.
