# Empty compiler generated dependencies file for bench_fig20_providers_by_mode.
# This may be replaced when dependencies are built.
