file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_providers_by_mode.dir/bench_fig20_providers_by_mode.cpp.o"
  "CMakeFiles/bench_fig20_providers_by_mode.dir/bench_fig20_providers_by_mode.cpp.o.d"
  "bench_fig20_providers_by_mode"
  "bench_fig20_providers_by_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_providers_by_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
