# Empty dependencies file for test_calib.
# This may be replaced when dependencies are built.
