file(REMOVE_RECURSE
  "CMakeFiles/test_calib.dir/calib/calibration_test.cpp.o"
  "CMakeFiles/test_calib.dir/calib/calibration_test.cpp.o.d"
  "CMakeFiles/test_calib.dir/calib/crowd_calibration_test.cpp.o"
  "CMakeFiles/test_calib.dir/calib/crowd_calibration_test.cpp.o.d"
  "CMakeFiles/test_calib.dir/calib/truth_discovery_test.cpp.o"
  "CMakeFiles/test_calib.dir/calib/truth_discovery_test.cpp.o.d"
  "test_calib"
  "test_calib.pdb"
  "test_calib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
