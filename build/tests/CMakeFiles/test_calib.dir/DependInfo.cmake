
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/calib/calibration_test.cpp" "tests/CMakeFiles/test_calib.dir/calib/calibration_test.cpp.o" "gcc" "tests/CMakeFiles/test_calib.dir/calib/calibration_test.cpp.o.d"
  "/root/repo/tests/calib/crowd_calibration_test.cpp" "tests/CMakeFiles/test_calib.dir/calib/crowd_calibration_test.cpp.o" "gcc" "tests/CMakeFiles/test_calib.dir/calib/crowd_calibration_test.cpp.o.d"
  "/root/repo/tests/calib/truth_discovery_test.cpp" "tests/CMakeFiles/test_calib.dir/calib/truth_discovery_test.cpp.o" "gcc" "tests/CMakeFiles/test_calib.dir/calib/truth_discovery_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/calib/CMakeFiles/mps_calib.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/mps_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
