file(REMOVE_RECURSE
  "CMakeFiles/test_crowd.dir/crowd/ambient_test.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/ambient_test.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/dataset_test.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/dataset_test.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/incentives_test.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/incentives_test.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/population_test.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/population_test.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/retention_test.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/retention_test.cpp.o.d"
  "CMakeFiles/test_crowd.dir/crowd/user_profile_test.cpp.o"
  "CMakeFiles/test_crowd.dir/crowd/user_profile_test.cpp.o.d"
  "test_crowd"
  "test_crowd.pdb"
  "test_crowd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
