
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crowd/ambient_test.cpp" "tests/CMakeFiles/test_crowd.dir/crowd/ambient_test.cpp.o" "gcc" "tests/CMakeFiles/test_crowd.dir/crowd/ambient_test.cpp.o.d"
  "/root/repo/tests/crowd/dataset_test.cpp" "tests/CMakeFiles/test_crowd.dir/crowd/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_crowd.dir/crowd/dataset_test.cpp.o.d"
  "/root/repo/tests/crowd/incentives_test.cpp" "tests/CMakeFiles/test_crowd.dir/crowd/incentives_test.cpp.o" "gcc" "tests/CMakeFiles/test_crowd.dir/crowd/incentives_test.cpp.o.d"
  "/root/repo/tests/crowd/population_test.cpp" "tests/CMakeFiles/test_crowd.dir/crowd/population_test.cpp.o" "gcc" "tests/CMakeFiles/test_crowd.dir/crowd/population_test.cpp.o.d"
  "/root/repo/tests/crowd/retention_test.cpp" "tests/CMakeFiles/test_crowd.dir/crowd/retention_test.cpp.o" "gcc" "tests/CMakeFiles/test_crowd.dir/crowd/retention_test.cpp.o.d"
  "/root/repo/tests/crowd/user_profile_test.cpp" "tests/CMakeFiles/test_crowd.dir/crowd/user_profile_test.cpp.o" "gcc" "tests/CMakeFiles/test_crowd.dir/crowd/user_profile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crowd/CMakeFiles/mps_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
