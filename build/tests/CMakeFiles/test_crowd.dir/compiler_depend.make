# Empty compiler generated dependencies file for test_crowd.
# This may be replaced when dependencies are built.
