
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/assim/adaptive_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/adaptive_test.cpp.o.d"
  "/root/repo/tests/assim/assimilator_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/assimilator_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/assimilator_test.cpp.o.d"
  "/root/repo/tests/assim/blue_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/blue_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/blue_test.cpp.o.d"
  "/root/repo/tests/assim/city_noise_model_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/city_noise_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/city_noise_model_test.cpp.o.d"
  "/root/repo/tests/assim/complaints_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/complaints_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/complaints_test.cpp.o.d"
  "/root/repo/tests/assim/cycle_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/cycle_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/cycle_test.cpp.o.d"
  "/root/repo/tests/assim/grid_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/grid_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/grid_test.cpp.o.d"
  "/root/repo/tests/assim/linalg_test.cpp" "tests/CMakeFiles/test_assim.dir/assim/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/test_assim.dir/assim/linalg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/assim/CMakeFiles/mps_assim.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
