file(REMOVE_RECURSE
  "CMakeFiles/test_assim.dir/assim/adaptive_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/adaptive_test.cpp.o.d"
  "CMakeFiles/test_assim.dir/assim/assimilator_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/assimilator_test.cpp.o.d"
  "CMakeFiles/test_assim.dir/assim/blue_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/blue_test.cpp.o.d"
  "CMakeFiles/test_assim.dir/assim/city_noise_model_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/city_noise_model_test.cpp.o.d"
  "CMakeFiles/test_assim.dir/assim/complaints_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/complaints_test.cpp.o.d"
  "CMakeFiles/test_assim.dir/assim/cycle_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/cycle_test.cpp.o.d"
  "CMakeFiles/test_assim.dir/assim/grid_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/grid_test.cpp.o.d"
  "CMakeFiles/test_assim.dir/assim/linalg_test.cpp.o"
  "CMakeFiles/test_assim.dir/assim/linalg_test.cpp.o.d"
  "test_assim"
  "test_assim.pdb"
  "test_assim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
