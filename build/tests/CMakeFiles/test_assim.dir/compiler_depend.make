# Empty compiler generated dependencies file for test_assim.
# This may be replaced when dependencies are built.
