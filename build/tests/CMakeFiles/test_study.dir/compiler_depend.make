# Empty compiler generated dependencies file for test_study.
# This may be replaced when dependencies are built.
