
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/study/study_test.cpp" "tests/CMakeFiles/test_study.dir/study/study_test.cpp.o" "gcc" "tests/CMakeFiles/test_study.dir/study/study_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/study/CMakeFiles/mps_study.dir/DependInfo.cmake"
  "/root/repo/build/src/crowd/CMakeFiles/mps_crowd.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/mps_client.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mps_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/mps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/docstore/CMakeFiles/mps_docstore.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
