file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/histogram_test.cpp.o"
  "CMakeFiles/test_common.dir/common/histogram_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/result_test.cpp.o"
  "CMakeFiles/test_common.dir/common/result_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/rng_test.cpp.o"
  "CMakeFiles/test_common.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/stats_test.cpp.o"
  "CMakeFiles/test_common.dir/common/stats_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/strings_test.cpp.o"
  "CMakeFiles/test_common.dir/common/strings_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/table_test.cpp.o"
  "CMakeFiles/test_common.dir/common/table_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/value_order_property_test.cpp.o"
  "CMakeFiles/test_common.dir/common/value_order_property_test.cpp.o.d"
  "CMakeFiles/test_common.dir/common/value_test.cpp.o"
  "CMakeFiles/test_common.dir/common/value_test.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
