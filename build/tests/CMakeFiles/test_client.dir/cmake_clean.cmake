file(REMOVE_RECURSE
  "CMakeFiles/test_client.dir/client/goflow_client_test.cpp.o"
  "CMakeFiles/test_client.dir/client/goflow_client_test.cpp.o.d"
  "test_client"
  "test_client.pdb"
  "test_client[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
