file(REMOVE_RECURSE
  "CMakeFiles/test_soundcity.dir/soundcity/anonymizer_test.cpp.o"
  "CMakeFiles/test_soundcity.dir/soundcity/anonymizer_test.cpp.o.d"
  "CMakeFiles/test_soundcity.dir/soundcity/exposure_test.cpp.o"
  "CMakeFiles/test_soundcity.dir/soundcity/exposure_test.cpp.o.d"
  "CMakeFiles/test_soundcity.dir/soundcity/feedback_test.cpp.o"
  "CMakeFiles/test_soundcity.dir/soundcity/feedback_test.cpp.o.d"
  "CMakeFiles/test_soundcity.dir/soundcity/webapp_test.cpp.o"
  "CMakeFiles/test_soundcity.dir/soundcity/webapp_test.cpp.o.d"
  "test_soundcity"
  "test_soundcity.pdb"
  "test_soundcity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soundcity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
