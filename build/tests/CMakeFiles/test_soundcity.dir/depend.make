# Empty dependencies file for test_soundcity.
# This may be replaced when dependencies are built.
