file(REMOVE_RECURSE
  "CMakeFiles/test_broker.dir/broker/broker_test.cpp.o"
  "CMakeFiles/test_broker.dir/broker/broker_test.cpp.o.d"
  "CMakeFiles/test_broker.dir/broker/routing_property_test.cpp.o"
  "CMakeFiles/test_broker.dir/broker/routing_property_test.cpp.o.d"
  "CMakeFiles/test_broker.dir/broker/topic_test.cpp.o"
  "CMakeFiles/test_broker.dir/broker/topic_test.cpp.o.d"
  "test_broker"
  "test_broker.pdb"
  "test_broker[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
