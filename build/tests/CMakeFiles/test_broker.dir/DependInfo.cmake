
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/broker/broker_test.cpp" "tests/CMakeFiles/test_broker.dir/broker/broker_test.cpp.o" "gcc" "tests/CMakeFiles/test_broker.dir/broker/broker_test.cpp.o.d"
  "/root/repo/tests/broker/routing_property_test.cpp" "tests/CMakeFiles/test_broker.dir/broker/routing_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_broker.dir/broker/routing_property_test.cpp.o.d"
  "/root/repo/tests/broker/topic_test.cpp" "tests/CMakeFiles/test_broker.dir/broker/topic_test.cpp.o" "gcc" "tests/CMakeFiles/test_broker.dir/broker/topic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/mps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
