file(REMOVE_RECURSE
  "CMakeFiles/test_phone.dir/phone/activity_test.cpp.o"
  "CMakeFiles/test_phone.dir/phone/activity_test.cpp.o.d"
  "CMakeFiles/test_phone.dir/phone/battery_test.cpp.o"
  "CMakeFiles/test_phone.dir/phone/battery_test.cpp.o.d"
  "CMakeFiles/test_phone.dir/phone/device_catalog_test.cpp.o"
  "CMakeFiles/test_phone.dir/phone/device_catalog_test.cpp.o.d"
  "CMakeFiles/test_phone.dir/phone/location_test.cpp.o"
  "CMakeFiles/test_phone.dir/phone/location_test.cpp.o.d"
  "CMakeFiles/test_phone.dir/phone/microphone_test.cpp.o"
  "CMakeFiles/test_phone.dir/phone/microphone_test.cpp.o.d"
  "CMakeFiles/test_phone.dir/phone/observation_test.cpp.o"
  "CMakeFiles/test_phone.dir/phone/observation_test.cpp.o.d"
  "CMakeFiles/test_phone.dir/phone/phone_test.cpp.o"
  "CMakeFiles/test_phone.dir/phone/phone_test.cpp.o.d"
  "test_phone"
  "test_phone.pdb"
  "test_phone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
