
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/phone/activity_test.cpp" "tests/CMakeFiles/test_phone.dir/phone/activity_test.cpp.o" "gcc" "tests/CMakeFiles/test_phone.dir/phone/activity_test.cpp.o.d"
  "/root/repo/tests/phone/battery_test.cpp" "tests/CMakeFiles/test_phone.dir/phone/battery_test.cpp.o" "gcc" "tests/CMakeFiles/test_phone.dir/phone/battery_test.cpp.o.d"
  "/root/repo/tests/phone/device_catalog_test.cpp" "tests/CMakeFiles/test_phone.dir/phone/device_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/test_phone.dir/phone/device_catalog_test.cpp.o.d"
  "/root/repo/tests/phone/location_test.cpp" "tests/CMakeFiles/test_phone.dir/phone/location_test.cpp.o" "gcc" "tests/CMakeFiles/test_phone.dir/phone/location_test.cpp.o.d"
  "/root/repo/tests/phone/microphone_test.cpp" "tests/CMakeFiles/test_phone.dir/phone/microphone_test.cpp.o" "gcc" "tests/CMakeFiles/test_phone.dir/phone/microphone_test.cpp.o.d"
  "/root/repo/tests/phone/observation_test.cpp" "tests/CMakeFiles/test_phone.dir/phone/observation_test.cpp.o" "gcc" "tests/CMakeFiles/test_phone.dir/phone/observation_test.cpp.o.d"
  "/root/repo/tests/phone/phone_test.cpp" "tests/CMakeFiles/test_phone.dir/phone/phone_test.cpp.o" "gcc" "tests/CMakeFiles/test_phone.dir/phone/phone_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
