# Empty dependencies file for test_phone.
# This may be replaced when dependencies are built.
