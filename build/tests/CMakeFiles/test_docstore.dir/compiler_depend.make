# Empty compiler generated dependencies file for test_docstore.
# This may be replaced when dependencies are built.
