file(REMOVE_RECURSE
  "CMakeFiles/test_docstore.dir/docstore/collection_test.cpp.o"
  "CMakeFiles/test_docstore.dir/docstore/collection_test.cpp.o.d"
  "CMakeFiles/test_docstore.dir/docstore/database_test.cpp.o"
  "CMakeFiles/test_docstore.dir/docstore/database_test.cpp.o.d"
  "CMakeFiles/test_docstore.dir/docstore/fuzz_oracle_test.cpp.o"
  "CMakeFiles/test_docstore.dir/docstore/fuzz_oracle_test.cpp.o.d"
  "CMakeFiles/test_docstore.dir/docstore/query_test.cpp.o"
  "CMakeFiles/test_docstore.dir/docstore/query_test.cpp.o.d"
  "test_docstore"
  "test_docstore.pdb"
  "test_docstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_docstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
