
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/docstore/collection_test.cpp" "tests/CMakeFiles/test_docstore.dir/docstore/collection_test.cpp.o" "gcc" "tests/CMakeFiles/test_docstore.dir/docstore/collection_test.cpp.o.d"
  "/root/repo/tests/docstore/database_test.cpp" "tests/CMakeFiles/test_docstore.dir/docstore/database_test.cpp.o" "gcc" "tests/CMakeFiles/test_docstore.dir/docstore/database_test.cpp.o.d"
  "/root/repo/tests/docstore/fuzz_oracle_test.cpp" "tests/CMakeFiles/test_docstore.dir/docstore/fuzz_oracle_test.cpp.o" "gcc" "tests/CMakeFiles/test_docstore.dir/docstore/fuzz_oracle_test.cpp.o.d"
  "/root/repo/tests/docstore/query_test.cpp" "tests/CMakeFiles/test_docstore.dir/docstore/query_test.cpp.o" "gcc" "tests/CMakeFiles/test_docstore.dir/docstore/query_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/docstore/CMakeFiles/mps_docstore.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
