# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_docstore[1]_include.cmake")
include("/root/repo/build/tests/test_broker[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_phone[1]_include.cmake")
include("/root/repo/build/tests/test_crowd[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_assim[1]_include.cmake")
include("/root/repo/build/tests/test_calib[1]_include.cmake")
include("/root/repo/build/tests/test_soundcity[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
