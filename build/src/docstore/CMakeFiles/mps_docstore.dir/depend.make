# Empty dependencies file for mps_docstore.
# This may be replaced when dependencies are built.
