file(REMOVE_RECURSE
  "libmps_docstore.a"
)
