file(REMOVE_RECURSE
  "CMakeFiles/mps_docstore.dir/collection.cpp.o"
  "CMakeFiles/mps_docstore.dir/collection.cpp.o.d"
  "CMakeFiles/mps_docstore.dir/database.cpp.o"
  "CMakeFiles/mps_docstore.dir/database.cpp.o.d"
  "CMakeFiles/mps_docstore.dir/query.cpp.o"
  "CMakeFiles/mps_docstore.dir/query.cpp.o.d"
  "libmps_docstore.a"
  "libmps_docstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_docstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
