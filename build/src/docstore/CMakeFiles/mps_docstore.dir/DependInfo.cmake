
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/docstore/collection.cpp" "src/docstore/CMakeFiles/mps_docstore.dir/collection.cpp.o" "gcc" "src/docstore/CMakeFiles/mps_docstore.dir/collection.cpp.o.d"
  "/root/repo/src/docstore/database.cpp" "src/docstore/CMakeFiles/mps_docstore.dir/database.cpp.o" "gcc" "src/docstore/CMakeFiles/mps_docstore.dir/database.cpp.o.d"
  "/root/repo/src/docstore/query.cpp" "src/docstore/CMakeFiles/mps_docstore.dir/query.cpp.o" "gcc" "src/docstore/CMakeFiles/mps_docstore.dir/query.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
