
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assim/adaptive.cpp" "src/assim/CMakeFiles/mps_assim.dir/adaptive.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/adaptive.cpp.o.d"
  "/root/repo/src/assim/assimilator.cpp" "src/assim/CMakeFiles/mps_assim.dir/assimilator.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/assimilator.cpp.o.d"
  "/root/repo/src/assim/blue.cpp" "src/assim/CMakeFiles/mps_assim.dir/blue.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/blue.cpp.o.d"
  "/root/repo/src/assim/city_noise_model.cpp" "src/assim/CMakeFiles/mps_assim.dir/city_noise_model.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/city_noise_model.cpp.o.d"
  "/root/repo/src/assim/complaints.cpp" "src/assim/CMakeFiles/mps_assim.dir/complaints.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/complaints.cpp.o.d"
  "/root/repo/src/assim/cycle.cpp" "src/assim/CMakeFiles/mps_assim.dir/cycle.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/cycle.cpp.o.d"
  "/root/repo/src/assim/grid.cpp" "src/assim/CMakeFiles/mps_assim.dir/grid.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/grid.cpp.o.d"
  "/root/repo/src/assim/linalg.cpp" "src/assim/CMakeFiles/mps_assim.dir/linalg.cpp.o" "gcc" "src/assim/CMakeFiles/mps_assim.dir/linalg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
