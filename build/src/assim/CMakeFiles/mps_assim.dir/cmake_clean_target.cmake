file(REMOVE_RECURSE
  "libmps_assim.a"
)
