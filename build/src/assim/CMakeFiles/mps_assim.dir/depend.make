# Empty dependencies file for mps_assim.
# This may be replaced when dependencies are built.
