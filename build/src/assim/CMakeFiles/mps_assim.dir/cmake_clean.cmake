file(REMOVE_RECURSE
  "CMakeFiles/mps_assim.dir/adaptive.cpp.o"
  "CMakeFiles/mps_assim.dir/adaptive.cpp.o.d"
  "CMakeFiles/mps_assim.dir/assimilator.cpp.o"
  "CMakeFiles/mps_assim.dir/assimilator.cpp.o.d"
  "CMakeFiles/mps_assim.dir/blue.cpp.o"
  "CMakeFiles/mps_assim.dir/blue.cpp.o.d"
  "CMakeFiles/mps_assim.dir/city_noise_model.cpp.o"
  "CMakeFiles/mps_assim.dir/city_noise_model.cpp.o.d"
  "CMakeFiles/mps_assim.dir/complaints.cpp.o"
  "CMakeFiles/mps_assim.dir/complaints.cpp.o.d"
  "CMakeFiles/mps_assim.dir/cycle.cpp.o"
  "CMakeFiles/mps_assim.dir/cycle.cpp.o.d"
  "CMakeFiles/mps_assim.dir/grid.cpp.o"
  "CMakeFiles/mps_assim.dir/grid.cpp.o.d"
  "CMakeFiles/mps_assim.dir/linalg.cpp.o"
  "CMakeFiles/mps_assim.dir/linalg.cpp.o.d"
  "libmps_assim.a"
  "libmps_assim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_assim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
