file(REMOVE_RECURSE
  "CMakeFiles/mps_common.dir/histogram.cpp.o"
  "CMakeFiles/mps_common.dir/histogram.cpp.o.d"
  "CMakeFiles/mps_common.dir/log.cpp.o"
  "CMakeFiles/mps_common.dir/log.cpp.o.d"
  "CMakeFiles/mps_common.dir/stats.cpp.o"
  "CMakeFiles/mps_common.dir/stats.cpp.o.d"
  "CMakeFiles/mps_common.dir/strings.cpp.o"
  "CMakeFiles/mps_common.dir/strings.cpp.o.d"
  "CMakeFiles/mps_common.dir/table.cpp.o"
  "CMakeFiles/mps_common.dir/table.cpp.o.d"
  "CMakeFiles/mps_common.dir/value.cpp.o"
  "CMakeFiles/mps_common.dir/value.cpp.o.d"
  "libmps_common.a"
  "libmps_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
