file(REMOVE_RECURSE
  "libmps_common.a"
)
