# Empty compiler generated dependencies file for mps_common.
# This may be replaced when dependencies are built.
