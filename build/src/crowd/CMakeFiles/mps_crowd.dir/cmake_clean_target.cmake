file(REMOVE_RECURSE
  "libmps_crowd.a"
)
