
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crowd/ambient.cpp" "src/crowd/CMakeFiles/mps_crowd.dir/ambient.cpp.o" "gcc" "src/crowd/CMakeFiles/mps_crowd.dir/ambient.cpp.o.d"
  "/root/repo/src/crowd/dataset.cpp" "src/crowd/CMakeFiles/mps_crowd.dir/dataset.cpp.o" "gcc" "src/crowd/CMakeFiles/mps_crowd.dir/dataset.cpp.o.d"
  "/root/repo/src/crowd/incentives.cpp" "src/crowd/CMakeFiles/mps_crowd.dir/incentives.cpp.o" "gcc" "src/crowd/CMakeFiles/mps_crowd.dir/incentives.cpp.o.d"
  "/root/repo/src/crowd/population.cpp" "src/crowd/CMakeFiles/mps_crowd.dir/population.cpp.o" "gcc" "src/crowd/CMakeFiles/mps_crowd.dir/population.cpp.o.d"
  "/root/repo/src/crowd/retention.cpp" "src/crowd/CMakeFiles/mps_crowd.dir/retention.cpp.o" "gcc" "src/crowd/CMakeFiles/mps_crowd.dir/retention.cpp.o.d"
  "/root/repo/src/crowd/user_profile.cpp" "src/crowd/CMakeFiles/mps_crowd.dir/user_profile.cpp.o" "gcc" "src/crowd/CMakeFiles/mps_crowd.dir/user_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
