# Empty dependencies file for mps_crowd.
# This may be replaced when dependencies are built.
