file(REMOVE_RECURSE
  "CMakeFiles/mps_crowd.dir/ambient.cpp.o"
  "CMakeFiles/mps_crowd.dir/ambient.cpp.o.d"
  "CMakeFiles/mps_crowd.dir/dataset.cpp.o"
  "CMakeFiles/mps_crowd.dir/dataset.cpp.o.d"
  "CMakeFiles/mps_crowd.dir/incentives.cpp.o"
  "CMakeFiles/mps_crowd.dir/incentives.cpp.o.d"
  "CMakeFiles/mps_crowd.dir/population.cpp.o"
  "CMakeFiles/mps_crowd.dir/population.cpp.o.d"
  "CMakeFiles/mps_crowd.dir/retention.cpp.o"
  "CMakeFiles/mps_crowd.dir/retention.cpp.o.d"
  "CMakeFiles/mps_crowd.dir/user_profile.cpp.o"
  "CMakeFiles/mps_crowd.dir/user_profile.cpp.o.d"
  "libmps_crowd.a"
  "libmps_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
