file(REMOVE_RECURSE
  "CMakeFiles/mps_broker.dir/broker.cpp.o"
  "CMakeFiles/mps_broker.dir/broker.cpp.o.d"
  "CMakeFiles/mps_broker.dir/topic.cpp.o"
  "CMakeFiles/mps_broker.dir/topic.cpp.o.d"
  "libmps_broker.a"
  "libmps_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
