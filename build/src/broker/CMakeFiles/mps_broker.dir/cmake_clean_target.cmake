file(REMOVE_RECURSE
  "libmps_broker.a"
)
