# Empty dependencies file for mps_broker.
# This may be replaced when dependencies are built.
