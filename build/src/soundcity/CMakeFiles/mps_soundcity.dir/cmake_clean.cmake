file(REMOVE_RECURSE
  "CMakeFiles/mps_soundcity.dir/anonymizer.cpp.o"
  "CMakeFiles/mps_soundcity.dir/anonymizer.cpp.o.d"
  "CMakeFiles/mps_soundcity.dir/exposure.cpp.o"
  "CMakeFiles/mps_soundcity.dir/exposure.cpp.o.d"
  "CMakeFiles/mps_soundcity.dir/feedback.cpp.o"
  "CMakeFiles/mps_soundcity.dir/feedback.cpp.o.d"
  "CMakeFiles/mps_soundcity.dir/webapp.cpp.o"
  "CMakeFiles/mps_soundcity.dir/webapp.cpp.o.d"
  "libmps_soundcity.a"
  "libmps_soundcity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_soundcity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
