file(REMOVE_RECURSE
  "libmps_soundcity.a"
)
