# Empty compiler generated dependencies file for mps_soundcity.
# This may be replaced when dependencies are built.
