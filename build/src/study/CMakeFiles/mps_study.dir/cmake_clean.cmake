file(REMOVE_RECURSE
  "CMakeFiles/mps_study.dir/study.cpp.o"
  "CMakeFiles/mps_study.dir/study.cpp.o.d"
  "libmps_study.a"
  "libmps_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
