# Empty dependencies file for mps_study.
# This may be replaced when dependencies are built.
