file(REMOVE_RECURSE
  "libmps_study.a"
)
