file(REMOVE_RECURSE
  "libmps_sim.a"
)
