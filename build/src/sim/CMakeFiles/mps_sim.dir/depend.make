# Empty dependencies file for mps_sim.
# This may be replaced when dependencies are built.
