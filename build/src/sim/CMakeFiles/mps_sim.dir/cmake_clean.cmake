file(REMOVE_RECURSE
  "CMakeFiles/mps_sim.dir/simulation.cpp.o"
  "CMakeFiles/mps_sim.dir/simulation.cpp.o.d"
  "libmps_sim.a"
  "libmps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
