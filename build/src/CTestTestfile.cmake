# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("docstore")
subdirs("broker")
subdirs("net")
subdirs("phone")
subdirs("crowd")
subdirs("client")
subdirs("core")
subdirs("assim")
subdirs("calib")
subdirs("soundcity")
subdirs("study")
