file(REMOVE_RECURSE
  "libmps_calib.a"
)
