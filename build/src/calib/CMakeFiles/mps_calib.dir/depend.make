# Empty dependencies file for mps_calib.
# This may be replaced when dependencies are built.
