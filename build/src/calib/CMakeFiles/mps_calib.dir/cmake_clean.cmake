file(REMOVE_RECURSE
  "CMakeFiles/mps_calib.dir/calibration.cpp.o"
  "CMakeFiles/mps_calib.dir/calibration.cpp.o.d"
  "CMakeFiles/mps_calib.dir/crowd_calibration.cpp.o"
  "CMakeFiles/mps_calib.dir/crowd_calibration.cpp.o.d"
  "CMakeFiles/mps_calib.dir/truth_discovery.cpp.o"
  "CMakeFiles/mps_calib.dir/truth_discovery.cpp.o.d"
  "libmps_calib.a"
  "libmps_calib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_calib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
