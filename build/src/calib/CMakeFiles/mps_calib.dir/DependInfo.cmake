
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calib/calibration.cpp" "src/calib/CMakeFiles/mps_calib.dir/calibration.cpp.o" "gcc" "src/calib/CMakeFiles/mps_calib.dir/calibration.cpp.o.d"
  "/root/repo/src/calib/crowd_calibration.cpp" "src/calib/CMakeFiles/mps_calib.dir/crowd_calibration.cpp.o" "gcc" "src/calib/CMakeFiles/mps_calib.dir/crowd_calibration.cpp.o.d"
  "/root/repo/src/calib/truth_discovery.cpp" "src/calib/CMakeFiles/mps_calib.dir/truth_discovery.cpp.o" "gcc" "src/calib/CMakeFiles/mps_calib.dir/truth_discovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
