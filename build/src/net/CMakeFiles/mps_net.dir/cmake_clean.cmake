file(REMOVE_RECURSE
  "CMakeFiles/mps_net.dir/connectivity.cpp.o"
  "CMakeFiles/mps_net.dir/connectivity.cpp.o.d"
  "CMakeFiles/mps_net.dir/foreground.cpp.o"
  "CMakeFiles/mps_net.dir/foreground.cpp.o.d"
  "CMakeFiles/mps_net.dir/radio.cpp.o"
  "CMakeFiles/mps_net.dir/radio.cpp.o.d"
  "libmps_net.a"
  "libmps_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
