file(REMOVE_RECURSE
  "libmps_net.a"
)
