# Empty dependencies file for mps_net.
# This may be replaced when dependencies are built.
