
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/connectivity.cpp" "src/net/CMakeFiles/mps_net.dir/connectivity.cpp.o" "gcc" "src/net/CMakeFiles/mps_net.dir/connectivity.cpp.o.d"
  "/root/repo/src/net/foreground.cpp" "src/net/CMakeFiles/mps_net.dir/foreground.cpp.o" "gcc" "src/net/CMakeFiles/mps_net.dir/foreground.cpp.o.d"
  "/root/repo/src/net/radio.cpp" "src/net/CMakeFiles/mps_net.dir/radio.cpp.o" "gcc" "src/net/CMakeFiles/mps_net.dir/radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
