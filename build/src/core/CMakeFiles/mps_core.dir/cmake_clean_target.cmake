file(REMOVE_RECURSE
  "libmps_core.a"
)
