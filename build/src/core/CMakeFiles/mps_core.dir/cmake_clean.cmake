file(REMOVE_RECURSE
  "CMakeFiles/mps_core.dir/goflow_server.cpp.o"
  "CMakeFiles/mps_core.dir/goflow_server.cpp.o.d"
  "CMakeFiles/mps_core.dir/rest_api.cpp.o"
  "CMakeFiles/mps_core.dir/rest_api.cpp.o.d"
  "CMakeFiles/mps_core.dir/standard_jobs.cpp.o"
  "CMakeFiles/mps_core.dir/standard_jobs.cpp.o.d"
  "libmps_core.a"
  "libmps_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
