# Empty compiler generated dependencies file for mps_core.
# This may be replaced when dependencies are built.
