
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/goflow_server.cpp" "src/core/CMakeFiles/mps_core.dir/goflow_server.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/goflow_server.cpp.o.d"
  "/root/repo/src/core/rest_api.cpp" "src/core/CMakeFiles/mps_core.dir/rest_api.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/rest_api.cpp.o.d"
  "/root/repo/src/core/standard_jobs.cpp" "src/core/CMakeFiles/mps_core.dir/standard_jobs.cpp.o" "gcc" "src/core/CMakeFiles/mps_core.dir/standard_jobs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/mps_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/docstore/CMakeFiles/mps_docstore.dir/DependInfo.cmake"
  "/root/repo/build/src/phone/CMakeFiles/mps_phone.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
