file(REMOVE_RECURSE
  "libmps_phone.a"
)
