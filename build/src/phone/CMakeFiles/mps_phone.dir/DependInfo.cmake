
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phone/activity.cpp" "src/phone/CMakeFiles/mps_phone.dir/activity.cpp.o" "gcc" "src/phone/CMakeFiles/mps_phone.dir/activity.cpp.o.d"
  "/root/repo/src/phone/battery.cpp" "src/phone/CMakeFiles/mps_phone.dir/battery.cpp.o" "gcc" "src/phone/CMakeFiles/mps_phone.dir/battery.cpp.o.d"
  "/root/repo/src/phone/device_catalog.cpp" "src/phone/CMakeFiles/mps_phone.dir/device_catalog.cpp.o" "gcc" "src/phone/CMakeFiles/mps_phone.dir/device_catalog.cpp.o.d"
  "/root/repo/src/phone/location.cpp" "src/phone/CMakeFiles/mps_phone.dir/location.cpp.o" "gcc" "src/phone/CMakeFiles/mps_phone.dir/location.cpp.o.d"
  "/root/repo/src/phone/microphone.cpp" "src/phone/CMakeFiles/mps_phone.dir/microphone.cpp.o" "gcc" "src/phone/CMakeFiles/mps_phone.dir/microphone.cpp.o.d"
  "/root/repo/src/phone/observation.cpp" "src/phone/CMakeFiles/mps_phone.dir/observation.cpp.o" "gcc" "src/phone/CMakeFiles/mps_phone.dir/observation.cpp.o.d"
  "/root/repo/src/phone/phone.cpp" "src/phone/CMakeFiles/mps_phone.dir/phone.cpp.o" "gcc" "src/phone/CMakeFiles/mps_phone.dir/phone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mps_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mps_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
