# Empty dependencies file for mps_phone.
# This may be replaced when dependencies are built.
