file(REMOVE_RECURSE
  "CMakeFiles/mps_phone.dir/activity.cpp.o"
  "CMakeFiles/mps_phone.dir/activity.cpp.o.d"
  "CMakeFiles/mps_phone.dir/battery.cpp.o"
  "CMakeFiles/mps_phone.dir/battery.cpp.o.d"
  "CMakeFiles/mps_phone.dir/device_catalog.cpp.o"
  "CMakeFiles/mps_phone.dir/device_catalog.cpp.o.d"
  "CMakeFiles/mps_phone.dir/location.cpp.o"
  "CMakeFiles/mps_phone.dir/location.cpp.o.d"
  "CMakeFiles/mps_phone.dir/microphone.cpp.o"
  "CMakeFiles/mps_phone.dir/microphone.cpp.o.d"
  "CMakeFiles/mps_phone.dir/observation.cpp.o"
  "CMakeFiles/mps_phone.dir/observation.cpp.o.d"
  "CMakeFiles/mps_phone.dir/phone.cpp.o"
  "CMakeFiles/mps_phone.dir/phone.cpp.o.d"
  "libmps_phone.a"
  "libmps_phone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_phone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
