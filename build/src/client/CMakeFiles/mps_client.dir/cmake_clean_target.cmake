file(REMOVE_RECURSE
  "libmps_client.a"
)
