# Empty dependencies file for mps_client.
# This may be replaced when dependencies are built.
