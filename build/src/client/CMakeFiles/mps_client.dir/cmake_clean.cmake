file(REMOVE_RECURSE
  "CMakeFiles/mps_client.dir/goflow_client.cpp.o"
  "CMakeFiles/mps_client.dir/goflow_client.cpp.o.d"
  "libmps_client.a"
  "libmps_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
