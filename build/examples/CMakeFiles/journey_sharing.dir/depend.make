# Empty dependencies file for journey_sharing.
# This may be replaced when dependencies are built.
