file(REMOVE_RECURSE
  "CMakeFiles/journey_sharing.dir/journey_sharing.cpp.o"
  "CMakeFiles/journey_sharing.dir/journey_sharing.cpp.o.d"
  "journey_sharing"
  "journey_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/journey_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
