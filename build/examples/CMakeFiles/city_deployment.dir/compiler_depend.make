# Empty compiler generated dependencies file for city_deployment.
# This may be replaced when dependencies are built.
