file(REMOVE_RECURSE
  "CMakeFiles/city_deployment.dir/city_deployment.cpp.o"
  "CMakeFiles/city_deployment.dir/city_deployment.cpp.o.d"
  "city_deployment"
  "city_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
