# Empty compiler generated dependencies file for energy_tradeoff.
# This may be replaced when dependencies are built.
