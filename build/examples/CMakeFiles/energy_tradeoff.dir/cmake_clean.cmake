file(REMOVE_RECURSE
  "CMakeFiles/energy_tradeoff.dir/energy_tradeoff.cpp.o"
  "CMakeFiles/energy_tradeoff.dir/energy_tradeoff.cpp.o.d"
  "energy_tradeoff"
  "energy_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
