file(REMOVE_RECURSE
  "CMakeFiles/exposure_report.dir/exposure_report.cpp.o"
  "CMakeFiles/exposure_report.dir/exposure_report.cpp.o.d"
  "exposure_report"
  "exposure_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exposure_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
