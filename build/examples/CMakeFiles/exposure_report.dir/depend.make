# Empty dependencies file for exposure_report.
# This may be replaced when dependencies are built.
