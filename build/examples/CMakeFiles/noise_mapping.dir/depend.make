# Empty dependencies file for noise_mapping.
# This may be replaced when dependencies are built.
