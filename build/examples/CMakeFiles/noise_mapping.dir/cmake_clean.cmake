file(REMOVE_RECURSE
  "CMakeFiles/noise_mapping.dir/noise_mapping.cpp.o"
  "CMakeFiles/noise_mapping.dir/noise_mapping.cpp.o.d"
  "noise_mapping"
  "noise_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
